// §V-C ablation: how much of the total benefit each technique contributes.
// Paper: subtasks alone = 32% of the benefit; + model-driven grouping = 81%;
// + dynamic data reloading = 100%.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

int main() {
  const auto workload = exp::make_catalog();
  const auto arrivals = exp::batch_arrivals(workload.size());
  const std::size_t machines = 100;

  auto iso_cfg = exp::ClusterSimConfig::isolated();
  iso_cfg.machines = machines;
  const auto iso = bench::run(iso_cfg, workload, arrivals);

  // (1) Subtasks only: pipelined execution but arbitrary (naive) grouping and
  // no spilling. Without spill the packer must stay at the GC knee, or the
  // runs drown in collector overhead.
  auto subtask_cfg = exp::ClusterSimConfig::naive(1);
  subtask_cfg.exec = exp::ExecModel::kPipelined;
  subtask_cfg.naive_pack_occupancy = 0.65;
  subtask_cfg.machines = machines;
  const auto subtasks = bench::run(subtask_cfg, workload, arrivals);

  // (2) + grouping: Algorithm 1 + regrouping, still no spilling.
  auto grouping_cfg = exp::ClusterSimConfig::harmony();
  grouping_cfg.spill_enabled = false;
  grouping_cfg.machines = machines;
  const auto grouping = bench::run(grouping_cfg, workload, arrivals);

  // (3) Full system.
  auto full_cfg = exp::ClusterSimConfig::harmony();
  full_cfg.machines = machines;
  const auto full = bench::run(full_cfg, workload, arrivals);

  const double iso_jct = iso.mean_jct;
  const double full_gain = iso_jct - full.mean_jct;

  bench::print_header("Ablation (§V-C): contribution of each technique");
  TextTable table({"configuration", "JCT speedup", "makespan speedup", "% of total JCT benefit"});
  auto row = [&](const char* label, const bench::RunResult& r) {
    const double benefit = full_gain > 0 ? 100.0 * (iso_jct - r.mean_jct) / full_gain : 0.0;
    table.add_numeric_row(label, {bench::speedup(iso_jct, r.mean_jct),
                                  bench::speedup(iso.makespan, r.makespan), benefit});
  };
  row("isolated (baseline)", iso);
  row("subtasks only", subtasks);
  row("+ model-driven grouping", grouping);
  row("+ dynamic data reloading (full)", full);
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper: 32%% -> 81%% -> 100%% of the total benefit\n");
  return 0;
}
