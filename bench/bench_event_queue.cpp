// DES event-queue microbench (google-benchmark): the calendar queue against
// the reference binary heap across the access patterns the simulator
// actually produces.
//
//   HoldModel          steady-state pop→push cycling at a fixed queue size —
//                      the classic calendar-queue workload, where an O(1)
//                      bucket beats the heap's O(log n) sift.
//   EnqueueDrain       bulk schedule of n events at random times, then drain.
//   ScheduleCancelMix  schedule n, cancel half at random, drain the rest —
//                      exercises tombstoning and orphan compaction.
//
// Sizes run 1k → 10M events; the 10M drain pins Iterations(1) so a single
// pass is measured instead of google-benchmark re-running a multi-second
// workload to convergence.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "sim/simulator.h"

using namespace harmony;

namespace {

const char* kind_name(sim::EventQueueKind kind) {
  return kind == sim::EventQueueKind::kCalendar ? "calendar" : "heap";
}

sim::EventQueueKind kind_of(const benchmark::State& state) {
  return state.range(0) == 0 ? sim::EventQueueKind::kBinaryHeap
                             : sim::EventQueueKind::kCalendar;
}

// Each fired event schedules its successor a random exponential step ahead,
// holding the queue at a constant population.
struct HoldEvent {
  sim::Simulator* sim;
  Rng* rng;
  void operator()() const {
    sim->schedule_in(rng->exponential(1.0), HoldEvent{sim, rng});
  }
};

void BM_HoldModel(benchmark::State& state) {
  const auto resident = static_cast<std::size_t>(state.range(1));
  sim::Simulator sim(kind_of(state));
  Rng rng(17);
  for (std::size_t i = 0; i < resident; ++i)
    sim.schedule_in(rng.exponential(1.0), HoldEvent{&sim, &rng});
  for (auto _ : state) sim.run(resident);  // one full hold cycle
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(resident));
  state.SetLabel(std::string(kind_name(kind_of(state))) + " / " +
                 std::to_string(resident) + " resident");
}

void BM_EnqueueDrain(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    sim::Simulator sim(kind_of(state));
    Rng rng(23);
    for (std::size_t i = 0; i < n; ++i)
      sim.schedule_at(rng.uniform(0.0, 1e6), [] {});
    sim.run();
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(std::string(kind_name(kind_of(state))) + " / " +
                 std::to_string(n) + " events");
}

void BM_ScheduleCancelMix(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(1));
  std::vector<sim::EventId> ids(n);
  for (auto _ : state) {
    sim::Simulator sim(kind_of(state));
    Rng rng(29);
    for (std::size_t i = 0; i < n; ++i)
      ids[i] = sim.schedule_at(rng.uniform(0.0, 1e6), [] {});
    // Cancel a random half — the mix a regrouping storm produces.
    for (std::size_t i = 0; i < n; ++i)
      if (rng.uniform(0.0, 1.0) < 0.5) sim.cancel(ids[i]);
    sim.run();
    benchmark::DoNotOptimize(sim.events_fired());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel(std::string(kind_name(kind_of(state))) + " / " +
                 std::to_string(n) + " scheduled, ~half cancelled");
}

}  // namespace

BENCHMARK(BM_HoldModel)
    ->ArgsProduct({{0, 1}, {1 << 10, 1 << 15, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_EnqueueDrain)
    ->ArgsProduct({{0, 1}, {1 << 10, 1 << 15, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_EnqueueDrain)  // 10M: one measured pass per queue kind
    ->Args({0, 10'000'000})
    ->Args({1, 10'000'000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ScheduleCancelMix)
    ->ArgsProduct({{0, 1}, {1 << 10, 1 << 15, 1 << 20}})
    ->Unit(benchmark::kMillisecond);

HARMONY_BENCHMARK_JSON_MAIN("BENCH_event_queue.json");
