// Fig. 10: normalized average JCT and makespan of the three systems on the
// full 80-job workload over 100 machines, all jobs submitted at t = 0.
//
// Paper: naive co-location averages 1.11x JCT / 1.09x makespan over isolated
// (worst case below 1x); Harmony reaches 2.11x JCT / 1.60x makespan. Also
// reported here: §V-C's concurrency statistics and regrouping overhead.
//
// With `--report DIR`, the Harmony run is traced and the analysis engine's
// run report (report.md + report.json) lands in DIR, so the figure's headline
// numbers regenerate with their phase/bound breakdown attached.
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace harmony;
using namespace harmony::bench;

int main(int argc, char** argv) {
  std::string report_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_dir = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--report DIR]\n", argv[0]);
      return 2;
    }
  }
  const auto workload = exp::make_catalog();
  const auto arrivals = exp::batch_arrivals(workload.size());
  const std::size_t machines = 100;

  auto isolated_cfg = exp::ClusterSimConfig::isolated();
  isolated_cfg.machines = machines;
  const RunResult isolated = run(isolated_cfg, workload, arrivals);

  // Naive co-location: several arbitrary groupings; report avg/best/worst.
  std::vector<RunResult> naive_runs;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto cfg = exp::ClusterSimConfig::naive(seed);
    cfg.machines = machines;
    naive_runs.push_back(run(cfg, workload, arrivals));
  }

  auto harmony_cfg = exp::ClusterSimConfig::harmony();
  harmony_cfg.machines = machines;
  // Trace only the Harmony run, so the report covers exactly the run whose
  // numbers the figure headlines (the baseline runs above stay untraced).
  if (!report_dir.empty()) obs::Tracer::instance().set_enabled(true);
  exp::ClusterSim harmony_sim(harmony_cfg, workload, arrivals);
  const auto harmony_summary = harmony_sim.run();

  const double iso_jct = isolated.mean_jct;
  const double iso_mk = isolated.makespan;

  double naive_jct_sum = 0.0, naive_mk_sum = 0.0;
  double naive_jct_best = 0.0, naive_jct_worst = 1e300;
  double naive_mk_best = 0.0, naive_mk_worst = 1e300;
  for (const RunResult& r : naive_runs) {
    naive_jct_sum += speedup(iso_jct, r.mean_jct);
    naive_mk_sum += speedup(iso_mk, r.makespan);
    naive_jct_best = std::max(naive_jct_best, speedup(iso_jct, r.mean_jct));
    naive_jct_worst = std::min(naive_jct_worst, speedup(iso_jct, r.mean_jct));
    naive_mk_best = std::max(naive_mk_best, speedup(iso_mk, r.makespan));
    naive_mk_worst = std::min(naive_mk_worst, speedup(iso_mk, r.makespan));
  }

  print_header("Fig. 10: normalized speedup over isolated (80 jobs, 100 machines)");
  TextTable table({"system", "avg JCT speedup", "makespan speedup", "notes"});
  table.add_row({"Isolated", "1.000", "1.000", "baseline"});
  table.add_row({"Naively co-located",
                 TextTable::format_double(naive_jct_sum / naive_runs.size()),
                 TextTable::format_double(naive_mk_sum / naive_runs.size()),
                 "avg of 5 groupings"});
  table.add_row({"  naive best",
                 TextTable::format_double(naive_jct_best),
                 TextTable::format_double(naive_mk_best), ""});
  table.add_row({"  naive worst",
                 TextTable::format_double(naive_jct_worst),
                 TextTable::format_double(naive_mk_worst), ""});
  table.add_row({"Harmony",
                 TextTable::format_double(speedup(iso_jct, harmony_summary.mean_jct())),
                 TextTable::format_double(speedup(iso_mk, harmony_summary.makespan)),
                 "paper: 2.11 / 1.60"});
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nAbsolute numbers (hours):\n");
  std::printf("  isolated: JCT %.2f  makespan %.2f (util cpu %.1f%% net %.1f%%)\n",
              iso_jct / 3600.0, iso_mk / 3600.0, 100.0 * isolated.avg_util.cpu,
              100.0 * isolated.avg_util.net);
  std::printf("  harmony : JCT %.2f  makespan %.2f (util cpu %.1f%% net %.1f%%)\n",
              harmony_summary.mean_jct() / 3600.0, harmony_summary.makespan / 3600.0,
              100.0 * harmony_summary.avg_util.cpu, 100.0 * harmony_summary.avg_util.net);
  std::printf("\nHarmony concurrency: %.1f jobs in %.1f groups on average "
              "(paper: 27.2 jobs, 6.7 groups)\n",
              harmony_sim.avg_concurrent_jobs(), harmony_sim.avg_concurrent_groups());
  // Overhead normalized by the cluster's attention: total per-job pause time
  // relative to (makespan x average concurrently-running jobs).
  const double cluster_job_time =
      harmony_summary.makespan * std::max(1.0, harmony_sim.avg_concurrent_jobs());
  std::printf("Regrouping: %zu events, %.1f min total migration pause "
              "(%.2f%% of cluster job-time; paper: <2%% of makespan)\n",
              harmony_summary.regroup_events, harmony_summary.migration_overhead_sec / 60.0,
              100.0 * harmony_summary.migration_overhead_sec / cluster_job_time);
  std::printf("GC time fraction: harmony %.2f%%, OOM events: %zu\n",
              100.0 * harmony_summary.gc_time_fraction, harmony_summary.oom_events);

  if (!report_dir.empty()) {
    if (!write_run_report(harmony_summary, report_dir)) {
      std::fprintf(stderr, "cannot write run report to %s\n", report_dir.c_str());
      return 1;
    }
    std::printf("\nrun report -> %s/report.md\n", report_dir.c_str());
  }
  return 0;
}
