// Fig. 11: CPU and network utilization over time for Harmony and the
// isolated baseline during the 80-job run, plus the paper's summary numbers
// (Harmony 93.2% CPU / 83.1% network; 1.65x the isolated utilization).
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

namespace {

void report(const char* label, exp::ClusterSim& sim, const exp::RunSummary& summary) {
  std::printf("\n-- %s (makespan %.1f h) --\n", label, summary.makespan / 3600.0);
  std::printf("time(min)\tcpu\tnet\n");
  const auto& tl = sim.timeline();
  const std::size_t stride = std::max<std::size_t>(1, tl.times().size() / 24);
  for (std::size_t i = 0; i < tl.times().size(); i += stride)
    std::printf("%.0f\t%.2f\t%.2f\n", tl.times()[i] / 60.0, tl.values()[i].cpu,
                tl.values()[i].net);
  // "Busy-period" average: until 90% of jobs have finished (the tail where
  // few jobs remain dilutes the mean, visible in the paper's plot as well).
  std::vector<double> finishes;
  for (const auto& j : summary.jobs) finishes.push_back(j.finish_time);
  std::sort(finishes.begin(), finishes.end());
  const double busy_horizon = finishes[finishes.size() * 9 / 10];
  const auto busy = tl.average_until(busy_horizon);
  std::printf("avg (to makespan): cpu %.1f%% net %.1f%%; busy-period avg: cpu %.1f%% net %.1f%%\n",
              100.0 * summary.avg_util.cpu, 100.0 * summary.avg_util.net, 100.0 * busy.cpu,
              100.0 * busy.net);
}

}  // namespace

int main() {
  const auto workload = exp::make_catalog();
  const auto arrivals = exp::batch_arrivals(workload.size());

  auto iso_cfg = exp::ClusterSimConfig::isolated();
  iso_cfg.machines = 100;
  exp::ClusterSim iso(iso_cfg, workload, arrivals);
  const auto iso_summary = iso.run();

  auto h_cfg = exp::ClusterSimConfig::harmony();
  h_cfg.machines = 100;
  exp::ClusterSim harmony(h_cfg, workload, arrivals);
  const auto h_summary = harmony.run();

  bench::print_header("Fig. 11: utilization timeline, 80 jobs on 100 machines");
  report("Isolated", iso, iso_summary);
  report("Harmony", harmony, h_summary);

  const double cpu_gain = h_summary.avg_util.cpu / std::max(iso_summary.avg_util.cpu, 1e-9);
  std::printf("\nHarmony/isolated CPU utilization ratio: %.2fx (paper: ~1.65x)\n", cpu_gain);
  return 0;
}
