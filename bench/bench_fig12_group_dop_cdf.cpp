// Fig. 12: distribution of group DoPs and of jobs-per-group for the base
// workload and for the computation-/communication-intensive subsets (§V-D).
//
// Paper shape: the computation-intensive workload uses larger DoPs (fewer,
// bigger groups); jobs-per-group stays fairly stable across workloads.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

namespace {

void run_case(const char* label, std::vector<exp::WorkloadSpec> workload) {
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 100;
  exp::ClusterSim sim(config, workload, exp::batch_arrivals(workload.size()));
  sim.run();

  const auto& dops = sim.group_dop_samples();
  const auto& sizes = sim.group_size_samples();
  std::printf("\n-- %s --\n", label);
  std::printf("group DoP:      p10 %.0f  median %.0f  p90 %.0f  mean %.1f\n", dops.quantile(0.1),
              dops.quantile(0.5), dops.quantile(0.9), dops.mean());
  std::printf("jobs per group: p10 %.0f  median %.0f  p90 %.0f  mean %.1f\n",
              sizes.quantile(0.1), sizes.quantile(0.5), sizes.quantile(0.9), sizes.mean());
  std::printf("DoP CDF:\n%s", dops.cdf_table(8).c_str());
}

}  // namespace

int main() {
  const auto base = exp::make_catalog();
  bench::print_header("Fig. 12: group DoP and group size distributions");
  run_case("Base workload (80 jobs)", base);
  run_case("Comp-intensive (top-60 by comp ratio)", exp::comp_intensive_subset(base));
  run_case("Comm-intensive (bottom-60 by comp ratio)", exp::comm_intensive_subset(base));
  return 0;
}
