// Fig. 13: (a) sensitivity of Harmony's speedup to performance-model error —
// injected relative error on the profiles the scheduler sees; (b) measured
// prediction error of the model itself (group iteration time and U).
//
// Paper shape: speedup stays >90% of maximum below ~7.5% error and degrades
// quickly beyond; the model's own error stays below ~5%.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

int main() {
  auto workload = exp::make_catalog();
  const auto arrivals = exp::batch_arrivals(workload.size());

  // 13a is a model-level simulation like the paper's (§V-E: "we simulate the
  // execution with different error levels"): Algorithm 1 decides with
  // error-perturbed profiles, and the decision's real quality is evaluated
  // with the true profiles. Throughput is proportional to achieved CPU
  // utilization, so the achieved-U ratio is the speedup ratio.
  bench::print_header("Fig. 13a: decision quality vs injected model error");
  core::Scheduler scheduler;
  std::vector<core::SchedJob> truth;
  for (const auto& s : workload) truth.push_back(s.sched_job());

  auto achieved_util = [&](double err, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<core::SchedJob> noisy = truth;
    for (auto& j : noisy) {
      j.profile.cpu_work *= 1.0 + rng.uniform(-err, err);
      j.profile.t_net *= 1.0 + rng.uniform(-err, err);
    }
    const auto decision = scheduler.schedule(noisy, 100);
    // Re-evaluate the chosen grouping with the true profiles.
    std::vector<core::GroupShape> shapes;
    for (const auto& plan : decision.groups) {
      core::GroupShape shape;
      shape.machines = plan.machines;
      for (auto id : plan.jobs) shape.jobs.push_back(truth[id].profile);
      shapes.push_back(std::move(shape));
    }
    return core::PerfModel::cluster_utilization(shapes).cpu;
  };

  TextTable table({"error (%)", "achieved CPU util", "normalized speedup"});
  const double base = achieved_util(0.0, 1);
  for (double err : {0.0, 0.025, 0.05, 0.075, 0.10, 0.15, 0.20}) {
    double sum = 0.0;
    const int seeds = 5;
    for (int s = 1; s <= seeds; ++s) sum += achieved_util(err, static_cast<std::uint64_t>(s));
    const double u = sum / seeds;
    table.add_numeric_row(TextTable::format_double(100.0 * err, 1), {u, u / base});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("(paper: >90%% of full speedup below ~7.5%% error, rapid degradation beyond)\n");

  bench::print_header("Fig. 13b: prediction error of the performance model");
  auto cfg = exp::ClusterSimConfig::harmony();
  cfg.machines = 100;
  exp::ClusterSim sim(cfg, workload, arrivals);
  sim.run();
  const auto& errs = sim.prediction_errors();
  std::printf("group iteration time: mean %.1f%%  p50 %.1f%%  p95 %.1f%%  (n=%zu)\n",
              100.0 * errs.group_iteration_rel_error.mean(),
              100.0 * errs.group_iteration_rel_error.quantile(0.5),
              100.0 * errs.group_iteration_rel_error.quantile(0.95),
              errs.group_iteration_rel_error.size());
  std::printf("cluster utilization U: mean %.1f%%  p50 %.1f%%  p95 %.1f%%  (n=%zu)\n",
              100.0 * errs.utilization_rel_error.mean(),
              100.0 * errs.utilization_rel_error.quantile(0.5),
              100.0 * errs.utilization_rel_error.quantile(0.95),
              errs.utilization_rel_error.size());
  std::printf("(paper: both below ~5%%)\n");
  return 0;
}
