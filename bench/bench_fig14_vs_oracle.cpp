// Fig. 14 + §V-F: Harmony's greedy decision vs the exhaustive-search Oracle.
// The oracle is exponential (Bell numbers), so the head-to-head uses a
// 10-job pool; scheduling wall times for both are reported alongside.
//
// Paper shape: Harmony within ~2% of the oracle on utilization/JCT/makespan,
// while scheduling orders of magnitude faster.
#include <chrono>
#include <cstdio>

#include "baselines/oracle.h"
#include "bench_util.h"

using namespace harmony;

int main() {
  const auto catalog = exp::make_catalog();
  // A diverse 10-job pool: every 8th job spans all four families.
  std::vector<exp::WorkloadSpec> workload;
  for (std::size_t i = 0; i < catalog.size() && workload.size() < 10; i += 8)
    workload.push_back(catalog[i]);
  std::vector<core::SchedJob> pool;
  for (std::size_t i = 0; i < workload.size(); ++i)
    pool.push_back(core::SchedJob{static_cast<core::JobId>(i), workload[i].profile()});
  const std::size_t machines = 40;

  core::Scheduler harmony;
  baselines::OracleScheduler oracle;

  const auto t0 = std::chrono::steady_clock::now();
  const auto h = harmony.schedule(pool, machines);
  const double t_harmony =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto t1 = std::chrono::steady_clock::now();
  const auto o = oracle.schedule(pool, machines);
  const double t_oracle =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  bench::print_header("Fig. 14: Harmony vs exhaustive search (10 jobs, 40 machines)");
  TextTable table({"scheduler", "pred. CPU util", "pred. net util", "score", "wall time (ms)"});
  table.add_numeric_row("Oracle", {o.predicted_util.cpu, o.predicted_util.net, o.score,
                                   1000.0 * t_oracle});
  table.add_numeric_row("Harmony", {h.predicted_util.cpu, h.predicted_util.net, h.score,
                                    1000.0 * t_harmony});
  std::fputs(table.render().c_str(), stdout);
  std::printf("score gap: %.2f%% (paper: ~2%%); oracle examined %llu partitions\n",
              100.0 * (1.0 - h.score / o.score),
              static_cast<unsigned long long>(oracle.partitions_examined()));

  // Scaling comparison (§V-F): Harmony's scheduling time grows mildly with
  // the pool; the oracle explodes with Bell numbers.
  bench::print_header("§V-F: scheduling wall time vs pool size");
  TextTable scale({"jobs", "Harmony (ms)", "Oracle (ms)", "Oracle partitions"});
  for (std::size_t n : {6u, 8u, 10u, 11u}) {
    std::vector<core::SchedJob> sub(pool.begin(),
                                    pool.begin() + static_cast<std::ptrdiff_t>(
                                                       std::min(n, pool.size())));
    while (sub.size() < n) {
      auto extra = sub[sub.size() % pool.size()];
      extra.id = static_cast<core::JobId>(sub.size());
      sub.push_back(extra);
    }
    const auto h0 = std::chrono::steady_clock::now();
    auto hd = harmony.schedule(sub, machines);
    const double ht =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - h0).count();
    const auto o0 = std::chrono::steady_clock::now();
    auto od = oracle.schedule(sub, machines);
    const double ot =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - o0).count();
    volatile double sink = hd.score + od.score;
    (void)sink;
    scale.add_row({std::to_string(n), TextTable::format_double(1000.0 * ht),
                   TextTable::format_double(1000.0 * ot),
                   std::to_string(oracle.partitions_examined())});
  }
  std::fputs(scale.render().c_str(), stdout);
  std::printf("paper: Harmony 1.2 s for 80 jobs/100 machines vs 13.8 min exhaustive; see "
              "bench_sched_scalability for the large-scale sweep\n");
  return 0;
}
