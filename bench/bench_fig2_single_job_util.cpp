// Fig. 2: single PS jobs fail to reach high resource utilization, and the
// CPU/network split varies across workloads. One MLR job per hyper-parameter
// family (16K / 8K classes) and one LDA job per dataset (PubMed / NYTimes)
// run alone on 16 machines; measured utilization comes from the simulated
// subtask pipeline, exactly as the harness measures every other experiment.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

int main() {
  const auto catalog = exp::make_catalog();
  struct Pick {
    const char* app;
    const char* dataset;
  };
  const Pick picks[] = {{"MLR", "Synthetic16K"},
                        {"MLR", "Synthetic8K"},
                        {"LDA", "PubMed"},
                        {"LDA", "NYTimes"}};

  bench::print_header("Fig. 2: single-job utilization on 16 machines");
  TextTable table({"workload", "CPU util (%)", "Network util (%)", "sum"});
  for (const Pick& pick : picks) {
    // The family member with the median computation ratio — representative
    // of that (app, dataset) pair rather than a band edge.
    std::vector<const exp::WorkloadSpec*> members;
    for (const auto& s : catalog)
      if (s.app == pick.app && s.dataset == pick.dataset) members.push_back(&s);
    if (members.empty()) continue;
    std::sort(members.begin(), members.end(), [](const auto* a, const auto* b) {
      return a->profile().comp_ratio(16) < b->profile().comp_ratio(16);
    });
    const exp::WorkloadSpec* spec = members[members.size() / 2];

    exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
    config.grouping = exp::GroupingPolicy::kOneGroup;
    config.machines = 16;
    config.spill_enabled = false;  // a single job fits comfortably
    std::vector<exp::WorkloadSpec> workload{*spec};
    workload[0].iterations = 40;
    exp::ClusterSim sim(config, workload, exp::batch_arrivals(1));
    const auto summary = sim.run();
    table.add_row({std::string(pick.app) + "/" + pick.dataset,
                   TextTable::format_double(100.0 * summary.avg_util.cpu, 1),
                   TextTable::format_double(100.0 * summary.avg_util.net, 1),
                   TextTable::format_double(
                       100.0 * (summary.avg_util.cpu + summary.avg_util.net), 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper shape: neither resource near 100%%; ratios vary by workload\n");
  return 0;
}
