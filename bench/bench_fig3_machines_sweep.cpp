// Fig. 3: one MLR job on 4 / 8 / 16 / 32 machines — (a) CPU utilization falls
// as DoP rises (communication share grows); (b) iteration time falls (COMP
// shrinks with Eq. 2) while PULL/PUSH stay flat.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

int main() {
  const auto catalog = exp::make_catalog();
  // The most computation-heavy MLR job: the sweep then shows the full
  // high-to-low CPU-utilization arc the paper's Fig. 3 plots.
  const exp::WorkloadSpec* spec = nullptr;
  for (const auto& s : catalog) {
    if (s.app != "MLR") continue;
    if (spec == nullptr || s.profile().comp_ratio(16) > spec->profile().comp_ratio(16))
      spec = &s;
  }

  bench::print_header("Fig. 3: one MLR job vs number of machines");
  TextTable table({"machines", "CPU util (%)", "Net util (%)", "iteration (s)", "COMP (s)",
                   "PULL+PUSH (s)"});
  for (std::size_t machines : {4u, 8u, 16u, 32u}) {
    exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
    config.grouping = exp::GroupingPolicy::kOneGroup;
    config.machines = machines;
    config.spill_enabled = true;  // small DoP needs spilling to fit at all
    std::vector<exp::WorkloadSpec> workload{*spec};
    workload[0].iterations = 40;
    exp::ClusterSim sim(config, workload, exp::batch_arrivals(1));
    const auto summary = sim.run();
    const double itr = sim.iteration_wall_samples().mean();
    const auto profile = workload[0].profile();
    table.add_row({std::to_string(machines),
                   TextTable::format_double(100.0 * summary.avg_util.cpu, 1),
                   TextTable::format_double(100.0 * summary.avg_util.net, 1),
                   TextTable::format_double(itr, 1),
                   TextTable::format_double(profile.t_cpu(machines), 1),
                   TextTable::format_double(profile.t_net, 1)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper shape: iteration time falls with machines; CPU util falls as the "
              "communication share grows\n");
  return 0;
}
