// Fig. 4: naive co-location fails to raise utilization. NMF, Lasso and MLR
// run alone and in uncoordinated pairs on 16 machines; the triple overflows
// memory (OOM). Contended execution models the interference of Fig. 5a.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

namespace {

const exp::WorkloadSpec* find(const std::vector<exp::WorkloadSpec>& catalog,
                              const std::string& app, const std::string& ds) {
  for (const auto& s : catalog)
    if (s.app == app && s.dataset == ds) return &s;
  return nullptr;
}

}  // namespace

int main() {
  const auto catalog = exp::make_catalog();
  const auto* nmf = find(catalog, "NMF", "Netflix64x");
  const auto* lasso = find(catalog, "Lasso", "SyntheticA");
  const auto* mlr = find(catalog, "MLR", "Synthetic16K");

  struct Case {
    std::string label;
    std::vector<exp::WorkloadSpec> jobs;
  };
  std::vector<Case> cases = {
      {"NMF", {*nmf}},
      {"Lasso", {*lasso}},
      {"MLR", {*mlr}},
      {"NMF+Lasso", {*nmf, *lasso}},
      {"NMF+MLR", {*nmf, *mlr}},
      {"NMF+MLR+Lasso", {*nmf, *mlr, *lasso}},
  };

  bench::print_header("Fig. 4: naive co-location on 16 machines");
  TextTable table({"workload", "CPU util (%)", "Net util (%)", "OOM?"});
  cluster::MachineSpec spec;
  cluster::MemoryModelParams mem_params;
  for (auto& c : cases) {
    const bool ooms = exp::co_location_ooms(c.jobs, 16, spec, mem_params);
    if (ooms) {
      table.add_row({c.label, "-", "-", "OUT OF MEMORY"});
      continue;
    }
    exp::ClusterSimConfig config = exp::ClusterSimConfig::naive(0);
    config.grouping = exp::GroupingPolicy::kOneGroup;  // force this exact set
    config.exec = exp::ExecModel::kContended;
    config.machines = 16;
    for (auto& j : c.jobs) j.iterations = 40;
    exp::ClusterSim sim(config, c.jobs, exp::batch_arrivals(c.jobs.size()));
    const auto summary = sim.run();
    table.add_row({c.label, TextTable::format_double(100.0 * summary.avg_util.cpu, 1),
                   TextTable::format_double(100.0 * summary.avg_util.net, 1), "no"});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nPaper shape: pairs average out near ~50%% per resource (no coordination);\n"
      "the NMF+MLR+Lasso triple exceeds the 32 GB machines -> OOM\n");
  return 0;
}
