// Fig. 9: cumulative distributions of (a) iteration time and (b) computation
// ratio across the 80-job workload at DoP 16.
//
// Paper shape: iteration times spread over ~1-20 minutes; comp ratios spread
// widely between ~0.1 and ~0.9.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace harmony;
  const auto catalog = exp::make_catalog();

  SampleSet itr_minutes;
  SampleSet comp_ratio;
  for (const auto& s : catalog) {
    itr_minutes.add(s.profile().t_itr(16) / 60.0);
    comp_ratio.add(s.profile().comp_ratio(16));
  }

  bench::print_header("Fig. 9a: CDF of iteration time (minutes, DoP 16)");
  std::fputs(itr_minutes.cdf_table(15).c_str(), stdout);
  std::printf("min %.1f  median %.1f  max %.1f minutes\n", itr_minutes.min(),
              itr_minutes.quantile(0.5), itr_minutes.max());

  bench::print_header("Fig. 9b: CDF of computation time / iteration time");
  std::fputs(comp_ratio.cdf_table(15).c_str(), stdout);
  std::printf("min %.2f  median %.2f  max %.2f\n", comp_ratio.min(),
              comp_ratio.quantile(0.5), comp_ratio.max());
  return 0;
}
