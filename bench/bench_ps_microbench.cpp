// Micro-benchmarks of the real PS runtime (google-benchmark): serialization
// throughput, shard push/pull, one full worker iteration, and subtask
// executor dispatch overhead. These quantify the constants the paper's
// design moves around (e.g. "(de)serialization outside of COMM subtasks").
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"
#include "harmony/executor.h"
#include "ml/mlr.h"
#include "ps/allreduce.h"
#include "ps/ps_system.h"
#include "ps/serialization.h"

using namespace harmony;

namespace {

void BM_SerializeDoubles(benchmark::State& state) {
  std::vector<double> values(static_cast<std::size_t>(state.range(0)), 3.14);
  for (auto _ : state) {
    ps::ByteWriter w;
    w.put_doubles(values);
    benchmark::DoNotOptimize(w.buffer());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * static_cast<std::int64_t>(sizeof(double)));
}

void BM_DeserializeDoubles(benchmark::State& state) {
  std::vector<double> values(static_cast<std::size_t>(state.range(0)), 3.14);
  ps::ByteWriter w;
  w.put_doubles(values);
  const auto buf = w.take();
  std::vector<double> out(values.size());
  for (auto _ : state) {
    ps::ByteReader r(buf);
    r.get_doubles_into(out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0) * static_cast<std::int64_t>(sizeof(double)));
}

void BM_ShardPushPull(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  ps::ServerShard shard(ps::Range{0, dim},
                        [](std::span<double> p, std::span<const double> u) {
                          for (std::size_t i = 0; i < p.size(); ++i) p[i] += u[i];
                        });
  ps::ByteWriter w;
  w.put_u64(0);
  w.put_doubles(std::vector<double>(dim, 0.001));
  const auto push_payload = w.take();
  for (auto _ : state) {
    auto pulled = shard.serialize_params();
    benchmark::DoNotOptimize(pulled);
    shard.apply_push(push_payload);
  }
}

void BM_WorkerIteration(benchmark::State& state) {
  auto data =
      std::make_shared<ml::DenseDataset>(ml::make_classification(256, 16, 4, 0.1, 5));
  auto app = std::make_shared<ml::MlrApp>(data);
  ps::PsSystem system(app, 2);
  system.init_model();
  for (auto _ : state) {
    system.worker(0).run_iteration();
    system.worker(1).run_iteration();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
}

void BM_ExecutorDispatch(benchmark::State& state) {
  core::SubtaskExecutor exec;
  for (auto _ : state) {
    std::atomic<int> done{0};
    const int n = 64;
    for (int i = 0; i < n; ++i) {
      core::Subtask st;
      st.job = 0;
      st.type = core::SubtaskType::kComp;
      st.body = [&done] { done.fetch_add(1, std::memory_order_relaxed); };
      exec.submit(std::move(st));
    }
    exec.drain();
    benchmark::DoNotOptimize(done.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}

// §VI: the alternative communication architecture. One synchronous training
// iteration via PS push/pull vs via ring all-reduce, same app and machines.
void BM_PsIteration(benchmark::State& state) {
  auto data =
      std::make_shared<ml::DenseDataset>(ml::make_classification(512, 32, 8, 0.1, 5));
  auto app = std::make_shared<ml::MlrApp>(data);
  ps::PsSystem system(app, 4);
  system.init_model();
  for (auto _ : state) system.run_iterations_sequential(1);
  state.SetLabel("PS push/pull, 4 workers");
}

void BM_AllReduceIteration(benchmark::State& state) {
  auto data =
      std::make_shared<ml::DenseDataset>(ml::make_classification(512, 32, 8, 0.1, 5));
  auto app = std::make_shared<ml::MlrApp>(data);
  ps::AllReduceSystem system(app, 4);
  system.init_model();
  for (auto _ : state) system.run_iterations_threaded(1);
  state.SetLabel("ring all-reduce, 4 workers");
}

}  // namespace

BENCHMARK(BM_SerializeDoubles)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_DeserializeDoubles)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_ShardPushPull)->Arg(1 << 12)->Arg(1 << 16);
BENCHMARK(BM_WorkerIteration);
BENCHMARK(BM_ExecutorDispatch);
BENCHMARK(BM_PsIteration)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_AllReduceIteration)->Unit(benchmark::kMicrosecond);

HARMONY_BENCHMARK_JSON_MAIN("BENCH_ps_microbench.json");
