// §V-G dynamic data reloading micro-benchmark: 8 jobs (4 apps x 2 datasets)
// on 32 machines. Fixed disk ratios α are swept against Harmony's per-job
// hill-climbing α.
//
// Paper shape: fixed α is U-shaped (too high -> reload blocking; too low ->
// GC explosion) with the best manual value at α = 0.3 (52.9 s); dynamic
// per-job α beats the best manual value by ~16% (44.3 s).
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

namespace {

std::vector<exp::WorkloadSpec> eight_jobs() {
  const auto catalog = exp::make_catalog();
  // One job per (app, dataset) pair: exactly the paper's 4 apps x 2 datasets.
  std::vector<exp::WorkloadSpec> out;
  std::vector<std::string> seen;
  for (const auto& s : catalog) {
    const std::string key = s.app + "/" + s.dataset;
    if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
    seen.push_back(key);
    out.push_back(s);
    // §V-G runs with ~1-minute group iterations (best fixed point: 52.9 s),
    // i.e. hyper-parameters where compute per byte of input is low and the
    // reload/GC trade-off actually binds. Scale the per-iteration costs into
    // that regime; memory footprints stay untouched.
    out.back().cpu_work /= 8.0;
    out.back().t_net /= 8.0;
    out.back().iterations = 80;
  }
  return out;
}

double run_with(std::optional<double> fixed_alpha, exp::AlphaStats* stats = nullptr) {
  auto config = exp::ClusterSimConfig::harmony();
  config.grouping = exp::GroupingPolicy::kOneGroup;  // the 8 jobs share the pool
  config.machines = 32;
  config.fixed_alpha = fixed_alpha;
  config.alpha_update_every = 1;  // micro-benchmark: observe every iteration
  auto jobs = eight_jobs();
  exp::ClusterSim sim(config, jobs, exp::batch_arrivals(jobs.size()));
  sim.run();
  if (stats != nullptr) *stats = sim.alpha_stats();
  // Steady-state mean: skip the first half (the hill climb's settling phase;
  // fixed-α runs have no transient, so this is the conservative comparison).
  const auto& samples = sim.iteration_wall_samples().samples();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = samples.size() / 2; i < samples.size(); ++i) {
    sum += samples[i];
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  bench::print_header("Dynamic data reloading (§V-G): 8 jobs on 32 machines");
  TextTable table({"policy", "mean iteration time (s)"});
  double best_fixed = 1e300;
  double best_alpha = 0.0;
  for (double alpha : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0}) {
    const double t = run_with(alpha);
    if (t < best_fixed) {
      best_fixed = t;
      best_alpha = alpha;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "fixed alpha = %.1f", alpha);
    table.add_numeric_row(label, {t}, 1);
  }
  exp::AlphaStats stats;
  const double dynamic = run_with(std::nullopt, &stats);
  table.add_numeric_row("dynamic (hill climbing)", {dynamic}, 1);
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nbest fixed alpha: %.1f at %.1f s; dynamic: %.1f s (%.1f%% %s)\n", best_alpha,
              best_fixed, dynamic, 100.0 * std::abs(best_fixed - dynamic) / best_fixed,
              dynamic <= best_fixed ? "faster" : "slower");
  std::printf("dynamic alpha stats: mean %.2f  min %.2f  max %.2f  jobs at alpha=1: %zu\n",
              stats.mean, stats.min, stats.max, stats.jobs_at_one);
  std::printf("paper: best fixed 52.9 s at alpha=0.3; dynamic 44.3 s (16.3%% faster); "
              "alpha mean 0.34, min 0.11, max 1\n");
  return 0;
}
