// §V-F scheduling-algorithm scalability (google-benchmark): Harmony's
// Algorithm 1 from 80 jobs/100 machines up to 8K jobs/10K machines, against
// the exponential exhaustive search at small sizes.
//
// Paper: Harmony schedules 80 jobs on 100 machines in ~1.2 s and 8K jobs on
// 10K machines within 5 s; the oracle takes minutes-to-hours.
#include <benchmark/benchmark.h>

#include "baselines/oracle.h"
#include "bench_util.h"
#include "common/rng.h"
#include "harmony/scheduler.h"

using namespace harmony;

namespace {

std::vector<core::SchedJob> synthetic_pool(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<core::SchedJob> jobs;
  jobs.reserve(n);
  for (core::JobId i = 0; i < n; ++i)
    jobs.push_back(core::SchedJob{
        i, core::JobProfile{rng.uniform(400, 8000), rng.uniform(20, 400)}});
  return jobs;
}

void BM_HarmonySchedule(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto machines = static_cast<std::size_t>(state.range(1));
  const auto pool = synthetic_pool(jobs, 7);
  core::Scheduler scheduler;
  for (auto _ : state) {
    auto decision = scheduler.schedule(pool, machines);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel(std::to_string(jobs) + " jobs / " + std::to_string(machines) + " machines");
}

void BM_OracleSchedule(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto pool = synthetic_pool(jobs, 7);
  baselines::OracleScheduler oracle;
  for (auto _ : state) {
    auto decision = oracle.schedule(pool, 32);
    benchmark::DoNotOptimize(decision);
  }
  state.SetLabel(std::to_string(jobs) + " jobs (exhaustive)");
}

}  // namespace

BENCHMARK(BM_HarmonySchedule)
    ->Args({80, 100})       // the paper's main setting
    ->Args({500, 1000})
    ->Args({2000, 4000})
    ->Args({8000, 10000})   // the paper's datacenter-scale emulation
    ->Args({20000, 20000})  // beyond the paper: stresses the incremental paths
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_OracleSchedule)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(11)
    ->Unit(benchmark::kMillisecond);

HARMONY_BENCHMARK_JSON_MAIN("BENCH_sched_scalability.json");
