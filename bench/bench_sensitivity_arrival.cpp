// §V-D job-arrival-rate sensitivity: Poisson arrivals with mean inter-arrival
// 0..8 minutes, plus Google-trace-shaped (bursty) arrivals.
//
// Paper shape: performance dips only slightly as arrivals spread out
// (2.11x -> 2.01x JCT; 1.60x -> 1.56x makespan at 8 min), and trace-shaped
// arrivals land in between (2.02x / 1.57x).
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

int main() {
  const auto workload = exp::make_catalog();
  const std::size_t machines = 100;

  bench::print_header("Arrival-rate sensitivity (§V-D)");
  TextTable table({"arrival process", "JCT speedup", "makespan speedup"});

  auto run_pair = [&](const char* label, const std::vector<double>& arrivals) {
    auto iso_cfg = exp::ClusterSimConfig::isolated();
    iso_cfg.machines = machines;
    const auto iso = bench::run(iso_cfg, workload, arrivals);
    auto h_cfg = exp::ClusterSimConfig::harmony();
    h_cfg.machines = machines;
    const auto h = bench::run(h_cfg, workload, arrivals);
    table.add_numeric_row(label, {bench::speedup(iso.mean_jct, h.mean_jct),
                                  bench::speedup(iso.makespan, h.makespan)});
  };

  for (double minutes : {0.0, 2.0, 4.0, 8.0}) {
    const auto arrivals =
        exp::poisson_arrivals(workload.size(), minutes * 60.0, 42);
    char label[64];
    std::snprintf(label, sizeof(label), "Poisson, mean %.0f min", minutes);
    run_pair(label, arrivals);
  }

  // Google-trace-shaped arrivals, averaged over a few draws.
  double jct_sum = 0.0, mk_sum = 0.0;
  const int draws = 3;
  for (int d = 0; d < draws; ++d) {
    const auto arrivals = exp::trace_arrivals(workload.size(), 120.0, 100 + d);
    auto iso_cfg = exp::ClusterSimConfig::isolated();
    iso_cfg.machines = machines;
    const auto iso = bench::run(iso_cfg, workload, arrivals);
    auto h_cfg = exp::ClusterSimConfig::harmony();
    h_cfg.machines = machines;
    const auto h = bench::run(h_cfg, workload, arrivals);
    jct_sum += bench::speedup(iso.mean_jct, h.mean_jct);
    mk_sum += bench::speedup(iso.makespan, h.makespan);
  }
  table.add_numeric_row("Google-trace-shaped (avg of 3)", {jct_sum / draws, mk_sum / draws});

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper shape: only mild degradation as arrivals spread out\n");
  return 0;
}
