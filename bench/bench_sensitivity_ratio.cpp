// §V-D workload-ratio sensitivity: the 60 most computation-heavy and the 60
// most communication-heavy jobs, each run as their own workload.
//
// Paper shape: makespan speedups stay similar (1.58x vs 1.57x) but the
// computation-intensive workload gains more JCT (2.31x vs 1.83x) because
// Harmony picks larger DoPs (fewer concurrent jobs) for it.
#include <cstdio>

#include "bench_util.h"

using namespace harmony;

int main() {
  const auto base = exp::make_catalog();
  const std::size_t machines = 100;

  bench::print_header("Workload-ratio sensitivity (§V-D)");
  TextTable table({"workload", "JCT speedup", "makespan speedup", "avg group DoP",
                   "avg jobs/group", "CPU util (%)", "Net util (%)"});

  auto run_case = [&](const char* label, const std::vector<exp::WorkloadSpec>& jobs) {
    const auto arrivals = exp::batch_arrivals(jobs.size());
    auto iso_cfg = exp::ClusterSimConfig::isolated();
    iso_cfg.machines = machines;
    const auto iso = bench::run(iso_cfg, jobs, arrivals);

    auto h_cfg = exp::ClusterSimConfig::harmony();
    h_cfg.machines = machines;
    exp::ClusterSim sim(h_cfg, jobs, arrivals);
    const auto h = sim.run();

    table.add_numeric_row(
        label, {bench::speedup(iso.mean_jct, h.mean_jct()),
                bench::speedup(iso.makespan, h.makespan), sim.group_dop_samples().mean(),
                sim.group_size_samples().mean(), 100.0 * h.avg_util.cpu,
                100.0 * h.avg_util.net});
  };

  run_case("base (80 jobs)", base);
  run_case("comp-intensive (60)", exp::comp_intensive_subset(base));
  run_case("comm-intensive (60)", exp::comm_intensive_subset(base));
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper shape: comp-intensive gains more JCT via larger DoPs; makespan "
              "speedups similar; utilization high for both\n");
  return 0;
}
