// End-to-end simulator throughput (google-benchmark): full ClusterSim runs
// under the Harmony policy at increasing scale, reporting DES throughput as
// events/sec and simulated-seconds per wall-second. This is the headline
// number for the DES-core work (calendar queue + event arena + SoA job
// state): the 100k-machine row is the configuration the overhaul targets.
//
// Arrivals are poisson: batch arrivals funnel everything through the
// scheduler at t=0 and measure scheduling, not the event loop.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"

using namespace harmony;

namespace {

// The 80-job catalog tiled out to n jobs, iteration counts trimmed so the
// large sweeps stay minutes-not-hours at the 100k scale.
std::vector<exp::WorkloadSpec> tiled_workload(std::size_t n) {
  auto catalog = exp::make_catalog();
  std::vector<exp::WorkloadSpec> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto spec = catalog[i % catalog.size()];
    spec.id = static_cast<core::JobId>(i);
    spec.iterations = std::min<std::size_t>(spec.iterations, 30);
    out.push_back(spec);
  }
  return out;
}

void BM_ClusterSimThroughput(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? sim::EventQueueKind::kBinaryHeap
                                        : sim::EventQueueKind::kCalendar;
  const auto jobs = static_cast<std::size_t>(state.range(1));
  const auto machines = static_cast<std::size_t>(state.range(2));
  const auto workload = tiled_workload(jobs);
  const auto arrivals = exp::poisson_arrivals(jobs, 2.0, 5);
  std::uint64_t events = 0;
  double sim_seconds = 0.0;
  for (auto _ : state) {
    exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
    config.machines = machines;
    config.event_queue = kind;
    exp::ClusterSim sim(config, workload, arrivals);
    auto summary = sim.run();
    benchmark::DoNotOptimize(summary.makespan);
    events += sim.events_fired();
    sim_seconds += sim.sim_now();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_sec_per_wall"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.SetLabel((kind == sim::EventQueueKind::kCalendar ? "calendar" : "heap") +
                 std::string(" / ") + std::to_string(jobs) + " jobs / " +
                 std::to_string(machines) + " machines");
}

}  // namespace

BENCHMARK(BM_ClusterSimThroughput)
    ->Args({0, 1000, 100})
    ->Args({1, 1000, 100})
    ->Args({0, 10000, 1000})
    ->Args({1, 10000, 1000})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ClusterSimThroughput)  // the 100k-machine target, one pass each
    ->Args({0, 100000, 10000})
    ->Args({1, 100000, 10000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

HARMONY_BENCHMARK_JSON_MAIN("BENCH_sim_throughput.json");
