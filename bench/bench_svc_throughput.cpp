// Online-service scheduling-plane throughput (google-benchmark): full
// svc::Service runs — open-loop poisson arrivals, admission control,
// incremental join/leave repair with drift-triggered full repacks — at
// increasing cluster scale, reporting scheduling events (joins + leaves +
// rejections + full reschedules) per wall-second. The 10k-machine row is the
// headline: the service must sustain >= 100k scheduling events/sec there
// (tools/bench_compare.py gates regressions against bench/results/
// HISTORY.json).
//
// The arrival rate deliberately over-subscribes the cluster so every event
// class stays hot: steady joins/leaves, a full admission queue shedding load,
// and periodic drift escalations.
#include <benchmark/benchmark.h>

#include <string>

#include "bench_util.h"
#include "exp/workload.h"
#include "obs/slo.h"
#include "svc/service.h"

using namespace harmony;

namespace {

void BM_ServiceThroughput(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const double arrival_rate = static_cast<double>(state.range(1));
  const auto catalog = exp::make_catalog();
  std::uint64_t events = 0;
  double sim_seconds = 0.0;
  for (auto _ : state) {
    svc::ServiceConfig config;
    config.machines = machines;
    config.duration_sec = 20000.0;
    config.mean_interarrival_sec = 1.0 / arrival_rate;
    config.queue_capacity = 4096;
    config.seed = 11;
    svc::Service service(config, catalog);
    const auto summary = service.run();
    benchmark::DoNotOptimize(summary.final_score);
    events += summary.scheduling_events;
    sim_seconds += summary.duration_sec;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["sim_sec_per_wall"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(machines) + " machines / " +
                 std::to_string(state.range(1)) + " jobs/s offered");
}

// Same run with the live-telemetry stack on: one window per 5 sim-minutes (a
// production-scrape cadence), two SLO monitors evaluated per window, no file
// sinks. The delta between this row and BM_ServiceThroughput at the same
// Args is the telemetry overhead, which must stay within the bench_compare
// regression gate (the sampling path reads pre-resolved series pointers —
// one atomic load per counter/gauge, one short lock per histogram).
void BM_ServiceThroughputTelemetry(benchmark::State& state) {
  const auto machines = static_cast<std::size_t>(state.range(0));
  const double arrival_rate = static_cast<double>(state.range(1));
  const auto catalog = exp::make_catalog();
  std::uint64_t events = 0;
  std::uint64_t windows = 0;
  for (auto _ : state) {
    svc::ServiceConfig config;
    config.machines = machines;
    config.duration_sec = 20000.0;
    config.mean_interarrival_sec = 1.0 / arrival_rate;
    config.queue_capacity = 4096;
    config.seed = 11;
    config.telemetry_interval_sec = 300.0;
    obs::SloSpec slo;
    std::string error;
    obs::parse_slo("queue-delay-p99=300", slo, error);
    config.slos.push_back(slo);
    obs::parse_slo("rejection-rate=0.5", slo, error);
    config.slos.push_back(slo);
    svc::Service service(config, catalog);
    const auto summary = service.run();
    benchmark::DoNotOptimize(summary.final_score);
    events += summary.scheduling_events;
    windows += summary.telemetry_windows;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["windows_per_sec"] =
      benchmark::Counter(static_cast<double>(windows), benchmark::Counter::kIsRate);
  state.SetLabel(std::to_string(machines) + " machines / telemetry on");
}

}  // namespace

BENCHMARK(BM_ServiceThroughput)
    ->Args({1000, 2})
    ->Args({10000, 5})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ServiceThroughputTelemetry)
    ->Args({1000, 2})
    ->Args({10000, 5})
    ->Unit(benchmark::kMillisecond);

HARMONY_BENCHMARK_JSON_MAIN("BENCH_svc_throughput.json");
