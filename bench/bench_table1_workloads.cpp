// Table I: the evaluation workload — applications, datasets, input/model
// sizes, and job counts per (app, dataset) pair.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace harmony;
  const auto catalog = exp::make_catalog();
  bench::print_header("Table I: workloads used for evaluation");
  std::fputs(exp::table1(catalog).c_str(), stdout);

  // Supplementary: per-family iteration-time and comp-ratio bands at DoP 16.
  TextTable bands({"App", "t_itr@16 min..max (s)", "comp ratio min..max", "iterations"});
  for (const char* app : {"NMF", "LDA", "MLR", "Lasso"}) {
    double itr_lo = 1e300, itr_hi = 0.0, r_lo = 1.0, r_hi = 0.0;
    std::size_t it_lo = SIZE_MAX, it_hi = 0;
    for (const auto& s : catalog) {
      if (s.app != app) continue;
      const auto p = s.profile();
      itr_lo = std::min(itr_lo, p.t_itr(16));
      itr_hi = std::max(itr_hi, p.t_itr(16));
      r_lo = std::min(r_lo, p.comp_ratio(16));
      r_hi = std::max(r_hi, p.comp_ratio(16));
      it_lo = std::min(it_lo, s.iterations);
      it_hi = std::max(it_hi, s.iterations);
    }
    bands.add_row({app,
                   TextTable::format_double(itr_lo, 0) + " .. " +
                       TextTable::format_double(itr_hi, 0),
                   TextTable::format_double(r_lo, 2) + " .. " + TextTable::format_double(r_hi, 2),
                   std::to_string(it_lo) + " .. " + std::to_string(it_hi)});
  }
  std::fputs(bands.render().c_str(), stdout);
  return 0;
}
