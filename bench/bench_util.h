// Shared helpers for the figure/table reproduction drivers.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"
#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/metrics.h"
#include "exp/workload.h"
#include "obs/analysis/analysis.h"
#include "obs/analysis/report.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace harmony::bench {

struct RunResult {
  exp::RunSummary summary;
  core::Utilization avg_util;
  double mean_jct = 0.0;
  double makespan = 0.0;
};

// Runs one policy over a workload and collects the headline numbers.
inline RunResult run(exp::ClusterSimConfig config, const std::vector<exp::WorkloadSpec>& jobs,
                     const std::vector<double>& arrivals) {
  exp::ClusterSim sim(config, jobs, arrivals);
  RunResult r;
  r.summary = sim.run();
  r.avg_util = r.summary.avg_util;
  r.mean_jct = r.summary.mean_jct();
  r.makespan = r.summary.makespan;
  return r;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline double speedup(double baseline, double value) {
  return value > 0.0 ? baseline / value : 0.0;
}

// Splices the current metrics-registry snapshot into an existing JSON report
// (e.g. a google-benchmark --benchmark_out file) as a top-level
// "harmony_metrics" member, so BENCH_*.json reports carry the run's counters
// and gauges alongside the timing data. Returns false (file untouched) if
// the file is missing or its content is not a JSON object: the document must
// start with '{' and end with '}' up to whitespace, so the brace we splice
// before is the root object's closing brace, not a '}' inside trailing junk.
inline bool attach_metrics_snapshot(const std::string& json_path) {
  std::ifstream in(json_path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  constexpr const char* kWs = " \t\r\n";
  const std::size_t first = text.find_first_not_of(kWs);
  const std::size_t close = text.find_last_not_of(kWs);
  if (first == std::string::npos || text[first] != '{' || text[close] != '}' ||
      close == first)
    return false;
  const std::string snapshot = obs::MetricsRegistry::instance().snapshot_json();
  // An empty root object ({}) takes no leading comma.
  const std::size_t prev = text.find_last_not_of(kWs, close - 1);
  const bool root_is_empty = prev == first;
  text.insert(close, (root_is_empty ? std::string("\n") : std::string(",\n")) +
                         "\"harmony_metrics\": " + snapshot + "\n");
  std::ofstream out(json_path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

// Attaches a full trace-analysis run report to a figure driver's output:
// feeds the tracer's current buffer through the analysis engine, reconciled
// against `summary`, and writes <dir>/report.md + <dir>/report.json with the
// metrics snapshot folded in. Returns false when no events were recorded
// (tracing disabled for the run) or on I/O failure.
inline bool write_run_report(const exp::RunSummary& summary, const std::string& dir) {
  auto events = obs::Tracer::instance().snapshot();
  if (events.empty()) return false;
  obs::analysis::RunTotals totals;
  totals.makespan_sec = summary.makespan;
  totals.jobs.reserve(summary.jobs.size());
  for (const auto& outcome : summary.jobs)
    totals.jobs.push_back(obs::analysis::RunTotals::JobOutcome{
        outcome.job, outcome.submit_time, outcome.finish_time});
  const auto analysis = obs::analysis::analyze(std::move(events), &totals);
  return obs::analysis::write_report_files(
      analysis, obs::MetricsRegistry::instance().snapshot_json(), dir);
}

}  // namespace harmony::bench

// ---------------------------------------------------------------------------
// JSON emission for google-benchmark drivers. Only compiled when the
// translation unit already includes <benchmark/benchmark.h>; the plain
// figure/table drivers don't link google-benchmark and never see this block.
#ifdef BENCHMARK_BENCHMARK_H_

namespace harmony::bench {

// Runs the registered benchmarks and writes the machine-readable JSON report
// to `default_json_out` (tracked across PRs) unless the caller already passed
// an explicit --benchmark_out=... on the command line.
inline int run_benchmarks_emitting_json(int argc, char** argv,
                                        const std::string& default_json_out) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=" + default_json_out;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Attach the run's metrics snapshot to the report we own (an explicit
  // --benchmark_out stays untouched: the caller may post-process it).
  if (!has_out) attach_metrics_snapshot(default_json_out);
  return 0;
}

}  // namespace harmony::bench

// Drop-in replacement for BENCHMARK_MAIN() that also emits `json_file`.
#define HARMONY_BENCHMARK_JSON_MAIN(json_file)                            \
  int main(int argc, char** argv) {                                       \
    return ::harmony::bench::run_benchmarks_emitting_json(argc, argv,     \
                                                          json_file);     \
  }                                                                       \
  int main(int, char**)

#endif  // BENCHMARK_BENCHMARK_H_
