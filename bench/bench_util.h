// Shared helpers for the figure/table reproduction drivers.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/metrics.h"
#include "exp/workload.h"

namespace harmony::bench {

struct RunResult {
  exp::RunSummary summary;
  core::Utilization avg_util;
  double mean_jct = 0.0;
  double makespan = 0.0;
};

// Runs one policy over a workload and collects the headline numbers.
inline RunResult run(exp::ClusterSimConfig config, const std::vector<exp::WorkloadSpec>& jobs,
                     const std::vector<double>& arrivals) {
  exp::ClusterSim sim(config, jobs, arrivals);
  RunResult r;
  r.summary = sim.run();
  r.avg_util = r.summary.avg_util;
  r.mean_jct = r.summary.mean_jct();
  r.makespan = r.summary.makespan;
  return r;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline double speedup(double baseline, double value) {
  return value > 0.0 ? baseline / value : 0.0;
}

}  // namespace harmony::bench
