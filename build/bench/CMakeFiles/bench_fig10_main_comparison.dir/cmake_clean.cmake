file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_main_comparison.dir/bench_fig10_main_comparison.cpp.o"
  "CMakeFiles/bench_fig10_main_comparison.dir/bench_fig10_main_comparison.cpp.o.d"
  "bench_fig10_main_comparison"
  "bench_fig10_main_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_main_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
