# Empty dependencies file for bench_fig10_main_comparison.
# This may be replaced when dependencies are built.
