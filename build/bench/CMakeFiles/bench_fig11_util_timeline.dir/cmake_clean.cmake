file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_util_timeline.dir/bench_fig11_util_timeline.cpp.o"
  "CMakeFiles/bench_fig11_util_timeline.dir/bench_fig11_util_timeline.cpp.o.d"
  "bench_fig11_util_timeline"
  "bench_fig11_util_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_util_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
