# Empty compiler generated dependencies file for bench_fig11_util_timeline.
# This may be replaced when dependencies are built.
