file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_group_dop_cdf.dir/bench_fig12_group_dop_cdf.cpp.o"
  "CMakeFiles/bench_fig12_group_dop_cdf.dir/bench_fig12_group_dop_cdf.cpp.o.d"
  "bench_fig12_group_dop_cdf"
  "bench_fig12_group_dop_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_group_dop_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
