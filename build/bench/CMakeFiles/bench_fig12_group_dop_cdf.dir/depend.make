# Empty dependencies file for bench_fig12_group_dop_cdf.
# This may be replaced when dependencies are built.
