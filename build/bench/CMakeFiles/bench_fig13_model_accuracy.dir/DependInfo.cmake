
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_model_accuracy.cpp" "bench/CMakeFiles/bench_fig13_model_accuracy.dir/bench_fig13_model_accuracy.cpp.o" "gcc" "bench/CMakeFiles/bench_fig13_model_accuracy.dir/bench_fig13_model_accuracy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/harmony_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/harmony_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/harmony_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/harmony/CMakeFiles/harmony_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/harmony_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/harmony_exp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
