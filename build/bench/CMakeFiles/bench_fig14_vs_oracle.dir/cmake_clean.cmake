file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_vs_oracle.dir/bench_fig14_vs_oracle.cpp.o"
  "CMakeFiles/bench_fig14_vs_oracle.dir/bench_fig14_vs_oracle.cpp.o.d"
  "bench_fig14_vs_oracle"
  "bench_fig14_vs_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_vs_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
