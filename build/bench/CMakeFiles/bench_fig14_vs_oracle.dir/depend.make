# Empty dependencies file for bench_fig14_vs_oracle.
# This may be replaced when dependencies are built.
