file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_single_job_util.dir/bench_fig2_single_job_util.cpp.o"
  "CMakeFiles/bench_fig2_single_job_util.dir/bench_fig2_single_job_util.cpp.o.d"
  "bench_fig2_single_job_util"
  "bench_fig2_single_job_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_single_job_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
