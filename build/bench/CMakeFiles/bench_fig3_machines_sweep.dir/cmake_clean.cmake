file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_machines_sweep.dir/bench_fig3_machines_sweep.cpp.o"
  "CMakeFiles/bench_fig3_machines_sweep.dir/bench_fig3_machines_sweep.cpp.o.d"
  "bench_fig3_machines_sweep"
  "bench_fig3_machines_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_machines_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
