# Empty dependencies file for bench_fig3_machines_sweep.
# This may be replaced when dependencies are built.
