file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_naive_colocation.dir/bench_fig4_naive_colocation.cpp.o"
  "CMakeFiles/bench_fig4_naive_colocation.dir/bench_fig4_naive_colocation.cpp.o.d"
  "bench_fig4_naive_colocation"
  "bench_fig4_naive_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_naive_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
