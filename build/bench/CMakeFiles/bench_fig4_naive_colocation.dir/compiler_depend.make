# Empty compiler generated dependencies file for bench_fig4_naive_colocation.
# This may be replaced when dependencies are built.
