# Empty compiler generated dependencies file for bench_fig9_workload_cdf.
# This may be replaced when dependencies are built.
