file(REMOVE_RECURSE
  "CMakeFiles/bench_ps_microbench.dir/bench_ps_microbench.cpp.o"
  "CMakeFiles/bench_ps_microbench.dir/bench_ps_microbench.cpp.o.d"
  "bench_ps_microbench"
  "bench_ps_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ps_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
