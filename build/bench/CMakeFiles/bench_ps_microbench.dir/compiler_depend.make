# Empty compiler generated dependencies file for bench_ps_microbench.
# This may be replaced when dependencies are built.
