file(REMOVE_RECURSE
  "CMakeFiles/bench_reload_alpha.dir/bench_reload_alpha.cpp.o"
  "CMakeFiles/bench_reload_alpha.dir/bench_reload_alpha.cpp.o.d"
  "bench_reload_alpha"
  "bench_reload_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reload_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
