# Empty compiler generated dependencies file for bench_reload_alpha.
# This may be replaced when dependencies are built.
