file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_scalability.dir/bench_sched_scalability.cpp.o"
  "CMakeFiles/bench_sched_scalability.dir/bench_sched_scalability.cpp.o.d"
  "bench_sched_scalability"
  "bench_sched_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
