# Empty compiler generated dependencies file for bench_sched_scalability.
# This may be replaced when dependencies are built.
