file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_arrival.dir/bench_sensitivity_arrival.cpp.o"
  "CMakeFiles/bench_sensitivity_arrival.dir/bench_sensitivity_arrival.cpp.o.d"
  "bench_sensitivity_arrival"
  "bench_sensitivity_arrival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_arrival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
