# Empty dependencies file for bench_sensitivity_arrival.
# This may be replaced when dependencies are built.
