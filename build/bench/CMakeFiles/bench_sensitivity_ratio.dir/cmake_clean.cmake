file(REMOVE_RECURSE
  "CMakeFiles/bench_sensitivity_ratio.dir/bench_sensitivity_ratio.cpp.o"
  "CMakeFiles/bench_sensitivity_ratio.dir/bench_sensitivity_ratio.cpp.o.d"
  "bench_sensitivity_ratio"
  "bench_sensitivity_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sensitivity_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
