# Empty dependencies file for bench_sensitivity_ratio.
# This may be replaced when dependencies are built.
