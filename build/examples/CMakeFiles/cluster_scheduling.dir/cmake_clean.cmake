file(REMOVE_RECURSE
  "CMakeFiles/cluster_scheduling.dir/cluster_scheduling.cpp.o"
  "CMakeFiles/cluster_scheduling.dir/cluster_scheduling.cpp.o.d"
  "cluster_scheduling"
  "cluster_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
