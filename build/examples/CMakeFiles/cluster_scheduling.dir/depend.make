# Empty dependencies file for cluster_scheduling.
# This may be replaced when dependencies are built.
