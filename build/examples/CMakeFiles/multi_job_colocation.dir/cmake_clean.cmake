file(REMOVE_RECURSE
  "CMakeFiles/multi_job_colocation.dir/multi_job_colocation.cpp.o"
  "CMakeFiles/multi_job_colocation.dir/multi_job_colocation.cpp.o.d"
  "multi_job_colocation"
  "multi_job_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_job_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
