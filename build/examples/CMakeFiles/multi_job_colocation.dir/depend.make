# Empty dependencies file for multi_job_colocation.
# This may be replaced when dependencies are built.
