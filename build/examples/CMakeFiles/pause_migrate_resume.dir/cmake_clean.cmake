file(REMOVE_RECURSE
  "CMakeFiles/pause_migrate_resume.dir/pause_migrate_resume.cpp.o"
  "CMakeFiles/pause_migrate_resume.dir/pause_migrate_resume.cpp.o.d"
  "pause_migrate_resume"
  "pause_migrate_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pause_migrate_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
