# Empty dependencies file for pause_migrate_resume.
# This may be replaced when dependencies are built.
