file(REMOVE_RECURSE
  "CMakeFiles/harmony_baselines.dir/isolated.cpp.o"
  "CMakeFiles/harmony_baselines.dir/isolated.cpp.o.d"
  "CMakeFiles/harmony_baselines.dir/naive.cpp.o"
  "CMakeFiles/harmony_baselines.dir/naive.cpp.o.d"
  "CMakeFiles/harmony_baselines.dir/oracle.cpp.o"
  "CMakeFiles/harmony_baselines.dir/oracle.cpp.o.d"
  "libharmony_baselines.a"
  "libharmony_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
