file(REMOVE_RECURSE
  "libharmony_baselines.a"
)
