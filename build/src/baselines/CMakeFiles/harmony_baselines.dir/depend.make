# Empty dependencies file for harmony_baselines.
# This may be replaced when dependencies are built.
