
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/cluster/CMakeFiles/harmony_cluster.dir/cluster.cpp.o" "gcc" "src/cluster/CMakeFiles/harmony_cluster.dir/cluster.cpp.o.d"
  "/root/repo/src/cluster/machine.cpp" "src/cluster/CMakeFiles/harmony_cluster.dir/machine.cpp.o" "gcc" "src/cluster/CMakeFiles/harmony_cluster.dir/machine.cpp.o.d"
  "/root/repo/src/cluster/memory_model.cpp" "src/cluster/CMakeFiles/harmony_cluster.dir/memory_model.cpp.o" "gcc" "src/cluster/CMakeFiles/harmony_cluster.dir/memory_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
