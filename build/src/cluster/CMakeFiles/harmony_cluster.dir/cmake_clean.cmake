file(REMOVE_RECURSE
  "CMakeFiles/harmony_cluster.dir/cluster.cpp.o"
  "CMakeFiles/harmony_cluster.dir/cluster.cpp.o.d"
  "CMakeFiles/harmony_cluster.dir/machine.cpp.o"
  "CMakeFiles/harmony_cluster.dir/machine.cpp.o.d"
  "CMakeFiles/harmony_cluster.dir/memory_model.cpp.o"
  "CMakeFiles/harmony_cluster.dir/memory_model.cpp.o.d"
  "libharmony_cluster.a"
  "libharmony_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
