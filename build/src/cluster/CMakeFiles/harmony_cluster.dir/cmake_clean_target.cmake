file(REMOVE_RECURSE
  "libharmony_cluster.a"
)
