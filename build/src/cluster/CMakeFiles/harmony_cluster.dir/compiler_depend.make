# Empty compiler generated dependencies file for harmony_cluster.
# This may be replaced when dependencies are built.
