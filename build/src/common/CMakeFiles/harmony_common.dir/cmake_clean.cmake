file(REMOVE_RECURSE
  "CMakeFiles/harmony_common.dir/histogram.cpp.o"
  "CMakeFiles/harmony_common.dir/histogram.cpp.o.d"
  "CMakeFiles/harmony_common.dir/logging.cpp.o"
  "CMakeFiles/harmony_common.dir/logging.cpp.o.d"
  "CMakeFiles/harmony_common.dir/stats.cpp.o"
  "CMakeFiles/harmony_common.dir/stats.cpp.o.d"
  "CMakeFiles/harmony_common.dir/table.cpp.o"
  "CMakeFiles/harmony_common.dir/table.cpp.o.d"
  "libharmony_common.a"
  "libharmony_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
