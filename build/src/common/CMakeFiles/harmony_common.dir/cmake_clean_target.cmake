file(REMOVE_RECURSE
  "libharmony_common.a"
)
