# Empty compiler generated dependencies file for harmony_common.
# This may be replaced when dependencies are built.
