file(REMOVE_RECURSE
  "CMakeFiles/harmony_exp.dir/arrivals.cpp.o"
  "CMakeFiles/harmony_exp.dir/arrivals.cpp.o.d"
  "CMakeFiles/harmony_exp.dir/cluster_sim.cpp.o"
  "CMakeFiles/harmony_exp.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/harmony_exp.dir/metrics.cpp.o"
  "CMakeFiles/harmony_exp.dir/metrics.cpp.o.d"
  "CMakeFiles/harmony_exp.dir/workload.cpp.o"
  "CMakeFiles/harmony_exp.dir/workload.cpp.o.d"
  "libharmony_exp.a"
  "libharmony_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
