file(REMOVE_RECURSE
  "libharmony_exp.a"
)
