# Empty compiler generated dependencies file for harmony_exp.
# This may be replaced when dependencies are built.
