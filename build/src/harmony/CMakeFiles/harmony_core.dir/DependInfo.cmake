
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harmony/checkpoint.cpp" "src/harmony/CMakeFiles/harmony_core.dir/checkpoint.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/checkpoint.cpp.o.d"
  "/root/repo/src/harmony/executor.cpp" "src/harmony/CMakeFiles/harmony_core.dir/executor.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/executor.cpp.o.d"
  "/root/repo/src/harmony/job.cpp" "src/harmony/CMakeFiles/harmony_core.dir/job.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/job.cpp.o.d"
  "/root/repo/src/harmony/perf_model.cpp" "src/harmony/CMakeFiles/harmony_core.dir/perf_model.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/perf_model.cpp.o.d"
  "/root/repo/src/harmony/profiler.cpp" "src/harmony/CMakeFiles/harmony_core.dir/profiler.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/profiler.cpp.o.d"
  "/root/repo/src/harmony/regrouper.cpp" "src/harmony/CMakeFiles/harmony_core.dir/regrouper.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/regrouper.cpp.o.d"
  "/root/repo/src/harmony/runtime.cpp" "src/harmony/CMakeFiles/harmony_core.dir/runtime.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/runtime.cpp.o.d"
  "/root/repo/src/harmony/scheduler.cpp" "src/harmony/CMakeFiles/harmony_core.dir/scheduler.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/scheduler.cpp.o.d"
  "/root/repo/src/harmony/spill_manager.cpp" "src/harmony/CMakeFiles/harmony_core.dir/spill_manager.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/spill_manager.cpp.o.d"
  "/root/repo/src/harmony/spill_store.cpp" "src/harmony/CMakeFiles/harmony_core.dir/spill_store.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/spill_store.cpp.o.d"
  "/root/repo/src/harmony/subtask.cpp" "src/harmony/CMakeFiles/harmony_core.dir/subtask.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/subtask.cpp.o.d"
  "/root/repo/src/harmony/synchronizer.cpp" "src/harmony/CMakeFiles/harmony_core.dir/synchronizer.cpp.o" "gcc" "src/harmony/CMakeFiles/harmony_core.dir/synchronizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/harmony_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/ps/CMakeFiles/harmony_ps.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/harmony_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/harmony_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
