file(REMOVE_RECURSE
  "CMakeFiles/harmony_core.dir/checkpoint.cpp.o"
  "CMakeFiles/harmony_core.dir/checkpoint.cpp.o.d"
  "CMakeFiles/harmony_core.dir/executor.cpp.o"
  "CMakeFiles/harmony_core.dir/executor.cpp.o.d"
  "CMakeFiles/harmony_core.dir/job.cpp.o"
  "CMakeFiles/harmony_core.dir/job.cpp.o.d"
  "CMakeFiles/harmony_core.dir/perf_model.cpp.o"
  "CMakeFiles/harmony_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/harmony_core.dir/profiler.cpp.o"
  "CMakeFiles/harmony_core.dir/profiler.cpp.o.d"
  "CMakeFiles/harmony_core.dir/regrouper.cpp.o"
  "CMakeFiles/harmony_core.dir/regrouper.cpp.o.d"
  "CMakeFiles/harmony_core.dir/runtime.cpp.o"
  "CMakeFiles/harmony_core.dir/runtime.cpp.o.d"
  "CMakeFiles/harmony_core.dir/scheduler.cpp.o"
  "CMakeFiles/harmony_core.dir/scheduler.cpp.o.d"
  "CMakeFiles/harmony_core.dir/spill_manager.cpp.o"
  "CMakeFiles/harmony_core.dir/spill_manager.cpp.o.d"
  "CMakeFiles/harmony_core.dir/spill_store.cpp.o"
  "CMakeFiles/harmony_core.dir/spill_store.cpp.o.d"
  "CMakeFiles/harmony_core.dir/subtask.cpp.o"
  "CMakeFiles/harmony_core.dir/subtask.cpp.o.d"
  "CMakeFiles/harmony_core.dir/synchronizer.cpp.o"
  "CMakeFiles/harmony_core.dir/synchronizer.cpp.o.d"
  "libharmony_core.a"
  "libharmony_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
