file(REMOVE_RECURSE
  "libharmony_core.a"
)
