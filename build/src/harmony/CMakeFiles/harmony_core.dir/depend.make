# Empty dependencies file for harmony_core.
# This may be replaced when dependencies are built.
