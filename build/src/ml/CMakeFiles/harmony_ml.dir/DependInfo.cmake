
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/app.cpp" "src/ml/CMakeFiles/harmony_ml.dir/app.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/app.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/harmony_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/lasso.cpp" "src/ml/CMakeFiles/harmony_ml.dir/lasso.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/lasso.cpp.o.d"
  "/root/repo/src/ml/lda.cpp" "src/ml/CMakeFiles/harmony_ml.dir/lda.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/lda.cpp.o.d"
  "/root/repo/src/ml/linalg.cpp" "src/ml/CMakeFiles/harmony_ml.dir/linalg.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/linalg.cpp.o.d"
  "/root/repo/src/ml/mlr.cpp" "src/ml/CMakeFiles/harmony_ml.dir/mlr.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/mlr.cpp.o.d"
  "/root/repo/src/ml/nmf.cpp" "src/ml/CMakeFiles/harmony_ml.dir/nmf.cpp.o" "gcc" "src/ml/CMakeFiles/harmony_ml.dir/nmf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
