file(REMOVE_RECURSE
  "CMakeFiles/harmony_ml.dir/app.cpp.o"
  "CMakeFiles/harmony_ml.dir/app.cpp.o.d"
  "CMakeFiles/harmony_ml.dir/dataset.cpp.o"
  "CMakeFiles/harmony_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/harmony_ml.dir/lasso.cpp.o"
  "CMakeFiles/harmony_ml.dir/lasso.cpp.o.d"
  "CMakeFiles/harmony_ml.dir/lda.cpp.o"
  "CMakeFiles/harmony_ml.dir/lda.cpp.o.d"
  "CMakeFiles/harmony_ml.dir/linalg.cpp.o"
  "CMakeFiles/harmony_ml.dir/linalg.cpp.o.d"
  "CMakeFiles/harmony_ml.dir/mlr.cpp.o"
  "CMakeFiles/harmony_ml.dir/mlr.cpp.o.d"
  "CMakeFiles/harmony_ml.dir/nmf.cpp.o"
  "CMakeFiles/harmony_ml.dir/nmf.cpp.o.d"
  "libharmony_ml.a"
  "libharmony_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
