file(REMOVE_RECURSE
  "libharmony_ml.a"
)
