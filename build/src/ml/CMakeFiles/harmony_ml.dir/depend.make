# Empty dependencies file for harmony_ml.
# This may be replaced when dependencies are built.
