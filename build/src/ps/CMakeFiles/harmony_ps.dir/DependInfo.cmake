
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ps/allreduce.cpp" "src/ps/CMakeFiles/harmony_ps.dir/allreduce.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/allreduce.cpp.o.d"
  "/root/repo/src/ps/network.cpp" "src/ps/CMakeFiles/harmony_ps.dir/network.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/network.cpp.o.d"
  "/root/repo/src/ps/partition.cpp" "src/ps/CMakeFiles/harmony_ps.dir/partition.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/partition.cpp.o.d"
  "/root/repo/src/ps/ps_system.cpp" "src/ps/CMakeFiles/harmony_ps.dir/ps_system.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/ps_system.cpp.o.d"
  "/root/repo/src/ps/serialization.cpp" "src/ps/CMakeFiles/harmony_ps.dir/serialization.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/serialization.cpp.o.d"
  "/root/repo/src/ps/server.cpp" "src/ps/CMakeFiles/harmony_ps.dir/server.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/server.cpp.o.d"
  "/root/repo/src/ps/worker.cpp" "src/ps/CMakeFiles/harmony_ps.dir/worker.cpp.o" "gcc" "src/ps/CMakeFiles/harmony_ps.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/harmony_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/harmony_ml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
