file(REMOVE_RECURSE
  "CMakeFiles/harmony_ps.dir/allreduce.cpp.o"
  "CMakeFiles/harmony_ps.dir/allreduce.cpp.o.d"
  "CMakeFiles/harmony_ps.dir/network.cpp.o"
  "CMakeFiles/harmony_ps.dir/network.cpp.o.d"
  "CMakeFiles/harmony_ps.dir/partition.cpp.o"
  "CMakeFiles/harmony_ps.dir/partition.cpp.o.d"
  "CMakeFiles/harmony_ps.dir/ps_system.cpp.o"
  "CMakeFiles/harmony_ps.dir/ps_system.cpp.o.d"
  "CMakeFiles/harmony_ps.dir/serialization.cpp.o"
  "CMakeFiles/harmony_ps.dir/serialization.cpp.o.d"
  "CMakeFiles/harmony_ps.dir/server.cpp.o"
  "CMakeFiles/harmony_ps.dir/server.cpp.o.d"
  "CMakeFiles/harmony_ps.dir/worker.cpp.o"
  "CMakeFiles/harmony_ps.dir/worker.cpp.o.d"
  "libharmony_ps.a"
  "libharmony_ps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
