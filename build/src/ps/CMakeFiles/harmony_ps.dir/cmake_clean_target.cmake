file(REMOVE_RECURSE
  "libharmony_ps.a"
)
