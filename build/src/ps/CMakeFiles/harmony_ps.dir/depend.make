# Empty dependencies file for harmony_ps.
# This may be replaced when dependencies are built.
