file(REMOVE_RECURSE
  "CMakeFiles/harmony_sim.dir/resource.cpp.o"
  "CMakeFiles/harmony_sim.dir/resource.cpp.o.d"
  "CMakeFiles/harmony_sim.dir/simulator.cpp.o"
  "CMakeFiles/harmony_sim.dir/simulator.cpp.o.d"
  "libharmony_sim.a"
  "libharmony_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
