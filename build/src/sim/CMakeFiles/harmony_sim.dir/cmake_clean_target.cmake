file(REMOVE_RECURSE
  "libharmony_sim.a"
)
