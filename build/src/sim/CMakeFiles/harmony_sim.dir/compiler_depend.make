# Empty compiler generated dependencies file for harmony_sim.
# This may be replaced when dependencies are built.
