file(REMOVE_RECURSE
  "CMakeFiles/test_allreduce.dir/test_allreduce.cpp.o"
  "CMakeFiles/test_allreduce.dir/test_allreduce.cpp.o.d"
  "test_allreduce"
  "test_allreduce.pdb"
  "test_allreduce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
