# Empty compiler generated dependencies file for test_allreduce.
# This may be replaced when dependencies are built.
