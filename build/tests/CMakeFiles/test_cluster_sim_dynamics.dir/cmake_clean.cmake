file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_sim_dynamics.dir/test_cluster_sim_dynamics.cpp.o"
  "CMakeFiles/test_cluster_sim_dynamics.dir/test_cluster_sim_dynamics.cpp.o.d"
  "test_cluster_sim_dynamics"
  "test_cluster_sim_dynamics.pdb"
  "test_cluster_sim_dynamics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_sim_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
