# Empty dependencies file for test_cluster_sim_dynamics.
# This may be replaced when dependencies are built.
