file(REMOVE_RECURSE
  "CMakeFiles/test_integration_stack.dir/test_integration_stack.cpp.o"
  "CMakeFiles/test_integration_stack.dir/test_integration_stack.cpp.o.d"
  "test_integration_stack"
  "test_integration_stack.pdb"
  "test_integration_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
