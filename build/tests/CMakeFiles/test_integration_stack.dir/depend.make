# Empty dependencies file for test_integration_stack.
# This may be replaced when dependencies are built.
