file(REMOVE_RECURSE
  "CMakeFiles/test_ml_apps.dir/test_ml_apps.cpp.o"
  "CMakeFiles/test_ml_apps.dir/test_ml_apps.cpp.o.d"
  "test_ml_apps"
  "test_ml_apps.pdb"
  "test_ml_apps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
