# Empty compiler generated dependencies file for test_ml_apps.
# This may be replaced when dependencies are built.
