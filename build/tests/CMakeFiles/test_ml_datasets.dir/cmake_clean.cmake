file(REMOVE_RECURSE
  "CMakeFiles/test_ml_datasets.dir/test_ml_datasets.cpp.o"
  "CMakeFiles/test_ml_datasets.dir/test_ml_datasets.cpp.o.d"
  "test_ml_datasets"
  "test_ml_datasets.pdb"
  "test_ml_datasets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
