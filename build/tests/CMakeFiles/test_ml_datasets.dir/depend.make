# Empty dependencies file for test_ml_datasets.
# This may be replaced when dependencies are built.
