file(REMOVE_RECURSE
  "CMakeFiles/test_ps.dir/test_ps.cpp.o"
  "CMakeFiles/test_ps.dir/test_ps.cpp.o.d"
  "test_ps"
  "test_ps.pdb"
  "test_ps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
