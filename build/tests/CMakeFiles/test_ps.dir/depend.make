# Empty dependencies file for test_ps.
# This may be replaced when dependencies are built.
