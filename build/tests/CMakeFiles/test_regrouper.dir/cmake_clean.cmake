file(REMOVE_RECURSE
  "CMakeFiles/test_regrouper.dir/test_regrouper.cpp.o"
  "CMakeFiles/test_regrouper.dir/test_regrouper.cpp.o.d"
  "test_regrouper"
  "test_regrouper.pdb"
  "test_regrouper[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regrouper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
