# Empty compiler generated dependencies file for test_regrouper.
# This may be replaced when dependencies are built.
