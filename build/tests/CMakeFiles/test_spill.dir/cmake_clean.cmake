file(REMOVE_RECURSE
  "CMakeFiles/test_spill.dir/test_spill.cpp.o"
  "CMakeFiles/test_spill.dir/test_spill.cpp.o.d"
  "test_spill"
  "test_spill.pdb"
  "test_spill[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spill.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
