# Empty compiler generated dependencies file for test_spill.
# This may be replaced when dependencies are built.
