file(REMOVE_RECURSE
  "CMakeFiles/test_spill_store.dir/test_spill_store.cpp.o"
  "CMakeFiles/test_spill_store.dir/test_spill_store.cpp.o.d"
  "test_spill_store"
  "test_spill_store.pdb"
  "test_spill_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spill_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
