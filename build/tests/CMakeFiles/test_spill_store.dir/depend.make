# Empty dependencies file for test_spill_store.
# This may be replaced when dependencies are built.
