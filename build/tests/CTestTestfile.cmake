# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_ml_datasets[1]_include.cmake")
include("/root/repo/build/tests/test_ml_apps[1]_include.cmake")
include("/root/repo/build/tests/test_ps[1]_include.cmake")
include("/root/repo/build/tests/test_executor[1]_include.cmake")
include("/root/repo/build/tests/test_perf_model[1]_include.cmake")
include("/root/repo/build/tests/test_profiler[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_regrouper[1]_include.cmake")
include("/root/repo/build/tests/test_spill[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fault_tolerance[1]_include.cmake")
include("/root/repo/build/tests/test_allreduce[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_sim_dynamics[1]_include.cmake")
include("/root/repo/build/tests/test_integration_stack[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_spill_store[1]_include.cmake")
