file(REMOVE_RECURSE
  "CMakeFiles/harmony_sim_cli.dir/harmony_sim.cpp.o"
  "CMakeFiles/harmony_sim_cli.dir/harmony_sim.cpp.o.d"
  "harmony-sim"
  "harmony-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmony_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
