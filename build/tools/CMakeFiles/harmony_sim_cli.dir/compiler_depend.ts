# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for harmony_sim_cli.
