# Empty dependencies file for harmony_sim_cli.
# This may be replaced when dependencies are built.
