// Cluster-scale scheduling walkthrough: drives the full scheduling stack —
// profiler, performance model, Algorithm 1, dynamic regrouping and the
// spill/reload manager — over a 20-job workload on a simulated 40-machine
// cluster, then prints what the scheduler decided and how the cluster did.
//
// This is the simulation path the evaluation benches use; see
// examples/quickstart.cpp and examples/multi_job_colocation.cpp for the real
// threaded runtime.
#include <cstdio>

#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"

using namespace harmony;

int main() {
  // A 20-job slice of the paper's 80-job catalog, arriving as a Poisson
  // stream with 2-minute mean inter-arrival time.
  auto catalog = exp::make_catalog();
  std::vector<exp::WorkloadSpec> workload;
  for (std::size_t i = 0; i < catalog.size() && workload.size() < 20; i += 4)
    workload.push_back(catalog[i]);
  const auto arrivals = exp::poisson_arrivals(workload.size(), 120.0, 11);

  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 40;

  std::printf("scheduling %zu jobs onto %zu machines (Poisson arrivals)...\n",
              workload.size(), config.machines);
  exp::ClusterSim sim(config, workload, arrivals);
  const auto summary = sim.run();

  std::printf("\nall %zu jobs finished; makespan %.1f h, mean JCT %.1f h\n",
              summary.jobs.size(), summary.makespan / 3600.0,
              summary.mean_jct() / 3600.0);
  std::printf("cluster utilization: CPU %.1f%%, network %.1f%%\n",
              100.0 * summary.avg_util.cpu, 100.0 * summary.avg_util.net);
  std::printf("on average %.1f jobs co-ran in %.1f groups\n", sim.avg_concurrent_jobs(),
              sim.avg_concurrent_groups());
  std::printf("scheduler invoked %zu times, %.1f ms wall total\n", sim.sched_invocations(),
              1000.0 * sim.total_sched_seconds());
  std::printf("regroup events: %zu; migration pause total %.1f min; GC share %.2f%%; "
              "OOM events: %zu\n",
              summary.regroup_events, summary.migration_overhead_sec / 60.0,
              100.0 * summary.gc_time_fraction, summary.oom_events);

  const auto alpha = sim.alpha_stats();
  std::printf("disk-spill ratios: mean %.2f (min %.2f, max %.2f)\n", alpha.mean, alpha.min,
              alpha.max);

  std::printf("\nmodel accuracy over this run: group iteration time err p50 %.1f%%\n",
              100.0 * sim.prediction_errors().group_iteration_rel_error.quantile(0.5));

  std::printf("\nutilization timeline (10 samples):\n%s",
              sim.timeline().tsv(10).c_str());
  return 0;
}
