// Multi-job co-location on the real threaded runtime: the paper's core idea
// at laptop scale.
//
// Four jobs with complementary resource use (compute-heavy LDA/Lasso,
// communication-heavy MLR with a throttled NIC, NMF in between) run together
// on 4 machines, first in Harmony mode (subtask pipelining: one COMP per
// machine at a time, COMM overlapped) and then in Naive mode (everything
// stomps on everything). The wall-clock difference is Fig. 5's story,
// measured instead of drawn.
#include <cstdio>
#include <memory>

#include "harmony/runtime.h"
#include "ml/lasso.h"
#include "ml/lda.h"
#include "ml/mlr.h"
#include "ml/nmf.h"

using namespace harmony;

namespace {

struct NamedJob {
  const char* name;
  std::shared_ptr<ml::MlApp> app;
};

std::vector<NamedJob> make_jobs() {
  std::vector<NamedJob> jobs;
  jobs.push_back({"MLR (comm-heavy: big model)",
                  std::make_shared<ml::MlrApp>(
                      std::make_shared<ml::DenseDataset>(
                          ml::make_classification(600, 64, 16, 0.1, 1)),
                      ml::MlrConfig{0.3, 1e-5})});
  jobs.push_back({"LDA (comp-heavy: Gibbs sweeps)",
                  std::make_shared<ml::LdaApp>(
                      std::make_shared<ml::CorpusDataset>(ml::make_corpus(300, 800, 8, 60, 2)),
                      ml::LdaConfig{8, 0.1, 0.01, 3})});
  jobs.push_back({"NMF (balanced)",
                  std::make_shared<ml::NmfApp>(
                      std::make_shared<ml::RatingsDataset>(
                          ml::make_ratings(300, 200, 8, 0.1, 0.05, 4)),
                      ml::NmfConfig{8, 0.05, 1e-4, 5})});
  jobs.push_back({"Lasso (comp-heavy: dense rows)",
                  std::make_shared<ml::LassoApp>(
                      std::make_shared<ml::DenseDataset>(ml::make_regression(800, 64, 8, 0.05, 6)),
                      ml::LassoConfig{0.05, 0.02})});
  return jobs;
}

double run_mode(core::ExecutionMode mode, const char* label) {
  core::LocalRuntime::Params params;
  params.machines = 4;
  params.mode = mode;
  // A modest NIC makes PULL/PUSH take real time, so the network lane matters.
  params.nic_bytes_per_sec = 200e6;
  core::LocalRuntime runtime(params);

  auto jobs = make_jobs();
  std::vector<core::JobId> ids;
  for (auto& j : jobs) {
    core::RuntimeJobConfig cfg;
    cfg.app = j.app;
    cfg.max_epochs = 10;
    ids.push_back(runtime.submit(cfg));
  }

  const auto t0 = std::chrono::steady_clock::now();
  runtime.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::printf("\n-- %s: all 4 jobs in %.2f s --\n", label, wall);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const auto& r = runtime.result(ids[i]);
    const auto prof = runtime.profiler().profile(ids[i]);
    std::printf("  %-34s loss %.3f -> %.3f | COMP %.0f ms, COMM %.0f ms per iter\n",
                jobs[i].name, r.epoch_losses.front(), r.final_loss,
                1000.0 * (prof ? prof->t_cpu(4) : 0.0), 1000.0 * (prof ? prof->t_net : 0.0));
  }
  return wall;
}

}  // namespace

int main() {
  std::printf("co-locating 4 ML jobs on 4 machines, two execution disciplines\n");
  const double harmony_wall = run_mode(core::ExecutionMode::kHarmony, "Harmony (pipelined)");
  const double naive_wall = run_mode(core::ExecutionMode::kNaive, "Naive (contended)");
  std::printf("\nharmony %.2f s vs naive %.2f s\n", harmony_wall, naive_wall);
  return 0;
}
