// Pause / checkpoint / resume: the migration mechanics of §IV-B4 on the real
// runtime. Harmony pauses a job at an iteration boundary, checkpoints its
// model parameters to disk, runs the other co-located job meanwhile, then
// restores and resumes — training continues exactly where it left off.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>

#include "harmony/runtime.h"
#include "ml/lasso.h"
#include "ml/mlr.h"

using namespace harmony;

int main() {
  core::LocalRuntime::Params params;
  params.machines = 2;
  params.checkpoint_dir =
      (std::filesystem::temp_directory_path() / "harmony-example-ckpt").string();
  core::LocalRuntime runtime(params);

  core::RuntimeJobConfig victim;
  victim.app = std::make_shared<ml::MlrApp>(
      std::make_shared<ml::DenseDataset>(ml::make_classification(1500, 24, 6, 0.1, 7)),
      ml::MlrConfig{0.3, 1e-5});
  victim.max_epochs = 400;
  const core::JobId victim_id = runtime.submit(victim);

  core::RuntimeJobConfig neighbour;
  neighbour.app = std::make_shared<ml::LassoApp>(
      std::make_shared<ml::DenseDataset>(ml::make_regression(1500, 32, 6, 0.05, 8)),
      ml::LassoConfig{0.05, 0.02});
  neighbour.max_epochs = 400;
  const core::JobId neighbour_id = runtime.submit(neighbour);

  std::printf("running two jobs; will pause job %u mid-flight...\n", victim_id);
  std::thread driver([&] { runtime.run(); });

  // Let both make some progress, then pause the victim. pause() blocks until
  // the model checkpoint is safely on disk.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  runtime.pause(victim_id);
  const std::size_t iters_at_pause = runtime.result(victim_id).iterations;
  if (iters_at_pause >= 400) {
    std::printf("job already finished before the pause landed; nothing to resume\n");
    driver.join();
    return 0;
  }
  std::printf("paused at iteration %zu; checkpoint written under %s\n", iters_at_pause,
              params.checkpoint_dir.c_str());
  std::printf("neighbour job keeps the machines busy meanwhile (paper: \"executes the "
              "other co-located jobs in the meanwhile\")\n");

  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  std::printf("resuming from the checkpoint...\n");
  runtime.resume(victim_id);
  driver.join();
  // If the neighbour finished during the pause, run() returned early; wait
  // for the resumed victim too.
  runtime.wait_idle();

  const auto& vr = runtime.result(victim_id);
  const auto& nr = runtime.result(neighbour_id);
  std::printf("victim:    %zu epochs, loss %.3f -> %.3f (resumed at iteration %zu)\n",
              vr.epochs, vr.epoch_losses.front(), vr.final_loss, iters_at_pause);
  std::printf("neighbour: %zu epochs, loss %.3f -> %.3f\n", nr.epochs,
              nr.epoch_losses.front(), nr.final_loss);
  const bool loss_monotonicish = vr.final_loss < vr.epoch_losses.front();
  std::printf("victim training %s across the pause\n",
              loss_monotonicish ? "progressed cleanly" : "REGRESSED (bug!)");
  return loss_monotonicish ? 0 : 1;
}
