// Quickstart: train one model on the real in-process Harmony runtime.
//
//   $ ./quickstart
//
// Builds a synthetic classification dataset, submits a multinomial logistic
// regression job to a 4-machine LocalRuntime, and trains to a target loss
// while the runtime pipelines the job's PULL / COMP / PUSH subtasks across
// the machines' executor lanes.
#include <cstdio>
#include <memory>

#include "harmony/runtime.h"
#include "ml/mlr.h"

using namespace harmony;

int main() {
  // 1. Data + application. Any ml::MlApp works; MLR is the simplest.
  auto data = std::make_shared<ml::DenseDataset>(
      ml::make_classification(/*n=*/2000, /*dim=*/20, /*classes=*/5,
                              /*label_noise=*/0.1, /*seed=*/42));
  auto app = std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.5, 1e-5});

  // 2. Runtime: 4 in-process "machines", Harmony's subtask discipline.
  core::LocalRuntime::Params params;
  params.machines = 4;
  params.mode = core::ExecutionMode::kHarmony;
  core::LocalRuntime runtime(params);

  // 3. Submit and run to convergence.
  core::RuntimeJobConfig job;
  job.app = app;
  job.max_epochs = 60;
  job.target_loss = 0.30;
  const core::JobId id = runtime.submit(job);

  std::printf("training MLR (%zu examples, %zu parameters) on %zu machines...\n",
              app->num_data(), app->param_dim(), runtime.machines());
  runtime.run();

  // 4. Results: loss curve, measured subtask profile, accuracy.
  const auto& result = runtime.result(id);
  std::printf("finished in %zu epochs (%.2f s wall)\n", result.epochs, result.wall_seconds);
  std::printf("loss: %.4f -> %.4f%s\n", result.epoch_losses.front(), result.final_loss,
              result.converged_by_loss ? " (hit target)" : "");

  const auto profile = runtime.profiler().profile(id);
  if (profile) {
    std::printf("measured profile: %.1f ms COMP and %.1f ms COMM per iteration\n",
                1000.0 * profile->t_cpu(runtime.machines()), 1000.0 * profile->t_net);
  }

  const auto model = runtime.final_model(id);
  std::printf("training accuracy: %.1f%%\n", 100.0 * app->accuracy(model));
  return 0;
}
