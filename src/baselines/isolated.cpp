#include "baselines/isolated.h"

#include <algorithm>

namespace harmony::baselines {

std::size_t IsolatedScheduler::pick_dop(const core::JobProfile& profile) const {
  std::size_t m = 1;
  while (m < params_.max_machines_per_job &&
         profile.t_cpu(m + 1) >= params_.cpu_bias * profile.t_net) {
    ++m;
  }
  return m;
}

core::ScheduleDecision IsolatedScheduler::schedule(std::span<const core::SchedJob> jobs,
                                                   std::size_t machines) const {
  core::ScheduleDecision decision;
  std::size_t free = machines;
  std::vector<core::GroupShape> shapes;
  for (const core::SchedJob& job : jobs) {
    if (free == 0) break;
    const std::size_t want = pick_dop(job.profile);
    const std::size_t granted = std::min(want, free);
    core::GroupPlan plan;
    plan.jobs = {job.id};
    plan.machines = granted;
    decision.groups.push_back(std::move(plan));
    shapes.push_back(core::GroupShape{{job.profile}, granted});
    free -= granted;
    ++decision.jobs_scheduled;
  }
  decision.predicted_util = core::PerfModel::cluster_utilization(shapes);
  return decision;
}

}  // namespace harmony::baselines
