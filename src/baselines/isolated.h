// Isolated baseline (§V-A): every job runs alone on a dedicated, disjoint set
// of machines — the Optimus/SLAQ-style allocation. The policy maximizes each
// job's CPU utilization (the quantity that actually advances training) by
// keeping DoP low enough that COMP dominates COMM, and queues jobs FIFO when
// machines run out.
#pragma once

#include <span>
#include <vector>

#include "harmony/scheduler.h"

namespace harmony::baselines {

class IsolatedScheduler {
 public:
  struct Params {
    // A job's DoP is the largest m with t_cpu(m) >= cpu_bias * t_net: raising
    // the bias trades parallelism for CPU utilization.
    double cpu_bias = 1.5;
    std::size_t max_machines_per_job = 32;
  };

  IsolatedScheduler() : IsolatedScheduler(Params{}) {}
  explicit IsolatedScheduler(Params params) : params_(params) {}

  // Largest DoP that keeps the job CPU-dominant (>= 1).
  std::size_t pick_dop(const core::JobProfile& profile) const;

  // Greedily places jobs (queue order) onto `machines`; jobs that don't fit
  // are left out of the decision (they wait). Every group holds one job.
  core::ScheduleDecision schedule(std::span<const core::SchedJob> jobs,
                                  std::size_t machines) const;

 private:
  Params params_;
};

}  // namespace harmony::baselines
