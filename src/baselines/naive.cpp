#include "baselines/naive.h"

#include <algorithm>

namespace harmony::baselines {

core::ScheduleDecision NaiveScheduler::schedule(std::span<const core::SchedJob> jobs,
                                                std::size_t machines,
                                                std::uint64_t seed) const {
  core::ScheduleDecision decision;
  if (jobs.empty() || machines == 0) return decision;

  std::vector<core::SchedJob> shuffled(jobs.begin(), jobs.end());
  Rng rng(seed);
  rng.shuffle(shuffled);

  const std::size_t per_group = std::max<std::size_t>(1, params_.jobs_per_group);
  const std::size_t num_groups =
      std::min(machines, (shuffled.size() + per_group - 1) / per_group);

  std::vector<std::vector<core::SchedJob>> groups(num_groups);
  for (std::size_t i = 0; i < shuffled.size(); ++i)
    groups[i / per_group % num_groups].push_back(shuffled[i]);

  // Even machine split, remainder to the front groups.
  const std::size_t base = machines / num_groups;
  const std::size_t extra = machines % num_groups;

  std::vector<core::GroupShape> shapes;
  for (std::size_t g = 0; g < num_groups; ++g) {
    core::GroupPlan plan;
    plan.machines = base + (g < extra ? 1 : 0);
    core::GroupShape shape;
    shape.machines = plan.machines;
    for (const core::SchedJob& j : groups[g]) {
      plan.jobs.push_back(j.id);
      shape.jobs.push_back(j.profile);
      ++decision.jobs_scheduled;
    }
    decision.groups.push_back(std::move(plan));
    shapes.push_back(std::move(shape));
  }
  decision.predicted_util = core::PerfModel::cluster_utilization(shapes);
  return decision;
}

}  // namespace harmony::baselines
