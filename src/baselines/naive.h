// Naive co-location baseline (§V-A): jobs share machine pools without any
// subtask coordination or model-driven grouping — the Gandiva-style black-box
// approach. Groupings are arbitrary (seeded shuffles); the evaluation runs
// many of them and reports best/average/worst, exactly as the paper does.
#pragma once

#include <span>

#include "common/rng.h"
#include "harmony/scheduler.h"

namespace harmony::baselines {

class NaiveScheduler {
 public:
  struct Params {
    // Co-location degree: how many jobs share one machine pool.
    std::size_t jobs_per_group = 3;
  };

  NaiveScheduler() : NaiveScheduler(Params{}) {}
  explicit NaiveScheduler(Params params) : params_(params) {}

  // Shuffles jobs with `seed` and chops them into groups of jobs_per_group;
  // machines are split evenly. Different seeds give the different "possible
  // cases" whose best/worst the paper reports.
  core::ScheduleDecision schedule(std::span<const core::SchedJob> jobs, std::size_t machines,
                                  std::uint64_t seed) const;

 private:
  Params params_;
};

}  // namespace harmony::baselines
