#include "baselines/oracle.h"

#include <stdexcept>
#include <vector>

namespace harmony::baselines {

OracleScheduler::OracleScheduler(Params params)
    : params_(params),
      model_(params.model),
      allocator_(core::Scheduler::Params{.max_swap_rounds = 64,
                                         .growth_patience = 6,
                                         .model = params.model}) {}

core::ScheduleDecision OracleScheduler::schedule(std::span<const core::SchedJob> jobs,
                                                 std::size_t machines) const {
  if (jobs.size() > params_.max_jobs)
    throw std::invalid_argument("OracleScheduler: too many jobs for exhaustive search");
  examined_ = 0;

  core::ScheduleDecision best;
  best.score = -1e300;

  // Enumerate set-partitions with the restricted-growth-string method: job i
  // goes into block assignment[i], where assignment[i] <= max(assignment[0..i-1]) + 1.
  std::vector<std::size_t> assignment(jobs.size(), 0);

  auto evaluate = [&]() {
    ++examined_;
    std::size_t blocks = 0;
    for (std::size_t a : assignment) blocks = std::max(blocks, a + 1);
    if (blocks > machines) return;  // each group needs >= 1 machine

    std::vector<std::vector<core::SchedJob>> groups(blocks);
    for (std::size_t i = 0; i < assignment.size(); ++i)
      groups[assignment[i]].push_back(jobs[i]);

    const auto alloc = allocator_.allocate_machines(groups, machines);
    std::vector<core::GroupShape> shapes;
    shapes.reserve(blocks);
    for (std::size_t g = 0; g < blocks; ++g) {
      core::GroupShape s;
      s.machines = alloc[g];
      for (const core::SchedJob& j : groups[g]) s.jobs.push_back(j.profile);
      shapes.push_back(std::move(s));
    }
    const double score = model_.score(shapes);
    if (score > best.score) {
      best.score = score;
      best.predicted_util = core::PerfModel::cluster_utilization(shapes);
      best.groups.clear();
      best.jobs_scheduled = assignment.size();
      for (std::size_t g = 0; g < blocks; ++g) {
        core::GroupPlan plan;
        plan.machines = alloc[g];
        for (const core::SchedJob& j : groups[g]) plan.jobs.push_back(j.id);
        best.groups.push_back(std::move(plan));
      }
    }
  };

  if (jobs.empty()) return best;

  // Like Algorithm 1, the scheduler may choose to run only a prefix of the
  // queue; the ground truth must search that dimension too. For each prefix
  // length, enumerate all set-partitions of the prefix via restricted-growth
  // strings (position i may increment iff assignment[i] <= max of its prefix).
  for (std::size_t prefix = 1; prefix <= jobs.size(); ++prefix) {
    assignment.assign(prefix, 0);
    auto next_partition = [&assignment]() -> bool {
      for (std::size_t i = assignment.size(); i-- > 1;) {
        std::size_t prefix_max = 0;
        for (std::size_t k = 0; k < i; ++k) prefix_max = std::max(prefix_max, assignment[k]);
        if (assignment[i] <= prefix_max) {
          ++assignment[i];
          std::fill(assignment.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    assignment.end(), 0);
          return true;
        }
      }
      return false;
    };
    evaluate();
    while (next_partition()) evaluate();
  }
  return best;
}

}  // namespace harmony::baselines
