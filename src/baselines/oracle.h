// Oracle (§V-F): exhaustive search over all set-partitions of the job pool
// (and greedy machine allocation per partition) for the grouping that
// maximizes modelled cluster utilization. Exponential — the ground truth the
// scalable scheduler is compared against, feasible only for small job counts.
#pragma once

#include <cstdint>
#include <span>

#include "harmony/scheduler.h"

namespace harmony::baselines {

class OracleScheduler {
 public:
  struct Params {
    // Refuses inputs beyond this size (Bell numbers explode; Bell(12) ≈ 4.2M
    // partitions is already seconds of work).
    std::size_t max_jobs = 12;
    core::PerfModel::Params model;
  };

  OracleScheduler() : OracleScheduler(Params{}) {}
  explicit OracleScheduler(Params params);

  core::ScheduleDecision schedule(std::span<const core::SchedJob> jobs,
                                  std::size_t machines) const;

  // Number of set-partitions examined by the last schedule() call.
  std::uint64_t partitions_examined() const noexcept { return examined_; }

 private:
  Params params_;
  core::PerfModel model_;
  core::Scheduler allocator_;  // reused for its machine-allocation step
  mutable std::uint64_t examined_ = 0;
};

}  // namespace harmony::baselines
