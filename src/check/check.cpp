#include "check/check.h"

#include "common/logging.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace harmony::check {

namespace {

std::string entity_suffix(const FailureReport& r) {
  std::string out;
  if (r.job != kNoEntity) out += " job " + std::to_string(r.job);
  if (r.group != kNoEntity) out += " group " + std::to_string(r.group);
  if (r.machine != kNoEntity) out += " machine " + std::to_string(r.machine);
  if (!out.empty()) out = " [" + out.substr(1) + "]";
  return out;
}

}  // namespace

std::string FailureReport::to_string() const {
  std::string out = file + ":" + std::to_string(line) + ": ";
  if (!validator.empty()) out += "[" + validator + "] ";
  out += "CHECK(" + expression + ") failed" + entity_suffix(*this);
  if (!message.empty()) out += ": " + message;
  return out;
}

CheckError::CheckError(FailureReport report)
    : std::logic_error(report.to_string()), report_(std::move(report)) {}

void fail(FailureReport report) {
  obs::MetricsRegistry::instance().counter("check.failures").add();
  HLOG(kError) << report.to_string();
  // The black box pulls its own handle: if a recorder is armed, the bundle
  // lands on disk before the exception starts unwinding.
  obs::FlightRecorder::instance().on_check_failure(report.to_string(), report.validator);
  throw CheckError(std::move(report));
}

void report_soft_failure(const FailureReport& report) {
  obs::MetricsRegistry::instance().counter("check.validation_failures").add();
  HLOG(kError) << report.to_string();
}

std::string ValidationReport::to_string() const {
  std::string out;
  for (const FailureReport& f : failures) out += f.to_string() + "\n";
  return out;
}

bool ValidationReport::mentions(std::string_view needle) const {
  for (const FailureReport& f : failures)
    if (f.message.find(needle) != std::string::npos ||
        f.expression.find(needle) != std::string::npos)
      return true;
  return false;
}

void Validation::merge(const Validation& other) {
  report_.checks_run += other.report_.checks_run;
  report_.failures.insert(report_.failures.end(), other.report_.failures.begin(),
                          other.report_.failures.end());
}

namespace detail {

FailureBuilder::FailureBuilder(const char* file, int line, const char* expr, Validation* sink)
    : sink_(sink) {
  report_.file = file;
  report_.line = line;
  report_.expression = expr;
  if (sink_ != nullptr) report_.validator = sink_->name();
}

FailureBuilder::~FailureBuilder() noexcept(false) {
  report_.message = stream_.str();
  if (sink_ == nullptr) fail(std::move(report_));  // throws
  report_soft_failure(report_);
  sink_->report().failures.push_back(std::move(report_));
}

bool expect(Validation& v, bool ok) noexcept {
  ++v.report().checks_run;
  return ok;
}

}  // namespace detail
}  // namespace harmony::check
