// Invariant-checking layer (machine-checked correctness, not test-by-anecdote).
//
// Two usage modes share one report format:
//
//  * HARMONY_CHECK(cond) << "context";   — hard invariant. On failure it
//    builds a structured FailureReport (file:line, stringified expression,
//    streamed message, optional job/group/machine ids), routes it through the
//    observability layer (check.failures counter + an error log line) and
//    throws CheckError. Always compiled in; the passing path is one branch.
//
//  * HARMONY_DCHECK(cond) << "context";  — debug-only variant. Identical in
//    debug builds, compiles to nothing (condition unevaluated) under NDEBUG.
//    For checks on hot paths — event-loop pops, per-subtask bookkeeping.
//
//  * Validation / HARMONY_VALIDATE(v, cond) << "context"; — soft mode for the
//    deep validators: failures accumulate in a ValidationReport instead of
//    throwing, so one corrupted index entry does not mask an over-allocated
//    machine discovered two checks later. Corruption-injection tests assert
//    against the collected reports.
//
// Entity tags attach ids to a report from inside the stream:
//
//   HARMONY_CHECK(m <= cap) << check::machine(i) << "over-allocated: " << m;
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace harmony::check {

inline constexpr std::uint32_t kNoEntity = 0xffffffffu;

// Entity tags streamed into a failing check to identify the subject.
struct JobTag {
  std::uint32_t id;
};
struct GroupTag {
  std::uint32_t id;
};
struct MachineTag {
  std::uint32_t id;
};
inline JobTag job(std::uint64_t id) noexcept { return {static_cast<std::uint32_t>(id)}; }
inline GroupTag group(std::uint64_t id) noexcept { return {static_cast<std::uint32_t>(id)}; }
inline MachineTag machine(std::uint64_t id) noexcept {
  return {static_cast<std::uint32_t>(id)};
}

// True when `value` is no worse than `reference` minus a relative slack:
// value >= reference - slack * |reference| (with a tiny absolute floor so
// near-zero references do not demand exact equality). The comparison the
// bounded-equivalence validators use: an approximation may trail the exact
// answer, but only by the documented fraction.
inline bool within_relative_slack(double value, double reference, double slack) noexcept {
  const double tolerance = slack * (reference < 0 ? -reference : reference) + 1e-12;
  return value >= reference - tolerance;
}

struct FailureReport {
  std::string file;
  int line = 0;
  std::string expression;  // stringified failing condition
  std::string message;     // streamed context
  std::string validator;   // owning validator name (empty for bare checks)
  std::uint32_t job = kNoEntity;
  std::uint32_t group = kNoEntity;
  std::uint32_t machine = kNoEntity;

  // "file:line: CHECK(expr) failed [job 3 group 1]: message"
  std::string to_string() const;
};

// Thrown by HARMONY_CHECK / HARMONY_DCHECK.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(FailureReport report);
  const FailureReport& report() const noexcept { return report_; }

 private:
  FailureReport report_;
};

// Routes the report through obs (check.failures counter, error log line) and
// throws CheckError. Exposed so non-macro call sites can reuse the plumbing.
[[noreturn]] void fail(FailureReport report);

// Routes a non-fatal (validator-collected) failure through obs.
void report_soft_failure(const FailureReport& report);

// ---------------------------------------------------------------------------
// Soft mode: validators collect failures instead of throwing.

struct ValidationReport {
  std::vector<FailureReport> failures;
  std::size_t checks_run = 0;

  bool ok() const noexcept { return failures.empty(); }
  // One line per failure; "" when ok.
  std::string to_string() const;
  // True if any failure message/expression contains `needle` (test helper).
  bool mentions(std::string_view needle) const;
};

class Validation {
 public:
  explicit Validation(std::string validator_name) : name_(std::move(validator_name)) {}

  const std::string& name() const noexcept { return name_; }
  ValidationReport& report() noexcept { return report_; }
  const ValidationReport& report() const noexcept { return report_; }
  bool ok() const noexcept { return report_.ok(); }

  // Merges another validator's results into this one.
  void merge(const Validation& other);

 private:
  std::string name_;
  ValidationReport report_;
};

namespace detail {

// Builds a FailureReport from streamed values; the destructor delivers it —
// throwing for hard checks, appending to a Validation for soft checks. Only
// ever constructed on the failure path, so the throwing destructor cannot
// run during unwinding of another exception.
class FailureBuilder {
 public:
  FailureBuilder(const char* file, int line, const char* expr)
      : FailureBuilder(file, line, expr, nullptr) {}
  FailureBuilder(const char* file, int line, const char* expr, Validation* sink);
  FailureBuilder(const FailureBuilder&) = delete;
  FailureBuilder& operator=(const FailureBuilder&) = delete;
  ~FailureBuilder() noexcept(false);

  FailureBuilder& operator<<(JobTag tag) {
    report_.job = tag.id;
    return *this;
  }
  FailureBuilder& operator<<(GroupTag tag) {
    report_.group = tag.id;
    return *this;
  }
  FailureBuilder& operator<<(MachineTag tag) {
    report_.machine = tag.id;
    return *this;
  }
  template <typename T>
  FailureBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  FailureReport report_;
  std::ostringstream stream_;
  Validation* sink_;  // null = hard check (throw)
};

// Lower precedence than <<, so `Voidify() & builder << a << b` consumes the
// whole stream chain and gives the conditional operator a void arm.
struct Voidify {
  void operator&(FailureBuilder&) const noexcept {}
  void operator&(FailureBuilder&&) const noexcept {}
};

// Soft-mode entry: counts the check, returns whether the failure path runs.
bool expect(Validation& v, bool ok) noexcept;

}  // namespace detail
}  // namespace harmony::check

// Hard invariant; always compiled. Streams context: HARMONY_CHECK(x) << "...".
#define HARMONY_CHECK(cond)                               \
  (cond) ? (void)0                                        \
         : ::harmony::check::detail::Voidify() &          \
               ::harmony::check::detail::FailureBuilder(__FILE__, __LINE__, #cond)

// Debug-only invariant; the condition is not evaluated under NDEBUG.
#ifdef NDEBUG
#define HARMONY_DCHECK(cond)                              \
  (true || (cond)) ? (void)0                              \
                   : ::harmony::check::detail::Voidify() &\
                         ::harmony::check::detail::FailureBuilder(__FILE__, __LINE__, #cond)
#else
#define HARMONY_DCHECK(cond) HARMONY_CHECK(cond)
#endif

// Soft check inside a validator: records into `validation` instead of
// throwing. Evaluates `cond` exactly once.
#define HARMONY_VALIDATE(validation, cond)                \
  ::harmony::check::detail::expect((validation), (cond))  \
      ? (void)0                                           \
      : ::harmony::check::detail::Voidify() &             \
            ::harmony::check::detail::FailureBuilder(__FILE__, __LINE__, #cond, &(validation))
