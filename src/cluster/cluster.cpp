#include "cluster/cluster.h"

#include <algorithm>
#include <cassert>

namespace harmony::cluster {

Cluster::Cluster(std::size_t n, MachineSpec spec) : spec_(spec) {
  machines_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    machines_.push_back(Machine{static_cast<MachineId>(i), spec});
  owners_.assign(n, kUnassigned);
}

std::size_t Cluster::free_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(owners_.begin(), owners_.end(), kUnassigned));
}

std::optional<std::vector<MachineId>> Cluster::allocate(std::size_t n, GroupId group) {
  assert(group != kUnassigned);
  if (free_count() < n) return std::nullopt;
  std::vector<MachineId> granted;
  granted.reserve(n);
  for (MachineId id = 0; id < owners_.size() && granted.size() < n; ++id) {
    if (owners_[id] == kUnassigned) {
      owners_[id] = group;
      granted.push_back(id);
    }
  }
  return granted;
}

void Cluster::release(const std::vector<MachineId>& ids, GroupId group) {
  for (MachineId id : ids) {
    assert(owners_.at(id) == group && "releasing a machine owned by another group");
    (void)group;
    owners_[id] = kUnassigned;
  }
}

std::vector<MachineId> Cluster::machines_of(GroupId group) const {
  std::vector<MachineId> out;
  for (MachineId id = 0; id < owners_.size(); ++id)
    if (owners_[id] == group) out.push_back(id);
  return out;
}

}  // namespace harmony::cluster
