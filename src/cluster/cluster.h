// Cluster: the pool of machines a scheduler hands out to job groups.
//
// Allocation is tracked per machine so the experiment harness can render
// machine-level utilization and so migration can move groups between disjoint
// machine sets exactly as Harmony's master does.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/machine.h"

namespace harmony::cluster {

using GroupId = std::uint32_t;
constexpr GroupId kUnassigned = UINT32_MAX;

class Cluster {
 public:
  // A homogeneous cluster of `n` machines (the paper's setting).
  Cluster(std::size_t n, MachineSpec spec = {});

  std::size_t size() const noexcept { return machines_.size(); }
  const MachineSpec& spec() const noexcept { return spec_; }
  const Machine& machine(MachineId id) const { return machines_.at(id); }

  std::size_t free_count() const noexcept;

  // Claims `n` free machines for `group`; returns nullopt (and changes
  // nothing) if fewer than `n` are free.
  std::optional<std::vector<MachineId>> allocate(std::size_t n, GroupId group);

  // Returns machines to the free pool. It is an error (assert) to release a
  // machine a different group owns.
  void release(const std::vector<MachineId>& ids, GroupId group);

  GroupId owner(MachineId id) const { return owners_.at(id); }
  std::vector<MachineId> machines_of(GroupId group) const;

 private:
  MachineSpec spec_;
  std::vector<Machine> machines_;
  std::vector<GroupId> owners_;
};

}  // namespace harmony::cluster
