#include "cluster/machine.h"

#include <sstream>

namespace harmony::cluster {

std::string describe(const MachineSpec& spec) {
  std::ostringstream out;
  out << spec.cores << "c/" << spec.memory_bytes / kGiB << "GiB/"
      << spec.nic_bytes_per_sec / kMiB << "MiBps-net/" << spec.disk_bytes_per_sec / kMiB
      << "MiBps-disk";
  return out.str();
}

}  // namespace harmony::cluster
