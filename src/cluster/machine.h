// Machine and cluster hardware description.
//
// Defaults mirror the paper's testbed: m4.2xlarge instances with 8 vCPUs,
// 32 GB of memory and a 1.1 Gbps NIC (§V-B). Each instance co-locates one
// server and one worker; one extra instance runs the master.
#pragma once

#include <cstdint>
#include <string>

namespace harmony::cluster {

using MachineId = std::uint32_t;

constexpr double kKiB = 1024.0;
constexpr double kMiB = 1024.0 * kKiB;
constexpr double kGiB = 1024.0 * kMiB;

struct MachineSpec {
  int cores = 8;
  double memory_bytes = 32.0 * kGiB;
  // 1.1 Gbps expressed in bytes/second.
  double nic_bytes_per_sec = 1.1e9 / 8.0;
  // EBS-style volume; bounds how fast spilled input blocks can be reloaded.
  double disk_bytes_per_sec = 160.0 * kMiB;

  bool operator==(const MachineSpec&) const = default;
};

struct Machine {
  MachineId id = 0;
  MachineSpec spec;
};

// Formats "8c/32.0GiB/137.5MiB/s" style identifiers for logs and tables.
std::string describe(const MachineSpec& spec);

}  // namespace harmony::cluster
