#include "cluster/memory_model.h"

// Header-only today; this TU anchors the library target and keeps room for
// calibration tables without touching the public header.
