// Managed-runtime memory-pressure model.
//
// The paper runs on the JVM, where two failure modes motivate the spill/reload
// mechanism (§II-B, §IV-C): garbage-collection overhead grows as the heap
// fills, and exceeding the heap kills the job with an OOM error. We model GC
// overhead as a multiplicative slowdown on compute that is 1 below a pressure
// threshold and grows superlinearly as occupancy approaches 1:
//
//     slowdown(occ) = 1 + k * ((occ - θ)⁺ / (1 - occ + ε))²
//
// This gives the α hill-climber a smooth but sharply-rising cost for keeping
// too much data resident, matching the paper's observation that "when α is too
// low, GC explodes" (§V-G).
#pragma once

#include <algorithm>

namespace harmony::cluster {

struct MemoryModelParams {
  // Occupancy where GC overhead becomes measurable. JVM collectors typically
  // stay cheap until the old generation passes ~70 % of the heap.
  double gc_threshold = 0.70;
  // Scales how fast the slowdown grows past the threshold (at occupancy 0.93
  // the default curve costs ~1.6x, approaching ~4x right at the OOM edge).
  double gc_steepness = 0.35;
  // Keeps the slowdown finite exactly at occupancy 1.
  double epsilon = 0.10;
  // Occupancy above which allocation fails (OOM). The slack below 1.0
  // reflects non-heap overheads (metaspace, direct buffers, OS).
  double oom_occupancy = 0.95;

  bool operator==(const MemoryModelParams&) const = default;
};

class MemoryModel {
 public:
  explicit MemoryModel(MemoryModelParams params = {}) : params_(params) {}

  // Multiplicative compute slowdown at `occupancy` = resident/capacity.
  double gc_slowdown(double occupancy) const noexcept {
    const double occ = std::clamp(occupancy, 0.0, 1.0);
    const double over = occ - params_.gc_threshold;
    if (over <= 0.0) return 1.0;
    const double ratio = over / (1.0 - occ + params_.epsilon);
    return 1.0 + params_.gc_steepness * ratio * ratio;
  }

  // Fraction of wall time lost to GC at `occupancy` (reported like the paper's
  // "GC time during execution").
  double gc_time_fraction(double occupancy) const noexcept {
    const double s = gc_slowdown(occupancy);
    return 1.0 - 1.0 / s;
  }

  bool oom(double occupancy) const noexcept { return occupancy > params_.oom_occupancy; }

  const MemoryModelParams& params() const noexcept { return params_; }

 private:
  MemoryModelParams params_;
};

}  // namespace harmony::cluster
