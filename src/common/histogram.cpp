#include "common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace harmony {

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double SampleSet::quantile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  const auto count = std::count_if(samples_.begin(), samples_.end(),
                                   [x](double s) { return s <= x; });
  return static_cast<double>(count) / static_cast<double>(samples_.size());
}

std::string SampleSet::cdf_table(std::size_t points) const {
  std::ostringstream out;
  if (samples_.empty() || points == 0) return out.str();
  const double lo = min();
  const double hi = max();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1 ? points - 1 : 1);
    out << x << '\t' << cdf_at(x) << '\n';
  }
  return out.str();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  const double clamped = std::clamp(x, lo_, std::nextafter(hi_, lo_));
  const auto idx = static_cast<std::size_t>((clamped - lo_) / (hi_ - lo_) *
                                            static_cast<double>(counts_.size()));
  counts_[std::min(idx, counts_.size() - 1)]++;
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream out;
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    out << '[' << bin_lo(i) << ", " << bin_hi(i) << ") ";
    out << std::string(bar, '#') << ' ' << counts_[i] << '\n';
  }
  return out.str();
}

}  // namespace harmony
