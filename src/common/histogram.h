// Sample collections with quantile/CDF reporting, used to print the paper's
// cumulative-distribution figures (Fig. 9, Fig. 12).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace harmony {

// Stores raw samples; quantiles are computed on demand (sizes here are small:
// tens to a few thousand scheduling decisions).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }

  std::size_t size() const noexcept { return samples_.size(); }
  bool empty() const noexcept { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  // Linear-interpolated quantile, q in [0, 1].
  double quantile(double q) const;

  // Fraction of samples <= x (empirical CDF).
  double cdf_at(double x) const;

  const std::vector<double>& samples() const noexcept { return samples_; }

  // Renders "x<TAB>F(x)" rows at `points` evenly spaced x positions spanning
  // [min, max]; the format the bench binaries print for CDF figures.
  std::string cdf_table(std::size_t points = 20) const;

 private:
  std::vector<double> samples_;
};

// Equal-width bin histogram for utilization traces.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const noexcept { return total_; }
  const std::vector<std::size_t>& bins() const noexcept { return counts_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  std::string ascii(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace harmony
