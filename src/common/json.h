// Minimal recursive-descent JSON parser.
//
// Just enough of RFC 8259 for the documents this project itself emits and
// consumes (Chrome traces, metrics snapshots, bench reports, run reports):
// objects, arrays, strings with the common escapes, numbers, true/false/null.
// Throws std::runtime_error on malformed input, which makes "the file is
// valid JSON" a one-line assertion.
//
// Header-only and dependency-free; promoted from tests/json_mini.h so the
// trace analysis engine and the harmony-report CLI can read exported traces
// back in. Objects are std::map, so iteration order is key-sorted — parsing
// and re-emitting a document is deterministic.
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace harmony::json {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

class JsonValue {
 public:
  using Storage =
      std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>;

  JsonValue() : v_(nullptr) {}
  explicit JsonValue(Storage v) : v_(std::move(v)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(v_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }

  const JsonObject& object() const { return get<JsonObject>("object"); }
  const JsonArray& array() const { return get<JsonArray>("array"); }
  const std::string& string() const { return get<std::string>("string"); }
  double number() const { return get<double>("number"); }
  bool boolean() const { return get<bool>("bool"); }

  bool contains(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const {
    const auto& obj = object();
    auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("json: missing key '" + key + "'");
    return it->second;
  }

 private:
  template <typename T>
  const T& get(const char* what) const {
    if (!std::holds_alternative<T>(v_))
      throw std::runtime_error(std::string("json: value is not a ") + what);
    return std::get<T>(v_);
  }

  Storage v_;
};

// GCC 12's -Wmaybe-uninitialized misfires on the std::variant moves inlined
// through the recursive descent below (the variant is always engaged before
// use); scoped suppression so the warning stays live everywhere else.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

class JsonParser {
 public:
  static JsonValue parse(const std::string& text) {
    JsonParser p(text);
    JsonValue v = p.parse_value();
    p.skip_ws();
    if (p.pos_ != text.size()) p.fail("trailing garbage");
    return v;
  }

 private:
  explicit JsonParser(const std::string& text) : text_(text) {}

  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(JsonValue::Storage(parse_string()));
    if (c == 't') {
      if (!consume_literal("true")) fail("bad literal");
      return JsonValue(JsonValue::Storage(true));
    }
    if (c == 'f') {
      if (!consume_literal("false")) fail("bad literal");
      return JsonValue(JsonValue::Storage(false));
    }
    if (c == 'n') {
      if (!consume_literal("null")) fail("bad literal");
      return JsonValue();
    }
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(JsonValue::Storage(std::move(obj)));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue(JsonValue::Storage(std::move(obj)));
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(JsonValue::Storage(std::move(arr)));
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue(JsonValue::Storage(std::move(arr)));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          // The emitters only write ASCII; keep the raw escape readable.
          out += "\\u" + text_.substr(pos_, 4);
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("bad exponent");
    }
    return JsonValue(JsonValue::Storage(std::stod(text_.substr(start, pos_ - start))));
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

inline JsonValue parse_json(const std::string& text) { return JsonParser::parse(text); }

}  // namespace harmony::json
