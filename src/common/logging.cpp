#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace harmony::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};

const char* level_name(Level l) noexcept {
  switch (l) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

}  // namespace

void set_level(Level level) noexcept { g_level.store(level, std::memory_order_relaxed); }

Level level() noexcept { return g_level.load(std::memory_order_relaxed); }

void emit(Level level, std::string_view message) {
  using clock = std::chrono::system_clock;
  const auto now = clock::now().time_since_epoch();
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::string line;
  line.reserve(message.size() + 32);
  line += '[';
  line += level_name(level);
  line += ' ';
  line += std::to_string(ms % 100000000);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace harmony::log
