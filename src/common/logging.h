// Minimal leveled logger used across the Harmony libraries.
//
// The logger writes to stderr and is safe to call from multiple threads; each
// log line is assembled in a local buffer and emitted with a single write so
// lines from concurrent threads never interleave.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace harmony::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Sets the global minimum level; messages below it are dropped. Thread-safe.
void set_level(Level level) noexcept;
Level level() noexcept;

// Emits one formatted log line (used by the Logger helper below).
void emit(Level level, std::string_view message);

namespace detail {

// Stream-style log-line builder; flushes on destruction.
class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { emit(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};

// Sink that swallows everything when the level is disabled.
struct NullBuilder {
  template <typename T>
  NullBuilder& operator<<(const T&) {
    return *this;
  }
};

}  // namespace detail

inline bool enabled(Level l) noexcept { return l >= level(); }

}  // namespace harmony::log

// Usage: HLOG(kInfo) << "scheduled " << n << " jobs";
#define HLOG(severity)                                                \
  if (!::harmony::log::enabled(::harmony::log::Level::severity)) {   \
  } else                                                              \
    ::harmony::log::detail::LineBuilder(::harmony::log::Level::severity)
