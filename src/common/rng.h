// Deterministic random-number utilities. Every stochastic component in the
// simulator takes an explicit Rng so experiments are reproducible from a seed.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

namespace harmony {

// Thin wrapper over mt19937_64 with the distributions the project needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  // Splits off an independent stream; used to give each job/machine its own
  // generator so adding one component does not perturb the draws of another.
  Rng fork() { return Rng(engine_()); }

  std::uint64_t next_u64() { return engine_(); }

  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Multiplicative noise factor with E[x] = 1; cv is the coefficient of
  // variation. Used to jitter subtask durations in the simulator.
  double lognormal_noise(double cv) {
    if (cv <= 0.0) return 1.0;
    const double sigma2 = std::log(1.0 + cv * cv);
    const double mu = -0.5 * sigma2;
    return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine_);
  }

  double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Zipf-distributed integer in [0, n). Used by the bag-of-words generator to
  // mimic natural-language token frequencies.
  std::size_t zipf(std::size_t n, double exponent) {
    // Rejection-inversion sampling (Hörmann & Derflinger) is overkill for our
    // sizes; a cached CDF per (n, exponent) would cost memory per call site.
    // We use the simple inverse-power transform approximation, which matches
    // a Zipf tail closely enough for workload shaping.
    assert(n > 0);
    const double u = uniform(std::nextafter(0.0, 1.0), 1.0);
    const double x = std::pow(u, -1.0 / exponent);  // Pareto(>1)
    const auto idx = static_cast<std::size_t>(x - 1.0);
    return idx < n ? idx : n - 1;
  }

  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  // Always seeded by the constructor; this class is the sanctioned
  // randomness facade.
  std::mt19937_64 engine_;  // lint: allow-nondeterminism
};

}  // namespace harmony
