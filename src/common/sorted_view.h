// Deterministic iteration over unordered associative containers.
//
// Hash-table iteration order is a function of bucket count, hash seed and
// insertion history — never part of the determinism contract. Any loop over
// an unordered_map/unordered_set whose body *escapes* values (accumulates a
// float, appends to a vector, emits a trace line) leaks that order into
// results. tools/detlint.py flags such loops; routing them through
// sorted_view() restores a canonical (key-sorted) order at the cost of one
// pointer sort, which is fine for the cold paths (validators, teardown,
// reporting) where these loops belong. Hot paths should switch the container
// itself to ordered_map instead.
//
//   for (const auto& [job, bytes] : common::sorted_view(sizes_)) { ... }
//
// The view holds pointers into the container: it must not outlive the
// container, and the container must not be mutated while the view is alive.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

namespace harmony::common {

namespace detail {

// Key of a container element: .first for map value_types, the value itself
// for set value_types.
template <typename V>
constexpr const auto& view_key(const V& v) {
  if constexpr (requires { v.first; }) {
    return v.first;
  } else {
    return v;
  }
}

}  // namespace detail

template <typename Container, typename Less>
class SortedView {
 public:
  using value_type = typename Container::value_type;

  SortedView(const Container& c, Less less) {
    items_.reserve(c.size());
    // detlint: sorted-iteration(collect-then-sort is the view's whole point)
    for (const auto& v : c) items_.push_back(&v);
    std::sort(items_.begin(), items_.end(), [&less](const value_type* a, const value_type* b) {
      return less(detail::view_key(*a), detail::view_key(*b));
    });
  }

  struct Iterator {
    const value_type* const* p = nullptr;
    const value_type& operator*() const { return **p; }
    const value_type* operator->() const { return *p; }
    Iterator& operator++() {
      ++p;
      return *this;
    }
    bool operator!=(const Iterator& o) const { return p != o.p; }
    bool operator==(const Iterator& o) const { return p == o.p; }
  };

  Iterator begin() const { return Iterator{items_.data()}; }
  Iterator end() const { return Iterator{items_.data() + items_.size()}; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  std::vector<const value_type*> items_;
};

// Key-sorted, reference-semantics view of an unordered container. Iterating
// the view yields the container's value_type (pairs for maps) in ascending
// key order under `less`.
template <typename Container, typename Less = std::less<>>
SortedView<Container, Less> sorted_view(const Container& c, Less less = Less{}) {
  return SortedView<Container, Less>(c, less);
}

// Sorted copy of a container's keys (maps) or values (sets); handy when the
// loop needs to mutate the container while walking it.
template <typename Container, typename Less = std::less<>>
auto sorted_keys(const Container& c, Less less = Less{}) {
  using Key = std::remove_cvref_t<decltype(detail::view_key(*c.begin()))>;
  std::vector<Key> keys;
  keys.reserve(c.size());
  // detlint: sorted-iteration(collect-then-sort is the view's whole point)
  for (const auto& v : c) keys.push_back(detail::view_key(v));
  std::sort(keys.begin(), keys.end(), less);
  return keys;
}

// The drop-in alternative for hot paths: an ordered map whose iteration
// order is the key order by construction. Prefer this over sorting per walk
// when the container is iterated more often than it is mutated.
template <typename K, typename V, typename Less = std::less<K>>
using ordered_map = std::map<K, V, Less>;

}  // namespace harmony::common
