#include "common/stats.h"

#include <algorithm>

namespace harmony {

void OnlineStats::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double relative_error(double actual, double reference, double eps) noexcept {
  const double denom = std::max(std::abs(reference), eps);
  return std::abs(actual - reference) / denom;
}

}  // namespace harmony
