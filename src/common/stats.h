// Online statistics used by the profiler and the experiment harness.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <deque>
#include <limits>

namespace harmony {

// Welford's online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x) noexcept;
  void merge(const OnlineStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Exponentially-weighted moving average. The paper's profiler keeps subtask
// times "updated using moving averages" (§IV-B1); this is that primitive.
class MovingAverage {
 public:
  // `alpha` is the weight of a new sample; alpha=1 keeps only the last value.
  explicit MovingAverage(double alpha = 0.3) : alpha_(alpha) {
    assert(alpha > 0.0 && alpha <= 1.0);
  }

  void add(double x) noexcept {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
    ++count_;
  }

  bool initialized() const noexcept { return initialized_; }
  double value() const noexcept { return value_; }
  std::size_t count() const noexcept { return count_; }

  void reset() noexcept {
    initialized_ = false;
    value_ = 0.0;
    count_ = 0;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
  std::size_t count_ = 0;
};

// Fixed-capacity sliding-window mean; used where a bounded memory footprint
// matters (per-subtask traces on workers).
class WindowedAverage {
 public:
  explicit WindowedAverage(std::size_t capacity) : capacity_(capacity) { assert(capacity > 0); }

  void add(double x) {
    window_.push_back(x);
    sum_ += x;
    if (window_.size() > capacity_) {
      sum_ -= window_.front();
      window_.pop_front();
    }
  }

  std::size_t size() const noexcept { return window_.size(); }
  bool empty() const noexcept { return window_.empty(); }
  double mean() const noexcept {
    return window_.empty() ? 0.0 : sum_ / static_cast<double>(window_.size());
  }

 private:
  std::size_t capacity_;
  std::deque<double> window_;
  double sum_ = 0.0;
};

// Relative error |a-b| / max(|b|, eps); the paper's 5 % similarity and benefit
// thresholds are expressed with this.
double relative_error(double actual, double reference, double eps = 1e-12) noexcept;

}  // namespace harmony
