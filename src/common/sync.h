// Capability-annotated synchronization primitives.
//
// Every mutex in the codebase goes through these wrappers so that Clang's
// Thread Safety Analysis (-Wthread-safety) can prove, at compile time, that
// each piece of guarded state is only touched with its mutex held. The
// annotation macros expand to nothing on non-clang compilers, so GCC builds
// see plain std::mutex semantics with zero overhead; under the `clang-tsa`
// preset every GUARDED_BY violation is a build error.
//
// Idiom:
//
//   class Account {
//    public:
//     void deposit(double amount) {
//       common::MutexLock lock(mu_);
//       balance_ += amount;              // OK: mu_ held
//     }
//    private:
//     common::Mutex mu_;
//     double balance_ GUARDED_BY(mu_) = 0.0;
//   };
//
// Condition-variable waits are written as explicit while-loops over guarded
// state rather than predicate lambdas:
//
//   common::MutexLock lock(mu_);
//   while (!done_) cv_.wait(mu_);        // done_ read is inside the analyzed
//                                        // scope, so TSA checks it
//
// (TSA analyzes a lambda body as a separate unannotated function, so a
// predicate lambda reading guarded state would need NO_THREAD_SAFETY_ANALYSIS
// — the explicit loop keeps the guarded reads visible to the analysis.)
//
// The `lock-discipline` lint rule bans raw std::mutex / std::lock_guard /
// std::unique_lock / std::condition_variable everywhere outside this header;
// escape hatch: `// lint: allow-raw-mutex` with a justification.
#pragma once

#include <condition_variable>  // lint: allow-raw-mutex (wrapped here)
#include <mutex>               // lint: allow-raw-mutex (wrapped here)

// --- Clang Thread Safety Analysis attribute macros -------------------------
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#if defined(__clang__) && !defined(SWIG)
#define HARMONY_TSA_ATTR(x) __attribute__((x))
#else
#define HARMONY_TSA_ATTR(x)  // no-op on GCC/MSVC: annotations compile away
#endif

#define CAPABILITY(x) HARMONY_TSA_ATTR(capability(x))
#define SCOPED_CAPABILITY HARMONY_TSA_ATTR(scoped_lockable)
#define GUARDED_BY(x) HARMONY_TSA_ATTR(guarded_by(x))
#define PT_GUARDED_BY(x) HARMONY_TSA_ATTR(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) HARMONY_TSA_ATTR(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) HARMONY_TSA_ATTR(acquired_after(__VA_ARGS__))
#define REQUIRES(...) HARMONY_TSA_ATTR(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) HARMONY_TSA_ATTR(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) HARMONY_TSA_ATTR(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) HARMONY_TSA_ATTR(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) HARMONY_TSA_ATTR(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) HARMONY_TSA_ATTR(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) HARMONY_TSA_ATTR(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) HARMONY_TSA_ATTR(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) HARMONY_TSA_ATTR(assert_capability(x))
#define RETURN_CAPABILITY(x) HARMONY_TSA_ATTR(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS HARMONY_TSA_ATTR(no_thread_safety_analysis)

namespace harmony::common {

// Annotated std::mutex. Prefer MutexLock over manual lock()/unlock().
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;  // lint: allow-raw-mutex (the one wrapped instance)
};

// RAII scoped lock over Mutex. unlock()/lock() support the occasional
// drop-the-lock-for-a-slow-operation pattern; the analysis tracks both.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu), held_(true) { mu_.lock(); }
  ~MutexLock() RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // Temporarily release and later reacquire the mutex mid-scope.
  void unlock() RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  Mutex& mu_;
  bool held_;
};

// Condition variable bound to Mutex. wait() declares REQUIRES(mu), so every
// wait site must (provably) hold the mutex it waits on. Waits are spurious-
// wakeup-prone by design: loop over the guarded predicate at the call site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> relock(mu.mu_, std::adopt_lock);  // lint: allow-raw-mutex
    cv_.wait(relock);
    relock.release();  // the caller's MutexLock still owns the mutex
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;  // lint: allow-raw-mutex (the one wrapped instance)
};

}  // namespace harmony::common
