#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace harmony {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::format_double(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

void TextTable::add_numeric_row(const std::string& label, std::initializer_list<double> values,
                                int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

}  // namespace harmony
