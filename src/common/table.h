// Plain-text table printer: the bench binaries print paper tables/figure data
// in aligned columns so `bench_output.txt` is directly readable.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace harmony {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  // Convenience for mixed numeric rows; values are formatted with
  // `precision` significant decimal digits.
  void add_numeric_row(const std::string& label, std::initializer_list<double> values,
                       int precision = 3);

  std::string render() const;

  static std::string format_double(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace harmony
