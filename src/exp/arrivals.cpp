#include "exp/arrivals.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace harmony::exp {

std::vector<double> batch_arrivals(std::size_t n) { return std::vector<double>(n, 0.0); }

std::vector<double> poisson_arrivals(std::size_t n, double mean_interarrival_sec,
                                     std::uint64_t seed) {
  if (mean_interarrival_sec <= 0.0) return batch_arrivals(n);
  Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(n);
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    arrivals.push_back(t);
    t += rng.exponential(mean_interarrival_sec);
  }
  return arrivals;
}

std::vector<double> trace_arrivals(std::size_t n, double mean_interarrival_sec,
                                   std::uint64_t seed) {
  if (mean_interarrival_sec <= 0.0) return batch_arrivals(n);
  Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(n);

  // Bursts: geometric size (mean ~4), jobs inside a burst land within a few
  // seconds; gaps between bursts are Pareto (alpha = 1.5) scaled to preserve
  // the requested mean inter-arrival time overall.
  const double burst_mean = 4.0;
  const double gap_mean = mean_interarrival_sec * burst_mean;
  const double pareto_alpha = 1.5;
  const double pareto_xm = gap_mean * (pareto_alpha - 1.0) / pareto_alpha;

  double t = 0.0;
  while (arrivals.size() < n) {
    std::size_t burst = 1;
    while (rng.bernoulli(1.0 - 1.0 / burst_mean)) ++burst;
    for (std::size_t k = 0; k < burst && arrivals.size() < n; ++k) {
      arrivals.push_back(t + rng.uniform(0.0, 5.0));
    }
    const double u = rng.uniform(1e-9, 1.0);
    t += pareto_xm / std::pow(u, 1.0 / pareto_alpha);
  }
  std::sort(arrivals.begin(), arrivals.end());
  // Normalize so the first job arrives at t = 0.
  const double t0 = arrivals.front();
  for (double& a : arrivals) a -= t0;
  return arrivals;
}

}  // namespace harmony::exp
