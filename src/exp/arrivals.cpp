#include "exp/arrivals.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace harmony::exp {

std::vector<double> batch_arrivals(std::size_t n) { return std::vector<double>(n, 0.0); }

std::vector<double> poisson_arrivals(std::size_t n, double mean_interarrival_sec,
                                     std::uint64_t seed) {
  if (mean_interarrival_sec <= 0.0) return batch_arrivals(n);
  PoissonArrivalStream stream(mean_interarrival_sec, seed);
  return take(stream, n);
}

std::vector<double> trace_arrivals(std::size_t n, double mean_interarrival_sec,
                                   std::uint64_t seed) {
  if (mean_interarrival_sec <= 0.0) return batch_arrivals(n);
  Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(n);

  // Bursts: geometric size (mean ~4), jobs inside a burst land within a few
  // seconds; gaps between bursts are Pareto (alpha = 1.5) scaled to preserve
  // the requested mean inter-arrival time overall.
  const double burst_mean = 4.0;
  const double gap_mean = mean_interarrival_sec * burst_mean;
  const double pareto_alpha = 1.5;
  const double pareto_xm = gap_mean * (pareto_alpha - 1.0) / pareto_alpha;

  double t = 0.0;
  while (arrivals.size() < n) {
    std::size_t burst = 1;
    while (rng.bernoulli(1.0 - 1.0 / burst_mean)) ++burst;
    for (std::size_t k = 0; k < burst && arrivals.size() < n; ++k) {
      arrivals.push_back(t + rng.uniform(0.0, 5.0));
    }
    const double u = rng.uniform(1e-9, 1.0);
    t += pareto_xm / std::pow(u, 1.0 / pareto_alpha);
  }
  std::sort(arrivals.begin(), arrivals.end());
  // Normalize so the first job arrives at t = 0.
  const double t0 = arrivals.front();
  for (double& a : arrivals) a -= t0;
  return arrivals;
}

// ---------------------------------------------------------------------------
// Streams.

double PoissonArrivalStream::next() {
  if (mean_ <= 0.0) return 0.0;
  const double t = t_;
  t_ += rng_.exponential(mean_);
  return t;
}

TraceArrivalStream::TraceArrivalStream(double mean_interarrival_sec, std::uint64_t seed)
    : rng_(seed),
      burst_mean_(4.0),
      pareto_alpha_(1.5),
      pareto_xm_(std::max(mean_interarrival_sec, 1e-9) * burst_mean_ *
                 (pareto_alpha_ - 1.0) / pareto_alpha_) {}

void TraceArrivalStream::generate_burst() {
  // Same per-burst draw order as trace_arrivals: burst size (bernoulli
  // chain), one uniform offset per job, then the Pareto gap to the next base.
  std::size_t burst = 1;
  while (rng_.bernoulli(1.0 - 1.0 / burst_mean_)) ++burst;
  for (std::size_t k = 0; k < burst; ++k) {
    buffer_.push(next_base_ + rng_.uniform(0.0, 5.0));
  }
  const double u = rng_.uniform(1e-9, 1.0);
  next_base_ += pareto_xm_ / std::pow(u, 1.0 / pareto_alpha_);
}

double TraceArrivalStream::next() {
  // Arrivals of a burst based at b lie in [b, b + 5], and bases only grow, so
  // the smallest buffered time is final once it is <= the next ungenerated
  // base. Generating whole bursts (never truncating one) keeps the emitted
  // sequence independent of how many arrivals the caller consumes.
  while (buffer_.empty() || buffer_.top() > next_base_) generate_burst();
  const double raw = buffer_.top();
  buffer_.pop();
  if (!emitted_any_) {
    emitted_any_ = true;
    t0_ = raw;  // normalize: the first arrival lands at t = 0
  }
  return raw - t0_;
}

std::vector<double> take(ArrivalStream& stream, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(stream.next());
  return out;
}

std::unique_ptr<ArrivalStream> make_arrival_stream(const std::string& kind,
                                                   double mean_interarrival_sec,
                                                   std::uint64_t seed) {
  if (kind == "batch") return std::make_unique<BatchArrivalStream>();
  if (mean_interarrival_sec <= 0.0)
    throw std::invalid_argument("arrival stream '" + kind +
                                "' needs a positive mean inter-arrival time");
  if (kind == "poisson")
    return std::make_unique<PoissonArrivalStream>(mean_interarrival_sec, seed);
  if (kind == "trace")
    return std::make_unique<TraceArrivalStream>(mean_interarrival_sec, seed);
  throw std::invalid_argument("unknown arrival stream kind '" + kind + "'");
}

}  // namespace harmony::exp
