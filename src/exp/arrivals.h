// Job arrival processes for the §V-D sensitivity study.
#pragma once

#include <cstdint>
#include <vector>

namespace harmony::exp {

// All jobs at t = 0 (the main §V-C experiment).
std::vector<double> batch_arrivals(std::size_t n);

// Poisson process: exponential inter-arrival times with the given mean (sec).
std::vector<double> poisson_arrivals(std::size_t n, double mean_interarrival_sec,
                                     std::uint64_t seed);

// Google-cluster-trace-shaped arrivals: bursts of geometrically-many jobs
// separated by heavy-tailed (Pareto) gaps — "more diverse pattern of arrivals
// and job arrival spikes" than Poisson.
std::vector<double> trace_arrivals(std::size_t n, double mean_interarrival_sec,
                                   std::uint64_t seed);

}  // namespace harmony::exp
