// Job arrival processes: finite vectors for the §V-D sensitivity study, and
// unbounded streams for the online service mode (src/svc), which feeds an
// open-loop arrival process into the scheduler for as long as the service
// runs.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/rng.h"

namespace harmony::exp {

// All jobs at t = 0 (the main §V-C experiment).
std::vector<double> batch_arrivals(std::size_t n);

// Poisson process: exponential inter-arrival times with the given mean (sec).
std::vector<double> poisson_arrivals(std::size_t n, double mean_interarrival_sec,
                                     std::uint64_t seed);

// Google-cluster-trace-shaped arrivals: bursts of geometrically-many jobs
// separated by heavy-tailed (Pareto) gaps — "more diverse pattern of arrivals
// and job arrival spikes" than Poisson.
std::vector<double> trace_arrivals(std::size_t n, double mean_interarrival_sec,
                                   std::uint64_t seed);

// ---------------------------------------------------------------------------
// Streaming generators (online service mode).
//
// An ArrivalStream yields an unbounded, non-decreasing sequence of absolute
// arrival times. Streams are deterministic in their seed: the k-th value a
// stream emits depends only on (seed, k), never on how the caller interleaves
// the calls with other work — the service's open-loop driver relies on this
// for bit-reproducible runs.

class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;
  // Absolute time of the next arrival, in seconds; non-decreasing across
  // calls. The first arrival is at t = 0.
  virtual double next() = 0;
};

// Every arrival at t = 0 (degenerate; closed-loop batch testing only).
class BatchArrivalStream final : public ArrivalStream {
 public:
  double next() override { return 0.0; }
};

// Memoryless open-loop arrivals. Emits exactly the sequence of
// poisson_arrivals(n, mean, seed) for every prefix n.
class PoissonArrivalStream final : public ArrivalStream {
 public:
  PoissonArrivalStream(double mean_interarrival_sec, std::uint64_t seed)
      : mean_(mean_interarrival_sec), rng_(seed) {}

  double next() override;

 private:
  double mean_;
  Rng rng_;
  double t_ = 0.0;
};

// Streaming variant of trace_arrivals: geometric bursts (mean ~4 jobs inside
// a few seconds) separated by Pareto gaps scaled to preserve the requested
// mean inter-arrival time. Because bursts overlap when a Pareto gap is
// shorter than the burst spread, emission merges a lookahead buffer: a
// buffered arrival is only released once every still-ungenerated burst is
// guaranteed to start after it. Draw-for-draw this differs from the finite
// trace_arrivals() at its truncation boundary (the vector version stops
// mid-burst at n), so the two are pinned by separate determinism tests.
class TraceArrivalStream final : public ArrivalStream {
 public:
  TraceArrivalStream(double mean_interarrival_sec, std::uint64_t seed);

  double next() override;

 private:
  void generate_burst();

  Rng rng_;
  double burst_mean_;
  double pareto_alpha_;
  double pareto_xm_;
  double next_base_ = 0.0;  // start time of the next ungenerated burst
  // Min-heap of generated-but-unreleased arrival times.
  std::priority_queue<double, std::vector<double>, std::greater<>> buffer_;
  bool emitted_any_ = false;
  double t0_ = 0.0;  // first raw arrival; subtracted so emission starts at 0
};

// First `n` arrivals of a stream, materialized (test/driver convenience).
std::vector<double> take(ArrivalStream& stream, std::size_t n);

// Factory for the process shapes the CLI exposes: "batch", "poisson", or
// "trace" with the given mean inter-arrival time. Throws std::invalid_argument
// on an unknown kind.
std::unique_ptr<ArrivalStream> make_arrival_stream(const std::string& kind,
                                                   double mean_interarrival_sec,
                                                   std::uint64_t seed);

}  // namespace harmony::exp
