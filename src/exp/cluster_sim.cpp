#include "exp/cluster_sim.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <execinfo.h>

#include <stdexcept>

#include "common/logging.h"
#include "common/stats.h"
#include "exp/cluster_sim_internal.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace harmony::exp {

namespace {
constexpr double kOomSlowdownCap = 8.0;

// Simulated seconds -> trace microseconds.
constexpr double kTraceUs = 1e6;

// Scheduler wall-cost accounting only: these readings are *reported* (how
// long did the solver take on this host) and never feed back into simulated
// time, so the determinism of the simulation itself is unaffected.
using WallClock = std::chrono::steady_clock;  // lint: allow-nondeterminism

double wall_seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}
}  // namespace

// ---------------------------------------------------------------------------
// Config presets

ClusterSimConfig ClusterSimConfig::isolated() {
  ClusterSimConfig c;
  c.exec = ExecModel::kPipelined;
  c.grouping = GroupingPolicy::kIsolated;
  c.spill_enabled = false;
  return c;
}

ClusterSimConfig ClusterSimConfig::naive(std::uint64_t grouping_seed) {
  ClusterSimConfig c;
  c.exec = ExecModel::kContended;
  c.grouping = GroupingPolicy::kRandom;
  c.spill_enabled = false;
  c.naive_grouping_seed = grouping_seed;
  return c;
}

ClusterSimConfig ClusterSimConfig::harmony() { return ClusterSimConfig{}; }

// ---------------------------------------------------------------------------
// Internal structures (SimJob / GroupRun) live in cluster_sim_internal.h so
// the validators in cluster_sim_validate.cpp can inspect them.
// ---------------------------------------------------------------------------

ClusterSim::ClusterSim(ClusterSimConfig config, std::vector<WorkloadSpec> workload,
                       std::vector<double> arrival_times)
    : config_(config),
      arrivals_(std::move(arrival_times)),
      memory_model_(config.memory_params),
      spill_model_(config.spill_costs),
      scheduler_(config.scheduler),
      regrouper_(scheduler_, config.regrouper),
      isolated_(),
      naive_(baselines::NaiveScheduler::Params{config.naive_jobs_per_group}),
      profiler_(core::Profiler::Params{0.3, config.profiling_iterations}),
      rng_(config.seed),
      sim_(config.event_queue),
      free_machines_(config.machines),
      timeline_(config.util_sample_window_sec) {
  if (arrivals_.size() != workload.size())
    throw std::invalid_argument("ClusterSim: arrivals/workload size mismatch");
  const std::size_t n = workload.size();
  // Reserve exactly: jobs_ must never reallocate (event callbacks capture
  // SimJob addresses).
  jobs_.reserve(n);
  job_alpha_.assign(n, 0.0);
  job_model_spilled_.assign(n, 0);
  job_resident_cache_.assign(n, 0.0);
  job_resident_machines_.assign(n, 0);
  job_resident_valid_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    SimJob& job = jobs_.emplace_back(rng_.fork());
    job.spec = workload[i];
    job.spec.id = static_cast<core::JobId>(i);
    if (config_.model_error_injection > 0.0) {
      const double e = config_.model_error_injection;
      job.err_cpu = 1.0 + rng_.uniform(-e, e);
      job.err_net = 1.0 + rng_.uniform(-e, e);
    }
  }
  unfinished_count_ = jobs_.size();
}

ClusterSim::~ClusterSim() = default;

// ---------------------------------------------------------------------------
// Memory / spill

double ClusterSim::job_resident_bytes_uncached(const SimJob& job,
                                               std::size_t machines) const {
  const core::SpillCosts c =
      spill_model_.costs(job.spec.input_bytes(), job.spec.model_bytes(),
                         job_alpha_[job.spec.id], machines, config_.machine_spec);
  double resident = c.resident_bytes;
  if (job_model_spilled_[job.spec.id] != 0) {
    // Model spill keeps only a small working window of the model resident;
    // the rest streams through the reload path charged in comp_duration.
    constexpr double kModelSpillEvicted = 0.85;
    resident -= kModelSpillEvicted * job.spec.model_bytes() *
                spill_model_.params().model_mem_expansion / static_cast<double>(machines);
  }
  return std::max(resident, 0.0);
}

double ClusterSim::job_resident_bytes(const SimJob& job, std::size_t machines) const {
  const core::JobId id = job.spec.id;
  if (job_resident_valid_[id] != 0 && job_resident_machines_[id] == machines)
    return job_resident_cache_[id];
  const double resident = job_resident_bytes_uncached(job, machines);
  job_resident_cache_[id] = resident;
  job_resident_machines_[id] = static_cast<std::uint32_t>(machines);
  job_resident_valid_[id] = 1;
  return resident;
}

void ClusterSim::set_alpha(core::JobId id, double alpha) {
  if (job_alpha_[id] == alpha) return;
  job_alpha_[id] = alpha;
  job_resident_valid_[id] = 0;
}

void ClusterSim::set_model_spilled(core::JobId id, bool spilled) {
  const std::uint8_t v = spilled ? 1 : 0;
  if (job_model_spilled_[id] == v) return;
  job_model_spilled_[id] = v;
  job_resident_valid_[id] = 0;
}

double ClusterSim::group_occupancy(const GroupRun& group) const {
  double resident = 0.0;
  for (core::JobId id : group.members)
    resident += job_resident_bytes(jobs_[id], group.machines);
  return resident / config_.machine_spec.memory_bytes;
}

bool ClusterSim::fits_without_spill(const GroupRun& group, const SimJob& job) const {
  if (config_.spill_enabled || config_.grouping != GroupingPolicy::kHarmony) return true;
  double resident = job.spec.resident_bytes(group.machines, 0.0);
  for (core::JobId id : group.members)
    resident += jobs_[id].spec.resident_bytes(group.machines, 0.0);
  return resident <= 0.9 * config_.machine_spec.memory_bytes;
}

void ClusterSim::place_fallback_isolated(SimJob& job) {
  if (job.group != nullptr || job.state == core::JobState::kFinished) return;
  const std::size_t need = job.spec.min_machines_without_spill(config_.machine_spec);
  if (need > free_machines_) return;
  GroupRun& g = create_group({}, need);
  place_job_in_group(job, g, /*with_migration_delay=*/true);
  group_dops_.add(static_cast<double>(need));
  group_sizes_.add(1.0);
  record_group_prediction(g);
}

void ClusterSim::refresh_alpha(SimJob& job, bool initialize) {
  const core::JobId jid = job.spec.id;
  if (!config_.spill_enabled || job.group == nullptr) {
    set_alpha(jid, 0.0);
    set_model_spilled(jid, false);
    return;
  }
  const std::size_t m = job.group->machines;
  if (config_.fixed_alpha) {
    const double a = std::clamp(*config_.fixed_alpha, 0.0, 1.0);
    set_alpha(jid, a);
    const double share =
        config_.machine_spec.memory_bytes /
        std::max<double>(1.0, static_cast<double>(job.group->members.size()));
    const core::SpillCosts at_cur = spill_model_.costs(
        job.spec.input_bytes(), job.spec.model_bytes(), a, m, config_.machine_spec);
    set_model_spilled(jid, a >= 0.999 && at_cur.resident_bytes >
                                             config_.memory_params.gc_threshold * share);
    return;
  }
  const double share = config_.machine_spec.memory_bytes /
                       std::max<double>(1.0, static_cast<double>(job.group->members.size()));
  (void)initialize;
  const double prev_alpha = job_alpha_[jid];
  // α is the smallest ratio whose resident footprint fits the group's
  // current occupancy target (per-job ratios, coordinated target, §IV-C).
  const double target = job.group->occ_ctl ? job.group->occ_ctl->alpha()
                                           : config_.alpha_floor_occupancy;
  cluster::MemoryModelParams floor_params = config_.memory_params;
  floor_params.gc_threshold = target;
  const double alpha = core::AlphaController::initial_alpha(
      job.spec.input_bytes(), job.spec.model_bytes(), m, share, floor_params,
      spill_model_, config_.machine_spec);
  set_alpha(jid, alpha);
  // If even α = 1 overflows this job's share, spill model data too (§V-G:
  // "Harmony enables spill/reload of model data for those jobs").
  const core::SpillCosts at_one = spill_model_.costs(
      job.spec.input_bytes(), job.spec.model_bytes(), 1.0, m, config_.machine_spec);
  set_model_spilled(jid, alpha >= 0.999 &&
                             at_one.resident_bytes >
                                 config_.memory_params.gc_threshold * share);
  if (obs::Tracer::enabled() && alpha > 0.0 && alpha != prev_alpha)
    obs::Tracer::instant(obs::EventKind::kSpill, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs, job.spec.id,
                         static_cast<std::uint32_t>(job.group->id), obs::kNoEntity,
                         static_cast<std::uint64_t>(alpha * job.spec.input_bytes()));
}

// ---------------------------------------------------------------------------
// Job pipeline

double ClusterSim::comm_half_duration(SimJob& job) {
  return 0.5 * job.spec.t_net * job.noise.lognormal_noise(config_.subtask_noise_cv);
}

double ClusterSim::comp_duration(SimJob& job) {
  GroupRun& g = *job.group;
  const double base = job.spec.cpu_work / static_cast<double>(g.machines);
  const double occ = group_occupancy(g);

  double gc = memory_model_.gc_slowdown(occ);
  if (memory_model_.oom(occ)) {
    if (!g.oom_recorded) {
      g.oom_recorded = true;
      summary_.oom_events++;
      obs::MetricsRegistry::instance().counter("sim.oom_events").add();
      if (obs::Tracer::enabled())
        obs::Tracer::instant(obs::EventKind::kOom, obs::ClockDomain::kSim,
                             sim_.now() * kTraceUs, job.spec.id,
                             static_cast<std::uint32_t>(g.id));
      if (config_.debug_trace)
        std::fprintf(stderr, "OOM: group %zu members=%zu machines=%zu occ=%.3f\n", g.id,
                     g.members.size(), g.machines, occ);
    }
    gc = kOomSlowdownCap;  // thrashing instead of a hard kill keeps jobs comparable
  }
  gc = std::min(gc, kOomSlowdownCap);
  gc_lost_seconds_ += base * (gc - 1.0);
  comp_base_seconds_ += base;

  const core::SpillCosts costs = spill_model_.costs(
      job.spec.input_bytes(), job.spec.model_bytes(), job_alpha_[job.spec.id],
      g.machines, config_.machine_spec);
  double extra = costs.deserialize_seconds;
  if (job_model_spilled_[job.spec.id] != 0) {
    // Model reload+deserialize rides on the compute path.
    const double model_raw = job.spec.model_bytes() / static_cast<double>(g.machines);
    extra += model_raw / config_.machine_spec.disk_bytes_per_sec +
             model_raw * spill_model_.params().deserialize_sec_per_byte;
  }
  return (base * gc + extra) * job.noise.lognormal_noise(config_.subtask_noise_cv);
}

void ClusterSim::start_iteration(SimJob& job) {
  GroupRun& g = *job.group;
  if (job.in_flight) {
    std::fprintf(stderr, "start_iteration: job %u already in flight (state=%s)\n",
                 job.spec.id, core::to_string(job.state));
    std::abort();
  }
  job.in_flight = true;
  job.iter_start_time = sim_.now();
  const double d_pull = comm_half_duration(job);
  auto next = [this, &job, d_pull] { begin_comp(job, d_pull); };
  if (g.net_fifo) {
    g.net_fifo->submit(d_pull, next);
  } else {
    g.net_shared->submit(d_pull, next);
  }
}

void ClusterSim::begin_comp(SimJob& job, double pull_duration) {
  GroupRun& g = *job.group;
  // The pull COMM subtask's service on the group's network lane just ended.
  if (obs::Tracer::enabled())
    obs::Tracer::complete(obs::EventKind::kSubtaskPull, obs::ClockDomain::kSim,
                          (sim_.now() - pull_duration) * kTraceUs, pull_duration * kTraceUs,
                          job.spec.id, static_cast<std::uint32_t>(g.id));
  auto submit = [this, &job, &g, pull_duration] {
    const double d_comp = comp_duration(job);
    auto next = [this, &job, pull_duration, d_comp] {
      begin_push(job, pull_duration, d_comp);
    };
    if (g.cpu_fifo) {
      g.cpu_fifo->submit(d_comp, next);
    } else {
      g.cpu_shared->submit(d_comp, next);
    }
  };
  // The COMP subtask cannot start until this job's disk-side blocks for the
  // iteration have been reloaded (they stream in the background since the
  // last COMP ended).
  if (sim_.now() < job.reload_ready_at) {
    if (obs::Tracer::enabled())
      obs::Tracer::complete(obs::EventKind::kReload, obs::ClockDomain::kSim,
                            sim_.now() * kTraceUs,
                            (job.reload_ready_at - sim_.now()) * kTraceUs, job.spec.id,
                            static_cast<std::uint32_t>(g.id));
    sim_.schedule_at(job.reload_ready_at, submit);
  } else {
    submit();
  }
}

void ClusterSim::begin_push(SimJob& job, double pull_duration, double comp_dur) {
  if (job.group == nullptr) {
    std::fprintf(stderr, "begin_push: job %u state=%s iters=%zu/%zu in_group=%zu\n",
                 job.spec.id, core::to_string(job.state), job.iterations_done,
                 job.spec.iterations, job.iters_in_group);
    std::abort();
  }
  GroupRun& g = *job.group;
  // The COMP subtask's service on the group's CPU lane just ended.
  if (obs::Tracer::enabled())
    obs::Tracer::complete(obs::EventKind::kSubtaskComp, obs::ClockDomain::kSim,
                          (sim_.now() - comp_dur) * kTraceUs, comp_dur * kTraceUs,
                          job.spec.id, static_cast<std::uint32_t>(g.id));
  // Background reload for the next iteration starts now; co-located spilling
  // jobs share the disk.
  std::size_t spilling = 0;
  for (core::JobId id : g.members)
    if (job_alpha_[id] > 0.0) ++spilling;
  const core::SpillCosts costs = spill_model_.costs(
      job.spec.input_bytes(), job.spec.model_bytes(), job_alpha_[job.spec.id],
      g.machines, config_.machine_spec);
  job.reload_ready_at =
      sim_.now() + costs.reload_seconds * static_cast<double>(std::max<std::size_t>(1, spilling));

  const double d_push = comm_half_duration(job);
  auto next = [this, &job, pull_duration, comp_dur, d_push] {
    if (obs::Tracer::enabled() && job.group != nullptr)
      obs::Tracer::complete(obs::EventKind::kSubtaskPush, obs::ClockDomain::kSim,
                            (sim_.now() - d_push) * kTraceUs, d_push * kTraceUs,
                            job.spec.id, static_cast<std::uint32_t>(job.group->id));
    end_iteration(job, pull_duration + d_push, comp_dur);
  };
  if (g.net_fifo) {
    g.net_fifo->submit(d_push, next);
  } else {
    g.net_shared->submit(d_push, next);
  }
}

void ClusterSim::end_iteration(SimJob& job, double comm_duration, double comp_duration_s) {
  GroupRun& g = *job.group;
  job.in_flight = false;
  ++job.iterations_done;
  ++job.iters_in_group;
  ++job.profile_iterations;

  profiler_.record(job.spec.id, g.machines, comp_duration_s, comm_duration);

  const double wall = sim_.now() - job.iter_start_time;
  if (obs::Tracer::enabled())
    obs::Tracer::complete(obs::EventKind::kIteration, obs::ClockDomain::kSim,
                          job.iter_start_time * kTraceUs, wall * kTraceUs, job.spec.id,
                          static_cast<std::uint32_t>(g.id));
  iteration_walls_.add(wall);
  if (job.iters_in_group >= 2) g.actual_iteration_times.add(wall);

  // Occupancy-target hill climbing on observed iteration times (§IV-C).
  if (config_.spill_enabled && !config_.fixed_alpha && g.occ_ctl) {
    g.recent_walls.add(wall);
    ++g.iters_since_alpha_update;
    const std::size_t cadence =
        std::max<std::size_t>(1, config_.alpha_update_every) *
        std::max<std::size_t>(1, g.members.size());
    if (g.iters_since_alpha_update >= cadence && g.recent_walls.size() >= 4) {
      g.iters_since_alpha_update = 0;
      g.occ_ctl->observe(g.recent_walls.mean());
      for (core::JobId id : g.members) {
        refresh_alpha(jobs_[id], /*initialize=*/false);
        alpha_samples_.add(job_alpha_[id]);
      }
    }
  }

  // Finished?
  if (job.iterations_done >= job.spec.iterations) {
    job.state = core::JobState::kFinished;
    job.finish_time = sim_.now();
    summary_.jobs.push_back(JobOutcome{job.spec.id, arrivals_[job.spec.id], job.finish_time});
    auto it = std::find(g.members.begin(), g.members.end(), job.spec.id);
    if (it != g.members.end()) g.members.erase(it);
    --g.active_members;
    job.last_group = &g;
    job.group = nullptr;
    reindex_job(job);
    // A stopping group may have been waiting on exactly this job to drain.
    if (g.stopping && g.active_members == 0) dissolve_group(g);
    on_job_finished(job);
    return;
  }

  // Profiling complete?
  if (job.state == core::JobState::kProfiling &&
      job.profile_iterations >= config_.profiling_iterations) {
    on_job_profiled(job);
    // The job may have been parked, or migrated into another group —
    // migration schedules its own (delayed) start, so continuing here would
    // run two pipelines for one job.
    if (job.group == nullptr || job.iters_in_group == 0) return;
  }

  // Group being torn down for a regroup?
  if (g.stopping) {
    park_job(job, core::JobState::kPaused);
    return;
  }

  start_iteration(job);
}

// ---------------------------------------------------------------------------
// Group management

ClusterSim::GroupRun& ClusterSim::create_group(const std::vector<core::JobId>& member_ids,
                                               std::size_t machines) {
  if (machines == 0) throw std::logic_error("create_group: zero machines");
  if (machines > free_machines_) throw std::logic_error("create_group: not enough machines");
  free_machines_ -= machines;

  GroupRun& g = groups_.emplace_back();  // deque: address stable forever
  g.id = next_group_id_++;
  g.machines = machines;
  const std::string tag = "g" + std::to_string(g.id);
  if (config_.exec == ExecModel::kPipelined) {
    g.cpu_fifo = std::make_unique<sim::FifoResource>(sim_, tag + "-cpu");
    g.net_fifo = std::make_unique<sim::FifoResource>(sim_, tag + "-net");
  } else {
    // Contended execution: concurrent steps split the capacity and pay an
    // interference penalty — the naive co-location behaviour of Fig. 5a.
    g.cpu_shared = std::make_unique<sim::SharedResource>(sim_, tag + "-cpu", 1.0,
                                                         config_.contention_penalty);
    g.net_shared = std::make_unique<sim::SharedResource>(sim_, tag + "-net", 1.0,
                                                         config_.contention_penalty);
  }
  active_groups_storage_.push_back(&g);
  obs::MetricsRegistry::instance().counter("sim.groups_created").add();
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kGroupCreate, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs, obs::kNoEntity,
                         static_cast<std::uint32_t>(g.id), obs::kNoEntity, machines);
  for (core::JobId id : member_ids) place_job_in_group(jobs_[id], g, false);
  return g;
}

void ClusterSim::place_job_in_group(SimJob& job, GroupRun& group, bool with_migration_delay) {
  if (job.group != nullptr) {
    std::fprintf(stderr, "place: job %u state=%s group=%zu->%zu in_flight=%d\n", job.spec.id,
                 core::to_string(job.state), static_cast<std::size_t>(job.group->id),
                 static_cast<std::size_t>(group.id), job.in_flight ? 1 : 0);
    void* frames[16];
    const int n = backtrace(frames, 16);
    backtrace_symbols_fd(frames, n, 2);
    std::abort();
  }
  job.group = &group;
  job.iters_in_group = 0;
  group.members.push_back(job.spec.id);
  ++group.active_members;
  if (job.state != core::JobState::kProfiling) job.state = core::JobState::kRunning;
  reindex_job(job);
  refresh_alpha(job, /*initialize=*/true);
  // Every co-tenant's memory share just shrank: recompute everyone's α for
  // the group's occupancy target.
  if (config_.spill_enabled && !config_.fixed_alpha) {
    if (!group.occ_ctl) {
      core::AlphaController::Params ctl;
      ctl.step = 0.05;
      ctl.min_step = 0.01;
      ctl.min_alpha = 0.40;   // occupancy targets, not disk ratios
      ctl.max_alpha = 0.93;   // stay under the OOM line
      group.occ_ctl.emplace(config_.alpha_floor_occupancy, ctl);
    }
    for (core::JobId id : group.members) {
      SimJob& member = jobs_[id];
      if (&member == &job) continue;
      refresh_alpha(member, /*initialize=*/false);
    }
  }

  double delay = 0.0;
  if (with_migration_delay) {
    delay = migration_delay(job, group.machines);
    summary_.migration_overhead_sec += delay;
    if (obs::Tracer::enabled() && delay > 0.0)
      obs::Tracer::complete(obs::EventKind::kCheckpoint, obs::ClockDomain::kSim,
                            sim_.now() * kTraceUs, delay * kTraceUs, job.spec.id,
                            static_cast<std::uint32_t>(group.id));
  }
  sim_.schedule_in(delay, [this, &job, &group] {
    if (job.group == &group && job.state != core::JobState::kFinished) start_iteration(job);
  });
}

double ClusterSim::migration_delay(const SimJob& job, std::size_t machines) const {
  // Checkpoint restore + input reload, spread across the new group's
  // machines' disks (§IV-B4: only stateful model parameters move; immutable
  // input is simply reloaded).
  const double m = static_cast<double>(machines);
  const double model_io = 2.0 * job.spec.model_bytes() / m;  // write + read
  const double input_io = (1.0 - job_alpha_[job.spec.id]) * job.spec.input_bytes() / m;
  return (model_io + input_io) / config_.machine_spec.disk_bytes_per_sec;
}

void ClusterSim::park_job(SimJob& job, core::JobState state) {
  GroupRun* g = job.group;
  assert(g != nullptr);
  if (job.in_flight) {
    std::fprintf(stderr, "park_job: job %u in flight (state=%s -> %s, iters=%zu)\n",
                 job.spec.id, core::to_string(job.state), core::to_string(state),
                 job.iterations_done);
    std::abort();
  }
  auto it = std::find(g->members.begin(), g->members.end(), job.spec.id);
  if (it != g->members.end()) g->members.erase(it);
  --g->active_members;
  job.group = nullptr;
  job.state = state;
  set_alpha(job.spec.id, 0.0);
  reindex_job(job);

  if (g->stopping && g->active_members == 0) {
    dissolve_group(*g);  // dissolve advances any pending regroup itself
  }

  // Per-job migration: if a pending regroup routed this job to an
  // already-created target group, it moves there right now — the rest of its
  // old group keeps running (§IV-B4). The dissolve above may already have
  // placed it (try_apply_pending), hence the group re-check.
  if (pending_regroup_ && !applying_pending_ && job.group == nullptr &&
      job.state != core::JobState::kFinished) {
    auto it = pending_regroup_->job_plan.find(job.spec.id);
    if (it != pending_regroup_->job_plan.end()) {
      GroupRun* target = pending_regroup_->targets[it->second];
      if (target != nullptr && !target->dissolved && !target->stopping &&
          fits_without_spill(*target, job)) {
        settle_group_prediction(*target);
        place_job_in_group(job, *target, /*with_migration_delay=*/true);
        group_dops_.add(static_cast<double>(target->machines));
        record_group_prediction(*target);
        return;
      }
    }
  }
  try_apply_pending();  // machines/jobs freed may unblock pending plans
}

void ClusterSim::dissolve_group(GroupRun& group) {
  if (group.dissolved) return;
  settle_group_prediction(group);
  group.dissolved = true;
  obs::MetricsRegistry::instance().counter("sim.groups_dissolved").add();
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kGroupDissolve, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs, obs::kNoEntity,
                         static_cast<std::uint32_t>(group.id));
  free_machines_ += group.machines;
  group.machines = 0;
  // The GroupRun object stays alive (resources may still fire no-op events);
  // it simply no longer participates in views or utilization accounting.
  try_apply_pending();
}

// ---------------------------------------------------------------------------
// Job-state / group indexes
//
// Every event handler used to answer "which jobs are waiting / idle / still
// profiling?" with a full jobs_ scan and "which groups are live?" with a full
// groups_ scan (groups_ never shrinks — dissolved groups stay for late no-op
// events). The indexes below maintain those answers incrementally, keyed off
// the same predicates, so the per-event cost tracks the live population
// instead of everything ever created. The id-sorted lists reproduce the exact
// iteration order of a jobs_ scan (ids are pool indices), which keeps every
// downstream std::sort input sequence — and therefore its tie permutation —
// identical to the scan-based code.

void ClusterSim::reindex_job(SimJob& job) {
  const core::JobId id = job.spec.id;
  const bool waiting = job.arrived && job.state == core::JobState::kWaiting;
  if (waiting != job.in_waiting_index) {
    const auto it = std::lower_bound(waiting_ids_.begin(), waiting_ids_.end(), id);
    // The submit-ordered twin: (submit_time, id) is a total order, so the
    // lower_bound position is the unique insert/erase point.
    const auto sit = std::lower_bound(
        waiting_by_submit_.begin(), waiting_by_submit_.end(), id,
        [this](core::JobId a, core::JobId b) { return submit_order_less(a, b); });
    if (waiting) {
      waiting_ids_.insert(it, id);
      waiting_by_submit_.insert(sit, id);
    } else {
      waiting_ids_.erase(it);
      waiting_by_submit_.erase(sit);
    }
    job.in_waiting_index = waiting;
  }
  const bool idle =
      job.state == core::JobState::kProfiled || job.state == core::JobState::kPaused;
  if (idle != job.in_idle_index) {
    const auto it = std::lower_bound(idle_ids_.begin(), idle_ids_.end(), id);
    if (idle) {
      idle_ids_.insert(it, id);
    } else {
      idle_ids_.erase(it);
    }
    job.in_idle_index = idle;
  }
  const bool profiling = job.state == core::JobState::kProfiling;
  if (profiling != job.counted_profiling) {
    profiling ? ++profiling_count_ : --profiling_count_;
    job.counted_profiling = profiling;
  }
  const bool paused = job.state == core::JobState::kPaused;
  if (paused != job.counted_paused) {
    paused ? ++paused_count_ : --paused_count_;
    job.counted_paused = paused;
  }
  const bool profiled_ungrouped =
      job.state == core::JobState::kProfiled && job.group == nullptr;
  if (profiled_ungrouped != job.counted_profiled_ungrouped) {
    profiled_ungrouped ? ++profiled_ungrouped_count_ : --profiled_ungrouped_count_;
    job.counted_profiled_ungrouped = profiled_ungrouped;
  }
  if (job.state == core::JobState::kFinished && !job.counted_finished) {
    job.counted_finished = true;
    --unfinished_count_;
  }
}

void ClusterSim::set_state(SimJob& job, core::JobState state) {
  job.state = state;
  reindex_job(job);
}

std::vector<ClusterSim::SimJob*> ClusterSim::waiting_jobs_by_submit() {
  // waiting_by_submit_ is maintained in (submit_time, id) order, so this is a
  // straight gather — scheduling passes used to re-sort the whole backlog
  // here, which dominated the profile at 100k machines.
  std::vector<SimJob*> waiting;
  waiting.reserve(waiting_by_submit_.size());
  for (core::JobId id : waiting_by_submit_) waiting.push_back(&jobs_[id]);
  return waiting;
}

std::vector<ClusterSim::GroupRun*>& ClusterSim::active_groups() {
  if (group_iter_depth_ == 0) {
    std::erase_if(active_groups_storage_, [](GroupRun* g) { return g->dissolved; });
  }
  return active_groups_storage_;
}

void ClusterSim::dissolve_emptied_groups(bool skip_stopping) {
  // Indexed iteration: dissolve can re-enter through try_apply_pending and
  // append freshly created groups, which must be visited too. The depth guard
  // keeps nested active_groups() calls from compacting the storage (and
  // shifting indices) while this loop is in flight.
  active_groups();
  ++group_iter_depth_;
  for (std::size_t gi = 0; gi < active_groups_storage_.size(); ++gi) {
    GroupRun& g = *active_groups_storage_[gi];
    if (g.dissolved || (skip_stopping && g.stopping)) continue;
    if (g.members.empty() && g.active_members == 0) dissolve_group(g);
  }
  --group_iter_depth_;
}

// ---------------------------------------------------------------------------
// Scheduling — shared helpers

core::SchedJob ClusterSim::sched_view(const SimJob& job) {
  core::JobProfile p;
  if (config_.grouping == GroupingPolicy::kHarmony) {
    const auto measured = profiler_.profile(job.spec.id);
    p = measured.value_or(job.spec.profile());
  } else {
    // Baselines are granted oracle profiles (their best case).
    p = job.spec.profile();
  }
  p.cpu_work *= job.err_cpu;
  p.t_net *= job.err_net;
  return core::SchedJob{job.spec.id, p};
}

std::vector<core::SchedJob> ClusterSim::idle_sched_jobs() const {
  std::vector<const SimJob*> idle;
  idle.reserve(idle_ids_.size());
  for (core::JobId id : idle_ids_) idle.push_back(&jobs_[id]);
  // Same pinned (submit_time, id) total order as the waiting index. idle_ids_
  // is id-sorted, so ties land in id order deterministically.
  std::sort(idle.begin(), idle.end(), [this](const SimJob* a, const SimJob* b) {
    return submit_order_less(a->spec.id, b->spec.id);
  });
  std::vector<core::SchedJob> out;
  out.reserve(idle.size());
  auto* self = const_cast<ClusterSim*>(this);
  for (const SimJob* job : idle) out.push_back(self->sched_view(*job));
  return out;
}

std::vector<core::RunningGroup> ClusterSim::running_groups_view() const {
  std::vector<core::RunningGroup> out;
  auto* self = const_cast<ClusterSim*>(this);
  for (GroupRun* g : self->active_groups()) {
    if (g->dissolved || g->stopping) continue;
    core::RunningGroup rg;
    rg.machines = g->machines;
    for (core::JobId id : g->members) {
      if (jobs_[id].state == core::JobState::kRunning)
        rg.jobs.push_back(self->sched_view(jobs_[id]));
    }
    if (!rg.jobs.empty()) out.push_back(std::move(rg));
  }
  return out;
}

std::vector<ClusterSim::GroupRun*> ClusterSim::live_groups() const {
  std::vector<GroupRun*> out;
  for (GroupRun* g : const_cast<ClusterSim*>(this)->active_groups())
    if (!g->dissolved && !g->stopping) out.push_back(g);
  return out;
}

// ---------------------------------------------------------------------------
// Scheduling — event handlers

void ClusterSim::on_job_arrival(SimJob& job) {
  job.arrived = true;
  set_state(job, core::JobState::kWaiting);
  switch (config_.grouping) {
    case GroupingPolicy::kIsolated:
      try_schedule_isolated();
      break;
    case GroupingPolicy::kRandom:
      try_schedule_naive();
      break;
    case GroupingPolicy::kHarmony:
      // Defer: arrival events carry the same timestamp when jobs are
      // submitted in a batch, and the bootstrap should see the whole batch,
      // not just the first arrival. Same-time events fire in FIFO order, so
      // this runs after every pending arrival.
      sim_.schedule_at(sim_.now(), [this] { maybe_start_profiling(); });
      break;
    case GroupingPolicy::kOneGroup: {
      // Micro-bench policy: every job runs in one group spanning the whole
      // cluster (forces a specific DoP / co-location set).
      auto groups = live_groups();
      GroupRun* target;
      if (groups.empty()) {
        target = &create_group({}, free_machines_);
      } else {
        target = groups.front();
      }
      place_job_in_group(job, *target, /*with_migration_delay=*/false);
      record_group_prediction(*target);
      break;
    }
  }
}

void ClusterSim::maybe_start_profiling() {
  // Waiting jobs, oldest first.
  std::vector<SimJob*> waiting = waiting_jobs_by_submit();
  if (waiting.empty()) return;

  if (live_groups().empty() && pending_regroup_ == std::nullopt) {
    // No groups at all (startup, or everything drained between arrivals):
    // profile the backlog in naive bootstrap groups.
    bootstrap_profiling();
    return;
  }

  // Steady state: profile into the group with the fewest machines (or the
  // one already profiling), up to the concurrency cap (§IV-B1).
  std::size_t profiling_now = profiling_count_;

  auto groups = live_groups();
  if (groups.empty()) return;
  for (SimJob* job : waiting) {
    if (profiling_now >= config_.max_profiling_jobs) break;
    GroupRun* target = nullptr;
    for (GroupRun* g : groups) {
      bool has_profiling = false;
      for (core::JobId id : g->members)
        if (jobs_[id].state == core::JobState::kProfiling) has_profiling = true;
      if (has_profiling) {
        target = g;
        break;
      }
      if (target == nullptr || g->machines < target->machines) target = g;
    }
    if (target == nullptr) break;
    set_state(*job, core::JobState::kProfiling);
    place_job_in_group(*job, *target, /*with_migration_delay=*/true);
    ++profiling_now;
  }
}

void ClusterSim::bootstrap_profiling() {
  // Initial naive placement for profiling (§III: a submitted job "gets
  // naively assigned to a group ... to be profiled"). Jobs are chunked and
  // each chunk gets an even share of the cluster.
  std::vector<SimJob*> waiting = waiting_jobs_by_submit();
  if (waiting.empty()) return;

  const std::size_t chunk_size = 8;
  const std::size_t chunks =
      std::clamp<std::size_t>((waiting.size() + chunk_size - 1) / chunk_size, 1,
                              std::max<std::size_t>(1, free_machines_));
  const std::size_t machines_per_chunk = std::max<std::size_t>(1, free_machines_ / chunks);

  std::size_t cursor = 0;
  for (std::size_t c = 0; c < chunks && cursor < waiting.size(); ++c) {
    const std::size_t take =
        std::min(waiting.size() - cursor, (waiting.size() + chunks - 1) / chunks);
    const std::size_t m = std::min(machines_per_chunk, free_machines_);
    if (m == 0) break;
    GroupRun& g = create_group({}, m);
    for (std::size_t k = 0; k < take; ++k) {
      SimJob* job = waiting[cursor++];
      set_state(*job, core::JobState::kProfiling);
      place_job_in_group(*job, g, /*with_migration_delay=*/false);
    }
  }
}

void ClusterSim::schedule_on_spare_machines() {
  // Work conservation: the paper's allocateMachines always distributes every
  // machine it is given, so unallocated machines plus an idle backlog means
  // we should form new groups (this also recovers after arrival lulls).
  // Machines earmarked for a pending regroup's yet-to-form groups are not
  // spare.
  if (scheduling_spare_) return;  // re-entry via apply/dissolve chains
  std::size_t reserved = pending_regroup_ ? pending_regroup_->reserved_machines() : 0;
  if (free_machines_ <= reserved) return;
  const std::size_t spare = free_machines_ - reserved;
  // Gate on a meaningful chunk of machines: forming 2-machine groups from
  // every scrap fragments the cluster and churns migrations. On tiny
  // clusters the gate drops to one machine or jobs would starve.
  const std::size_t gate =
      std::min<std::size_t>(4, std::max<std::size_t>(1, config_.machines / 20));
  if (spare < gate) return;
  const auto idle = idle_sched_jobs();
  if (idle.empty()) return;
  scheduling_spare_ = true;
  const auto t0 = WallClock::now();
  const core::ScheduleDecision decision = scheduler_.schedule(idle, spare);
  sched_wall_seconds_ += wall_seconds_since(t0);
  ++sched_invocations_;
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kSchedule, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs);
  apply_decision(decision, {});
  scheduling_spare_ = false;
}

void ClusterSim::expand_groups_with_free_machines() {
  // Only for Harmony's grouping and only once the backlog is empty: extra
  // machines shrink COMP (Eq. 2), shortening the remaining groups' cycles.
  if (config_.grouping != GroupingPolicy::kHarmony) return;
  if (pending_regroup_ || free_machines_ == 0) return;
  if (!waiting_ids_.empty() || paused_count_ > 0 || profiled_ungrouped_count_ > 0)
    return;  // backlog exists: machines belong to new groups instead

  // A grant changes only the winner's marginal gain, so compute each group's
  // gain once and refresh just the granted group per iteration. The live list
  // cannot change inside the loop (no group is created or dissolved here).
  const auto groups = live_groups();
  core::GroupShape shape;
  const auto gain_of = [&](GroupRun* g) {
    shape.machines = g->machines;
    shape.jobs.clear();
    for (core::JobId id : g->members) shape.jobs.push_back(jobs_[id].spec.profile());
    if (shape.jobs.empty()) return 0.0;  // below the grant threshold: never picked
    const double now_t = core::PerfModel::group_iteration_time(shape);
    ++shape.machines;
    const double next_t = core::PerfModel::group_iteration_time(shape);
    return (now_t - next_t) / std::max(now_t, 1e-9);
  };
  std::vector<double> gains(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) gains[i] = gain_of(groups[i]);

  while (free_machines_ > 0) {
    std::size_t best = groups.size();
    double best_gain = 1e-6;
    for (std::size_t i = 0; i < groups.size(); ++i) {
      if (gains[i] > best_gain) {
        best_gain = gains[i];
        best = i;
      }
    }
    if (best == groups.size()) break;
    --free_machines_;
    ++groups[best]->machines;
    gains[best] = gain_of(groups[best]);
  }
}

std::size_t ClusterSim::PendingRegroup::reserved_machines() const {
  std::size_t reserved = 0;
  for (std::size_t i = 0; i < decision.groups.size(); ++i)
    if (!resolved[i]) reserved += decision.groups[i].machines;
  return reserved;
}

void ClusterSim::begin_pending(core::ScheduleDecision decision,
                               std::vector<GroupRun*> involved) {
  PendingRegroup pr;
  pr.targets.assign(decision.groups.size(), nullptr);
  pr.resolved.assign(decision.groups.size(), false);
  for (std::size_t i = 0; i < decision.groups.size(); ++i)
    for (core::JobId id : decision.groups[i].jobs) pr.job_plan[id] = i;
  pr.decision = std::move(decision);
  pr.involved = involved;
  pending_regroup_.emplace(std::move(pr));
  ++summary_.regroup_events;
  obs::MetricsRegistry::instance().counter("sim.regroup_events").add();
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kRegroup, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs);
  for (GroupRun* g : involved) g->stopping = true;
  for (GroupRun* g : involved)
    if (!g->dissolved && g->active_members == 0) dissolve_group(*g);
  try_apply_pending();
  maybe_validate();
}

void ClusterSim::try_apply_pending() {
  if (!pending_regroup_ || applying_pending_) return;
  applying_pending_ = true;

  // Materialize every plan whose machines are available; jobs still draining
  // out of stopping groups join later (park_job routes them here).
  PendingRegroup& pr = *pending_regroup_;
  for (std::size_t i = 0; i < pr.decision.groups.size(); ++i) {
    if (pr.resolved[i]) continue;
    const core::GroupPlan& plan = pr.decision.groups[i];

    // Abandon plans none of whose jobs can ever arrive (finished, or claimed
    // by another group that is not draining).
    bool possible = false;
    for (core::JobId id : plan.jobs) {
      const SimJob& j = jobs_[id];
      if (j.state == core::JobState::kFinished) continue;
      if (j.group == nullptr || j.group->stopping) possible = true;
    }
    if (!possible || plan.machines == 0) {
      pr.resolved[i] = true;
      continue;
    }
    if (plan.machines > free_machines_) continue;

    GroupRun& g = create_group({}, plan.machines);
    pr.targets[i] = &g;
    pr.resolved[i] = true;
    std::size_t placed = 0;
    std::vector<SimJob*> refused;
    for (core::JobId id : plan.jobs) {
      SimJob& j = jobs_[id];
      if (j.state == core::JobState::kFinished || j.group != nullptr) continue;
      if (!fits_without_spill(g, j)) {
        refused.push_back(&j);  // no-spill runs: cannot share this group
        continue;
      }
      place_job_in_group(j, g, /*with_migration_delay=*/true);
      group_dops_.add(static_cast<double>(plan.machines));
      ++placed;
    }
    if (placed == 0) {
      dissolve_group(g);
    } else {
      group_sizes_.add(static_cast<double>(placed));
      record_group_prediction(g);
    }
    for (SimJob* j : refused) place_fallback_isolated(*j);
  }

  // Complete once every plan is resolved and every drained group is gone.
  bool done = true;
  for (bool r : pr.resolved)
    if (!r) done = false;
  for (GroupRun* g : pr.involved)
    if (!g->dissolved) done = false;
  if (done) pending_regroup_.reset();
  applying_pending_ = false;
  if (done) {
    // Jobs left over from the drained groups wait as paused. (Rare: only on
    // regroup completion, so the defensive full scan is fine here.)
    for (SimJob& job : jobs_)
      if (job.group == nullptr && job.state == core::JobState::kRunning)
        set_state(job, core::JobState::kPaused);
    maybe_start_profiling();
  }
  // Whatever machines the pending plans do not need can serve the idle pool
  // right away (reserved machines are excluded inside).
  schedule_on_spare_machines();
}

void ClusterSim::on_job_profiled(SimJob& job) {
  set_state(job, core::JobState::kProfiled);
  if (!initial_schedule_done_) {
    // Wait until the whole initial batch has profiles, then run Algorithm 1
    // over everything. (Arrived jobs in kWaiting are exactly the waiting
    // index; kProfiling implies arrived.)
    const bool all_profiled = waiting_ids_.empty() && profiling_count_ == 0;
    if (all_profiled) run_initial_harmony_schedule();
    return;  // keeps iterating in its bootstrap group meanwhile
  }

  // Steady state (§IV-B4 arrival rule).
  const auto idle = idle_sched_jobs();
  const auto groups_view = running_groups_view();
  const auto t0 = WallClock::now();
  const core::RegroupAction action =
      regrouper_.on_job_arrival(sched_view(job), idle, groups_view);
  sched_wall_seconds_ += wall_seconds_since(t0);
  ++sched_invocations_;
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kSchedule, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs);

  if (action.kind == core::RegroupAction::Kind::kAddToGroup) {
    auto groups = live_groups();
    // Map the view index back to a live group (views skip empty groups, so
    // rebuild the same filtered list).
    std::vector<GroupRun*> view_groups;
    for (GroupRun* g : groups) {
      bool has_running = false;
      for (core::JobId id : g->members)
        if (jobs_[id].state == core::JobState::kRunning) has_running = true;
      if (has_running) view_groups.push_back(g);
    }
    if (action.group_index < view_groups.size()) {
      GroupRun* target = view_groups[action.group_index];
      if (job.group == target) {
        set_state(job, core::JobState::kRunning);
        settle_group_prediction(*target);
        record_group_prediction(*target);
        return;
      }
      if (job.group != nullptr) park_job(job, core::JobState::kProfiled);
      // park_job may already have routed the job into a pending regroup's
      // target group; only place it ourselves if it is still idle.
      if (job.group == nullptr && fits_without_spill(*target, job)) {
        ++summary_.regroup_events;
        obs::MetricsRegistry::instance().counter("sim.regroup_events").add();
        if (obs::Tracer::enabled())
          obs::Tracer::instant(obs::EventKind::kRegroup, obs::ClockDomain::kSim,
                               sim_.now() * kTraceUs, job.spec.id,
                               static_cast<std::uint32_t>(target->id));
        settle_group_prediction(*target);
        place_job_in_group(job, *target, /*with_migration_delay=*/true);
        record_group_prediction(*target);
        maybe_validate();
      }
      return;
    }
  }
  // Wait: leave the profiling group and pause.
  if (job.group != nullptr) park_job(job, core::JobState::kProfiled);
  schedule_on_spare_machines();
}

void ClusterSim::run_initial_harmony_schedule() {
  initial_schedule_done_ = true;
  // Pool: everything profiled so far, queue order.
  std::vector<core::SchedJob> pool = idle_sched_jobs();
  // Jobs still running in bootstrap groups are also schedulable.
  for (SimJob& job : jobs_) {
    if (job.state == core::JobState::kRunning ||
        (job.state == core::JobState::kProfiled && job.group != nullptr)) {
      if (std::none_of(pool.begin(), pool.end(),
                       [&](const core::SchedJob& s) { return s.id == job.spec.id; }))
        pool.push_back(sched_view(job));
    }
  }
  if (pool.empty()) return;

  const std::size_t total_machines = config_.machines;
  const auto t0 = WallClock::now();
  core::ScheduleDecision decision = scheduler_.schedule(pool, total_machines);
  sched_wall_seconds_ += wall_seconds_since(t0);
  ++sched_invocations_;
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kSchedule, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs);

  // Tear down every bootstrap group; decision groups form as drains finish.
  begin_pending(std::move(decision), live_groups());
}

void ClusterSim::apply_decision(const core::ScheduleDecision& decision,
                                const std::vector<std::size_t>& /*replaced*/) {
  // Additive application: only idle (group-less) jobs are placed; a job that
  // something else claimed in the meantime is skipped.
  ++summary_.regroup_events;
  obs::MetricsRegistry::instance().counter("sim.regroup_events").add();
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kRegroup, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs);
  for (const core::GroupPlan& plan : decision.groups) {
    if (plan.jobs.empty() || plan.machines == 0) continue;
    const std::size_t m = std::min(plan.machines, free_machines_);
    if (m == 0) break;
    std::vector<SimJob*> placeable;
    for (core::JobId id : plan.jobs) {
      SimJob& job = jobs_[id];
      if (job.state == core::JobState::kFinished || job.group != nullptr) continue;
      placeable.push_back(&job);
    }
    if (placeable.empty()) continue;
    GroupRun& g = create_group({}, m);
    std::size_t placed = 0;
    std::vector<SimJob*> refused;
    for (SimJob* job : placeable) {
      if (!fits_without_spill(g, *job)) {
        refused.push_back(job);
        continue;
      }
      place_job_in_group(*job, g, /*with_migration_delay=*/true);
      group_dops_.add(static_cast<double>(m));
      ++placed;
    }
    if (placed == 0) {
      dissolve_group(g);
    } else {
      group_sizes_.add(static_cast<double>(placed));
      record_group_prediction(g);
    }
    for (SimJob* job : refused) place_fallback_isolated(*job);
  }
  maybe_start_profiling();
  maybe_validate();
}

void ClusterSim::on_job_finished(SimJob& job) {
  switch (config_.grouping) {
    case GroupingPolicy::kIsolated: {
      // The finished job's dedicated group dissolves; queued jobs take over.
      dissolve_emptied_groups(/*skip_stopping=*/false);
      try_schedule_isolated();
      return;
    }
    case GroupingPolicy::kRandom: {
      dissolve_emptied_groups(/*skip_stopping=*/false);
      try_schedule_naive();
      return;
    }
    case GroupingPolicy::kOneGroup: {
      dissolve_emptied_groups(/*skip_stopping=*/false);
      return;
    }
    case GroupingPolicy::kHarmony:
      break;
  }

  // Clean up emptied groups first.
  dissolve_emptied_groups(/*skip_stopping=*/true);

  if (pending_regroup_) {
    // A regroup is already in flight; just keep spare machines busy.
    schedule_on_spare_machines();
    return;
  }

  // Locate the group the job left (it may just have been dissolved).
  const auto groups_view = running_groups_view();
  if (groups_view.empty()) {
    // Nothing running: restart from the idle pool if anything is left.
    schedule_on_spare_machines();
    maybe_start_profiling();
    return;
  }

  // Map the finished job's former group into the view index space.
  std::vector<GroupRun*> view_groups;
  for (GroupRun* g : live_groups()) {
    bool has_running = false;
    for (core::JobId id : g->members)
      if (jobs_[id].state == core::JobState::kRunning) has_running = true;
    if (has_running) view_groups.push_back(g);
  }
  std::size_t group_index = 0;
  for (std::size_t i = 0; i < view_groups.size(); ++i)
    if (view_groups[i] == job.last_group) group_index = i;

  const auto idle = idle_sched_jobs();
  const auto t0 = WallClock::now();
  const core::RegroupAction action = regrouper_.on_job_finish(
      sched_view(job), group_index, idle, groups_view, free_machines_);
  sched_wall_seconds_ += wall_seconds_since(t0);
  ++sched_invocations_;
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kSchedule, obs::ClockDomain::kSim,
                         sim_.now() * kTraceUs);

  switch (action.kind) {
    case core::RegroupAction::Kind::kNone:
      break;
    case core::RegroupAction::Kind::kReplace: {
      if (action.group_index < view_groups.size()) {
        GroupRun* target = view_groups[action.group_index];
        settle_group_prediction(*target);
        for (const core::SchedJob& r : action.replacements) {
          SimJob& repl = jobs_[r.id];
          if (repl.group != nullptr || repl.state == core::JobState::kFinished) continue;
          if (!fits_without_spill(*target, repl)) continue;
          place_job_in_group(repl, *target, /*with_migration_delay=*/true);
        }
        ++summary_.regroup_events;
        obs::MetricsRegistry::instance().counter("sim.regroup_events").add();
        if (obs::Tracer::enabled())
          obs::Tracer::instant(obs::EventKind::kRegroup, obs::ClockDomain::kSim,
                               sim_.now() * kTraceUs, job.spec.id,
                               static_cast<std::uint32_t>(target->id));
        record_group_prediction(*target);
        maybe_validate();
      }
      break;
    }
    case core::RegroupAction::Kind::kReschedule: {
      // Damp churn: full reschedules pay drain and migration costs, so they
      // are rate-limited; the cheap kReplace repairs are not.
      if (sim_.now() - last_reschedule_time_ < config_.reschedule_cooldown_sec) break;
      std::vector<GroupRun*> involved;
      for (std::size_t idx : action.groups_involved)
        if (idx < view_groups.size()) involved.push_back(view_groups[idx]);
      if (involved.empty()) break;
      last_reschedule_time_ = sim_.now();
      begin_pending(action.decision, std::move(involved));
      break;
    }
    case core::RegroupAction::Kind::kAddToGroup:
      break;  // not produced by on_job_finish
  }
  maybe_start_profiling();
  schedule_on_spare_machines();
  expand_groups_with_free_machines();
}

// ---------------------------------------------------------------------------
// Baseline scheduling drivers

void ClusterSim::try_schedule_isolated() {
  for (;;) {
    // FIFO head = front of the submit-ordered index. (The old scan kept the
    // first-encountered job among submit ties, i.e. the lowest id — exactly
    // the (submit_time, id) minimum.)
    if (waiting_by_submit_.empty()) return;
    SimJob* next = &jobs_[waiting_by_submit_.front()];

    std::size_t m = isolated_.pick_dop(next->spec.profile());
    m = std::max(m, next->spec.min_machines_without_spill(config_.machine_spec));
    m = std::min(m, config_.machines);
    if (m > free_machines_) return;  // FIFO head-of-line blocking
    GroupRun& g = create_group({}, m);
    place_job_in_group(*next, g, /*with_migration_delay=*/false);
    group_dops_.add(static_cast<double>(m));
    group_sizes_.add(1.0);
    record_group_prediction(g);
  }
}

void ClusterSim::try_schedule_naive() {
  // Naive co-location: FIFO queue (in seeded shuffled order) chopped into
  // fixed-size groups; each group gets just enough machines to fit in memory.
  std::vector<SimJob*> waiting = waiting_jobs_by_submit();
  if (waiting.empty()) return;
  if (config_.naive_grouping_seed != 0) {
    Rng shuffle_rng(config_.naive_grouping_seed);
    shuffle_rng.shuffle(waiting);
  }

  const std::size_t k = std::max<std::size_t>(1, config_.naive_jobs_per_group);
  std::size_t cursor = 0;
  bool scheduled_nothing_yet = live_groups().empty();
  while (cursor < waiting.size()) {
    const std::size_t take = std::min(k, waiting.size() - cursor);
    // All-arrived batches form full groups; a short tail only schedules when
    // nothing else will arrive to fill it (approximated: schedule anyway).
    double mem_needed = 0.0;
    std::size_t compute_need = 2;
    for (std::size_t i = 0; i < take; ++i) {
      const WorkloadSpec& s = waiting[cursor + i]->spec;
      mem_needed += s.input_bytes() * kInputMemExpansion + s.model_bytes() * kModelMemExpansion;
      compute_need = std::max(compute_need, isolated_.pick_dop(s.profile()));
    }
    // Naive co-location's whole point is consolidation: the k jobs share the
    // allocation the largest of them would have received alone (Gandiva-style
    // packing), stretched only if their summed memory would OOM outright.
    const auto mem_machines = static_cast<std::size_t>(std::ceil(
        mem_needed / (config_.naive_pack_occupancy * config_.machine_spec.memory_bytes)));
    std::size_t m = std::clamp<std::size_t>(std::max(mem_machines, compute_need), 2,
                                            config_.machines);
    if (m > free_machines_) {
      if (!scheduled_nothing_yet || cursor + take < waiting.size()) {
        // Backfill: skip the blocked chunk and try the next one.
        cursor += take;
        continue;
      }
      m = std::max<std::size_t>(1, free_machines_);  // forced (may OOM)
      if (m == 0) return;
    }
    scheduled_nothing_yet = false;
    GroupRun& g = create_group({}, m);
    for (std::size_t i = 0; i < take; ++i)
      place_job_in_group(*waiting[cursor + i], g, /*with_migration_delay=*/false);
    group_dops_.add(static_cast<double>(m));
    group_sizes_.add(static_cast<double>(take));
    record_group_prediction(g);
    cursor += take;
  }
}

// ---------------------------------------------------------------------------
// Metrics

void ClusterSim::record_group_prediction(GroupRun& group) {
  core::GroupShape shape;
  shape.machines = group.machines;
  for (core::JobId id : group.members) {
    if (jobs_[id].state != core::JobState::kRunning) continue;
    shape.jobs.push_back(sched_view(jobs_[id]).profile);
  }
  if (shape.jobs.empty() || shape.machines == 0) {
    group.predicted_titr = 0.0;
    return;
  }
  group.predicted_titr = core::PerfModel::group_iteration_time(shape);
  group.predicted_util = core::PerfModel::group_utilization(shape);
  // Perf-model cross-check hook: expose the model's belief about this group
  // (predicted T_itr and which lane bounds it) to the trace so the analysis
  // engine can score predictions against measured behaviour (Fig. 13-style).
  if (obs::Tracer::enabled())
    obs::Tracer::prediction(obs::ClockDomain::kSim, sim_.now() * kTraceUs,
                            static_cast<std::uint32_t>(group.id),
                            group.predicted_titr * kTraceUs,
                            core::PerfModel::group_bound(shape) == core::Bound::kCpu);
  group.predict_start = sim_.now();
  group.cpu_busy_at_predict = group.cpu_busy();
  group.net_busy_at_predict = group.net_busy();
  group.actual_iteration_times = SampleSet{};
}

void ClusterSim::settle_group_prediction(GroupRun& group) {
  if (group.predicted_titr <= 0.0) return;
  const double elapsed = sim_.now() - group.predict_start;
  if (elapsed < 2.0 * group.predicted_titr || group.actual_iteration_times.size() < 3)
    return;
  const double actual_titr = group.actual_iteration_times.mean();
  prediction_errors_.group_iteration_rel_error.add(
      relative_error(actual_titr, group.predicted_titr));

  const double u_cpu = (group.cpu_busy() - group.cpu_busy_at_predict) / elapsed;
  const double u_net = (group.net_busy() - group.net_busy_at_predict) / elapsed;
  const double err = 0.5 * (std::abs(u_cpu - group.predicted_util.cpu) +
                            std::abs(u_net - group.predicted_util.net));
  prediction_errors_.utilization_rel_error.add(
      err / std::max(0.5 * (group.predicted_util.cpu + group.predicted_util.net), 1e-9));
  group.predicted_titr = 0.0;
}

void ClusterSim::sample_utilization() {
  const double window = config_.util_sample_window_sec;
  double cpu_weighted = 0.0;
  double net_weighted = 0.0;
  std::size_t running_jobs = 0;
  std::size_t running_groups = 0;
  for (GroupRun* g : active_groups()) {
    if (g->dissolved) continue;
    const double cpu_now = g->cpu_busy();
    const double net_now = g->net_busy();
    const double m = static_cast<double>(g->machines);
    cpu_weighted += m * std::min(1.0, (cpu_now - g->last_cpu_busy) / window);
    net_weighted += m * std::min(1.0, (net_now - g->last_net_busy) / window);
    g->last_cpu_busy = cpu_now;
    g->last_net_busy = net_now;
    if (!g->members.empty()) {
      ++running_groups;
      running_jobs += g->members.size();
    }
  }
  const double total = static_cast<double>(config_.machines);
  timeline_.add_sample(sim_.now(),
                       core::Utilization{cpu_weighted / total, net_weighted / total});
  if (config_.debug_trace) {
    std::size_t waiting = 0, paused = 0, profiled = 0, finished = 0;
    for (const SimJob& j : jobs_) {
      waiting += j.state == core::JobState::kWaiting;
      paused += j.state == core::JobState::kPaused;
      profiled += j.state == core::JobState::kProfiled && j.group == nullptr;
      finished += j.state == core::JobState::kFinished;
    }
    std::string groups_desc;
    for (const GroupRun& g : groups_)
      if (!g.dissolved)
        groups_desc += " [" + std::to_string(g.members.size()) + "j/" +
                       std::to_string(g.machines) + "m" + (g.stopping ? "!" : "") + "]";
    std::fprintf(stderr,
                 "t=%7.0f cpu=%.2f net=%.2f free=%zu wait=%zu paused=%zu idleprof=%zu "
                 "done=%zu pend=%d%s\n",
                 sim_.now(), cpu_weighted / total, net_weighted / total, free_machines_,
                 waiting, paused, profiled, finished, pending_regroup_ ? 1 : 0,
                 groups_desc.c_str());
  }
  if (running_jobs > 0) {
    concurrent_jobs_samples_.add(static_cast<double>(running_jobs));
    concurrent_groups_samples_.add(static_cast<double>(running_groups));
  }
  // Sampled once per window rather than per event so the hot loop stays clean.
  static obs::HistogramMetric& queue_depth =
      obs::MetricsRegistry::instance().histogram("sim.event_queue_depth", 0.0, 4096.0, 64);
  queue_depth.observe(static_cast<double>(sim_.pending()));
  // Live-telemetry level gauges (deterministic: sim state at sim-clock
  // sampling points), windowed by obs::TimeSeriesEngine alongside the svc.*
  // series when a telemetry consumer is attached.
  static obs::Gauge& jobs_running = obs::MetricsRegistry::instance().gauge("sim.jobs_running");
  static obs::Gauge& groups_live = obs::MetricsRegistry::instance().gauge("sim.groups_live");
  static obs::Gauge& free_machines =
      obs::MetricsRegistry::instance().gauge("sim.free_machines");
  jobs_running.set(static_cast<double>(running_jobs));
  groups_live.set(static_cast<double>(running_groups));
  free_machines.set(static_cast<double>(free_machines_));

  // Keep sampling while anything is active or still to come.
  if (unfinished_count_ > 0) sim_.schedule_in(window, [this] { sample_utilization(); });
}

// ---------------------------------------------------------------------------

RunSummary ClusterSim::run() {
  summary_ = RunSummary{};
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    SimJob* j = &jobs_[i];
    sim_.schedule_at(arrivals_[i], [this, j] { on_job_arrival(*j); });
  }
  sim_.schedule_in(config_.util_sample_window_sec, [this] { sample_utilization(); });
  sim_.run(200'000'000ULL);

  for (GroupRun& g : groups_)
    if (!g.dissolved) settle_group_prediction(g);
  maybe_validate();

  double first_arrival = arrivals_.empty() ? 0.0 : arrivals_.front();
  for (double a : arrivals_) first_arrival = std::min(first_arrival, a);
  summary_.makespan = summary_.max_finish() - first_arrival;
  summary_.avg_util = timeline_.average_until(summary_.makespan);
  const double total = gc_lost_seconds_ + comp_base_seconds_;
  summary_.gc_time_fraction = total > 0.0 ? gc_lost_seconds_ / total : 0.0;

  auto& reg = obs::MetricsRegistry::instance();
  reg.gauge("sim.events_fired").set(static_cast<double>(sim_.events_fired()));
  reg.gauge("sim.makespan_sec").set(summary_.makespan);
  reg.gauge("sim.mean_jct_sec").set(summary_.mean_jct());
  reg.gauge("sim.regroup_events").set(static_cast<double>(summary_.regroup_events));
  reg.gauge("sim.sched_invocations").set(static_cast<double>(sched_invocations_));
  reg.gauge("sim.sched_wall_seconds").set(sched_wall_seconds_);
  reg.gauge("sim.oom_events").set(static_cast<double>(summary_.oom_events));
  return summary_;
}

double ClusterSim::avg_concurrent_jobs() const { return concurrent_jobs_samples_.mean(); }
double ClusterSim::avg_concurrent_groups() const { return concurrent_groups_samples_.mean(); }

AlphaStats ClusterSim::alpha_stats() const {
  AlphaStats st;
  if (alpha_samples_.empty()) return st;
  st.mean = alpha_samples_.mean();
  st.min = alpha_samples_.min();
  st.max = alpha_samples_.max();
  for (std::size_t i = 0; i < jobs_.size(); ++i)
    if (job_alpha_[i] >= 0.999 || job_model_spilled_[i] != 0) ++st.jobs_at_one;
  return st;
}

std::string ClusterSim::debug_dump() const {
  std::string out = "t=" + std::to_string(sim_.now()) + " free=" +
                    std::to_string(free_machines_) +
                    " pending_regroup=" + (pending_regroup_ ? "yes" : "no") +
                    "\n";
  for (const SimJob& job : jobs_) {
    out += "job " + std::to_string(job.spec.id) + " " + core::to_string(job.state) +
           " iters=" + std::to_string(job.iterations_done) + "/" +
           std::to_string(job.spec.iterations) +
           " group=" + (job.group ? std::to_string(job.group->id) : "-") +
           " arrived=" + (job.arrived ? "y" : "n") + "\n";
  }
  for (const GroupRun& g : groups_) {
    if (g.dissolved) continue;
    out += "group " + std::to_string(g.id) + " m=" + std::to_string(g.machines) +
           " members=" + std::to_string(g.members.size()) +
           " active=" + std::to_string(g.active_members) +
           (g.stopping ? " stopping" : "") + "\n";
  }
  return out;
}

bool co_location_ooms(const std::vector<WorkloadSpec>& jobs, std::size_t machines,
                      const cluster::MachineSpec& spec,
                      const cluster::MemoryModelParams& params) {
  double resident = 0.0;
  for (const WorkloadSpec& s : jobs) resident += s.resident_bytes(machines, 0.0);
  return resident / spec.memory_bytes > params.oom_occupancy;
}

}  // namespace harmony::exp
