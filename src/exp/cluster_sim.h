// ClusterSim: event-driven execution of a multi-job workload on a simulated
// cluster, under one of the paper's three scheduling regimes.
//
// Groups execute as subtask pipelines over per-group resources:
//  * pipelined execution (Harmony / isolated / the "subtasks only" ablation)
//    uses FIFO resources — one COMP at a time, COMM serialized — so jobs
//    interleave without contention;
//  * contended execution (naive co-location) uses processor-sharing resources
//    with an interference penalty — concurrent steps slow each other down.
//
// The *scheduling logic is the real library code*: core::Scheduler
// (Algorithm 1), core::Regrouper (§IV-B4), core::Profiler (moving averages
// over measured subtask durations, not the hidden ground truth),
// core::AlphaController + SpillCostModel (§IV-C) and the baselines. The
// simulator supplies what EC2 supplied in the paper: machines, time, memory
// pressure and noise.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "baselines/isolated.h"
#include "baselines/naive.h"
#include "check/check.h"
#include "cluster/machine.h"
#include "cluster/memory_model.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "exp/metrics.h"
#include "exp/workload.h"
#include "harmony/profiler.h"
#include "harmony/regrouper.h"
#include "harmony/scheduler.h"
#include "harmony/spill_manager.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace harmony::exp {

enum class ExecModel {
  kPipelined,  // Harmony's subtask discipline
  kContended,  // naive: concurrent steps share and interfere
};

enum class GroupingPolicy {
  kIsolated,  // one job per group, CPU-bias DoP (Optimus/SLAQ-style)
  kRandom,    // seeded arbitrary co-location (Gandiva-style)
  kHarmony,   // Algorithm 1 + dynamic regrouping
  kOneGroup,  // force every job into one group over all machines (micro-benches)
};

struct ClusterSimConfig {
  std::size_t machines = 100;
  cluster::MachineSpec machine_spec;
  cluster::MemoryModelParams memory_params;

  ExecModel exec = ExecModel::kPipelined;
  GroupingPolicy grouping = GroupingPolicy::kHarmony;
  bool spill_enabled = true;

  std::uint64_t seed = 1;
  // Event-queue implementation for the underlying simulator. Both produce
  // bit-identical runs (the golden-determinism tests pin this); the binary
  // heap is kept as the O(log n) reference, the calendar queue is the O(1)
  // amortized default.
  sim::EventQueueKind event_queue = sim::EventQueueKind::kCalendar;
  double subtask_noise_cv = 0.03;
  // Interference penalty for contended execution (per extra concurrent task).
  double contention_penalty = 0.08;

  std::size_t naive_jobs_per_group = 3;
  std::uint64_t naive_grouping_seed = 0;
  // Occupancy the naive packer squeezes groups to (Gandiva packs close to the
  // OOM line; a conservative operator would stay at the GC knee, 0.65).
  double naive_pack_occupancy = 0.90;

  // Fig. 13a: relative error injected into the profiles the scheduler sees.
  // Systematic per job (each job's profile is consistently wrong by a fixed
  // factor drawn once), which is what actually distorts grouping decisions.
  double model_error_injection = 0.0;

  // §V-G baseline: pin every job's disk ratio instead of hill climbing.
  std::optional<double> fixed_alpha;

  // Occupancy the α floor targets. Above the GC knee (0.7) but safely below
  // the OOM line: mild GC is routinely cheaper than extra reloading, and the
  // hill climb explores around this floor.
  double alpha_floor_occupancy = 0.85;

  // Prints a one-line cluster snapshot at every utilization sample (stderr).
  bool debug_trace = false;

  // Runs the deep invariant validators (validate_state) at every regroup
  // event and at the end of the run, throwing check::CheckError on the first
  // corrupt state. Validation is read-only and consumes no randomness, so
  // results are bit-identical with it on or off.
  bool validate = false;

  // Profiling iterations before a job is schedulable.
  std::size_t profiling_iterations = 3;
  // Minimum simulated time between successive kReschedule regroups; cheap
  // kReplace repairs are always allowed (churn damping).
  double reschedule_cooldown_sec = 900.0;
  // Concurrent jobs being profiled in steady state.
  std::size_t max_profiling_jobs = 4;

  double util_sample_window_sec = 60.0;
  // α re-optimization cadence (iterations between hill-climb observations).
  std::size_t alpha_update_every = 2;

  core::Scheduler::Params scheduler;
  core::Regrouper::Params regrouper;
  core::SpillCostModel::Params spill_costs;

  // Convenience presets matching the paper's three systems.
  static ClusterSimConfig isolated();
  static ClusterSimConfig naive(std::uint64_t grouping_seed = 0);
  static ClusterSimConfig harmony();
};

// Per-group disk-ratio statistics for §V-G reporting.
struct AlphaStats {
  double mean = 0.0;
  double min = 1.0;
  double max = 0.0;
  std::size_t jobs_at_one = 0;  // jobs pinned at α = 1 (model spill kicks in)
};

class ClusterSim {
 public:
  ClusterSim(ClusterSimConfig config, std::vector<WorkloadSpec> workload,
             std::vector<double> arrival_times);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  // Runs the whole workload to completion and returns the summary.
  RunSummary run();

  const UtilizationTimeline& timeline() const noexcept { return timeline_; }
  const PredictionErrors& prediction_errors() const noexcept { return prediction_errors_; }

  // Scheduling-decision shape statistics (Fig. 12).
  const SampleSet& group_dop_samples() const noexcept { return group_dops_; }
  const SampleSet& group_size_samples() const noexcept { return group_sizes_; }

  // Concurrency statistics (§V-C: "27.2 concurrent jobs ... 6.7 job groups").
  double avg_concurrent_jobs() const;
  double avg_concurrent_groups() const;

  // Wall time of every completed job iteration (includes queueing/reload
  // stalls); §V-G reports means of these under different α regimes.
  const SampleSet& iteration_wall_samples() const noexcept { return iteration_walls_; }

  AlphaStats alpha_stats() const;
  double total_sched_seconds() const noexcept { return sched_wall_seconds_; }
  std::size_t sched_invocations() const noexcept { return sched_invocations_; }

  // Throughput accounting for the simulation benchmarks: events executed by
  // the underlying DES and the final simulated clock.
  std::uint64_t events_fired() const noexcept { return sim_.events_fired(); }
  double sim_now() const noexcept { return sim_.now(); }

  // One-line-per-entity dump of job and group state; debugging/ops aid.
  std::string debug_dump() const;

  // Deep validators (src/check): cross-check every piece of incrementally
  // maintained state against a brute-force recomputation — machine
  // conservation across groups and the free pool, job-state indexes vs a
  // from-scratch rebuild, job<->group membership, spill ratios vs the cost
  // model's feasibility bound, pending-regroup bookkeeping, and the event
  // heap. Read-only; safe to call at any event boundary.
  check::ValidationReport validate_state() const;

  // Number of validate_state passes run by the --validate hook.
  std::size_t validations_run() const noexcept { return validations_run_; }

  // Test-only corruption hooks: each breaks exactly one maintained invariant
  // so tests can prove the matching validator detects it with a useful
  // report.
  enum class Corruption {
    kBadIndexEntry,         // foreign id inserted into the waiting index
    kOverAllocatedMachine,  // a group claims a machine the free pool still owns
    kSkewedSpillAlpha,      // a job's disk ratio pushed outside [0, 1]
    kBrokenMembership,      // group drops a member that still points at it
  };
  void corrupt_for_test(Corruption kind);

  // Schedules corrupt_for_test(kind) followed by an immediate validation pass
  // at simulated time `t` (call before run()). With config.validate set, the
  // run throws check::CheckError the moment the corruption lands.
  void schedule_corruption_for_test(double t, Corruption kind);

 private:
  struct SimJob;
  struct GroupRun;

  // --- job pipeline -------------------------------------------------------
  void start_iteration(SimJob& job);
  void begin_comp(SimJob& job, double pull_duration);
  void begin_push(SimJob& job, double pull_duration, double comp_duration);
  void end_iteration(SimJob& job, double comm_duration, double comp_duration);
  double comp_duration(SimJob& job);
  double comm_half_duration(SimJob& job);

  // --- memory / spill -----------------------------------------------------
  double group_occupancy(const GroupRun& group) const;
  // Memoized: the footprint depends only on (spec, alpha, model_spilled,
  // machines), so the result is cached per job and invalidated whenever the
  // spill state changes (set_alpha / set_model_spilled). The machine count is
  // part of the cache key, so DoP changes need no explicit invalidation.
  double job_resident_bytes(const SimJob& job, std::size_t machines) const;
  double job_resident_bytes_uncached(const SimJob& job, std::size_t machines) const;
  void set_alpha(core::JobId id, double alpha);
  void set_model_spilled(core::JobId id, bool spilled);
  void refresh_alpha(SimJob& job, bool initialize);
  // When spilling is disabled, Harmony placements refuse co-locations that
  // would overflow memory outright (the operator's feasibility check the
  // spill mechanism replaces).
  bool fits_without_spill(const GroupRun& group, const SimJob& job) const;
  // No-spill fallback: a job refused from every co-location gets a dedicated
  // group at its memory-minimum DoP, if machines allow.
  void place_fallback_isolated(SimJob& job);

  // --- scheduling ---------------------------------------------------------
  void on_job_arrival(SimJob& job);
  void on_job_profiled(SimJob& job);
  void on_job_finished(SimJob& job);
  void bootstrap_profiling();
  void try_schedule_isolated();
  void try_schedule_naive();
  void run_initial_harmony_schedule();
  core::SchedJob sched_view(const SimJob& job);
  std::vector<core::SchedJob> idle_sched_jobs() const;
  std::vector<core::RunningGroup> running_groups_view() const;

  // Central state-transition point: assigns job.state and refreshes the
  // job-state indexes (waiting/idle lists, per-state counters) that replace
  // whole-pool scans on the event path.
  void set_state(SimJob& job, core::JobState state);
  // Re-derives the job's index memberships after a state/group/arrival
  // mutation; idempotent.
  void reindex_job(SimJob& job);
  // The pinned scheduling order: by submit time, ties broken by job id. This
  // is a total order, so every scheduling pass sees one well-defined sequence
  // regardless of how the waiting set was assembled.
  bool submit_order_less(core::JobId a, core::JobId b) const noexcept {
    if (arrivals_[a] != arrivals_[b]) return arrivals_[a] < arrivals_[b];
    return a < b;
  }
  // Waiting jobs in submit order (the order every scheduling pass uses);
  // materialized from the incrementally sorted waiting_by_submit_ index, so
  // no per-call sort.
  std::vector<SimJob*> waiting_jobs_by_submit();
  // Non-dissolved groups in creation order; compacts lazily so event-path
  // iteration costs O(live groups), not O(groups ever created).
  std::vector<GroupRun*>& active_groups();
  // Dissolves every empty, drained group (optionally leaving stopping groups
  // to their own drain logic).
  void dissolve_emptied_groups(bool skip_stopping);

  GroupRun& create_group(const std::vector<core::JobId>& jobs, std::size_t machines);
  void dissolve_group(GroupRun& group);
  void place_job_in_group(SimJob& job, GroupRun& group, bool with_migration_delay);
  void park_job(SimJob& job, core::JobState state);
  double migration_delay(const SimJob& job, std::size_t machines) const;
  void apply_decision(const core::ScheduleDecision& decision,
                      const std::vector<std::size_t>& replaced_groups);
  void maybe_start_profiling();
  // Work conservation: if unallocated machines and idle jobs exist, runs
  // Algorithm 1 over the idle pool for just those machines.
  void schedule_on_spare_machines();
  // Tail behaviour: when machines are free but no jobs are waiting, grow the
  // DoP of the groups that benefit most (Eq. 2: more machines shrink COMP).
  void expand_groups_with_free_machines();
  // Starts a pipelined regroup: marks `involved` groups stopping and creates
  // each decision group as soon as its jobs have parked and machines freed.
  void begin_pending(core::ScheduleDecision decision, std::vector<GroupRun*> involved);
  void try_apply_pending();
  std::vector<GroupRun*> live_groups() const;

  // --- metrics ------------------------------------------------------------
  void sample_utilization();
  void record_group_prediction(GroupRun& group);
  void settle_group_prediction(GroupRun& group);

  ClusterSimConfig config_;
  std::vector<double> arrivals_;
  cluster::MemoryModel memory_model_;
  core::SpillCostModel spill_model_;
  core::Scheduler scheduler_;
  core::Regrouper regrouper_;
  baselines::IsolatedScheduler isolated_;
  baselines::NaiveScheduler naive_;
  core::Profiler profiler_;
  Rng rng_;

  sim::Simulator sim_;
  // Dense by JobId (== pool index). Sized once in the constructor and never
  // resized afterwards, so SimJob addresses are stable for the whole run —
  // event callbacks capture SimJob* directly.
  std::vector<SimJob> jobs_;
  // Deque for stable GroupRun addresses across create_group appends (groups_
  // only ever grows; dissolved groups stay for late no-op events).
  std::deque<GroupRun> groups_;
  std::size_t next_group_id_ = 0;
  std::size_t free_machines_ = 0;

  // Hot per-job scalars as struct-of-arrays, dense by JobId. The occupancy
  // walk (group_occupancy -> job_resident_bytes) runs on every COMP subtask,
  // so these stay packed instead of striding through SimJob records. Submit
  // times are arrivals_ (already dense by id, immutable after construction).
  std::vector<double> job_alpha_;                 // spill ratio, [0, 1]
  std::vector<std::uint8_t> job_model_spilled_;   // bool; model data on disk
  // Resident-bytes memo: valid when job_resident_valid_[id] != 0 AND the
  // queried machine count equals job_resident_machines_[id]. Mutable because
  // group_occupancy is logically const.
  mutable std::vector<double> job_resident_cache_;
  mutable std::vector<std::uint32_t> job_resident_machines_;
  mutable std::vector<std::uint8_t> job_resident_valid_;

  // Job-state indexes, maintained by reindex_job(). The id-sorted lists
  // reproduce the iteration order of a jobs_ scan (ids are pool indices), so
  // downstream sorts see the identical input sequence.
  std::vector<core::JobId> waiting_ids_;  // arrived && kWaiting
  // Same membership as waiting_ids_, kept sorted by (submit_time, id) — the
  // pinned scheduling order — via ordered insert/erase in reindex_job. This
  // replaces the per-scheduling-pass sort that dominated large-cluster runs.
  std::vector<core::JobId> waiting_by_submit_;
  std::vector<core::JobId> idle_ids_;     // kProfiled || kPaused
  std::size_t profiling_count_ = 0;
  std::size_t paused_count_ = 0;
  std::size_t profiled_ungrouped_count_ = 0;
  std::size_t unfinished_count_ = 0;
  // Non-dissolved groups in creation order (dissolved entries are dropped on
  // the next active_groups() call). Compaction is deferred while any caller
  // iterates the storage by index, so dissolve chains cannot shift entries
  // under the iteration.
  std::vector<GroupRun*> active_groups_storage_;
  std::size_t group_iter_depth_ = 0;

  UtilizationTimeline timeline_;
  PredictionErrors prediction_errors_;
  SampleSet group_dops_;
  SampleSet group_sizes_;
  SampleSet concurrent_jobs_samples_;
  SampleSet concurrent_groups_samples_;
  SampleSet alpha_samples_;
  SampleSet iteration_walls_;
  RunSummary summary_;
  double sched_wall_seconds_ = 0.0;
  std::size_t sched_invocations_ = 0;
  bool initial_schedule_done_ = false;
  std::size_t validations_run_ = 0;

  // --validate hook: runs validate_state() and throws on the first failure.
  void maybe_validate();

  // In-flight reschedule. Migration is per job: target groups materialize as
  // soon as their machines free up, and each job joins its target the moment
  // its ongoing iteration ends ("Harmony waits until ongoing iteration ends
  // ... and executes the other co-located jobs in the meanwhile", §IV-B4).
  struct PendingRegroup {
    core::ScheduleDecision decision;
    std::vector<GroupRun*> targets;  // created group per plan (null until then)
    std::vector<bool> resolved;      // created, or abandoned (no jobs left)
    std::unordered_map<core::JobId, std::size_t> job_plan;
    std::vector<GroupRun*> involved;  // groups being drained

    // Machines still earmarked for plans that have not materialized.
    std::size_t reserved_machines() const;
  };
  std::optional<PendingRegroup> pending_regroup_;
  bool applying_pending_ = false;
  bool scheduling_spare_ = false;
  double last_reschedule_time_ = -1e18;

  // GC accounting: seconds of compute inflated away by GC vs. useful compute.
  double gc_lost_seconds_ = 0.0;
  double comp_base_seconds_ = 0.0;
};

// True when co-locating `jobs` on `machines` machines without spilling
// overflows memory (Fig. 4's OOM case).
bool co_location_ooms(const std::vector<WorkloadSpec>& jobs, std::size_t machines,
                      const cluster::MachineSpec& spec,
                      const cluster::MemoryModelParams& params);

}  // namespace harmony::exp
