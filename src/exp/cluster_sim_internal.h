// Definitions of ClusterSim's private per-job / per-group runtime records,
// shared between the event-loop translation unit (cluster_sim.cpp) and the
// deep invariant validators (cluster_sim_validate.cpp). Not part of the
// public surface — include only from exp/ implementation files.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "exp/cluster_sim.h"
#include "sim/resource.h"

namespace harmony::exp {

// Cold per-job record. The hot scalars the memory model reads on every
// iteration (spill ratio, model-spill flag, submit time, resident-bytes
// cache) live in ClusterSim's dense struct-of-arrays indexed by JobId — see
// job_alpha_ and friends — so the occupancy walk touches packed doubles
// instead of striding through these records.
struct ClusterSim::SimJob {
  WorkloadSpec spec;
  bool arrived = false;  // submission event has fired
  core::JobState state = core::JobState::kWaiting;
  std::size_t iterations_done = 0;
  std::size_t profile_iterations = 0;
  std::size_t iters_in_group = 0;
  double finish_time = -1.0;

  GroupRun* group = nullptr;
  GroupRun* last_group = nullptr;  // group the job most recently left
  bool in_flight = false;          // an iteration's subtasks are in the pipeline
  double reload_ready_at = 0.0;
  double iter_start_time = 0.0;
  // Systematic profile-error factors for Fig. 13a (1.0 = exact).
  double err_cpu = 1.0;
  double err_net = 1.0;
  Rng noise;

  // Index memberships maintained by ClusterSim::reindex_job. They mirror the
  // predicates the event handlers used to evaluate with whole-pool scans.
  bool in_waiting_index = false;
  bool in_idle_index = false;
  bool counted_profiling = false;
  bool counted_paused = false;
  bool counted_profiled_ungrouped = false;
  bool counted_finished = false;

  explicit SimJob(Rng rng) : noise(rng) {}
};

struct ClusterSim::GroupRun {
  std::size_t id = 0;
  std::vector<core::JobId> members;  // includes profiling visitors
  std::size_t machines = 0;
  bool stopping = false;
  bool dissolved = false;
  bool oom_recorded = false;
  std::size_t active_members = 0;  // jobs currently cycling through subtasks

  std::unique_ptr<sim::FifoResource> cpu_fifo;
  std::unique_ptr<sim::FifoResource> net_fifo;
  std::unique_ptr<sim::SharedResource> cpu_shared;
  std::unique_ptr<sim::SharedResource> net_shared;

  // Group-level spill control (§IV-C): one hill-climbed occupancy target per
  // group; every member's α is the smallest ratio fitting that target, so
  // ratios stay per-job while the climb is coordinated.
  std::optional<core::AlphaController> occ_ctl;
  WindowedAverage recent_walls{8};
  std::size_t iters_since_alpha_update = 0;

  // Utilization sampling state.
  double last_cpu_busy = 0.0;
  double last_net_busy = 0.0;

  // Prediction bookkeeping (Fig. 13b).
  double predicted_titr = 0.0;
  core::Utilization predicted_util;
  double predict_start = 0.0;
  double cpu_busy_at_predict = 0.0;
  double net_busy_at_predict = 0.0;
  SampleSet actual_iteration_times;

  double cpu_busy() const {
    return cpu_fifo ? cpu_fifo->busy_time() : cpu_shared->work_completed();
  }
  double net_busy() const {
    return net_fifo ? net_fifo->busy_time() : net_shared->work_completed();
  }
};

}  // namespace harmony::exp
