// Deep invariant validators for ClusterSim (--validate / corruption tests).
//
// Every validator cross-checks incrementally maintained state against a
// brute-force recomputation from first principles, using the same predicates
// the incremental code keys off. All checks are read-only and consume no
// randomness, so running them cannot perturb a simulation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "common/sorted_view.h"
#include "exp/cluster_sim_internal.h"

namespace harmony::exp {

namespace {

// Mirrors the member-state transitions: a job inside a group is either
// running, still profiling, or profiled-and-awaiting the initial schedule
// (bootstrap groups keep iterating, §IV-B1).
bool groupable_state(core::JobState s) noexcept {
  return s == core::JobState::kRunning || s == core::JobState::kProfiling ||
         s == core::JobState::kProfiled;
}

}  // namespace

check::ValidationReport ClusterSim::validate_state() const {
  check::Validation v("cluster_sim");

  // -- machine conservation -------------------------------------------------
  // Σ machines over non-dissolved groups + free pool == cluster size.
  // Stopping groups keep their machines until the drain completes; dissolve
  // is the only release point and zeroes the group's count.
  std::size_t held = 0;
  for (const GroupRun& g : groups_) {
    if (g.dissolved) {
      HARMONY_VALIDATE(v, g.machines == 0)
          << check::group(g.id) << "dissolved group still holds " << g.machines
          << " machines";
      continue;
    }
    HARMONY_VALIDATE(v, g.machines >= 1)
        << check::group(g.id) << "live group holds zero machines";
    held += g.machines;
  }
  HARMONY_VALIDATE(v, held + free_machines_ == config_.machines)
      << "machine conservation broken: groups hold " << held << " + " << free_machines_
      << " free != cluster size " << config_.machines
      << " (a machine is over-allocated or leaked)";

  // -- group <-> job membership ---------------------------------------------
  for (const GroupRun& g : groups_) {
    if (g.dissolved) continue;
    std::unordered_set<core::JobId> seen;
    for (core::JobId id : g.members) {
      HARMONY_VALIDATE(v, id < jobs_.size())
          << check::group(g.id) << "member id " << id << " out of range";
      if (id >= jobs_.size()) continue;
      HARMONY_VALIDATE(v, seen.insert(id).second)
          << check::group(g.id) << check::job(id) << "job listed twice in one group";
      const SimJob& j = jobs_[id];
      HARMONY_VALIDATE(v, j.group == &g)
          << check::group(g.id) << check::job(id)
          << "membership not bidirectional: group lists the job but the job points at "
          << (j.group ? "group " + std::to_string(j.group->id) : std::string("no group"));
      HARMONY_VALIDATE(v, groupable_state(j.state))
          << check::group(g.id) << check::job(id) << "grouped job in state "
          << core::to_string(j.state);
    }
    HARMONY_VALIDATE(v, g.active_members == g.members.size())
        << check::group(g.id) << "active_members (" << g.active_members
        << ") != member count (" << g.members.size() << ")";
  }
  for (const SimJob& j : jobs_) {
    if (j.group == nullptr) continue;
    HARMONY_VALIDATE(v, !j.group->dissolved)
        << check::job(j.spec.id) << check::group(j.group->id)
        << "job points at a dissolved group";
    const auto& members = j.group->members;
    HARMONY_VALIDATE(v, std::count(members.begin(), members.end(), j.spec.id) == 1)
        << check::job(j.spec.id) << check::group(j.group->id)
        << "membership not bidirectional: job points at a group that does not list it";
  }

  // -- job-state sanity -----------------------------------------------------
  for (const SimJob& j : jobs_) {
    const core::JobId id = j.spec.id;
    const double alpha = job_alpha_[id];
    HARMONY_VALIDATE(v, !(j.in_flight && j.group == nullptr))
        << check::job(id) << "in-flight iteration with no group";
    if (j.state == core::JobState::kFinished) {
      HARMONY_VALIDATE(v, j.group == nullptr)
          << check::job(id) << "finished job still grouped";
      HARMONY_VALIDATE(v, j.finish_time >= arrivals_[id])
          << check::job(id) << "finish time " << j.finish_time
          << " precedes submit time " << arrivals_[id];
    }
    HARMONY_VALIDATE(v, alpha >= 0.0 && alpha <= 1.0)
        << check::job(id) << "disk ratio out of range: alpha = " << alpha
        << " (skewed spill share)";
    if (!config_.spill_enabled)
      HARMONY_VALIDATE(v, alpha == 0.0)
          << check::job(id) << "spilling disabled but alpha = " << alpha;
    if (job_model_spilled_[id] != 0)
      HARMONY_VALIDATE(v, alpha >= 0.999)
          << check::job(id) << "model spill active at alpha = " << alpha
          << " (input data must be fully spilled first)";
  }

  // -- spill shares vs the cost model's feasibility bound -------------------
  // refresh_alpha picks the smallest α whose resident footprint fits the
  // group's occupancy target × per-job memory share; when nothing fits it
  // pins α = 1 and either spills the model or (resident ≤ gc_threshold ×
  // share) runs at the GC knee. Either way a non-model-spilled member's
  // resident bytes never exceed max(target, gc_threshold) × share. Shares
  // only grow between refreshes (members leaving), so the bound holds with
  // current membership.
  if (config_.spill_enabled && !config_.fixed_alpha) {
    for (const GroupRun& g : groups_) {
      if (g.dissolved || g.members.empty()) continue;
      const double target =
          g.occ_ctl ? g.occ_ctl->alpha() : config_.alpha_floor_occupancy;
      const double bound_occ = std::max(target, config_.memory_params.gc_threshold);
      const double share = config_.machine_spec.memory_bytes /
                           static_cast<double>(g.members.size());
      for (core::JobId id : g.members) {
        const SimJob& j = jobs_[id];
        if (job_model_spilled_[id] != 0) continue;
        // Brute force on purpose: the memoized path is what is being audited.
        const double resident = job_resident_bytes_uncached(j, g.machines);
        HARMONY_VALIDATE(v, resident <= bound_occ * share * (1.0 + 1e-9))
            << check::job(id) << check::group(g.id) << "resident bytes " << resident
            << " exceed the occupancy bound " << bound_occ << " x share " << share
            << " at alpha = " << job_alpha_[id]
            << " (byte accounting skewed vs alpha shares)";
      }
    }
  }

  // -- resident-bytes memo vs a from-scratch recomputation ------------------
  // Every valid cache entry must equal the uncached model evaluated at the
  // cached machine count; a mismatch means a spill-state write skipped its
  // invalidation hook.
  for (core::JobId id = 0; id < jobs_.size(); ++id) {
    if (job_resident_valid_[id] == 0) continue;
    const double want =
        job_resident_bytes_uncached(jobs_[id], job_resident_machines_[id]);
    HARMONY_VALIDATE(v, job_resident_cache_[id] == want)
        << check::job(id) << "resident-bytes cache holds " << job_resident_cache_[id]
        << " but recomputing at " << job_resident_machines_[id] << " machines gives "
        << want << " (stale memo: missed invalidation)";
  }

  // -- job-state indexes vs a from-scratch rebuild --------------------------
  std::vector<core::JobId> want_waiting;
  std::vector<core::JobId> want_idle;
  std::size_t want_profiling = 0;
  std::size_t want_paused = 0;
  std::size_t want_profiled_ungrouped = 0;
  std::size_t finished = 0;
  for (const SimJob& j : jobs_) {  // ids are pool indices, so this is id-sorted
    if (j.arrived && j.state == core::JobState::kWaiting)
      want_waiting.push_back(j.spec.id);
    if (j.state == core::JobState::kProfiled || j.state == core::JobState::kPaused)
      want_idle.push_back(j.spec.id);
    want_profiling += j.state == core::JobState::kProfiling;
    want_paused += j.state == core::JobState::kPaused;
    want_profiled_ungrouped +=
        j.state == core::JobState::kProfiled && j.group == nullptr;
    finished += j.state == core::JobState::kFinished;
  }
  HARMONY_VALIDATE(v, waiting_ids_ == want_waiting)
      << "waiting index (" << waiting_ids_.size()
      << " ids) diverges from a from-scratch rebuild (" << want_waiting.size()
      << " ids): bad index entry";
  {
    // The submit-ordered twin must be the same membership, sorted by the
    // pinned (submit_time, id) total order.
    std::vector<core::JobId> want_by_submit = want_waiting;
    std::sort(want_by_submit.begin(), want_by_submit.end(),
              [this](core::JobId a, core::JobId b) { return submit_order_less(a, b); });
    HARMONY_VALIDATE(v, waiting_by_submit_ == want_by_submit)
        << "submit-ordered waiting index (" << waiting_by_submit_.size()
        << " ids) diverges from the waiting set re-sorted by (submit, id): "
        << "bad index entry or broken tie-break order";
  }
  HARMONY_VALIDATE(v, idle_ids_ == want_idle)
      << "idle index (" << idle_ids_.size()
      << " ids) diverges from a from-scratch rebuild (" << want_idle.size()
      << " ids): bad index entry";
  HARMONY_VALIDATE(v, profiling_count_ == want_profiling)
      << "profiling counter " << profiling_count_ << " != recount " << want_profiling;
  HARMONY_VALIDATE(v, paused_count_ == want_paused)
      << "paused counter " << paused_count_ << " != recount " << want_paused;
  HARMONY_VALIDATE(v, profiled_ungrouped_count_ == want_profiled_ungrouped)
      << "profiled-ungrouped counter " << profiled_ungrouped_count_ << " != recount "
      << want_profiled_ungrouped;
  HARMONY_VALIDATE(v, unfinished_count_ == jobs_.size() - finished)
      << "unfinished counter " << unfinished_count_ << " != recount "
      << (jobs_.size() - finished);

  // -- active-groups cache --------------------------------------------------
  // The storage may lag (dissolved entries compact lazily) but must hold
  // every live group exactly once and only pointers groups_ owns.
  {
    std::unordered_map<const GroupRun*, std::size_t> storage_count;
    for (const GroupRun* g : active_groups_storage_) ++storage_count[g];
    std::unordered_set<const GroupRun*> owned;
    for (const GroupRun& g : groups_) owned.insert(&g);
    // Walk the storage vector and the owning deque — both deterministic — and
    // only *look up* the pointer-keyed map, so no failure report depends on
    // pointer-hash iteration order.
    for (const GroupRun* g : active_groups_storage_)
      HARMONY_VALIDATE(v, owned.contains(g))
          << "active-groups cache holds a pointer groups_ does not own";
    for (const GroupRun& g : groups_) {
      const auto it = storage_count.find(&g);
      const std::size_t n = it == storage_count.end() ? 0 : it->second;
      if (n > 0)
        HARMONY_VALIDATE(v, n == 1)
            << check::group(g.id) << "active-groups cache lists a group " << n << " times";
      if (!g.dissolved)
        HARMONY_VALIDATE(v, n > 0)
            << check::group(g.id) << "live group missing from the active-groups cache";
    }
  }

  // -- pending regroup ------------------------------------------------------
  if (pending_regroup_) {
    const PendingRegroup& pr = *pending_regroup_;
    const std::size_t plans = pr.decision.groups.size();
    HARMONY_VALIDATE(v, pr.targets.size() == plans && pr.resolved.size() == plans)
        << "pending regroup arrays out of step with the decision (" << pr.targets.size()
        << "/" << pr.resolved.size() << " vs " << plans << " plans)";
    for (std::size_t i = 0; i < std::min(plans, pr.targets.size()); ++i)
      if (pr.targets[i] != nullptr)
        HARMONY_VALIDATE(v, i < pr.resolved.size() && pr.resolved[i])
            << check::group(pr.targets[i]->id)
            << "materialized target group not marked resolved (plan " << i << ")";
    for (const auto& [id, plan] : common::sorted_view(pr.job_plan))
      HARMONY_VALIDATE(v, plan < plans)
          << check::job(id) << "pending plan index " << plan << " out of range";
    HARMONY_VALIDATE(v, pr.reserved_machines() <= config_.machines)
        << "pending regroup reserves " << pr.reserved_machines()
        << " machines on a cluster of " << config_.machines;
    for (const GroupRun* g : pr.involved)
      HARMONY_VALIDATE(v, g->stopping || g->dissolved)
          << check::group(g->id) << "group involved in a regroup is not draining";
  }

  // -- event heap -----------------------------------------------------------
  sim_.validate(v);

  return v.report();
}

void ClusterSim::maybe_validate() {
  if (!config_.validate) return;
  ++validations_run_;
  check::ValidationReport report = validate_state();
  if (report.ok()) return;
  // Diagnostics go to stderr so --validate cannot perturb golden stdout.
  std::fprintf(stderr, "harmony-sim: state validation failed at t=%.3f:\n%s",
               sim_.now(), report.to_string().c_str());
  check::fail(std::move(report.failures.front()));
}

void ClusterSim::corrupt_for_test(Corruption kind) {
  switch (kind) {
    case Corruption::kBadIndexEntry: {
      // Insert a job that is not waiting into the waiting index.
      for (const SimJob& j : jobs_) {
        if (j.in_waiting_index) continue;
        const auto it =
            std::lower_bound(waiting_ids_.begin(), waiting_ids_.end(), j.spec.id);
        waiting_ids_.insert(it, j.spec.id);
        return;
      }
      break;
    }
    case Corruption::kOverAllocatedMachine: {
      // A group grabs a machine the free pool never released.
      for (GroupRun& g : groups_)
        if (!g.dissolved) {
          ++g.machines;
          return;
        }
      break;
    }
    case Corruption::kSkewedSpillAlpha: {
      // Raw write on purpose: bypasses set_alpha so neither the range check
      // nor the cache invalidation sees it (the validator must catch both).
      for (const SimJob& j : jobs_)
        if (j.group != nullptr) {
          job_alpha_[j.spec.id] = 1.5;
          return;
        }
      break;
    }
    case Corruption::kBrokenMembership: {
      // Group forgets a member that still points at it.
      for (GroupRun& g : groups_)
        if (!g.dissolved && !g.members.empty()) {
          g.members.erase(g.members.begin());
          return;
        }
      break;
    }
  }
  throw std::logic_error("corrupt_for_test: no state eligible for this corruption");
}

void ClusterSim::schedule_corruption_for_test(double t, Corruption kind) {
  sim_.schedule_at(t, [this, kind] {
    corrupt_for_test(kind);
    maybe_validate();
  });
}

}  // namespace harmony::exp
