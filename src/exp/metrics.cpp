#include "exp/metrics.h"

#include <algorithm>
#include <sstream>

namespace harmony::exp {

void UtilizationTimeline::add_sample(double time_sec, core::Utilization value) {
  times_.push_back(time_sec);
  values_.push_back(value);
}

core::Utilization UtilizationTimeline::average() const {
  return average_until(times_.empty() ? 0.0 : times_.back());
}

core::Utilization UtilizationTimeline::average_until(double horizon_sec) const {
  core::Utilization acc;
  std::size_t n = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) {
    if (times_[i] > horizon_sec) break;
    acc.cpu += values_[i].cpu;
    acc.net += values_[i].net;
    ++n;
  }
  if (n == 0) return {};
  return core::Utilization{acc.cpu / static_cast<double>(n), acc.net / static_cast<double>(n)};
}

std::string UtilizationTimeline::tsv(std::size_t max_rows) const {
  std::ostringstream out;
  if (times_.empty() || max_rows == 0) return out.str();
  const std::size_t stride = std::max<std::size_t>(1, times_.size() / max_rows);
  for (std::size_t i = 0; i < times_.size(); i += stride) {
    out << times_[i] << '\t' << values_[i].cpu << '\t' << values_[i].net << '\n';
  }
  return out.str();
}

double RunSummary::mean_jct() const {
  if (jobs.empty()) return 0.0;
  double sum = 0.0;
  for (const JobOutcome& j : jobs) sum += j.jct();
  return sum / static_cast<double>(jobs.size());
}

double RunSummary::max_finish() const {
  double latest = 0.0;
  for (const JobOutcome& j : jobs) latest = std::max(latest, j.finish_time);
  return latest;
}

}  // namespace harmony::exp
