// Run-level metric collection: utilization timelines, JCT/makespan summary,
// and prediction-error records for Fig. 11/13.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "harmony/perf_model.h"

namespace harmony::exp {

// Windowed utilization trace; the paper samples at 1-minute intervals.
class UtilizationTimeline {
 public:
  explicit UtilizationTimeline(double window_sec = 60.0) : window_(window_sec) {}

  void add_sample(double time_sec, core::Utilization value);

  double window() const noexcept { return window_; }
  const std::vector<double>& times() const noexcept { return times_; }
  const std::vector<core::Utilization>& values() const noexcept { return values_; }

  core::Utilization average() const;
  // Average restricted to [0, horizon_sec] (used to exclude the tail where
  // few jobs remain).
  core::Utilization average_until(double horizon_sec) const;

  // "time<TAB>cpu<TAB>net" rows downsampled to at most `max_rows`.
  std::string tsv(std::size_t max_rows = 60) const;

 private:
  double window_;
  std::vector<double> times_;
  std::vector<core::Utilization> values_;
};

// One completed job's outcome.
struct JobOutcome {
  std::uint32_t job = 0;
  double submit_time = 0.0;
  double finish_time = 0.0;
  double jct() const noexcept { return finish_time - submit_time; }
};

struct RunSummary {
  std::string label;
  std::vector<JobOutcome> jobs;
  double makespan = 0.0;
  core::Utilization avg_util;
  double gc_time_fraction = 0.0;      // mean fraction of time lost to GC
  double migration_overhead_sec = 0.0;  // total pause time due to regrouping
  std::size_t regroup_events = 0;
  std::size_t oom_events = 0;

  double mean_jct() const;
  double max_finish() const;
};

// Prediction-vs-actual records (Fig. 13b).
struct PredictionErrors {
  SampleSet group_iteration_rel_error;
  SampleSet utilization_rel_error;
};

}  // namespace harmony::exp
