#include "exp/workload.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/table.h"

namespace harmony::exp {
namespace {

struct AppFamily {
  const char* app = nullptr;
  const char* datasets[2] = {nullptr, nullptr};
  double input_gb[2] = {0.0, 0.0};
  double model_gb[2] = {0.0, 0.0};
  // Ranges at the reference DoP 16: iteration time [lo, hi] seconds and
  // computation ratio [lo, hi]. Hyper-parameter settings sweep these bands.
  double itr_lo = 0.0, itr_hi = 0.0;
  double ratio_lo = 0.0, ratio_hi = 0.0;
};

// Table I, with per-family compute/communication character:
//  * NMF  — large sparse input, small-to-mid model; mixed ratios.
//  * LDA  — small input, Gibbs sweeps dominate: compute-heavy.
//  * MLR  — big dense input AND big model (scales with #classes): comm-heavy
//           at many classes (the 16K/8K settings of Fig. 2).
//  * Lasso— big input, model is one weight vector slice: compute-leaning.
constexpr AppFamily kFamilies[] = {
    {"NMF", {"Netflix64x", "Netflix128x"}, {45.6, 91.2}, {1.0, 5.0}, 75.0, 390.0, 0.30, 0.65},
    {"LDA", {"PubMed", "NYTimes"}, {4.3, 0.6}, {2.1, 1.1}, 60.0, 300.0, 0.55, 0.90},
    {"MLR", {"Synthetic16K", "Synthetic8K"}, {78.4, 155.0}, {12.0, 24.0}, 75.0, 750.0, 0.10,
     0.55},
    {"Lasso", {"SyntheticA", "SyntheticB"}, {78.4, 155.0}, {12.0, 24.0}, 40.0, 270.0, 0.45,
     0.80},
};

constexpr std::size_t kReferenceDop = 16;
constexpr std::size_t kHyperSettings = 10;

}  // namespace

double WorkloadSpec::resident_bytes(std::size_t machines, double alpha) const noexcept {
  const double m = static_cast<double>(machines == 0 ? 1 : machines);
  const double input_res = (1.0 - alpha) * input_bytes() * kInputMemExpansion / m;
  const double model_res = model_bytes() * kModelMemExpansion / m;
  return input_res + model_res;
}

std::size_t WorkloadSpec::min_machines_without_spill(const cluster::MachineSpec& spec,
                                                     double fraction) const noexcept {
  const double budget = fraction * spec.memory_bytes;
  const double total = input_bytes() * kInputMemExpansion + model_bytes() * kModelMemExpansion;
  return std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(total / budget)));
}

std::vector<WorkloadSpec> make_catalog(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkloadSpec> catalog;
  catalog.reserve(80);
  core::JobId next_id = 0;

  for (const AppFamily& family : kFamilies) {
    for (std::size_t d = 0; d < 2; ++d) {
      for (std::size_t h = 0; h < kHyperSettings; ++h) {
        WorkloadSpec spec;
        spec.id = next_id++;
        spec.app = family.app;
        spec.dataset = family.datasets[d];
        spec.hyper_index = h;
        spec.input_gb = family.input_gb[d];
        spec.model_gb = family.model_gb[d];

        // Hyper-parameter settings sweep the family's band; the sweep
        // position is jittered so the 80 jobs don't form a lattice.
        const double frac =
            (static_cast<double>(h) + rng.uniform(0.0, 0.8)) / static_cast<double>(kHyperSettings);
        const double t_itr = family.itr_lo + frac * (family.itr_hi - family.itr_lo);
        const double ratio = family.ratio_lo +
                             rng.uniform(0.0, 1.0) * (family.ratio_hi - family.ratio_lo);

        const double t_cpu_ref = t_itr * ratio;  // at DoP 16
        spec.cpu_work = t_cpu_ref * static_cast<double>(kReferenceDop);
        spec.t_net = t_itr * (1.0 - ratio);
        // Log-uniform 16..80: most jobs are modest, a few need several times
        // more epochs — the heavy-ish tail cluster traces show.
        spec.iterations = static_cast<std::size_t>(
            std::exp(rng.uniform(std::log(16.0), std::log(80.0))));
        catalog.push_back(std::move(spec));
      }
    }
  }
  return catalog;
}

namespace {

std::vector<WorkloadSpec> sorted_by_ratio(const std::vector<WorkloadSpec>& all) {
  std::vector<WorkloadSpec> sorted = all;
  std::sort(sorted.begin(), sorted.end(), [](const WorkloadSpec& a, const WorkloadSpec& b) {
    return a.profile().comp_ratio(kReferenceDop) > b.profile().comp_ratio(kReferenceDop);
  });
  return sorted;
}

}  // namespace

std::vector<WorkloadSpec> comp_intensive_subset(const std::vector<WorkloadSpec>& all,
                                                std::size_t count) {
  auto sorted = sorted_by_ratio(all);
  sorted.resize(std::min(count, sorted.size()));
  return sorted;
}

std::vector<WorkloadSpec> comm_intensive_subset(const std::vector<WorkloadSpec>& all,
                                                std::size_t count) {
  auto sorted = sorted_by_ratio(all);
  std::reverse(sorted.begin(), sorted.end());
  sorted.resize(std::min(count, sorted.size()));
  return sorted;
}

std::string table1(const std::vector<WorkloadSpec>& catalog) {
  TextTable table({"App", "Dataset", "Input(GB)", "Model(GB)", "Jobs"});
  // Aggregate by (app, dataset) like the paper's Table I.
  for (const AppFamily& family : kFamilies) {
    for (std::size_t d = 0; d < 2; ++d) {
      std::size_t jobs = 0;
      for (const WorkloadSpec& s : catalog)
        if (s.app == family.app && s.dataset == family.datasets[d]) ++jobs;
      table.add_row({family.app, family.datasets[d],
                     TextTable::format_double(family.input_gb[d], 1),
                     TextTable::format_double(family.model_gb[d], 1), std::to_string(jobs)});
    }
  }
  return table.render();
}

}  // namespace harmony::exp
