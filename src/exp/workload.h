// The evaluation workload catalog (Table I + Fig. 9).
//
// 4 applications x 2 datasets x 10 hyper-parameter settings = 80 jobs. Input
// and model sizes are Table I's; per-iteration COMP work and COMM time are
// synthesized per application family so that, at the paper's reference DoP of
// 16, iteration times span ~1-20 minutes and computation ratios spread across
// ~0.1-0.9 (Fig. 9), with each family's compute/communication character
// matching its Fig. 2/4 behaviour (LDA compute-heavy, MLR model-heavy, ...).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/machine.h"
#include "harmony/job.h"
#include "harmony/scheduler.h"

namespace harmony::exp {

// JVM-resident expansion over raw data sizes: parsed objects, boxing and
// indexing overheads. Calibrated so Fig. 4's NMF+MLR+Lasso co-location on 16
// machines overflows 32 GB while each pair still fits.
constexpr double kInputMemExpansion = 2.2;
constexpr double kModelMemExpansion = 2.0;

struct WorkloadSpec {
  core::JobId id = core::kNoJob;
  std::string app;      // "NMF", "LDA", "MLR", "Lasso"
  std::string dataset;  // "Netflix64x", "PubMed", ...
  std::size_t hyper_index = 0;

  double input_gb = 0.0;
  double model_gb = 0.0;

  // Ground-truth per-iteration costs (the simulator's hidden truth; the
  // profiler only ever sees noisy measurements of these).
  double cpu_work = 0.0;  // machine-seconds of COMP per iteration
  double t_net = 0.0;     // seconds of COMM per iteration
  std::size_t iterations = 0;  // iterations to convergence

  double input_bytes() const noexcept { return input_gb * cluster::kGiB; }
  double model_bytes() const noexcept { return model_gb * cluster::kGiB; }

  // Resident bytes per machine at DoP m with disk ratio alpha (input share
  // only; the spill manager owns the full accounting).
  double resident_bytes(std::size_t machines, double alpha = 0.0) const noexcept;

  // Smallest DoP whose resident footprint stays below `fraction` of machine
  // memory without any spilling. The default targets the GC knee (just below
  // MemoryModelParams::gc_threshold), where non-spilling systems must sit to
  // avoid collector thrash.
  std::size_t min_machines_without_spill(const cluster::MachineSpec& spec,
                                         double fraction = 0.65) const noexcept;

  core::JobProfile profile() const noexcept { return core::JobProfile{cpu_work, t_net}; }
  core::SchedJob sched_job() const noexcept { return core::SchedJob{id, profile()}; }
};

// The full 80-job catalog, deterministic in `seed`.
std::vector<WorkloadSpec> make_catalog(std::uint64_t seed = 2021);

// §V-D splits: the 60 most computation-heavy / communication-heavy jobs by
// comp ratio at DoP 16.
std::vector<WorkloadSpec> comp_intensive_subset(const std::vector<WorkloadSpec>& all,
                                                std::size_t count = 60);
std::vector<WorkloadSpec> comm_intensive_subset(const std::vector<WorkloadSpec>& all,
                                                std::size_t count = 60);

// Renders Table I.
std::string table1(const std::vector<WorkloadSpec>& catalog);

}  // namespace harmony::exp
