#include "harmony/checkpoint.h"

#include <fstream>
#include <stdexcept>

#include "ps/serialization.h"

namespace harmony::core {

CheckpointStore::CheckpointStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path CheckpointStore::path_for(JobId job) const {
  return dir_ / ("job-" + std::to_string(job) + ".ckpt");
}

void CheckpointStore::save(JobId job, std::span<const double> model) const {
  ps::ByteWriter writer;
  writer.put_u32(job);
  writer.put_doubles(model);

  // Write to a temp file then rename, so a crash mid-save never leaves a
  // truncated checkpoint behind (restart would load garbage).
  const auto final_path = path_for(job);
  const auto tmp_path = final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("CheckpointStore: cannot open " + tmp_path);
    const auto& buf = writer.buffer();
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out) throw std::runtime_error("CheckpointStore: write failed: " + tmp_path);
  }
  std::filesystem::rename(tmp_path, final_path);
}

std::vector<double> CheckpointStore::load(JobId job) const {
  const auto path = path_for(job);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("CheckpointStore: no checkpoint for job " +
                                    std::to_string(job));
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> buf(size);
  in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("CheckpointStore: read failed for job " +
                                    std::to_string(job));

  ps::ByteReader reader(buf);
  const std::uint32_t stored = reader.get_u32();
  if (stored != job) throw std::runtime_error("CheckpointStore: job id mismatch");
  return reader.get_doubles();
}

bool CheckpointStore::exists(JobId job) const {
  return std::filesystem::exists(path_for(job));
}

void CheckpointStore::remove(JobId job) const { std::filesystem::remove(path_for(job)); }

}  // namespace harmony::core
