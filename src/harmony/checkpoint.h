// Model checkpointing for pause / migrate / fault tolerance.
//
// When Harmony pauses a job it waits for the ongoing iteration to end, stops
// the subtasks, and checkpoints the model parameters on disk; resume restores
// them and reloads the (immutable) input data (§IV-B4, §VI). This store does
// the real file I/O side of that.
#pragma once

#include <filesystem>
#include <span>
#include <vector>

#include "harmony/job.h"

namespace harmony::core {

class CheckpointStore {
 public:
  // Creates `dir` if needed; checkpoints are one file per job inside it.
  explicit CheckpointStore(std::filesystem::path dir);

  void save(JobId job, std::span<const double> model) const;
  std::vector<double> load(JobId job) const;
  bool exists(JobId job) const;
  void remove(JobId job) const;

  const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  std::filesystem::path path_for(JobId job) const;

  std::filesystem::path dir_;
};

}  // namespace harmony::core
