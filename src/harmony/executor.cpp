#include "harmony/executor.h"

#include <cassert>

#include "obs/metrics.h"

namespace harmony::core {

SubtaskExecutor::SubtaskExecutor(Params params) {
  const std::size_t cpu_slots = params.cpu_slots == 0 ? 1 : params.cpu_slots;
  for (std::size_t i = 0; i < cpu_slots; ++i)
    cpu_.workers.emplace_back([this] { worker_loop(cpu_); });
  const std::size_t net_slots = params.network_slots == 0 ? 1 : params.network_slots;
  for (std::size_t i = 0; i < net_slots; ++i)
    net_.workers.emplace_back([this] { worker_loop(net_); });
}

SubtaskExecutor::~SubtaskExecutor() {
  stop_lane(cpu_);
  stop_lane(net_);
  // jthread joins on destruction.
}

void SubtaskExecutor::stop_lane(Lane& lane) {
  {
    common::MutexLock lock(lane.mu);
    lane.stopping = true;
  }
  lane.cv.notify_all();
}

void SubtaskExecutor::submit(Subtask subtask) {
  Lane& lane = subtask.type == SubtaskType::kComp ? cpu_ : net_;
  {
    common::MutexLock lock(lane.mu);
    lane.queue.push_back(std::move(subtask));
  }
  lane.cv.notify_one();
}

void SubtaskExecutor::worker_loop(Lane& lane) {
  for (;;) {
    Subtask task;
    {
      common::MutexLock lock(lane.mu);
      while (!lane.stopping && lane.queue.empty()) lane.cv.wait(lane.mu);
      if (lane.stopping && lane.queue.empty()) return;
      task = std::move(lane.queue.front());
      lane.queue.pop_front();
      ++lane.running;
    }
    // One job's exception must not crash the shared runtime (§VI). The
    // completion callback still runs so barriers don't hang; the failure
    // handler lets the owner mark the job failed.
    try {
      if (task.body) task.body();
    } catch (const std::exception& e) {
      std::function<void(JobId, const std::string&)> handler;
      {
        common::MutexLock lock(failure_mu_);
        ++failures_;
        handler = failure_handler_;
      }
      obs::MetricsRegistry::instance().counter("executor.subtask_failures").add();
      if (handler) handler(task.job, e.what());
    }
    {
      // One relaxed add per subtask; the reference is resolved once.
      static obs::Counter& completed_counter =
          obs::MetricsRegistry::instance().counter("executor.subtasks_completed");
      completed_counter.add();
    }
    if (task.on_complete) task.on_complete();
    {
      common::MutexLock lock(lane.mu);
      --lane.running;
      ++lane.done;
      if (lane.queue.empty() && lane.running == 0) lane.idle_cv.notify_all();
    }
  }
}

void SubtaskExecutor::drain() {
  for (Lane* lane : {&cpu_, &net_}) {
    common::MutexLock lock(lane->mu);
    while (!lane->queue.empty() || lane->running != 0) lane->idle_cv.wait(lane->mu);
  }
}

std::size_t SubtaskExecutor::cpu_queue_length() const {
  common::MutexLock lock(cpu_.mu);
  return cpu_.queue.size();
}

std::size_t SubtaskExecutor::net_queue_length() const {
  common::MutexLock lock(net_.mu);
  return net_.queue.size();
}

std::uint64_t SubtaskExecutor::completed(SubtaskType type) const {
  const Lane& lane = type == SubtaskType::kComp ? cpu_ : net_;
  common::MutexLock lock(lane.mu);
  return lane.done;
}

std::uint64_t SubtaskExecutor::failures() const {
  common::MutexLock lock(failure_mu_);
  return failures_;
}

void SubtaskExecutor::set_failure_handler(
    std::function<void(JobId, const std::string&)> handler) {
  common::MutexLock lock(failure_mu_);
  failure_handler_ = std::move(handler);
}

}  // namespace harmony::core
