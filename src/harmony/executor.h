// Per-machine subtask executor (§IV-A, Fig. 7).
//
// Two lanes, mirroring the paper's RunnerQueues:
//  * the CPU lane runs exactly one COMP subtask at a time — "a single CPU
//    subtask usually uses almost all of the provided CPU resources";
//  * the network lane admits up to two concurrent COMM subtasks (a primary
//    and a secondary) because a single network subtask leaves the link idle
//    while servers process requests; the secondary fills those gaps, and the
//    NIC token bucket naturally makes it yield whenever the primary is
//    actively transferring.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "harmony/subtask.h"

namespace harmony::core {

class SubtaskExecutor {
 public:
  struct Params {
    // Concurrent COMP subtasks. Harmony's discipline is exactly one (a COMP
    // subtask "uses almost all of the provided CPU resources"); the naive
    // baseline raises this so co-located jobs' COMP steps genuinely contend.
    std::size_t cpu_slots = 1;
    // Concurrent COMM subtasks (primary + secondary by default).
    std::size_t network_slots = 2;
  };

  SubtaskExecutor() : SubtaskExecutor(Params{}) {}
  explicit SubtaskExecutor(Params params);
  ~SubtaskExecutor();

  SubtaskExecutor(const SubtaskExecutor&) = delete;
  SubtaskExecutor& operator=(const SubtaskExecutor&) = delete;

  // Enqueues a subtask into the lane matching its type. Thread-safe.
  void submit(Subtask subtask);

  // Blocks until both lanes are empty and idle.
  void drain();

  std::size_t cpu_queue_length() const;
  std::size_t net_queue_length() const;
  std::uint64_t completed(SubtaskType type) const;

  // Exceptions thrown by subtask bodies are caught so one job's failure
  // cannot take down the shared runtime (§VI "the shared runtime catches all
  // exceptions"); they are counted here and reported via the failure hook.
  std::uint64_t failures() const;

  // Invoked (on the executor thread) when a subtask body throws; receives the
  // owning job and the exception message. Set before submitting work.
  void set_failure_handler(std::function<void(JobId, const std::string&)> handler);

 private:
  struct Lane {
    mutable common::Mutex mu;
    common::CondVar cv;       // wakes workers
    common::CondVar idle_cv;  // wakes drain()
    std::deque<Subtask> queue GUARDED_BY(mu);
    std::size_t running GUARDED_BY(mu) = 0;
    std::uint64_t done GUARDED_BY(mu) = 0;
    bool stopping GUARDED_BY(mu) = false;
    // Touched only from the ctor (spawn) and dtor (jthread joins): never
    // concurrently with the worker threads it holds.
    std::vector<std::jthread> workers;
  };

  void worker_loop(Lane& lane);
  static void stop_lane(Lane& lane);

  Lane cpu_;
  Lane net_;

  mutable common::Mutex failure_mu_;
  std::uint64_t failures_ GUARDED_BY(failure_mu_) = 0;
  std::function<void(JobId, const std::string&)> failure_handler_ GUARDED_BY(failure_mu_);
};

}  // namespace harmony::core
