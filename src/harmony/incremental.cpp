#include "harmony/incremental.h"

#include <algorithm>
#include <cmath>

#include "common/sorted_view.h"

namespace harmony::core {

namespace {

// Utilization contributions of a group shape described by its aggregates.
struct Contrib {
  double cpu = 0.0;
  double net = 0.0;
  double t_itr = 0.0;
};

Contrib contributions(double sum_cpu_work, double sum_t_net, double max_t_itr,
                      std::size_t machines) {
  const double m = static_cast<double>(machines);
  const double sum_cpu = sum_cpu_work / m;
  const double t_itr = std::max({sum_cpu, sum_t_net, max_t_itr});
  if (t_itr <= 0.0) return {};
  return Contrib{m * sum_cpu / t_itr, m * sum_t_net / t_itr, t_itr};
}

}  // namespace

IncrementalScheduler::IncrementalScheduler(Params params, std::size_t total_machines)
    : params_(params),
      model_(params.model),
      total_machines_(total_machines),
      free_machines_(total_machines),
      baseline_free_(total_machines) {
  HARMONY_CHECK(total_machines > 0) << "IncrementalScheduler needs machines";
}

double IncrementalScheduler::score_with(double acc_cpu, double acc_net,
                                        double alloc_machines, std::size_t jobs,
                                        std::size_t groups) const {
  if (alloc_machines <= 0.0) return 0.0;
  return model_.score_scalar(
      Utilization{acc_cpu / alloc_machines, acc_net / alloc_machines}, jobs, groups);
}

double IncrementalScheduler::current_score() const {
  return score_with(acc_cpu_, acc_net_, alloc_machines_, total_jobs_, nonempty_groups_);
}

void IncrementalScheduler::rebaseline() {
  peak_score_ = current_score();
  baseline_free_ = free_machines_;
}

void IncrementalScheduler::note_peak() {
  peak_score_ = std::max(peak_score_, current_score());
}

double IncrementalScheduler::drift() const {
  double drift = 0.0;
  if (peak_score_ > 0.0) {
    drift = std::max(drift, (peak_score_ - current_score()) / peak_score_);
  }
  if (free_machines_ > baseline_free_) {
    drift = std::max(drift, static_cast<double>(free_machines_ - baseline_free_) /
                                static_cast<double>(total_machines_));
  }
  return std::max(drift, 0.0);
}

double IncrementalScheduler::group_iteration_time(std::size_t group) const {
  HARMONY_CHECK(group < groups_.size() && groups_[group].live)
      << check::group(group) << "iteration time of a dead group";
  const Group& g = groups_[group];
  return contributions(g.sum_cpu_work, g.sum_t_net, g.max_t_itr, g.machines).t_itr;
}

void IncrementalScheduler::refresh_group(Group& g) {
  acc_cpu_ -= g.cpu_contrib;
  acc_net_ -= g.net_contrib;
  g.sum_cpu_work = 0.0;
  g.sum_t_net = 0.0;
  g.max_t_itr = 0.0;
  for (const SchedJob& j : g.jobs) {
    g.sum_cpu_work += j.profile.cpu_work;
    g.sum_t_net += j.profile.t_net;
    g.max_t_itr = std::max(g.max_t_itr, j.profile.t_itr(g.machines));
  }
  const Contrib c = contributions(g.sum_cpu_work, g.sum_t_net, g.max_t_itr, g.machines);
  g.cpu_contrib = c.cpu;
  g.net_contrib = c.net;
  acc_cpu_ += g.cpu_contrib;
  acc_net_ += g.net_contrib;
}

void IncrementalScheduler::rebuild_accumulators() {
  acc_cpu_ = 0.0;
  acc_net_ = 0.0;
  alloc_machines_ = 0.0;
  total_jobs_ = 0;
  nonempty_groups_ = 0;
  for (Group& g : groups_) {
    if (!g.live) continue;
    acc_cpu_ += g.cpu_contrib;
    acc_net_ += g.net_contrib;
    alloc_machines_ += static_cast<double>(g.machines);
    total_jobs_ += g.jobs.size();
    ++nonempty_groups_;
  }
}

void IncrementalScheduler::maybe_rebuild() {
  if (++mutations_ % kRebuildEvery == 0) rebuild_accumulators();
}

std::size_t IncrementalScheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::size_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  groups_.emplace_back();
  return groups_.size() - 1;
}

std::size_t IncrementalScheduler::balanced_dop(double sum_cpu_work, double sum_t_net,
                                               std::size_t limit) const {
  if (limit == 0) return 0;
  if (sum_t_net <= 0.0) return limit;
  const auto balance = static_cast<std::size_t>(std::llround(sum_cpu_work / sum_t_net));
  return std::clamp<std::size_t>(balance, 1, limit);
}

void IncrementalScheduler::resize_to_balance(Group& g) {
  const std::size_t target =
      balanced_dop(g.sum_cpu_work, g.sum_t_net, g.machines + free_machines_);
  if (target == g.machines) return;
  free_machines_ += g.machines;
  alloc_machines_ -= static_cast<double>(g.machines);
  g.machines = target;
  free_machines_ -= target;
  alloc_machines_ += static_cast<double>(target);
  refresh_group(g);
}

void IncrementalScheduler::adopt(const ScheduleDecision& decision,
                                 std::span<const SchedJob> pool) {
  // Start from scratch: the decision is the authoritative grouping.
  groups_.clear();
  free_slots_.clear();
  job_group_.clear();
  cursor_ = 0;
  free_machines_ = total_machines_;
  acc_cpu_ = acc_net_ = 0.0;

  std::unordered_map<JobId, const SchedJob*> by_id;
  by_id.reserve(pool.size());
  for (const SchedJob& j : pool) by_id.emplace(j.id, &j);

  for (const GroupPlan& plan : decision.groups) {
    if (plan.jobs.empty() || plan.machines == 0) continue;
    HARMONY_CHECK(plan.machines <= free_machines_)
        << "decision over-allocates: " << plan.machines << " machines wanted, "
        << free_machines_ << " free";
    const std::size_t slot = acquire_slot();
    Group& g = groups_[slot];
    g.jobs.clear();
    g.machines = plan.machines;
    g.live = true;
    g.cpu_contrib = g.net_contrib = 0.0;
    for (JobId id : plan.jobs) {
      const auto it = by_id.find(id);
      HARMONY_CHECK(it != by_id.end())
          << check::job(id) << "decision places a job missing from the pool";
      g.jobs.push_back(*it->second);
      job_group_[id] = static_cast<std::uint32_t>(slot);
    }
    free_machines_ -= plan.machines;
    refresh_group(g);
  }
  rebuild_accumulators();
  rebaseline();
}

std::optional<IncrementalScheduler::JoinResult> IncrementalScheduler::join(
    const SchedJob& job, bool force) {
  HARMONY_CHECK(job_group_.count(job.id) == 0)
      << check::job(job.id) << "join of an already-placed job";

  const std::size_t cap =
      force ? 2 * params_.max_jobs_per_group : params_.max_jobs_per_group;

  // Option A: the best of up to join_probe_limit live groups with a free
  // member slot, by modelled score delta. Every candidate is evaluated
  // re-sized to the combined balance point (the allocation full Algorithm 1
  // would give that membership), so a probe recomputes max T_itr over the
  // members at the candidate DoP — O(group members) off cached aggregates.
  // The rotating cursor spreads successive joins so a bounded window still
  // covers the whole cluster over time.
  std::size_t best_group = groups_.size();
  double best_score = 0.0;
  if (!groups_.empty()) {
    std::size_t probed = 0;
    for (std::size_t step = 0; step < groups_.size() && probed < params_.join_probe_limit;
         ++step) {
      const std::size_t idx = (cursor_ + step) % groups_.size();
      const Group& g = groups_[idx];
      if (!g.live || g.jobs.size() >= cap) continue;
      ++probed;
      const double sum_cpu = g.sum_cpu_work + job.profile.cpu_work;
      const double sum_net = g.sum_t_net + job.profile.t_net;
      const std::size_t dop = balanced_dop(sum_cpu, sum_net, g.machines + free_machines_);
      double max_itr = job.profile.t_itr(dop);
      for (const SchedJob& j : g.jobs) max_itr = std::max(max_itr, j.profile.t_itr(dop));
      const Contrib c = contributions(sum_cpu, sum_net, max_itr, dop);
      const double score = score_with(
          acc_cpu_ - g.cpu_contrib + c.cpu, acc_net_ - g.net_contrib + c.net,
          alloc_machines_ + static_cast<double>(dop) - static_cast<double>(g.machines),
          total_jobs_ + 1, nonempty_groups_);
      if (best_group == groups_.size() || score > best_score) {
        best_group = idx;
        best_score = score;
      }
    }
    cursor_ = groups_.empty() ? 0 : (cursor_ + 1) % groups_.size();
  }

  // Option B: open a fresh group at the job's balance-point DoP.
  std::size_t new_dop = balanced_dop(job.profile.cpu_work, job.profile.t_net,
                                     free_machines_);
  double new_score = 0.0;
  double new_t_itr = 0.0;
  if (new_dop > 0) {
    const Contrib c = contributions(job.profile.cpu_work, job.profile.t_net,
                                    job.profile.t_itr(new_dop), new_dop);
    new_score = score_with(acc_cpu_ + c.cpu, acc_net_ + c.net,
                           alloc_machines_ + static_cast<double>(new_dop),
                           total_jobs_ + 1, nonempty_groups_ + 1);
    new_t_itr = c.t_itr;
  }

  const bool have_existing = best_group != groups_.size();
  if (!have_existing && new_dop == 0) return std::nullopt;

  // Ties go to the existing group: fewer groups, no machines drawn from the
  // free pool.
  const bool take_existing = have_existing && (new_dop == 0 || best_score >= new_score);

  // Admission by utilization — the incremental analog of Algorithm 1's
  // growth-loop stop. A placement that would land the modelled score below
  // the drift floor (peak x (1 - threshold)) is declined and the caller
  // queues the job, exactly as the full scheduler parks queue-tail jobs once
  // the score stops improving. The floor is strict — no "but it improves the
  // current score" escape — or admission would ratchet: every small
  // improvement on an already-decayed score would pass, and the placed set
  // would grow far beyond what full Algorithm 1 would ever co-schedule. A
  // state stuck under the floor instead shows drift > threshold and is
  // repaired by the full-reschedule escalation.
  const double chosen_score = take_existing ? best_score : new_score;
  if (!force && chosen_score < peak_score_ * (1.0 - params_.drift_threshold)) {
    return std::nullopt;
  }

  if (take_existing) {
    Group& g = groups_[best_group];
    g.jobs.push_back(job);
    job_group_[job.id] = static_cast<std::uint32_t>(best_group);
    ++total_jobs_;
    refresh_group(g);
    resize_to_balance(g);
    maybe_rebuild();
    note_peak();
    return JoinResult{best_group, false, group_iteration_time(best_group)};
  }

  const std::size_t slot = acquire_slot();
  Group& g = groups_[slot];
  g.jobs.assign(1, job);
  g.machines = new_dop;
  g.live = true;
  g.cpu_contrib = g.net_contrib = 0.0;
  free_machines_ -= new_dop;
  alloc_machines_ += static_cast<double>(new_dop);
  ++nonempty_groups_;
  ++total_jobs_;
  job_group_[job.id] = static_cast<std::uint32_t>(slot);
  refresh_group(g);
  maybe_rebuild();
  note_peak();
  return JoinResult{slot, true, new_t_itr};
}

bool IncrementalScheduler::leave(JobId id) {
  const auto it = job_group_.find(id);
  if (it == job_group_.end()) return false;
  Group& g = groups_[it->second];
  const std::size_t slot = it->second;
  job_group_.erase(it);

  const auto member = std::find_if(g.jobs.begin(), g.jobs.end(),
                                   [id](const SchedJob& j) { return j.id == id; });
  HARMONY_CHECK(member != g.jobs.end())
      << check::job(id) << check::group(slot) << "index points at a group without the job";
  g.jobs.erase(member);
  --total_jobs_;

  if (g.jobs.empty()) {
    acc_cpu_ -= g.cpu_contrib;
    acc_net_ -= g.net_contrib;
    alloc_machines_ -= static_cast<double>(g.machines);
    --nonempty_groups_;
    free_machines_ += g.machines;
    g.live = false;
    g.machines = 0;
    g.cpu_contrib = g.net_contrib = 0.0;
    g.sum_cpu_work = g.sum_t_net = g.max_t_itr = 0.0;
    free_slots_.push_back(slot);
  } else {
    refresh_group(g);
    resize_to_balance(g);
  }
  maybe_rebuild();
  note_peak();
  // A fully drained cluster has no grouping left to preserve: drop the stale
  // peak so the quality gate cannot decline the next cold-start joins.
  if (total_jobs_ == 0) rebaseline();
  return true;
}

std::vector<SchedJob> IncrementalScheduler::pool() const {
  std::vector<SchedJob> out;
  out.reserve(total_jobs_);
  for (const Group& g : groups_) {
    if (!g.live) continue;
    out.insert(out.end(), g.jobs.begin(), g.jobs.end());
  }
  std::sort(out.begin(), out.end(),
            [](const SchedJob& a, const SchedJob& b) { return a.id < b.id; });
  return out;
}

void IncrementalScheduler::validate(check::Validation& v) const {
  std::size_t machines = free_machines_;
  std::size_t jobs = 0;
  std::size_t nonempty = 0;
  double acc_cpu = 0.0;
  double acc_net = 0.0;
  double alloc = 0.0;
  std::unordered_map<JobId, std::size_t> seen;

  for (std::size_t i = 0; i < groups_.size(); ++i) {
    const Group& g = groups_[i];
    if (!g.live) {
      HARMONY_VALIDATE(v, g.jobs.empty() && g.machines == 0)
          << check::group(i) << "dead group retains jobs or machines";
      continue;
    }
    HARMONY_VALIDATE(v, !g.jobs.empty())
        << check::group(i) << "live group with no members";
    HARMONY_VALIDATE(v, g.machines >= 1) << check::group(i) << "live group w/o machines";
    HARMONY_VALIDATE(v, g.jobs.size() <= 2 * params_.max_jobs_per_group)
        << check::group(i) << "group width " << g.jobs.size()
        << " exceeds 2x max_jobs_per_group";
    machines += g.machines;
    jobs += g.jobs.size();
    ++nonempty;
    alloc += static_cast<double>(g.machines);

    double sum_cpu_work = 0.0;
    double sum_t_net = 0.0;
    double max_t_itr = 0.0;
    for (const SchedJob& j : g.jobs) {
      ++seen[j.id];
      const auto idx = job_group_.find(j.id);
      HARMONY_VALIDATE(v, idx != job_group_.end() && idx->second == i)
          << check::job(j.id) << check::group(i)
          << "member not indexed back to its group";
      sum_cpu_work += j.profile.cpu_work;
      sum_t_net += j.profile.t_net;
      max_t_itr = std::max(max_t_itr, j.profile.t_itr(g.machines));
    }
    const auto close = [](double a, double b) {
      return std::abs(a - b) <= 1e-9 * std::max({std::abs(a), std::abs(b), 1.0});
    };
    HARMONY_VALIDATE(v, close(sum_cpu_work, g.sum_cpu_work) &&
                            close(sum_t_net, g.sum_t_net) &&
                            close(max_t_itr, g.max_t_itr))
        << check::group(i) << "cached aggregates diverge from a recompute: cpu_work "
        << g.sum_cpu_work << " vs " << sum_cpu_work;
    const Contrib c = contributions(sum_cpu_work, sum_t_net, max_t_itr, g.machines);
    acc_cpu += c.cpu;
    acc_net += c.net;
  }

  HARMONY_VALIDATE(v, machines == total_machines_)
      << "machine conservation: groups + free pool = " << machines << ", cluster has "
      << total_machines_;
  HARMONY_VALIDATE(v, jobs == total_jobs_ && jobs == job_group_.size())
      << "job accounting: " << jobs << " members, " << total_jobs_ << " counted, "
      << job_group_.size() << " indexed";
  for (const auto& [id, count] : common::sorted_view(seen)) {
    HARMONY_VALIDATE(v, count == 1)
        << check::job(id) << "job appears in " << count << " member lists";
  }
  HARMONY_VALIDATE(v, nonempty == nonempty_groups_)
      << "group count: " << nonempty << " live vs " << nonempty_groups_ << " counted";
  const auto near = [](double a, double b) {
    return std::abs(a - b) <= 1e-6 * std::max({std::abs(a), std::abs(b), 1.0});
  };
  HARMONY_VALIDATE(v, near(acc_cpu, acc_cpu_) && near(acc_net, acc_net_) &&
                          near(alloc, alloc_machines_))
      << "utilization accumulators diverge from a recompute: cpu " << acc_cpu_ << " vs "
      << acc_cpu;
}

void IncrementalScheduler::corrupt_for_test(Corruption kind) {
  switch (kind) {
    case Corruption::kLostMachine:
      HARMONY_CHECK(free_machines_ > 0) << "corruption needs a free machine";
      --free_machines_;
      break;
    case Corruption::kDuplicateJob:
      for (Group& g : groups_) {
        if (g.live && !g.jobs.empty()) {
          g.jobs.push_back(g.jobs.front());
          return;
        }
      }
      HARMONY_CHECK(false) << "corruption needs a live group";
      break;
    case Corruption::kSkewedAggregate:
      for (Group& g : groups_) {
        if (g.live) {
          g.sum_cpu_work = g.sum_cpu_work * 1.5 + 1.0;
          return;
        }
      }
      HARMONY_CHECK(false) << "corruption needs a live group";
      break;
  }
}

}  // namespace harmony::core
