// Incremental rescheduling for the online service mode (src/svc).
//
// Algorithm 1 recomputes the whole grouping from scratch — the right tool at
// regroup cadence, but far too heavy to run once per arrival when the service
// is fed an open-loop stream at production rates. IncrementalScheduler keeps
// the *current* grouping as mutable state and handles a single join/leave
// with bounded work:
//
//  * join: probe at most `join_probe_limit` live groups (rotating cursor, so
//    successive joins spread over the cluster) plus the option of opening a
//    fresh group from the free pool, and take the choice with the best
//    modelled score delta. Every candidate is evaluated *re-sized* to the
//    group's collective CPU/NET balance point (m = Σ cpu_work / Σ t_net, the
//    same crossing full Algorithm 1 allocates to), drawing from or returning
//    machines to the free pool — without the resize a group would stay frozen
//    at its founder's DoP and greedy packing could never approach full
//    Algorithm-1 quality. A probe costs O(group members) (members ≤ 2x the
//    member cap) off cached aggregates, so a join costs
//    O(join_probe_limit x max_jobs_per_group) regardless of cluster size.
//  * leave: remove the job from its group and re-size the remainder to its
//    balance point (bounded the same way); an emptied group dissolves and its
//    machines return to the free pool.
//
// Local repair drifts away from what a fresh Algorithm-1 run would produce —
// departures strand machines in the free pool and joins only see a bounded
// probe window. drift() measures that decay: the relative drop of the
// modelled cluster score from its peak since the last rebaseline, plus the
// fraction of machines that have drained back to the free pool. When drift()
// exceeds drift_threshold the caller re-runs full Algorithm 1 and adopt()s
// the result, resetting the baseline. validate_incremental_state /
// validate_incremental_vs_full (harmony/validate.h) pin both the structural
// invariants and the bounded gap to the full re-run.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "check/check.h"
#include "harmony/perf_model.h"
#include "harmony/scheduler.h"

namespace harmony::core {

class IncrementalScheduler {
 public:
  struct Params {
    // Mirrors Scheduler::Params::max_jobs_per_group; forced re-joins after an
    // adopt() may exceed it (never beyond 2x — validated).
    std::size_t max_jobs_per_group = 6;
    // Live groups examined per join. Bounds the per-event work; the drift
    // trigger repairs whatever a narrow window cost in placement quality.
    std::size_t join_probe_limit = 64;
    // Full Algorithm-1 re-run trigger: relative score drop (or free-pool
    // growth fraction) since the last adopt() above which the caller should
    // reschedule from scratch.
    double drift_threshold = 0.10;
    PerfModel::Params model;
  };

  // One live job group (exposed read-only for validators and reporting).
  struct Group {
    std::vector<SchedJob> jobs;
    std::size_t machines = 0;
    bool live = false;
    // Cached aggregates over `jobs` (recomputed on every membership change —
    // groups are small — so they carry no incremental FP error).
    double sum_cpu_work = 0.0;  // Σ cpu_work (DoP-invariant machine-seconds)
    double sum_t_net = 0.0;     // Σ t_net
    double max_t_itr = 0.0;     // max_j T_itr(machines)
    // This group's terms in the cluster-utilization accumulators:
    // machines * group_utilization().{cpu,net}.
    double cpu_contrib = 0.0;
    double net_contrib = 0.0;
  };

  IncrementalScheduler(Params params, std::size_t total_machines);

  // Rebuilds the grouping from a full Algorithm-1 decision over `pool` and
  // records the new drift baseline. Pool jobs the decision did not place are
  // dropped from the state — the caller re-joins or queues them.
  void adopt(const ScheduleDecision& decision, std::span<const SchedJob> pool);

  struct JoinResult {
    std::size_t group = 0;       // index into groups()
    bool created_group = false;  // opened a fresh group from the free pool
    double group_t_itr = 0.0;    // modelled iteration time after the join
  };

  // Places one job with bounded work. Returns nullopt when no live group has
  // a free member slot and the free pool is empty, or when every candidate
  // placement would drag the modelled score below the drift floor
  // (peak x (1 - drift_threshold)) without improving on the current score —
  // the incremental analog of Algorithm 1 parking queue-tail jobs once the
  // score stops improving. `force` bypasses both the member cap and the
  // quality gate so adopted-state repairs cannot strand a running job. The
  // job must not already be placed.
  std::optional<JoinResult> join(const SchedJob& job, bool force = false);

  // Removes a job; emptied groups dissolve back into the free pool. Returns
  // false if the job is not placed.
  bool leave(JobId id);

  // Modelled cluster score of the current grouping (PerfModel::score
  // semantics: machine-weighted utilization over allocated machines, minus
  // the per-job penalty).
  double current_score() const;
  // Re-records the drift baseline at the current state. adopt() does this
  // implicitly; callers that post-process an adopted decision (forced
  // re-joins of prefix leftovers, queue drains) call this afterwards so
  // drift() measures decay from the settled state, not a transient.
  void rebaseline();
  // Decay since the last rebaseline: max of the relative score drop from the
  // peak score observed since then and the net free-pool growth as a fraction
  // of the cluster. Live from construction — a cold-started service that
  // greedily packs joins without ever adopting a full decision still sees its
  // decay and escalates (the peak tracks the best grouping ever held, so a
  // slide from it registers even with no adopt()-quality baseline to cite).
  double drift() const;
  bool needs_full_reschedule() const { return drift() > params_.drift_threshold; }

  std::size_t total_machines() const noexcept { return total_machines_; }
  std::size_t free_machines() const noexcept { return free_machines_; }
  std::size_t running_jobs() const noexcept { return total_jobs_; }
  std::size_t live_group_count() const noexcept { return nonempty_groups_; }
  const std::vector<Group>& groups() const noexcept { return groups_; }
  bool contains(JobId id) const { return job_group_.count(id) != 0; }

  // Modelled iteration time of a live group (Eq. 1 off the cached sums).
  double group_iteration_time(std::size_t group) const;

  // All placed jobs in id order — the queue order a full Algorithm-1 re-run
  // expects (service ids are assigned in arrival order).
  std::vector<SchedJob> pool() const;

  const Params& params() const noexcept { return params_; }
  const PerfModel& model() const noexcept { return model_; }

  // Deep validator: recomputes every cached aggregate and the accumulators
  // from scratch and checks machine conservation, membership consistency and
  // group-shape bounds. Read-only.
  void validate(check::Validation& v) const;

  // Test-only corruption hooks; each breaks exactly one maintained invariant.
  enum class Corruption {
    kLostMachine,       // free-pool count decremented (conservation breakage)
    kDuplicateJob,      // a group member duplicated behind the index's back
    kSkewedAggregate,   // a cached Σ cpu_work inflated
  };
  void corrupt_for_test(Corruption kind);

 private:
  // Recomputes a group's aggregates + contributions from its member list and
  // swaps the new contributions into the cluster accumulators.
  void refresh_group(Group& g);
  // Exact accumulator recompute; called from adopt() and periodically (every
  // kRebuildEvery mutations) so add/subtract error cannot accumulate over an
  // unbounded service run.
  void rebuild_accumulators();
  void maybe_rebuild();
  double score_with(double acc_cpu, double acc_net, double alloc_machines,
                    std::size_t jobs, std::size_t groups) const;
  void note_peak();
  std::size_t acquire_slot();
  // Balance-point DoP for aggregate work: Σ T_cpu(m) == Σ t_net at
  // m = sum_cpu_work / sum_t_net, clamped to [1, limit] (limit for pure-CPU
  // work). The machine count full Algorithm 1's allocation step converges to.
  std::size_t balanced_dop(double sum_cpu_work, double sum_t_net,
                           std::size_t limit) const;
  // Re-sizes a live group to balanced_dop over its members, moving machines
  // to/from the free pool and refreshing its aggregates.
  void resize_to_balance(Group& g);

  static constexpr std::uint64_t kRebuildEvery = 4096;

  Params params_;
  PerfModel model_;
  std::size_t total_machines_;
  std::size_t free_machines_;

  std::vector<Group> groups_;             // slots; dead ones on the free list
  std::vector<std::size_t> free_slots_;
  std::unordered_map<JobId, std::uint32_t> job_group_;
  std::size_t cursor_ = 0;  // rotating probe start for join()

  // Cluster-utilization accumulators over live groups (PerfModel::
  // cluster_utilization's sums, maintained incrementally).
  double acc_cpu_ = 0.0;
  double acc_net_ = 0.0;
  double alloc_machines_ = 0.0;
  std::size_t total_jobs_ = 0;
  std::size_t nonempty_groups_ = 0;
  std::uint64_t mutations_ = 0;

  double peak_score_ = 0.0;  // best score since the last rebaseline
  std::size_t baseline_free_ = 0;
};

}  // namespace harmony::core
