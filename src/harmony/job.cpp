#include "harmony/job.h"

namespace harmony::core {

const char* to_string(JobState s) noexcept {
  switch (s) {
    case JobState::kWaiting:
      return "waiting";
    case JobState::kProfiling:
      return "profiling";
    case JobState::kProfiled:
      return "profiled";
    case JobState::kRunning:
      return "running";
    case JobState::kPaused:
      return "paused";
    case JobState::kFinished:
      return "finished";
  }
  return "?";
}

}  // namespace harmony::core
