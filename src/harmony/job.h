// Job metadata shared by the scheduler, the simulator and the real runtime.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace harmony::core {

using JobId = std::uint32_t;
constexpr JobId kNoJob = UINT32_MAX;

// Lifecycle from §III: submitted jobs wait in the queue, get profiled on a
// group, then run/pause under scheduler control until convergence.
enum class JobState {
  kWaiting,
  kProfiling,
  kProfiled,  // profiled but not currently placed in a running group
  kRunning,
  kPaused,
  kFinished,
};

const char* to_string(JobState s) noexcept;

// The scheduler-facing description of a job's resource behaviour.
//
// The profiler reports (T_cpu, T_net, m); because COMP time scales as 1/m
// (Eq. 2) we store the DoP-invariant quantity cpu_work = T_cpu * m
// (machine-seconds per iteration) and recover T_cpu at any DoP.
struct JobProfile {
  double cpu_work = 0.0;  // machine-seconds of COMP per iteration
  double t_net = 0.0;     // seconds of COMM per iteration (DoP-invariant)

  double t_cpu(std::size_t machines) const noexcept {
    return machines == 0 ? std::numeric_limits<double>::infinity()
                         : cpu_work / static_cast<double>(machines);
  }
  double t_itr(std::size_t machines) const noexcept { return t_cpu(machines) + t_net; }
  // Fraction of an isolated iteration spent computing, at DoP `machines`.
  double comp_ratio(std::size_t machines) const noexcept {
    const double itr = t_itr(machines);
    return itr > 0.0 ? t_cpu(machines) / itr : 0.0;
  }

  bool valid() const noexcept { return cpu_work > 0.0 && t_net > 0.0; }
};

// Static job description known at submission.
struct JobSpec {
  JobId id = kNoJob;
  std::string name;
  // Total iterations to convergence (the simulator's convergence proxy; the
  // real runtime watches the objective value instead).
  std::size_t iterations_required = 0;
  // Memory footprint, cluster-wide: workers hold input, servers hold model.
  double input_bytes = 0.0;
  double model_bytes = 0.0;
  double submit_time = 0.0;
};

}  // namespace harmony::core
