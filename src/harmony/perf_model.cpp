#include "harmony/perf_model.h"

#include <algorithm>
#include <cassert>

namespace harmony::core {

const char* to_string(Bound bound) noexcept {
  return bound == Bound::kCpu ? "cpu" : "net";
}

Bound PerfModel::group_bound(const GroupShape& group) {
  double sum_cpu = 0.0;
  double sum_net = 0.0;
  for (const JobProfile& j : group.jobs) {
    sum_cpu += j.t_cpu(group.machines);
    sum_net += j.t_net;
  }
  return sum_cpu >= sum_net ? Bound::kCpu : Bound::kNet;
}

double PerfModel::group_iteration_time(const GroupShape& group) {
  assert(group.machines > 0);
  double sum_cpu = 0.0;
  double sum_net = 0.0;
  double max_itr = 0.0;
  for (const JobProfile& j : group.jobs) {
    sum_cpu += j.t_cpu(group.machines);
    sum_net += j.t_net;
    max_itr = std::max(max_itr, j.t_itr(group.machines));
  }
  return std::max({sum_cpu, sum_net, max_itr});
}

Utilization PerfModel::group_utilization(const GroupShape& group) {
  const double t_itr = group_iteration_time(group);
  if (t_itr <= 0.0) return {};
  double sum_cpu = 0.0;
  double sum_net = 0.0;
  for (const JobProfile& j : group.jobs) {
    sum_cpu += j.t_cpu(group.machines);
    sum_net += j.t_net;
  }
  return Utilization{sum_cpu / t_itr, sum_net / t_itr};
}

Utilization PerfModel::cluster_utilization(std::span<const GroupShape> groups) {
  double total_machines = 0.0;
  Utilization acc;
  for (const GroupShape& g : groups) {
    if (g.jobs.empty() || g.machines == 0) continue;
    const Utilization u = group_utilization(g);
    const auto m = static_cast<double>(g.machines);
    acc.cpu += m * u.cpu;
    acc.net += m * u.net;
    total_machines += m;
  }
  if (total_machines <= 0.0) return {};
  return Utilization{acc.cpu / total_machines, acc.net / total_machines};
}

double PerfModel::score_scalar(const Utilization& u, std::size_t total_jobs,
                               std::size_t total_groups) const {
  const double util =
      params_.cpu_weight * u.cpu + (1.0 - params_.cpu_weight) * u.net;
  const double extra_jobs =
      total_jobs > total_groups ? static_cast<double>(total_jobs - total_groups) : 0.0;
  return util - params_.per_job_penalty * extra_jobs;
}

double PerfModel::score(std::span<const GroupShape> groups) const {
  std::size_t jobs = 0;
  std::size_t nonempty = 0;
  for (const GroupShape& g : groups) {
    jobs += g.jobs.size();
    if (!g.jobs.empty()) ++nonempty;
  }
  return score_scalar(cluster_utilization(groups), jobs, nonempty);
}

}  // namespace harmony::core
