// Harmony's analytical performance model (§IV-B2, Eq. 1–4).
//
// Given the profiled subtask times of the jobs in a group and the group's
// machine count (DoP), the model predicts the group iteration time and the
// CPU/network utilization that subtask-pipelined execution will achieve.
// The scheduler searches over groupings/allocations by evaluating this model.
#pragma once

#include <span>
#include <vector>

#include "harmony/job.h"

namespace harmony::core {

// Two-dimensional utilization vector (Eq. 3 / Eq. 4).
struct Utilization {
  double cpu = 0.0;
  double net = 0.0;

  bool operator==(const Utilization&) const = default;
};

// A candidate group: the profiles of its member jobs plus its DoP.
struct GroupShape {
  std::vector<JobProfile> jobs;
  std::size_t machines = 0;
};

// Which resource Eq. 1 says bounds a group's iteration: the CPU lane
// (Σ T_cpu dominates) or the network lane (Σ T_net dominates). The
// bound-switch at the heart of Algorithm 1's performance model — adding
// machines shrinks COMP until the group flips to network-bound (§IV).
enum class Bound : std::uint8_t { kCpu, kNet };

const char* to_string(Bound bound) noexcept;

class PerfModel {
 public:
  struct Params {
    // Weight of CPU utilization in the scalar score; the paper treats CPU as
    // more important than network "since CPU resources directly contribute to
    // the job progress" (§IV-B2).
    double cpu_weight = 0.7;
    // Soft preference for fewer jobs per group ("for shorter JCTs and lower
    // memory pressure"): each extra job beyond the first costs this much of
    // the score. A tie-breaker, small enough that real utilization gains
    // always dominate at cluster scale.
    double per_job_penalty = 0.002;
  };

  PerfModel() : PerfModel(Params{}) {}
  explicit PerfModel(Params params) : params_(params) {}

  // Eq. 1: T_g_itr = max(Σ T_cpu, Σ T_net, max_j T_j_itr).
  static double group_iteration_time(const GroupShape& group);

  // Eq. 1's arg-max over the two resource lanes: CPU-bound when Σ T_cpu ≥
  // Σ T_net, network-bound otherwise (ties go to CPU, matching the model's
  // "CPU directly contributes to progress" preference).
  static Bound group_bound(const GroupShape& group);

  // Eq. 3: per-resource busy fraction within a group iteration.
  static Utilization group_utilization(const GroupShape& group);

  // Eq. 4: machine-weighted average across groups.
  static Utilization cluster_utilization(std::span<const GroupShape> groups);

  // Scalar objective the scheduler maximizes: weighted utilization minus the
  // small-group preference penalty.
  double score(std::span<const GroupShape> groups) const;
  double score_scalar(const Utilization& u, std::size_t total_jobs,
                      std::size_t total_groups) const;

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

}  // namespace harmony::core
