#include "harmony/profiler.h"

#include <stdexcept>

namespace harmony::core {

void Profiler::record(JobId job, std::size_t machines, double t_cpu, double t_net) {
  if (machines == 0) throw std::invalid_argument("Profiler: zero machines");
  if (t_cpu < 0.0 || t_net < 0.0) throw std::invalid_argument("Profiler: negative time");
  auto [it, inserted] = entries_.try_emplace(job, params_.ema_alpha);
  Entry& e = it->second;
  e.cpu_work.add(t_cpu * static_cast<double>(machines));
  e.t_net.add(t_net);
  ++e.samples;
}

bool Profiler::has_profile(JobId job) const { return entries_.contains(job); }

bool Profiler::is_profiled(JobId job) const {
  auto it = entries_.find(job);
  return it != entries_.end() && it->second.samples >= params_.min_samples;
}

std::optional<JobProfile> Profiler::profile(JobId job) const {
  auto it = entries_.find(job);
  if (it == entries_.end() || it->second.samples == 0) return std::nullopt;
  return JobProfile{it->second.cpu_work.value(), it->second.t_net.value()};
}

std::size_t Profiler::sample_count(JobId job) const {
  auto it = entries_.find(job);
  return it == entries_.end() ? 0 : it->second.samples;
}

void Profiler::forget(JobId job) { entries_.erase(job); }

}  // namespace harmony::core
