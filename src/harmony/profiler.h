// Online profiler (§IV-B1).
//
// Workers report the measured durations of each COMP and COMM subtask along
// with the group's machine count; the profiler folds them into
// moving-average estimates and exposes DoP-normalized JobProfiles to the
// scheduler. Subtask execution keeps contention out of the measurements, so
// a small number of samples suffices ("profiled metrics of subtasks can be
// meaningfully reused, while being updated using moving averages").
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>

#include "common/stats.h"
#include "harmony/job.h"

namespace harmony::core {

class Profiler {
 public:
  struct Params {
    double ema_alpha = 0.3;
    // Samples needed before a job graduates from profiling to profiled.
    std::size_t min_samples = 3;
  };

  Profiler() : Profiler(Params{}) {}
  explicit Profiler(Params params) : params_(params) {}

  // Records one iteration's measurements for `job` while it ran on
  // `machines` machines: total COMP seconds and total COMM seconds.
  void record(JobId job, std::size_t machines, double t_cpu, double t_net);

  bool has_profile(JobId job) const;
  // Ready once min_samples iterations have been folded in.
  bool is_profiled(JobId job) const;

  // DoP-invariant profile (cpu_work = T_cpu * m from Eq. 2).
  std::optional<JobProfile> profile(JobId job) const;

  std::size_t sample_count(JobId job) const;
  void forget(JobId job);

 private:
  struct Entry {
    MovingAverage cpu_work;
    MovingAverage t_net;
    std::size_t samples = 0;
    Entry(double alpha) : cpu_work(alpha), t_net(alpha) {}
  };

  Params params_;
  std::unordered_map<JobId, Entry> entries_;
};

}  // namespace harmony::core
