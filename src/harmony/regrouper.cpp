#include "harmony/regrouper.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/stats.h"
#include "obs/metrics.h"

namespace harmony::core {
namespace {

// Pure observation of which branch of the §IV-B rules fired; never read back.
void count_action(const char* name) {
  obs::MetricsRegistry::instance().counter(name).add();
}

}  // namespace

Regrouper::Regrouper(const Scheduler& scheduler, Params params)
    : scheduler_(scheduler), params_(params) {}

std::vector<GroupShape> Regrouper::to_shapes(std::span<const RunningGroup> groups) {
  std::vector<GroupShape> shapes;
  shapes.reserve(groups.size());
  for (const RunningGroup& g : groups) {
    GroupShape s;
    s.machines = g.machines;
    for (const SchedJob& j : g.jobs) s.jobs.push_back(j.profile);
    shapes.push_back(std::move(s));
  }
  return shapes;
}

bool Regrouper::similar(const JobProfile& a, const JobProfile& b, std::size_t dop) const {
  const double itr_err = relative_error(a.t_itr(dop), b.t_itr(dop));
  const double ratio_err = relative_error(a.comp_ratio(dop), b.comp_ratio(dop));
  return itr_err <= params_.similarity && ratio_err <= params_.similarity;
}

RegroupAction Regrouper::on_job_arrival(const SchedJob& new_job,
                                        std::span<const SchedJob> idle,
                                        std::span<const RunningGroup> groups) const {
  RegroupAction action;
  // Other profiled/paused jobs exist => the scheduler already chose not to
  // run them; the new arrival waits with them.
  if (!idle.empty() || groups.empty()) return action;

  auto shapes = to_shapes(groups);
  const double current = scheduler_.model().score(shapes);

  double best_score = current;
  std::size_t best_group = groups.size();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    shapes[g].jobs.push_back(new_job.profile);
    const double score = scheduler_.model().score(shapes);
    shapes[g].jobs.pop_back();
    if (score > best_score) {
      best_score = score;
      best_group = g;
    }
  }
  if (best_group == groups.size()) {
    count_action("regrouper.arrival_wait");
    return action;  // no group improves U: wait
  }

  action.kind = RegroupAction::Kind::kAddToGroup;
  action.group_index = best_group;
  count_action("regrouper.arrival_add_to_group");
  return action;
}

RegroupAction Regrouper::on_job_finish(const SchedJob& finished, std::size_t group_index,
                                       std::span<const SchedJob> idle,
                                       std::span<const RunningGroup> groups,
                                       std::size_t spare_machines) const {
  RegroupAction action;
  if (group_index >= groups.size()) return action;
  const std::size_t dop = std::max<std::size_t>(1, groups[group_index].machines);

  // (1) One similar job.
  for (const SchedJob& cand : idle) {
    if (similar(cand.profile, finished.profile, dop)) {
      action.kind = RegroupAction::Kind::kReplace;
      action.group_index = group_index;
      action.replacements = {cand};
      count_action("regrouper.finish_replace");
      return action;
    }
  }

  // (2) A bunch (pair) of idle jobs whose *sums* match the finished job:
  // total iteration time within 5 % and summed comp/comm ratio within 5 %.
  const double target_itr = finished.profile.t_itr(dop);
  const double target_ratio = finished.profile.comp_ratio(dop);
  for (std::size_t a = 0; a < idle.size(); ++a) {
    for (std::size_t b = a + 1; b < idle.size(); ++b) {
      const double sum_cpu = idle[a].profile.t_cpu(dop) + idle[b].profile.t_cpu(dop);
      const double sum_net = idle[a].profile.t_net + idle[b].profile.t_net;
      const double sum_itr = sum_cpu + sum_net;
      const double ratio = sum_itr > 0.0 ? sum_cpu / sum_itr : 0.0;
      if (relative_error(sum_itr, target_itr) <= params_.similarity &&
          relative_error(ratio, target_ratio) <= params_.similarity) {
        action.kind = RegroupAction::Kind::kReplace;
        action.group_index = group_index;
        action.replacements = {idle[a], idle[b]};
        count_action("regrouper.finish_replace");
        return action;
      }
    }
  }

  // (3) Involve other groups, smallest-first, via Algorithm 1. We grow the
  // set of participating groups and keep the smallest decision unless a
  // bigger one wins by more than min_benefit.
  auto shapes = to_shapes(groups);
  const double current_score = scheduler_.model().score(shapes);

  // Order candidate partner groups by job count (the paper starts with the
  // group with the fewest jobs).
  std::vector<std::size_t> partners;
  for (std::size_t g = 0; g < groups.size(); ++g)
    if (g != group_index) partners.push_back(g);
  std::sort(partners.begin(), partners.end(), [&groups](std::size_t a, std::size_t b) {
    return groups[a].jobs.size() < groups[b].jobs.size();
  });

  std::optional<RegroupAction> best;
  double best_score = -std::numeric_limits<double>::infinity();
  std::size_t best_job_count = SIZE_MAX;

  std::vector<std::size_t> involved = {group_index};
  std::vector<SchedJob> pool(groups[group_index].jobs);
  // Idle jobs participate too (they may fill the hole).
  pool.insert(pool.end(), idle.begin(), idle.end());
  std::size_t machines = groups[group_index].machines + spare_machines;

  // Id -> pool index, grown alongside `pool`, so mapping a decision's job ids
  // back to profiles is O(1) per id instead of a linear pool scan. First
  // insertion wins, matching a forward find_if when ids repeat.
  std::unordered_map<JobId, std::size_t> pool_index;
  pool_index.reserve(pool.size() + groups.size() * 4);
  std::size_t indexed = 0;
  const auto index_new_pool_jobs = [&] {
    for (; indexed < pool.size(); ++indexed)
      pool_index.emplace(pool[indexed].id, indexed);
  };
  index_new_pool_jobs();

  for (std::size_t step = 0; step <= partners.size(); ++step) {
    ScheduleDecision decision = scheduler_.schedule(pool, machines);
    if (!decision.empty()) {
      // Score of the whole cluster if this decision replaces the involved
      // groups: involved groups are re-shaped, others stay.
      std::vector<GroupShape> candidate_shapes;
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (std::find(involved.begin(), involved.end(), g) != involved.end()) continue;
        candidate_shapes.push_back(shapes[g]);
      }
      for (const GroupPlan& plan : decision.groups) {
        GroupShape s;
        s.machines = plan.machines;
        for (JobId id : plan.jobs) {
          auto it = pool_index.find(id);
          if (it != pool_index.end()) s.jobs.push_back(pool[it->second].profile);
        }
        candidate_shapes.push_back(std::move(s));
      }
      const double score = scheduler_.model().score(candidate_shapes);
      const std::size_t jobs_touched = pool.size();
      // Prefer fewer jobs unless the larger decision is >5 % better.
      const bool better =
          !best ||
          (jobs_touched < best_job_count && score >= best_score * (1.0 - params_.min_benefit)) ||
          score > best_score * (1.0 + params_.min_benefit);
      if (better) {
        RegroupAction a;
        a.kind = RegroupAction::Kind::kReschedule;
        a.decision = decision;
        a.groups_involved = involved;
        best = std::move(a);
        best_score = score;
        best_job_count = jobs_touched;
      }
    }
    if (step == partners.size()) break;
    const std::size_t next = partners[step];
    involved.push_back(next);
    pool.insert(pool.end(), groups[next].jobs.begin(), groups[next].jobs.end());
    index_new_pool_jobs();
    machines += groups[next].machines;
  }

  // Skip regrouping entirely when the expected benefit is under 5 % of U.
  if (!best ||
      best_score - current_score < params_.min_benefit * std::max(current_score, 1e-9)) {
    count_action("regrouper.finish_none");
    return action;
  }
  count_action("regrouper.finish_reschedule");
  return *best;
}

}  // namespace harmony::core
