// Dynamic job regrouping (§IV-B4).
//
// Scheduling re-triggers on two events — a job arrival and a job completion —
// and the regrouper's whole point is to involve as few jobs as possible:
//
//  * Arrival: after profiling, the new job is only considered when no other
//    profiled/paused jobs are queued (their existence means the scheduler is
//    already satisfied with the running set). It is added to the group that
//    maximizes modelled utilization, or keeps waiting if no group improves.
//
//  * Completion: the finished job's group must be made compute/communication
//    balanced again. First look for one similar idle job (iteration time and
//    comp/comm ratio within 5 %); then for a small bunch of jobs whose sums
//    match within 5 %; only then fall back to Algorithm 1 over progressively
//    more groups, preferring decisions that touch fewer jobs unless a larger
//    decision wins by more than 5 %. Regrouping is skipped entirely when the
//    expected benefit is below 5 % of U.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "harmony/scheduler.h"

namespace harmony::core {

// A running group as the regrouper sees it.
struct RunningGroup {
  std::vector<SchedJob> jobs;
  std::size_t machines = 0;
};

struct RegroupAction {
  enum class Kind {
    kNone,        // keep everything as is / leave the job waiting
    kAddToGroup,  // arrival: put the new job into groups[group_index]
    kReplace,     // completion: insert `replacements` into groups[group_index]
    kReschedule,  // completion: apply `decision` to groups in `groups_involved`
  };

  Kind kind = Kind::kNone;
  std::size_t group_index = 0;
  std::vector<SchedJob> replacements;
  ScheduleDecision decision;
  std::vector<std::size_t> groups_involved;
};

class Regrouper {
 public:
  struct Params {
    // The paper's twin 5 % thresholds.
    double similarity = 0.05;
    double min_benefit = 0.05;
  };

  explicit Regrouper(const Scheduler& scheduler) : Regrouper(scheduler, Params{}) {}
  Regrouper(const Scheduler& scheduler, Params params);

  // `new_job` just finished profiling; `idle` are the other profiled/paused
  // jobs. Returns kAddToGroup or kNone.
  RegroupAction on_job_arrival(const SchedJob& new_job, std::span<const SchedJob> idle,
                               std::span<const RunningGroup> groups) const;

  // `finished` just left groups[group_index]. `idle` are profiled/paused
  // candidates; `spare_machines` are unallocated machines the reschedule may
  // also hand out (the cluster is work-conserving: allocateMachines always
  // distributes everything it is given). Returns kReplace, kReschedule or
  // kNone.
  RegroupAction on_job_finish(const SchedJob& finished, std::size_t group_index,
                              std::span<const SchedJob> idle,
                              std::span<const RunningGroup> groups,
                              std::size_t spare_machines = 0) const;

  // True when the two jobs are "similar": iteration time and comp/comm ratio
  // both within the similarity threshold, at the given DoP.
  bool similar(const JobProfile& a, const JobProfile& b, std::size_t dop) const;

 private:
  static std::vector<GroupShape> to_shapes(std::span<const RunningGroup> groups);

  const Scheduler& scheduler_;
  Params params_;
};

}  // namespace harmony::core
