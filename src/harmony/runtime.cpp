#include "harmony/runtime.h"

#include <atomic>
#include <cassert>
#include <chrono>
#include <filesystem>
#include <stdexcept>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ps/partition.h"

namespace harmony::core {

// LocalRuntime is the real threaded runtime, so wall-clock timing is the
// measurement, not a reproducibility leak.
using Clock = std::chrono::steady_clock;  // lint: allow-nondeterminism

namespace {
double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}
}  // namespace

struct LocalRuntime::JobRun {
  JobId id = kNoJob;
  RuntimeJobConfig config;
  std::unique_ptr<ps::PsSystem> ps;
  RuntimeJobResult result;

  Clock::time_point job_start;
  Clock::time_point phase_start;
  double iter_trace_start_us = 0.0;  // wall-domain iteration span start
  double comp_accum = 0.0;
  double comm_accum = 0.0;
  double iter_comp = 0.0;
  double iter_comm = 0.0;

  // Pause protocol state, guarded by the runtime mutex.
  bool pause_requested = false;
  bool paused = false;
  bool finished = false;

  // Live mirrors of the result fields another thread may poll mid-run via
  // progress(); `result` itself is only stable once the job is quiescent.
  std::atomic<std::size_t> epochs_live{0};
  std::atomic<std::size_t> restarts_live{0};
  std::atomic<bool> failed_live{false};

  // Fault-tolerance state.
  std::atomic<bool> fail_next{false};   // next COMP throws (injection)
  std::atomic<bool> failure_seen{false};  // a subtask of this job threw
  std::string failure_message;          // guarded by the runtime mutex
  std::size_t last_checkpoint_epoch = 0;
  bool has_checkpoint = false;
};

LocalRuntime::LocalRuntime(Params params) : params_(params) {
  if (params_.machines == 0) throw std::invalid_argument("LocalRuntime: zero machines");
  SubtaskExecutor::Params exec_params;
  if (params_.mode == ExecutionMode::kNaive) {
    exec_params.cpu_slots = params_.naive_cpu_slots;
    exec_params.network_slots = params_.naive_net_slots;
  }
  for (std::size_t m = 0; m < params_.machines; ++m)
    executors_.push_back(std::make_unique<SubtaskExecutor>(exec_params));

  std::filesystem::path dir = params_.checkpoint_dir.empty()
                                  ? std::filesystem::temp_directory_path() / "harmony-ckpt"
                                  : std::filesystem::path(params_.checkpoint_dir);
  checkpoints_ = std::make_unique<CheckpointStore>(dir);

  // A failing subtask must not crash the shared runtime; record the failure
  // against its job and let the iteration boundary decide restart-or-fail.
  for (auto& e : executors_) {
    e->set_failure_handler([this](JobId job, const std::string& message) {
      if (job >= jobs_.size()) return;
      JobRun& jr = *jobs_[job];
      jr.failure_seen.store(true, std::memory_order_relaxed);
      common::MutexLock lock(mu_);
      if (jr.failure_message.empty()) jr.failure_message = message;
    });
  }
}

LocalRuntime::~LocalRuntime() {
  // A job resumed after run() returned may still be iterating; its callbacks
  // reference JobRun state, so quiesce before members start destructing.
  wait_idle();
  for (auto& e : executors_) e->drain();
}

void LocalRuntime::wait_idle() {
  common::MutexLock lock(mu_);
  while (active_jobs_ != 0) all_done_cv_.wait(mu_);
}

void LocalRuntime::inject_failure(JobId job) {
  jobs_.at(job)->fail_next.store(true, std::memory_order_relaxed);
}

JobId LocalRuntime::submit(RuntimeJobConfig config) {
  if (!config.app) throw std::invalid_argument("LocalRuntime: null app");
  common::MutexLock lock(mu_);
  if (started_) throw std::logic_error("LocalRuntime: submit after run()");
  auto jr = std::make_unique<JobRun>();
  jr->id = static_cast<JobId>(jobs_.size());
  jr->config = std::move(config);
  ps::PsConfig ps_config;
  ps_config.nic_bytes_per_sec = params_.nic_bytes_per_sec;
  ps_config.batches_per_epoch = jr->config.batches_per_epoch;
  jr->ps = std::make_unique<ps::PsSystem>(jr->config.app, params_.machines, ps_config);
  jr->result.id = jr->id;
  synchronizer_.register_job(jr->id, params_.machines);
  jobs_.push_back(std::move(jr));
  return jobs_.back()->id;
}

void LocalRuntime::run() {
  {
    common::MutexLock lock(mu_);
    if (started_) throw std::logic_error("LocalRuntime: run() called twice");
    started_ = true;
    active_jobs_ = jobs_.size();
  }
  for (auto& jr : jobs_) {
    jr->ps->init_model();
    jr->job_start = Clock::now();
    start_iteration(*jr);
  }
  common::MutexLock lock(mu_);
  while (active_jobs_ != 0) all_done_cv_.wait(mu_);
}

void LocalRuntime::submit_phase(JobRun& jr, SubtaskType type,
                                std::function<void(std::size_t)> body,
                                std::function<void()> next) {
  synchronizer_.begin_step(jr.id, std::move(next));
  for (std::size_t m = 0; m < executors_.size(); ++m) {
    Subtask st;
    st.job = jr.id;
    st.type = type;
    st.body = [body, m] { body(m); };
    st.on_complete = [this, id = jr.id] { synchronizer_.arrive(id); };
    executors_[m]->submit(std::move(st));
  }
}

void LocalRuntime::start_iteration(JobRun& jr) {
  jr.iter_comm = 0.0;
  jr.iter_comp = 0.0;
  if (obs::Tracer::enabled()) jr.iter_trace_start_us = obs::Tracer::wall_now_us();
  phase_pull(jr);
}

void LocalRuntime::phase_pull(JobRun& jr) {
  jr.phase_start = Clock::now();
  submit_phase(
      jr, SubtaskType::kComm,
      [&jr](std::size_t m) {
        obs::WallSpan span(obs::EventKind::kSubtaskPull, jr.id, obs::kNoEntity,
                           static_cast<std::uint32_t>(m));
        jr.ps->worker(m).pull_transfer();
      },
      [this, &jr] { phase_comp(jr); });
}

void LocalRuntime::phase_comp(JobRun& jr) {
  jr.iter_comm += seconds_since(jr.phase_start);
  jr.phase_start = Clock::now();
  submit_phase(
      jr, SubtaskType::kComp,
      [&jr](std::size_t m) {
        obs::WallSpan span(obs::EventKind::kSubtaskComp, jr.id, obs::kNoEntity,
                           static_cast<std::uint32_t>(m));
        // Injected fault: one worker's COMP throws (caught by the executor).
        if (m == 0 && jr.fail_next.exchange(false))
          throw std::runtime_error("injected COMP failure");
        // Deserialization and serialization are CPU work and run in the CPU
        // lane by design (§IV-A: the paper moves them out of COMM subtasks).
        auto& w = jr.ps->worker(m);
        w.pull_deserialize();
        w.compute();
        w.push_serialize();
      },
      [this, &jr] { phase_push(jr); });
}

void LocalRuntime::phase_push(JobRun& jr) {
  jr.iter_comp = seconds_since(jr.phase_start);
  jr.comp_accum += jr.iter_comp;
  jr.phase_start = Clock::now();
  submit_phase(
      jr, SubtaskType::kComm,
      [&jr](std::size_t m) {
        obs::WallSpan span(obs::EventKind::kSubtaskPush, jr.id, obs::kNoEntity,
                           static_cast<std::uint32_t>(m));
        jr.ps->worker(m).push_transfer();
      },
      [this, &jr] { on_iteration_end(jr); });
}

void LocalRuntime::on_iteration_end(JobRun& jr) {
  jr.iter_comm += seconds_since(jr.phase_start);
  jr.comm_accum += jr.iter_comm;
  ++jr.result.iterations;
  obs::MetricsRegistry::instance().counter("runtime.iterations").add();
  if (obs::Tracer::enabled()) {
    const double end_us = obs::Tracer::wall_now_us();
    obs::Tracer::complete(obs::EventKind::kIteration, obs::ClockDomain::kWall,
                          jr.iter_trace_start_us, end_us - jr.iter_trace_start_us, jr.id);
  }

  // A subtask of this iteration threw. Restart from the last epoch
  // checkpoint if the budget allows; otherwise the job fails (other
  // co-located jobs keep running either way).
  if (jr.failure_seen.exchange(false)) {
    if (try_restart(jr)) {
      start_iteration(jr);
    } else {
      jr.result.failed = true;
      jr.failed_live.store(true, std::memory_order_relaxed);
      {
        common::MutexLock lock(mu_);
        jr.result.failure_message = jr.failure_message;
      }
      finish_job(jr, /*by_loss=*/false);
    }
    return;
  }

  {
    // The profiler is shared across jobs whose drivers run on different
    // executor threads.
    common::MutexLock lock(mu_);
    profiler_.record(jr.id, executors_.size(), jr.iter_comp, jr.iter_comm);
  }

  const bool epoch_end = jr.result.iterations % jr.config.batches_per_epoch == 0;
  if (epoch_end) {
    ++jr.result.epochs;
    jr.epochs_live.store(jr.result.epochs, std::memory_order_relaxed);
    const double loss = jr.ps->loss();
    jr.result.epoch_losses.push_back(loss);
    jr.result.final_loss = loss;
    if (jr.config.max_restarts > 0) {
      // Standard per-epoch checkpointing (§VI fault tolerance).
      {
        obs::WallSpan span(obs::EventKind::kCheckpoint, jr.id);
        checkpoints_->save(jr.id, jr.ps->full_model());
      }
      obs::MetricsRegistry::instance().counter("runtime.checkpoints").add();
      jr.last_checkpoint_epoch = jr.result.epochs;
      jr.has_checkpoint = true;
    }
    if (loss <= jr.config.target_loss) {
      finish_job(jr, /*by_loss=*/true);
      return;
    }
    if (jr.result.epochs >= jr.config.max_epochs) {
      finish_job(jr, /*by_loss=*/false);
      return;
    }
  }

  // Pause at the iteration boundary, after PUSH, exactly where migration
  // happens in the paper (local subtask state is empty here).
  {
    common::MutexLock lock(mu_);
    if (jr.pause_requested) {
      lock.unlock();
      {
        obs::WallSpan span(obs::EventKind::kCheckpoint, jr.id);
        checkpoints_->save(jr.id, jr.ps->full_model());
      }
      obs::MetricsRegistry::instance().counter("runtime.checkpoints").add();
      lock.lock();
      jr.pause_requested = false;
      jr.paused = true;
      --active_jobs_;
      all_done_cv_.notify_all();
      return;
    }
  }
  start_iteration(jr);
}

bool LocalRuntime::try_restart(JobRun& jr) {
  if (jr.result.restarts >= jr.config.max_restarts) return false;
  ++jr.result.restarts;
  jr.restarts_live.store(jr.result.restarts, std::memory_order_relaxed);
  obs::MetricsRegistry::instance().counter("runtime.restarts").add();
  if (jr.has_checkpoint) {
    const auto model = checkpoints_->load(jr.id);
    for (std::size_t s = 0; s < jr.ps->num_shards(); ++s) {
      const ps::Range r = jr.ps->shard(s).range();
      jr.ps->shard(s).load(std::span<const double>(model).subspan(r.begin, r.size()));
    }
    // Rewind progress to the checkpointed epoch; lost iterations re-run.
    jr.result.iterations = jr.last_checkpoint_epoch * jr.config.batches_per_epoch;
    jr.result.epochs = jr.last_checkpoint_epoch;
  } else {
    // No checkpoint yet: restart from scratch.
    jr.ps->init_model();
    jr.result.iterations = 0;
    jr.result.epochs = 0;
    jr.result.epoch_losses.clear();
  }
  jr.epochs_live.store(jr.result.epochs, std::memory_order_relaxed);
  return true;
}

void LocalRuntime::finish_job(JobRun& jr, bool by_loss) {
  jr.result.converged_by_loss = by_loss;
  jr.result.wall_seconds = seconds_since(jr.job_start);
  const auto iters = static_cast<double>(jr.result.iterations);
  jr.result.avg_comp_seconds = iters > 0 ? jr.comp_accum / iters : 0.0;
  jr.result.avg_comm_seconds = iters > 0 ? jr.comm_accum / iters : 0.0;
  common::MutexLock lock(mu_);
  jr.finished = true;
  --active_jobs_;
  all_done_cv_.notify_all();
}

void LocalRuntime::pause(JobId job) {
  JobRun& jr = *jobs_.at(job);
  common::MutexLock lock(mu_);
  if (jr.finished || jr.paused) return;
  jr.pause_requested = true;
  while (!jr.paused && !jr.finished) all_done_cv_.wait(mu_);
}

void LocalRuntime::resume(JobId job) {
  JobRun& jr = *jobs_.at(job);
  {
    common::MutexLock lock(mu_);
    if (!jr.paused) throw std::logic_error("LocalRuntime: resuming a job that is not paused");
    jr.paused = false;
    ++active_jobs_;
  }
  // Restore the checkpointed model into the server shards, then re-enter the
  // iteration loop (input data is immutable and still in place).
  const auto model = checkpoints_->load(job);
  for (std::size_t s = 0; s < jr.ps->num_shards(); ++s) {
    const ps::Range r = jr.ps->shard(s).range();
    jr.ps->shard(s).load(std::span<const double>(model).subspan(r.begin, r.size()));
  }
  start_iteration(jr);
}

LocalRuntime::JobProgress LocalRuntime::progress(JobId job) const {
  const JobRun& jr = *jobs_.at(job);
  JobProgress p;
  p.epochs = jr.epochs_live.load(std::memory_order_relaxed);
  p.restarts = jr.restarts_live.load(std::memory_order_relaxed);
  p.failed = jr.failed_live.load(std::memory_order_relaxed);
  return p;
}

const RuntimeJobResult& LocalRuntime::result(JobId job) const {
  const JobRun& jr = *jobs_.at(job);
  return jr.result;
}

std::vector<double> LocalRuntime::final_model(JobId job) const {
  return jobs_.at(job)->ps->full_model();
}

}  // namespace harmony::core
