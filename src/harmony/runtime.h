// LocalRuntime: the in-process, multi-threaded Harmony runtime.
//
// It instantiates the paper's execution stack at laptop scale: a set of
// "machines" (each a SubtaskExecutor plus a bandwidth-throttled NIC), a PS
// system per job, the master-side SubtaskSynchronizer, and the online
// Profiler. Every job iterates
//
//     COMM(pull transfer) -> barrier -> COMP(deserialize+compute+serialize)
//     -> barrier -> COMM(push transfer) -> barrier -> next iteration
//
// with each phase's work enqueued in the right executor lane on every
// machine. In Harmony mode one COMP subtask runs per machine at a time, so
// co-located jobs interleave instead of contending; in Naive mode the lanes
// are widened and jobs stomp on each other — the Gandiva-style baseline.
//
// The runtime supports pause/resume with real model checkpointing at
// iteration boundaries, mirroring the migration mechanics of §IV-B4.
#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "common/sync.h"
#include "harmony/checkpoint.h"
#include "harmony/executor.h"
#include "harmony/job.h"
#include "harmony/profiler.h"
#include "harmony/synchronizer.h"
#include "ml/app.h"
#include "ps/ps_system.h"

namespace harmony::core {

enum class ExecutionMode { kHarmony, kNaive };

struct RuntimeJobConfig {
  std::shared_ptr<ml::MlApp> app;
  // Stop after this many epochs, or earlier if loss <= target_loss.
  std::size_t max_epochs = 1;
  double target_loss = -std::numeric_limits<double>::infinity();
  std::size_t batches_per_epoch = 1;
  // Fault tolerance (§VI): when > 0, the runtime checkpoints the model every
  // epoch and a failed job restarts from its last checkpoint up to this many
  // times before being declared failed.
  std::size_t max_restarts = 0;
};

struct RuntimeJobResult {
  JobId id = kNoJob;
  std::size_t iterations = 0;
  std::size_t epochs = 0;
  double final_loss = 0.0;
  std::vector<double> epoch_losses;
  double wall_seconds = 0.0;
  // Average per-iteration phase durations (whole-group wall time).
  double avg_comp_seconds = 0.0;
  double avg_comm_seconds = 0.0;
  bool converged_by_loss = false;
  // Fault-tolerance outcome.
  std::size_t restarts = 0;
  bool failed = false;
  std::string failure_message;
};

class LocalRuntime {
 public:
  struct Params {
    std::size_t machines = 2;
    double nic_bytes_per_sec = 0.0;  // <= 0: unthrottled
    ExecutionMode mode = ExecutionMode::kHarmony;
    // Naive mode lane widths (ignored in Harmony mode).
    std::size_t naive_cpu_slots = 4;
    std::size_t naive_net_slots = 4;
    // Directory for pause/migrate checkpoints; empty = "harmony-ckpt" under
    // the process's temp directory.
    std::string checkpoint_dir;
  };

  explicit LocalRuntime(Params params);
  ~LocalRuntime();

  LocalRuntime(const LocalRuntime&) = delete;
  LocalRuntime& operator=(const LocalRuntime&) = delete;

  // Registers a job; all jobs must be submitted before run() starts.
  JobId submit(RuntimeJobConfig config);

  // Starts every submitted job and blocks until all finish (or are paused and
  // later resumed to completion by another thread).
  void run();

  // Requests a pause at the next iteration boundary; blocks until the model
  // checkpoint is on disk. Must not be called from an executor thread.
  void pause(JobId job);

  // Restores the checkpoint and re-enters the iteration loop. If run() has
  // already returned (every other job finished while this one was paused),
  // follow up with wait_idle() to block until the resumed job completes.
  void resume(JobId job);

  // Blocks until no job is actively iterating (all finished or paused).
  void wait_idle();

  // Fault injection: the job's next COMP subtask throws. With
  // max_restarts > 0 the job restarts from its last epoch checkpoint;
  // otherwise it finishes with result().failed set. Other co-located jobs
  // are unaffected either way (§VI).
  void inject_failure(JobId job);

  // Thread-safe snapshot of a running job's progress. Unlike result(), this
  // is safe to poll from another thread while the job is actively iterating
  // (e.g. to wait for an epoch or a restart before injecting a failure).
  struct JobProgress {
    std::size_t epochs = 0;
    std::size_t restarts = 0;
    bool failed = false;
  };
  JobProgress progress(JobId job) const;

  // Stable only while the job is quiescent: after run()/wait_idle() returns
  // or while the job is paused. Poll progress() instead mid-run.
  const RuntimeJobResult& result(JobId job) const;
  const Profiler& profiler() const noexcept { return profiler_; }
  std::size_t machines() const noexcept { return executors_.size(); }

  // Gathers the job's current model from its server shards. Call between
  // iterations (after run() returns, or while the job is paused).
  std::vector<double> final_model(JobId job) const;

 private:
  struct JobRun;

  void start_iteration(JobRun& jr);
  void phase_pull(JobRun& jr);
  void phase_comp(JobRun& jr);
  void phase_push(JobRun& jr);
  void on_iteration_end(JobRun& jr);
  void finish_job(JobRun& jr, bool by_loss);
  // Restores the last epoch checkpoint after a caught failure; returns false
  // when the restart budget is exhausted (job then finishes as failed).
  bool try_restart(JobRun& jr);

  // Enqueues `body` for every machine in the lane for `type`, reporting each
  // completion to the synchronizer; `next` fires once after the barrier.
  void submit_phase(JobRun& jr, SubtaskType type,
                    std::function<void(std::size_t machine)> body,
                    std::function<void()> next);

  Params params_;
  std::vector<std::unique_ptr<SubtaskExecutor>> executors_;
  SubtaskSynchronizer synchronizer_;
  Profiler profiler_;
  std::unique_ptr<CheckpointStore> checkpoints_;

  std::vector<std::unique_ptr<JobRun>> jobs_;

  // mu_ guards the run lifecycle (active-job accounting, start latch) plus
  // the shared Profiler and each JobRun's pause-protocol fields; JobRun is
  // .cpp-private, so its guarded fields carry the contract in comments
  // rather than GUARDED_BY (the annotation cannot name this mutex there).
  common::Mutex mu_;
  common::CondVar all_done_cv_;
  std::size_t active_jobs_ GUARDED_BY(mu_) = 0;
  bool started_ GUARDED_BY(mu_) = false;
};

}  // namespace harmony::core
