#include "harmony/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"

namespace harmony::core {
namespace {

// Reusable buffers for the hot evaluate path. schedule() runs once per
// scheduling decision but evaluates O(prefix-growth) candidates, each needing
// the same handful of small arrays; reusing capacity across candidates (and
// across calls) keeps the steady-state evaluate loop allocation-free.
// Thread-local because Scheduler is const/shareable; none of these routines
// recurse, so a single workspace per thread suffices.
struct Scratch {
  // pick_num_groups analytic sweep.
  std::vector<std::uint32_t> png_order;
  std::vector<double> png_threshold;
  std::vector<double> png_prefix_cpu;
  std::vector<double> png_prefix_net;
  std::vector<double> png_approx;
  // Flat group assignment: members holds job indices grouped into segments
  // [offsets[g], offsets[g+1]). Segment sizes are fixed at fill time; the
  // fine-tuning swaps exchange members one-for-one.
  std::vector<double> t_cpu;
  std::vector<double> t_itr;
  std::vector<double> d;
  std::vector<std::uint32_t> sorted;
  std::vector<std::uint32_t> members;
  std::vector<std::size_t> offsets;
  std::vector<double> imb;
  // Machine allocation.
  std::vector<std::size_t> alloc;
  std::vector<std::size_t> targets;
  std::vector<double> next_abs;
  std::vector<double> gain;
  // Model input, rebuilt per candidate; inner vectors keep their capacity.
  std::vector<GroupShape> shapes;
};

Scratch& scratch() {
  thread_local Scratch s;
  return s;
}

// Per-group resource imbalance (positive = CPU-heavy, negative = net-heavy)
// of the member segment [begin, end) of s.members, with T_cpu at `machines`.
// Accumulates cpu and net separately, in member order — the golden tests pin
// these exact floating-point values, so every variant below must accumulate
// the same terms in the same order.
double segment_imbalance(std::span<const SchedJob> jobs, const Scratch& s, std::size_t begin,
                         std::size_t end, std::size_t machines) {
  double cpu = 0.0;
  double net = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const JobProfile& p = jobs[s.members[i]].profile;
    cpu += p.t_cpu(machines);
    net += p.t_net;
  }
  return cpu - net;
}

// Variant over precomputed T_cpu values (fixed DoP), for the assignment step.
double segment_imbalance_at_dop(std::span<const SchedJob> jobs, const Scratch& s,
                                std::size_t begin, std::size_t end) {
  double cpu = 0.0;
  double net = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    cpu += s.t_cpu[s.members[i]];
    net += jobs[s.members[i]].profile.t_net;
  }
  return cpu - net;
}

// Step 1 (Eq. 2 search): the n_G* minimizing Σ_j |T_cpu_j(M/n_G) − T_net_j|.
// Ties resolve to the smallest n_G (ascending scan, strict '<').
std::size_t pick_core(const Scheduler::Params& params, std::span<const SchedJob> jobs,
                      std::size_t machines, Scratch& s) {
  if (jobs.empty() || machines == 0) return 1;
  const std::size_t n = jobs.size();
  const std::size_t max_groups = std::min(n, machines);
  const std::size_t min_groups =
      std::min(max_groups, (n + params.max_jobs_per_group - 1) / params.max_jobs_per_group);
  const std::size_t range = max_groups - min_groups + 1;

  // Exact cost of one candidate, exactly as Algorithm 1 states it.
  const auto exact_cost = [&](std::size_t ng) {
    const double dop = static_cast<double>(machines) / static_cast<double>(ng);
    double cost = 0.0;
    for (const SchedJob& j : jobs) cost += std::abs(j.profile.cpu_work / dop - j.profile.t_net);
    return cost;
  };

  // Small search spaces (the common case inside schedule(), whose candidate
  // prefixes hold a handful of jobs) are cheapest evaluated directly.
  if (n * range <= 4096) {
    std::size_t best_ng = min_groups;
    double best_cost = std::numeric_limits<double>::infinity();
    for (std::size_t ng = min_groups; ng <= max_groups; ++ng) {
      const double cost = exact_cost(ng);
      if (cost < best_cost) {
        best_cost = cost;
        best_ng = ng;
      }
    }
    return best_ng;
  }

  // Large search spaces: cost(ng) = Σ_j |cpu_j·ng/M − net_j| is piecewise
  // linear in ng; job j flips from the net-dominant to the cpu-dominant side
  // at ng_j = net_j·M/cpu_j. Sorting jobs by that threshold and keeping
  // prefix sums of cpu/net makes an analytic cost O(1) per candidate. The
  // analytic value differs from the exact one only by summation rounding, so
  // the exact O(n) evaluation is paid only for candidates within a tolerance
  // of the analytic minimum — the exact argmin is always among them.
  const double m_dbl = static_cast<double>(machines);
  auto& order = s.png_order;
  auto& threshold = s.png_threshold;
  order.resize(n);
  threshold.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) order[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const JobProfile& p = jobs[i].profile;
    threshold[i] = p.cpu_work > 0.0 ? p.t_net * m_dbl / p.cpu_work
                                    : std::numeric_limits<double>::infinity();
  }
  std::sort(order.begin(), order.end(),
            [&](std::uint32_t a, std::uint32_t b) { return threshold[a] < threshold[b]; });
  auto& prefix_cpu = s.png_prefix_cpu;
  auto& prefix_net = s.png_prefix_net;
  prefix_cpu.assign(n + 1, 0.0);
  prefix_net.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    prefix_cpu[i + 1] = prefix_cpu[i] + jobs[order[i]].profile.cpu_work;
    prefix_net[i + 1] = prefix_net[i] + jobs[order[i]].profile.t_net;
  }
  const double total_cpu = prefix_cpu[n];
  const double total_net = prefix_net[n];

  double best_approx = std::numeric_limits<double>::infinity();
  std::size_t side = 0;  // jobs with threshold < ng (cpu-dominant side)
  auto& approx = s.png_approx;
  approx.resize(range);
  for (std::size_t ng = min_groups; ng <= max_groups; ++ng) {
    const double ng_dbl = static_cast<double>(ng);
    while (side < n && threshold[order[side]] < ng_dbl) ++side;
    const double cpu_side_cpu = prefix_cpu[side];
    const double cpu_side_net = prefix_net[side];
    const double cost = (ng_dbl / m_dbl) * (cpu_side_cpu - (total_cpu - cpu_side_cpu)) +
                        ((total_net - cpu_side_net) - cpu_side_net);
    approx[ng - min_groups] = cost;
    best_approx = std::min(best_approx, cost);
  }

  // The tolerance sits far above summation rounding error (~n·ε·scale) but
  // far below meaningful cost differences.
  const double scale = std::max({std::abs(best_approx), total_cpu, total_net, 1e-300});
  const double tol = 1e-9 * scale;
  std::size_t refined = 0;
  for (std::size_t i = 0; i < range; ++i)
    if (approx[i] <= best_approx + tol) ++refined;

  std::size_t best_ng = min_groups;
  double best_cost = std::numeric_limits<double>::infinity();
  if (refined > 64) {
    // Degenerate plateau (e.g. thousands of identical jobs): fall back to the
    // exhaustive exact scan rather than exact-evaluating a huge refined set.
    for (std::size_t ng = min_groups; ng <= max_groups; ++ng) {
      const double cost = exact_cost(ng);
      if (cost < best_cost) {
        best_cost = cost;
        best_ng = ng;
      }
    }
  } else {
    // Ascending candidate order + strict '<' ties resolve to the smallest
    // ng, exactly like the exhaustive scan.
    for (std::size_t ng = min_groups; ng <= max_groups; ++ng) {
      if (approx[ng - min_groups] > best_approx + tol) continue;
      const double cost = exact_cost(ng);
      if (cost < best_cost) {
        best_cost = cost;
        best_ng = ng;
      }
    }
  }
  return best_ng;
}

// Step 2: fill s.members/s.offsets with `num_groups` segments and fine-tune
// by swapping between the most imbalanced and most complementary groups.
void assign_core(const Scheduler::Params& params, std::span<const SchedJob> jobs,
                 std::size_t num_groups, std::size_t dop_hint, Scratch& s) {
  if (num_groups == 0) throw std::invalid_argument("assign_jobs: zero groups");
  const std::size_t dop = std::max<std::size_t>(1, dop_hint);
  const std::size_t n = jobs.size();

  // Per-job terms every step below re-derives: T_cpu at the shared DoP, the
  // iteration time, and the job's own imbalance d_j.
  s.t_cpu.resize(n);
  s.t_itr.resize(n);
  s.d.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    s.t_cpu[i] = jobs[i].profile.t_cpu(dop);
    s.t_itr[i] = jobs[i].profile.t_itr(dop);
    s.d[i] = s.t_cpu[i] - jobs[i].profile.t_net;
  }

  // Sort indices by iteration time (at the shared DoP), descending, so jobs
  // of similar size are adjacent — spreading large jobs around would make
  // every group job-bound (§IV-B3). Ties resolve to input order, which keeps
  // the result deterministic and independent of the sort implementation.
  s.sorted.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) s.sorted[i] = i;
  std::sort(s.sorted.begin(), s.sorted.end(), [&s](std::uint32_t a, std::uint32_t b) {
    if (s.t_itr[a] != s.t_itr[b]) return s.t_itr[a] > s.t_itr[b];
    return a < b;
  });

  // Fill groups with contiguous runs of the sorted list: similar iteration
  // times stay together.
  s.members.assign(s.sorted.begin(), s.sorted.end());
  s.offsets.resize(num_groups + 1);
  const std::size_t base = n / num_groups;
  const std::size_t extra = n % num_groups;
  s.offsets[0] = 0;
  for (std::size_t g = 0; g < num_groups; ++g)
    s.offsets[g + 1] = s.offsets[g] + base + (g < extra ? 1 : 0);

  // Fine-tuning: repeatedly pick the most imbalanced group, find the group
  // with the most complementary resource use, and swap the job pair that
  // minimizes the two groups' combined imbalance. Group imbalances are cached
  // between rounds — only the two groups touched by a swap are recomputed —
  // so a round costs O(g + |worst|·|partner|) instead of O(g·n).
  s.imb.resize(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g)
    s.imb[g] = segment_imbalance_at_dop(jobs, s, s.offsets[g], s.offsets[g + 1]);

  for (std::size_t round = 0; round < params.max_swap_rounds; ++round) {
    // Most imbalanced group.
    std::size_t worst = 0;
    double worst_abs = -1.0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      const double a = std::abs(s.imb[g]);
      if (a > worst_abs) {
        worst_abs = a;
        worst = g;
      }
    }
    const double worst_imb = s.imb[worst];

    // Most complementary partner: imbalance of opposite sign, largest product.
    std::size_t partner = num_groups;
    double best_comp = 0.0;
    for (std::size_t g = 0; g < num_groups; ++g) {
      if (g == worst) continue;
      const double comp = -worst_imb * s.imb[g];
      if (comp > best_comp) {
        best_comp = comp;
        partner = g;
      }
    }
    if (partner == num_groups) break;  // nothing complementary: done

    // Best swap between the two groups, evaluated via per-job deltas.
    const double partner_imb = s.imb[partner];
    const std::size_t wb = s.offsets[worst], we = s.offsets[worst + 1];
    const std::size_t pb = s.offsets[partner], pe = s.offsets[partner + 1];
    const double current = std::abs(worst_imb) + std::abs(partner_imb);
    double best_after = current;
    std::size_t best_a = we, best_b = pe;
    for (std::size_t a = wb; a < we; ++a) {
      const double da = s.d[s.members[a]];
      for (std::size_t b = pb; b < pe; ++b) {
        const double db = s.d[s.members[b]];
        const double after = std::abs(worst_imb - da + db) + std::abs(partner_imb - db + da);
        if (after + 1e-12 < best_after) {
          best_after = after;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == we) break;  // no improving swap: converged
    std::swap(s.members[best_a], s.members[best_b]);
    // Refresh the two touched groups from scratch (not by delta): the cached
    // values stay bit-identical to a full recomputation.
    s.imb[worst] = segment_imbalance_at_dop(jobs, s, wb, we);
    s.imb[partner] = segment_imbalance_at_dop(jobs, s, pb, pe);
  }
}

// Step 3 over the first `g_count` segments: fills s.alloc (>= 1 each).
// Greedily hands the next machine to the group that "needs additional
// machines the most": the most CPU-bound one, where an extra machine shrinks
// Σ T_cpu (Eq. 2) and thus the group iteration time. Allocation stops at the
// computation/communication balance point — a machine that would tip a group
// further network-bound is worth more left idle for a future group than
// burned on inflating DoP.
//
// A group's gain only changes when it is granted a machine, so gains are
// cached and each grant costs O(log g + |group|) via a max-heap instead of a
// rescan of every group's members. Heap order (gain desc, then smaller group
// index) picks the same winner as a forward scan with strict '>'.
void allocate_core(std::span<const SchedJob> jobs, std::size_t g_count, std::size_t machines,
                   Scratch& s) {
  s.alloc.assign(g_count, 1);
  if (g_count == 0) return;
  std::size_t remaining = machines - g_count;
  if (remaining == 0) return;

  const auto imb_at = [&](std::size_t g, std::size_t a) {
    return segment_imbalance(jobs, s, s.offsets[g], s.offsets[g + 1], a);
  };

  // Fast path: when the greedy never exhausts the machines — the common case
  // on a large cluster — its interleaving is irrelevant: every group simply
  // grows until its own first non-positive gain, independently of the others.
  // That stopping point is the balance crossing, found by binary search:
  // imbalance is non-increasing in the allocation even under FP rounding
  // (each T_cpu term shrinks exactly, and fl-addition is monotone). Gains
  // before the crossing are positive (they only vanish at ULP scale, far
  // beyond realistic profile magnitudes); the two gains at the crossing are
  // evaluated exactly. Each group costs O(|group|·log M) instead of
  // O(|group|·grants).
  const auto solo_target = [&](std::size_t g) -> std::size_t {
    // Smallest a in [1, machines] where one more machine tips the group
    // network-bound (imb(a+1) <= 0); machines+1 if no crossing in range.
    if (!(imb_at(g, machines + 1) <= 0.0)) return machines + 1;
    std::size_t lo = 1, hi = machines;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (imb_at(g, mid + 1) <= 0.0)
        hi = mid;
      else
        lo = mid + 1;
    }
    const double gain = std::abs(imb_at(g, lo)) - std::abs(imb_at(g, lo + 1));
    return gain > 0.0 ? lo + 1 : lo;
  };
  s.targets.resize(g_count);
  std::size_t total_grants = 0;
  for (std::size_t g = 0; g < g_count; ++g) {
    s.targets[g] = solo_target(g);
    total_grants += s.targets[g] - 1;
  }
  if (total_grants <= remaining) {
    for (std::size_t g = 0; g < g_count; ++g) s.alloc[g] = s.targets[g];
    return;
  }

  // Machine-constrained: replay the grant-by-grant greedy so contention ties
  // resolve exactly as before.
  s.next_abs.resize(g_count);
  s.gain.resize(g_count);
  struct Entry {
    double gain = 0.0;
    std::size_t group = 0;
    bool operator<(const Entry& o) const noexcept {
      if (gain != o.gain) return gain < o.gain;
      return group > o.group;
    }
  };
  // Heap over a reused array (std::priority_queue would allocate per call).
  thread_local std::vector<Entry> heap;
  heap.clear();
  for (std::size_t g = 0; g < g_count; ++g) {
    const double now_abs =
        std::abs(segment_imbalance(jobs, s, s.offsets[g], s.offsets[g + 1], s.alloc[g]));
    s.next_abs[g] =
        std::abs(segment_imbalance(jobs, s, s.offsets[g], s.offsets[g + 1], s.alloc[g] + 1));
    s.gain[g] = now_abs - s.next_abs[g];
    heap.push_back(Entry{s.gain[g], g});
  }
  std::make_heap(heap.begin(), heap.end());

  while (remaining > 0 && !heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const Entry top = heap.back();
    heap.pop_back();
    if (top.gain != s.gain[top.group]) continue;  // stale: a fresher entry exists
    if (!(top.gain > 0.0)) break;                 // every group at (or past) balance
    const std::size_t g = top.group;
    ++s.alloc[g];
    --remaining;
    const double now_abs = s.next_abs[g];  // |imbalance| at the new allocation
    s.next_abs[g] =
        std::abs(segment_imbalance(jobs, s, s.offsets[g], s.offsets[g + 1], s.alloc[g] + 1));
    s.gain[g] = now_abs - s.next_abs[g];
    heap.push_back(Entry{s.gain[g], g});
    std::push_heap(heap.begin(), heap.end());
  }
}

struct CoreResult {
  double score = 0.0;
  Utilization util;
  std::size_t g_count = 0;  // non-empty groups; segments/alloc live in Scratch
};

// One Algorithm-1 evaluation of a candidate job set. Leaves the chosen
// grouping in the Scratch (members/offsets/alloc) so the caller can
// materialize a ScheduleDecision only for candidates that actually win.
CoreResult evaluate_core(const Scheduler::Params& params, const PerfModel& model,
                         std::span<const SchedJob> jobs, std::size_t machines, Scratch& s) {
  const std::size_t ng = pick_core(params, jobs, machines, s);
  const std::size_t dop_hint = std::max<std::size_t>(1, machines / ng);
  assign_core(params, jobs, ng, dop_hint, s);
  // Drop empty groups (possible when jobs < groups after the n_G search).
  // Segment sizes are non-increasing, so the empty ones are exactly the
  // trailing segments: pruning keeps the first min(ng, n). The fine-tuning
  // above never moves a job into an empty group (an empty group is never the
  // most imbalanced when any non-empty one is, and its complementarity is 0).
  const std::size_t g_count = std::min(ng, jobs.size());
  allocate_core(jobs, g_count, machines, s);

  // Materialize GroupShapes for the model; reused inner vectors keep their
  // capacity across candidates.
  if (s.shapes.size() > g_count) s.shapes.resize(g_count);
  while (s.shapes.size() < g_count) s.shapes.emplace_back();
  for (std::size_t g = 0; g < g_count; ++g) {
    GroupShape& shape = s.shapes[g];
    shape.machines = s.alloc[g];
    shape.jobs.clear();
    for (std::size_t i = s.offsets[g]; i < s.offsets[g + 1]; ++i)
      shape.jobs.push_back(jobs[s.members[i]].profile);
  }

  CoreResult r;
  r.g_count = g_count;
  r.util = PerfModel::cluster_utilization(s.shapes);
  r.score = model.score(s.shapes);
  // Packing more jobs than machines into a group makes utilization look
  // great while starving every job's progress; reject such shapes outright.
  for (std::size_t g = 0; g < g_count; ++g)
    if (s.offsets[g + 1] - s.offsets[g] > s.alloc[g]) r.score -= 1.0;
  return r;
}

ScheduleDecision materialize(std::span<const SchedJob> jobs, const CoreResult& r,
                             const Scratch& s) {
  ScheduleDecision decision;
  decision.predicted_util = r.util;
  decision.score = r.score;
  decision.jobs_scheduled = jobs.size();
  decision.groups.reserve(r.g_count);
  for (std::size_t g = 0; g < r.g_count; ++g) {
    GroupPlan plan;
    plan.machines = s.alloc[g];
    plan.jobs.reserve(s.offsets[g + 1] - s.offsets[g]);
    for (std::size_t i = s.offsets[g]; i < s.offsets[g + 1]; ++i)
      plan.jobs.push_back(jobs[s.members[i]].id);
    decision.groups.push_back(std::move(plan));
  }
  return decision;
}

}  // namespace

Scheduler::Scheduler(Params params) : params_(params), model_(params.model) {}

std::size_t Scheduler::pick_num_groups(std::span<const SchedJob> jobs,
                                       std::size_t machines) const {
  return pick_core(params_, jobs, machines, scratch());
}

std::vector<std::vector<SchedJob>> Scheduler::assign_jobs(std::span<const SchedJob> jobs,
                                                          std::size_t num_groups,
                                                          std::size_t dop_hint) const {
  Scratch& s = scratch();
  assign_core(params_, jobs, num_groups, dop_hint, s);
  std::vector<std::vector<SchedJob>> out(num_groups);
  for (std::size_t g = 0; g < num_groups; ++g) {
    out[g].reserve(s.offsets[g + 1] - s.offsets[g]);
    for (std::size_t i = s.offsets[g]; i < s.offsets[g + 1]; ++i)
      out[g].push_back(jobs[s.members[i]]);
  }
  return out;
}

std::vector<std::size_t> Scheduler::allocate_machines(
    const std::vector<std::vector<SchedJob>>& groups, std::size_t machines) const {
  if (groups.empty()) return {};
  if (machines < groups.size())
    throw std::invalid_argument("allocate_machines: fewer machines than groups");
  // Flatten into the segment layout allocate_core works on.
  Scratch& s = scratch();
  std::vector<SchedJob> flat;
  s.offsets.assign(1, 0);
  for (const auto& group : groups) {
    flat.insert(flat.end(), group.begin(), group.end());
    s.offsets.push_back(flat.size());
  }
  s.members.resize(flat.size());
  for (std::uint32_t i = 0; i < flat.size(); ++i) s.members[i] = i;
  allocate_core(flat, groups.size(), machines, s);
  return {s.alloc.begin(), s.alloc.end()};
}

ScheduleDecision Scheduler::schedule(std::span<const SchedJob> jobs,
                                     std::size_t machines) const {
  if (machines == 0) throw std::invalid_argument("schedule: zero machines");
  if (jobs.empty()) return {};

  // Profiles are validated lazily as the candidate prefix grows: the call's
  // cost tracks the jobs actually examined, not the total queue length (a
  // datacenter-scale queue would otherwise pay an O(n) scan per decision).
  std::size_t validated = 0;
  const auto validate_prefix = [&](std::size_t upto) {
    for (; validated < upto; ++validated)
      if (!jobs[validated].profile.valid())
        throw std::invalid_argument("schedule: invalid profile");
  };

  // Algorithm 1: grow the candidate prefix while the modelled utilization
  // improves; stop once it stops improving (with a little patience so one
  // awkward job in the queue does not end the search). Only improving
  // candidates are materialized into a ScheduleDecision.
  Scratch& s = scratch();
  validate_prefix(1);
  ScheduleDecision best = materialize(
      jobs.first(1), evaluate_core(params_, model_, jobs.first(1), machines, s), s);
  std::size_t since_improvement = 0;
  for (std::size_t nj = 2; nj <= jobs.size(); ++nj) {
    validate_prefix(nj);
    const CoreResult candidate = evaluate_core(params_, model_, jobs.first(nj), machines, s);
    if (candidate.score > best.score) {
      best = materialize(jobs.first(nj), candidate, s);
      since_improvement = 0;
    } else if (++since_improvement >= params_.growth_patience) {
      break;
    }
  }
  // Observation only: counters never feed back into the decision above.
  static obs::Counter& invocations =
      obs::MetricsRegistry::instance().counter("scheduler.invocations");
  static obs::Counter& groups_planned =
      obs::MetricsRegistry::instance().counter("scheduler.groups_planned");
  invocations.add();
  groups_planned.add(best.groups.size());
  return best;
}

ScheduleDecision Scheduler::repack(std::span<const SchedJob> jobs,
                                   std::size_t machines) const {
  if (machines == 0) throw std::invalid_argument("repack: zero machines");
  if (jobs.empty()) return {};
  for (const SchedJob& j : jobs)
    if (!j.profile.valid()) throw std::invalid_argument("repack: invalid profile");

  // Steps 1-3 over the whole set, no prefix growth: pick_core's min_groups
  // floor (ceil(jobs / max_jobs_per_group)) keeps every group within the
  // member cap, so the result places every job.
  Scratch& s = scratch();
  const CoreResult r = evaluate_core(params_, model_, jobs, machines, s);
  return materialize(jobs, r, s);
}

}  // namespace harmony::core
