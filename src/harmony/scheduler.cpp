#include "harmony/scheduler.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace harmony::core {
namespace {

// Per-group resource imbalance: positive = CPU-heavy, negative = network-heavy.
double imbalance(const std::vector<SchedJob>& group, std::size_t machines) {
  double cpu = 0.0;
  double net = 0.0;
  for (const SchedJob& j : group) {
    cpu += j.profile.t_cpu(machines);
    net += j.profile.t_net;
  }
  return cpu - net;
}

}  // namespace

Scheduler::Scheduler(Params params) : params_(params), model_(params.model) {}

std::size_t Scheduler::pick_num_groups(std::span<const SchedJob> jobs,
                                       std::size_t machines) const {
  if (jobs.empty() || machines == 0) return 1;
  const std::size_t max_groups = std::min(jobs.size(), machines);
  const std::size_t min_groups = std::min(
      max_groups,
      (jobs.size() + params_.max_jobs_per_group - 1) / params_.max_jobs_per_group);
  std::size_t best_ng = min_groups;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t ng = min_groups; ng <= max_groups; ++ng) {
    // All groups share DoP = machines / ng (Algorithm 1 assumes equal DoP
    // while searching; allocate_machines refines it afterwards).
    const double dop = static_cast<double>(machines) / static_cast<double>(ng);
    double cost = 0.0;
    for (const SchedJob& j : jobs)
      cost += std::abs(j.profile.cpu_work / dop - j.profile.t_net);
    if (cost < best_cost) {
      best_cost = cost;
      best_ng = ng;
    }
  }
  return best_ng;
}

std::vector<std::vector<SchedJob>> Scheduler::assign_jobs(std::span<const SchedJob> jobs,
                                                          std::size_t num_groups,
                                                          std::size_t dop_hint) const {
  if (num_groups == 0) throw std::invalid_argument("assign_jobs: zero groups");
  const std::size_t dop = std::max<std::size_t>(1, dop_hint);

  // Sort by iteration time (at the shared DoP), descending, so jobs of
  // similar size are adjacent — spreading large jobs around would make every
  // group job-bound (§IV-B3).
  std::vector<SchedJob> sorted(jobs.begin(), jobs.end());
  std::sort(sorted.begin(), sorted.end(), [dop](const SchedJob& a, const SchedJob& b) {
    return a.profile.t_itr(dop) > b.profile.t_itr(dop);
  });

  // Fill groups one by one with contiguous runs of the sorted list: similar
  // iteration times stay together.
  std::vector<std::vector<SchedJob>> groups(num_groups);
  const std::size_t base = sorted.size() / num_groups;
  const std::size_t extra = sorted.size() % num_groups;
  std::size_t cursor = 0;
  for (std::size_t g = 0; g < num_groups; ++g) {
    const std::size_t take = base + (g < extra ? 1 : 0);
    for (std::size_t k = 0; k < take; ++k) groups[g].push_back(sorted[cursor++]);
  }

  // Fine-tuning: repeatedly pick the most imbalanced group, find the group
  // with the most complementary resource use, and swap the job pair that
  // minimizes the two groups' combined imbalance.
  for (std::size_t round = 0; round < params_.max_swap_rounds; ++round) {
    // Most imbalanced group.
    std::size_t worst = 0;
    double worst_abs = -1.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const double imb = std::abs(imbalance(groups[g], dop));
      if (imb > worst_abs) {
        worst_abs = imb;
        worst = g;
      }
    }
    const double worst_imb = imbalance(groups[worst], dop);

    // Most complementary partner: imbalance of opposite sign, largest product.
    std::size_t partner = groups.size();
    double best_comp = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      if (g == worst) continue;
      const double comp = -worst_imb * imbalance(groups[g], dop);
      if (comp > best_comp) {
        best_comp = comp;
        partner = g;
      }
    }
    if (partner == groups.size()) break;  // nothing complementary: done

    // Best swap between the two groups.
    double current = std::abs(worst_imb) + std::abs(imbalance(groups[partner], dop));
    double best_after = current;
    std::size_t best_a = groups[worst].size();
    std::size_t best_b = groups[partner].size();
    for (std::size_t a = 0; a < groups[worst].size(); ++a) {
      for (std::size_t b = 0; b < groups[partner].size(); ++b) {
        const double da = groups[worst][a].profile.t_cpu(dop) - groups[worst][a].profile.t_net;
        const double db =
            groups[partner][b].profile.t_cpu(dop) - groups[partner][b].profile.t_net;
        const double after = std::abs(worst_imb - da + db) +
                             std::abs(imbalance(groups[partner], dop) - db + da);
        if (after + 1e-12 < best_after) {
          best_after = after;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == groups[worst].size()) break;  // no improving swap: converged
    std::swap(groups[worst][best_a], groups[partner][best_b]);
  }
  return groups;
}

std::vector<std::size_t> Scheduler::allocate_machines(
    const std::vector<std::vector<SchedJob>>& groups, std::size_t machines) const {
  if (groups.empty()) return {};
  if (machines < groups.size())
    throw std::invalid_argument("allocate_machines: fewer machines than groups");

  std::vector<std::size_t> alloc(groups.size(), 1);
  std::size_t remaining = machines - groups.size();

  // Greedily hand the next machine to the group that "needs additional
  // machines the most": the most CPU-bound one, where an extra machine
  // shrinks Σ T_cpu (Eq. 2) and thus the group iteration time. Allocation
  // stops at the computation/communication balance point — a machine that
  // would tip the group further network-bound is worth more left idle for a
  // future group than burned on inflating DoP.
  while (remaining > 0) {
    std::size_t best = groups.size();
    double best_gain = 0.0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      const double now_abs = std::abs(imbalance(groups[g], alloc[g]));
      const double next_abs = std::abs(imbalance(groups[g], alloc[g] + 1));
      const double gain = now_abs - next_abs;
      if (gain > best_gain) {
        best_gain = gain;
        best = g;
      }
    }
    if (best == groups.size()) break;  // every group is at (or past) balance
    ++alloc[best];
    --remaining;
  }
  return alloc;
}

std::vector<GroupShape> Scheduler::shapes(const std::vector<std::vector<SchedJob>>& groups,
                                          const std::vector<std::size_t>& machines) {
  assert(groups.size() == machines.size());
  std::vector<GroupShape> out;
  out.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    GroupShape shape;
    shape.machines = machines[g];
    shape.jobs.reserve(groups[g].size());
    for (const SchedJob& j : groups[g]) shape.jobs.push_back(j.profile);
    out.push_back(std::move(shape));
  }
  return out;
}

ScheduleDecision Scheduler::evaluate(std::span<const SchedJob> jobs,
                                     std::size_t machines) const {
  const std::size_t ng = pick_num_groups(jobs, machines);
  const std::size_t dop_hint = std::max<std::size_t>(1, machines / ng);
  auto assignment = assign_jobs(jobs, ng, dop_hint);
  // Drop empty groups (possible when jobs < groups after the n_G search).
  std::erase_if(assignment, [](const auto& g) { return g.empty(); });
  auto alloc = allocate_machines(assignment, machines);
  const auto group_shapes = shapes(assignment, alloc);

  ScheduleDecision decision;
  decision.predicted_util = PerfModel::cluster_utilization(group_shapes);
  decision.score = model_.score(group_shapes);
  // Packing more jobs than machines into a group makes utilization look
  // great while starving every job's progress; reject such shapes outright.
  for (std::size_t g = 0; g < assignment.size(); ++g)
    if (assignment[g].size() > alloc[g]) decision.score -= 1.0;
  decision.jobs_scheduled = jobs.size();
  decision.groups.reserve(assignment.size());
  for (std::size_t g = 0; g < assignment.size(); ++g) {
    GroupPlan plan;
    plan.machines = alloc[g];
    for (const SchedJob& j : assignment[g]) plan.jobs.push_back(j.id);
    decision.groups.push_back(std::move(plan));
  }
  return decision;
}

ScheduleDecision Scheduler::schedule(std::span<const SchedJob> jobs,
                                     std::size_t machines) const {
  if (machines == 0) throw std::invalid_argument("schedule: zero machines");
  if (jobs.empty()) return {};
  for (const SchedJob& j : jobs)
    if (!j.profile.valid()) throw std::invalid_argument("schedule: invalid profile");

  // Algorithm 1: grow the candidate prefix while the modelled utilization
  // improves; stop once it stops improving (with a little patience so one
  // awkward job in the queue does not end the search).
  ScheduleDecision best = evaluate(jobs.first(1), machines);
  std::size_t since_improvement = 0;
  for (std::size_t nj = 2; nj <= jobs.size(); ++nj) {
    ScheduleDecision candidate = evaluate(jobs.first(nj), machines);
    if (candidate.score > best.score) {
      best = std::move(candidate);
      since_improvement = 0;
    } else if (++since_improvement >= params_.growth_patience) {
      break;
    }
  }
  return best;
}

}  // namespace harmony::core
