// Harmony's job scheduling algorithm (§IV-B3, Algorithm 1).
//
// Given the ordered pool of schedulable jobs (profiled ∪ paused ∪ running)
// and M machines, the scheduler incrementally grows the set of jobs to
// co-schedule. For each candidate set it:
//   1. picks the number of groups n_G* that best balances each job's COMP
//      time (which scales with group DoP = M / n_G) against its COMM time;
//   2. assigns jobs to groups — sorted by iteration time so similarly-sized
//      jobs land together (avoiding job-bound groups), then fine-tuned by
//      swapping jobs between the most imbalanced and the most complementary
//      groups;
//   3. allocates machines — one per group, then greedily to the most
//      CPU-bound group.
// The loop stops as soon as the modelled cluster utilization stops improving.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "harmony/job.h"
#include "harmony/perf_model.h"

namespace harmony::core {

// One job as the scheduler sees it.
struct SchedJob {
  JobId id = kNoJob;
  JobProfile profile;
};

struct GroupPlan {
  std::vector<JobId> jobs;
  std::size_t machines = 0;
};

struct ScheduleDecision {
  std::vector<GroupPlan> groups;
  Utilization predicted_util;
  double score = 0.0;
  // How many jobs from the front of the input list were placed.
  std::size_t jobs_scheduled = 0;

  bool empty() const noexcept { return groups.empty(); }
};

class Scheduler {
 public:
  struct Params {
    // Fine-tuning swap passes are capped to keep scheduling O(jobs^2) worst
    // case; the paper's loop runs "until there are no possible swap cases".
    std::size_t max_swap_rounds = 64;
    // The nj-growth loop stops after this many consecutive non-improving
    // prefixes (a strict first-dip stop is brittle when the queue orders
    // dissimilar jobs next to each other).
    std::size_t growth_patience = 6;
    // Upper bound on co-located jobs per group (memory pressure and per-job
    // progress both degrade with very wide groups; the paper's groups hold
    // 2-6 jobs typically, Fig. 12).
    std::size_t max_jobs_per_group = 6;
    PerfModel::Params model;
  };

  Scheduler() : Scheduler(Params{}) {}
  explicit Scheduler(Params params);

  // Algorithm 1. `jobs` must be in queue order. Profiles are validated lazily
  // as the candidate prefix grows, so only jobs the search actually examines
  // must be valid — an invalid profile deep in a long queue goes unnoticed if
  // the growth loop stops before reaching it.
  ScheduleDecision schedule(std::span<const SchedJob> jobs, std::size_t machines) const;

  // Re-packs an already-admitted job set: steps 1-3 of Algorithm 1 over *all*
  // of `jobs`, with enough groups to respect max_jobs_per_group — no prefix
  // growth, nothing parked. schedule() optimizes which queue prefix to admit;
  // repack() re-optimizes the layout of jobs that are already running and so
  // cannot be evicted (the online service's full-reschedule escalation, and
  // the reference the incremental-vs-full equivalence validator scores
  // against).
  ScheduleDecision repack(std::span<const SchedJob> jobs, std::size_t machines) const;

  // Step 2 of the algorithm, exposed for tests and for the regrouper: assigns
  // `jobs` into `num_groups` groups (no machine counts yet).
  std::vector<std::vector<SchedJob>> assign_jobs(std::span<const SchedJob> jobs,
                                                 std::size_t num_groups,
                                                 std::size_t dop_hint) const;

  // Step 3: distributes `machines` across the groups (>= 1 each).
  std::vector<std::size_t> allocate_machines(
      const std::vector<std::vector<SchedJob>>& groups, std::size_t machines) const;

  // Step 1: the n_G* that minimizes Σ_j |T_cpu_j(M/n_G) - T_net_j|.
  // Ties resolve to the smallest n_G (candidates are examined in ascending
  // order with a strict '<'): fewer groups means a higher DoP per group, and
  // at equal cost the faster iterations are preferable.
  std::size_t pick_num_groups(std::span<const SchedJob> jobs, std::size_t machines) const;

  const PerfModel& model() const noexcept { return model_; }

 private:
  Params params_;
  PerfModel model_;
};

}  // namespace harmony::core
