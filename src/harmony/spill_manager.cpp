#include "harmony/spill_manager.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace harmony::core {

BlockManager::BlockManager(double total_bytes, double block_bytes) {
  if (total_bytes < 0.0 || block_bytes <= 0.0)
    throw std::invalid_argument("BlockManager: bad sizes");
  double remaining = total_bytes;
  while (remaining > 0.0) {
    const double b = std::min(block_bytes, remaining);
    blocks_.push_back(Block{b, false});
    remaining -= b;
  }
  if (blocks_.empty()) blocks_.push_back(Block{0.0, false});
}

std::size_t BlockManager::disk_blocks() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(blocks_.begin(), blocks_.end(), [](const Block& b) { return b.on_disk; }));
}

double BlockManager::alpha() const noexcept {
  return blocks_.empty()
             ? 0.0
             : static_cast<double>(disk_blocks()) / static_cast<double>(blocks_.size());
}

double BlockManager::memory_bytes() const noexcept {
  double sum = 0.0;
  for (const Block& b : blocks_)
    if (!b.on_disk) sum += b.bytes;
  return sum;
}

double BlockManager::disk_bytes() const noexcept {
  double sum = 0.0;
  for (const Block& b : blocks_)
    if (b.on_disk) sum += b.bytes;
  return sum;
}

void BlockManager::set_alpha(double target_alpha) {
  target_alpha = std::clamp(target_alpha, 0.0, 1.0);
  const auto want = static_cast<std::size_t>(
      std::llround(target_alpha * static_cast<double>(blocks_.size())));
  std::size_t have = disk_blocks();
  double spilled = 0.0;
  double reloaded = 0.0;
  // Spill from the back (coldest), reload from the front of the disk region.
  for (std::size_t i = blocks_.size(); i-- > 0 && have < want;) {
    if (!blocks_[i].on_disk) {
      blocks_[i].on_disk = true;
      spilled += blocks_[i].bytes;
      ++have;
    }
  }
  for (std::size_t i = 0; i < blocks_.size() && have > want; ++i) {
    if (blocks_[i].on_disk) {
      blocks_[i].on_disk = false;
      reloaded += blocks_[i].bytes;
      --have;
    }
  }
  auto& reg = obs::MetricsRegistry::instance();
  if (spilled > 0.0)
    reg.counter("spill.block_bytes_spilled").add(static_cast<std::uint64_t>(spilled));
  if (reloaded > 0.0)
    reg.counter("spill.block_bytes_reloaded").add(static_cast<std::uint64_t>(reloaded));
}

void BlockManager::corrupt_block_for_test(std::size_t index) {
  blocks_.at(index).on_disk = !blocks_.at(index).on_disk;
}

SpillCosts SpillCostModel::costs(double input_bytes, double model_bytes, double alpha,
                                 std::size_t machines,
                                 const cluster::MachineSpec& spec) const {
  if (machines == 0) throw std::invalid_argument("SpillCostModel: zero machines");
  alpha = std::clamp(alpha, 0.0, 1.0);
  const double m = static_cast<double>(machines);
  const double input_per_machine = input_bytes / m;
  const double model_per_machine = model_bytes / m;
  const double disk_side = alpha * input_per_machine;

  SpillCosts out;
  // Resident bytes use the managed-runtime expansion factors (live object
  // graphs); reload and deserialization move the raw serialized bytes.
  out.resident_bytes = (1.0 - alpha) * input_per_machine * params_.input_mem_expansion +
                       model_per_machine * params_.model_mem_expansion +
                       params_.per_job_overhead_bytes;
  out.reload_seconds = disk_side / spec.disk_bytes_per_sec;
  out.deserialize_seconds = disk_side * params_.deserialize_sec_per_byte;
  return out;
}

double SpillCostModel::blocking_seconds(const SpillCosts& costs, double overlap_seconds) {
  return std::max(0.0, costs.reload_seconds - std::max(0.0, overlap_seconds));
}

AlphaController::AlphaController(double initial_alpha, Params params)
    : params_(params),
      alpha_(std::clamp(initial_alpha, params.min_alpha, params.max_alpha)),
      step_(params.step) {}

double AlphaController::initial_alpha(double input_bytes, double model_bytes,
                                      std::size_t machines,
                                      double available_bytes_per_machine,
                                      const cluster::MemoryModelParams& mem_params,
                                      const SpillCostModel& cost_model,
                                      const cluster::MachineSpec& spec) {
  // Smallest α (fewest disk blocks, §IV-C) whose estimated occupancy stays
  // below the GC threshold; scanned at block-ish granularity.
  for (double alpha = 0.0; alpha <= 1.0; alpha += 0.05) {
    const SpillCosts c = cost_model.costs(input_bytes, model_bytes, alpha, machines, spec);
    if (c.resident_bytes <= mem_params.gc_threshold * available_bytes_per_machine)
      return alpha;
  }
  return 1.0;
}

double AlphaController::observe(double objective) {
  ++observations_;
  if (best_objective_ < 0.0) {
    // First observation: establish the baseline and probe in the current
    // direction.
    best_objective_ = objective;
    alpha_ = std::clamp(alpha_ + direction_ * step_, params_.min_alpha, params_.max_alpha);
    return alpha_;
  }

  const double rel_change = (best_objective_ - objective) / std::max(best_objective_, 1e-12);
  if (rel_change > params_.tolerance) {
    // Improved: keep walking the same way.
    best_objective_ = objective;
  } else if (rel_change < -params_.tolerance) {
    // Got worse: back out the last move, flip direction, shrink the step.
    alpha_ = std::clamp(alpha_ - direction_ * step_, params_.min_alpha, params_.max_alpha);
    direction_ = -direction_;
    step_ = std::max(params_.min_step, step_ * 0.5);
  } else {
    // Within noise: treat as flat, gently shrink the step.
    best_objective_ = std::min(best_objective_, objective);
    step_ = std::max(params_.min_step, step_ * 0.75);
  }
  alpha_ = std::clamp(alpha_ + direction_ * step_, params_.min_alpha, params_.max_alpha);
  return alpha_;
}

}  // namespace harmony::core
