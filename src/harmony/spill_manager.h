// Dynamic data reloading (§IV-C).
//
// With many co-located jobs, keeping every job's input partition resident
// blows past machine memory (OOM) or drives the managed runtime into heavy
// GC. Harmony keeps a per-job fraction α_j = B_disk / B_total of input blocks
// on disk, reloading the disk-side blocks in the background while other jobs'
// COMP subtasks occupy the CPU. α_j is tuned by hill climbing: raising α
// costs reload/deserialization time, lowering it costs GC pressure.
//
// Three pieces live here:
//  * BlockManager  — block-granular accounting of where a job's input lives;
//  * SpillCostModel — pure functions turning (α, job, group, machine) into
//    resident bytes, reload blocking time and deserialization overhead —
//    shared by the scheduler's predictions and the simulator's "ground truth";
//  * AlphaController — the per-job hill-climbing loop, seeded from a memory
//    estimate, that adapts α to minimize observed iteration time.
#pragma once

#include <cstddef>
#include <vector>

#include "check/check.h"
#include "cluster/machine.h"
#include "cluster/memory_model.h"

namespace harmony::core {

// ---------------------------------------------------------------------------

class BlockManager {
 public:
  // Splits `total_bytes` of input into blocks of `block_bytes` (last one may
  // be short). All blocks start in memory.
  BlockManager(double total_bytes, double block_bytes);

  std::size_t total_blocks() const noexcept { return blocks_.size(); }
  std::size_t disk_blocks() const noexcept;
  double alpha() const noexcept;

  double memory_bytes() const noexcept;
  double disk_bytes() const noexcept;

  // Moves blocks between tiers until the disk fraction is as close to
  // `target_alpha` as block granularity allows. Spills coldest-first (highest
  // index) and reloads in the opposite order, so the memory-side prefix is
  // stable across adjustments.
  void set_alpha(double target_alpha);

  // Test-only corruption hook: flips one block's tier without touching the
  // ledger-facing accounting, so validate_block_manager can demonstrate
  // detection of a skewed byte count / broken spill order.
  void corrupt_block_for_test(std::size_t index);

 private:
  friend void validate_block_manager(const BlockManager&, check::Validation&);

  struct Block {
    double bytes = 0.0;
    bool on_disk = false;
  };
  std::vector<Block> blocks_;
};

// ---------------------------------------------------------------------------

struct SpillCosts {
  double resident_bytes = 0.0;     // job's per-machine memory footprint
  double reload_seconds = 0.0;     // disk read time per iteration (per machine)
  double deserialize_seconds = 0.0;  // CPU cost of re-materializing blocks
};

class SpillCostModel {
 public:
  struct Params {
    // Fixed per-machine runtime overhead per job (buffers, task state).
    double per_job_overhead_bytes = 96.0 * cluster::kMiB;
    // CPU seconds to deserialize one byte (measured from the PS runtime's
    // serializer: ~1.6 GB/s on one core).
    double deserialize_sec_per_byte = 1.0 / (1.6e9);
    // Managed-runtime expansion: resident object graphs are larger than the
    // raw serialized bytes that move to/from disk.
    double input_mem_expansion = 2.2;
    double model_mem_expansion = 2.0;
  };

  SpillCostModel() : SpillCostModel(Params{}) {}
  explicit SpillCostModel(Params params) : params_(params) {}

  // Costs of running job (input/model bytes cluster-wide) with disk ratio
  // `alpha` on a group of `machines` machines of the given spec.
  SpillCosts costs(double input_bytes, double model_bytes, double alpha,
                   std::size_t machines, const cluster::MachineSpec& spec) const;

  // Time the COMP pipeline stalls waiting for reloads, given the reload must
  // overlap a background window of `overlap_seconds` (the part of the group
  // iteration this job is not computing).
  static double blocking_seconds(const SpillCosts& costs, double overlap_seconds);

  const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

// ---------------------------------------------------------------------------

class AlphaController {
 public:
  struct Params {
    double step = 0.1;          // initial hill-climb step
    double min_step = 0.0125;   // step shrinks to this before settling
    double tolerance = 0.01;    // relative objective change treated as noise
    // Exploration bounds. With many co-tenants each job's GC cost is mostly
    // externalized (occupancy is shared), so the climb is not allowed to walk
    // arbitrarily far below the memory-estimate floor.
    double min_alpha = 0.0;
    double max_alpha = 1.0;
  };

  explicit AlphaController(double initial_alpha) : AlphaController(initial_alpha, Params{}) {}
  AlphaController(double initial_alpha, Params params);

  // Seeds α from the memory estimate (§IV-C: "determine the initial value by
  // estimating the memory use"): the smallest α that keeps estimated
  // occupancy below the GC threshold.
  static double initial_alpha(double input_bytes, double model_bytes, std::size_t machines,
                              double available_bytes_per_machine,
                              const cluster::MemoryModelParams& mem_params,
                              const SpillCostModel& cost_model,
                              const cluster::MachineSpec& spec);

  double alpha() const noexcept { return alpha_; }

  // Feeds one observation of the objective (iteration time including GC and
  // reload stalls) and returns the α to use next. Classic hill climbing:
  // keep direction while improving, otherwise back up, flip and halve step.
  double observe(double objective);

  std::size_t observations() const noexcept { return observations_; }

 private:
  Params params_;
  double alpha_;
  double step_;
  int direction_ = +1;
  double best_objective_ = -1.0;  // <0 = no observation yet
  std::size_t observations_ = 0;
};

}  // namespace harmony::core
