#include "harmony/spill_store.h"

#include <fstream>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "ps/serialization.h"

namespace harmony::core {

DiskSpillStore::DiskSpillStore(std::filesystem::path dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

DiskSpillStore::~DiskSpillStore() {
  // Spill files are pure cache: clean up on teardown. Locked even though the
  // destructor must be externally quiesced — it keeps the analysis airtight.
  std::error_code ec;
  common::MutexLock lock(mu_);
  // detlint: sorted-iteration(teardown only removes files; deletion order is unobservable)
  for (const auto& [key, size] : sizes_) std::filesystem::remove(path_for(key), ec);
}

std::filesystem::path DiskSpillStore::path_for(const Key& key) const {
  return dir_ / ("job-" + std::to_string(key.job) + "-block-" + std::to_string(key.block) +
                 ".spill");
}

void DiskSpillStore::spill(JobId job, std::size_t block, std::span<const double> data) {
  const Key key{job, block};
  ps::ByteWriter writer;
  writer.put_u32(job);
  writer.put_u64(block);
  writer.put_doubles(data);

  const auto path = path_for(key);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("DiskSpillStore: cannot open " + path.string());
    const auto& buf = writer.buffer();
    out.write(reinterpret_cast<const char*>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    if (!out) throw std::runtime_error("DiskSpillStore: write failed: " + path.string());
  }

  const auto payload = static_cast<std::uint64_t>(data.size() * sizeof(double));
  {
    common::MutexLock lock(mu_);
    auto [it, inserted] = sizes_.try_emplace(key, payload);
    if (!inserted) {
      bytes_on_disk_ -= it->second;
      it->second = payload;
    }
    bytes_on_disk_ += payload;
    spilled_total_ += payload;
  }
  obs::MetricsRegistry::instance().counter("spill.disk_bytes_written").add(payload);
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kSpill, obs::ClockDomain::kWall,
                         obs::Tracer::wall_now_us(), job, obs::kNoEntity, obs::kNoEntity,
                         payload);
}

std::vector<double> DiskSpillStore::reload(JobId job, std::size_t block) {
  const Key key{job, block};
  {
    common::MutexLock lock(mu_);
    if (!sizes_.contains(key))
      throw std::runtime_error("DiskSpillStore: block was never spilled");
  }

  const auto path = path_for(key);
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("DiskSpillStore: cannot open " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> buf(size);
  in.read(reinterpret_cast<char*>(buf.data()), static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("DiskSpillStore: read failed: " + path.string());

  ps::ByteReader reader(buf);
  if (reader.get_u32() != job || reader.get_u64() != block)
    throw std::runtime_error("DiskSpillStore: block header mismatch");
  auto data = reader.get_doubles();
  const auto payload = static_cast<std::uint64_t>(data.size() * sizeof(double));
  {
    common::MutexLock lock(mu_);
    reloaded_total_ += payload;
  }
  obs::MetricsRegistry::instance().counter("spill.disk_bytes_reloaded").add(payload);
  if (obs::Tracer::enabled())
    obs::Tracer::instant(obs::EventKind::kReload, obs::ClockDomain::kWall,
                         obs::Tracer::wall_now_us(), job, obs::kNoEntity, obs::kNoEntity,
                         payload);
  return data;
}

bool DiskSpillStore::contains(JobId job, std::size_t block) const {
  common::MutexLock lock(mu_);
  return sizes_.contains(Key{job, block});
}

void DiskSpillStore::remove(JobId job, std::size_t block) {
  const Key key{job, block};
  {
    common::MutexLock lock(mu_);
    auto it = sizes_.find(key);
    if (it == sizes_.end()) return;
    bytes_on_disk_ -= it->second;
    sizes_.erase(it);
  }
  std::error_code ec;
  std::filesystem::remove(path_for(key), ec);
}

void DiskSpillStore::remove_job(JobId job) {
  std::vector<Key> dropped;
  {
    common::MutexLock lock(mu_);
    // detlint: sorted-iteration(erase-walk; dropped blocks only feed file removal, order unobservable)
    for (auto it = sizes_.begin(); it != sizes_.end();) {
      if (it->first.job == job) {
        bytes_on_disk_ -= it->second;
        dropped.push_back(it->first);
        it = sizes_.erase(it);
      } else {
        ++it;
      }
    }
  }
  std::error_code ec;
  for (const Key& key : dropped) std::filesystem::remove(path_for(key), ec);
}

std::size_t DiskSpillStore::blocks_on_disk() const {
  common::MutexLock lock(mu_);
  return sizes_.size();
}

std::uint64_t DiskSpillStore::bytes_on_disk() const {
  common::MutexLock lock(mu_);
  return bytes_on_disk_;
}

std::uint64_t DiskSpillStore::bytes_spilled_total() const {
  common::MutexLock lock(mu_);
  return spilled_total_;
}

std::uint64_t DiskSpillStore::bytes_reloaded_total() const {
  common::MutexLock lock(mu_);
  return reloaded_total_;
}

}  // namespace harmony::core
