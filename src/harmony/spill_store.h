// Disk-backed block store: the I/O half of the §IV-C spill/reload mechanism.
//
// BlockManager decides *which* blocks live on disk; DiskSpillStore actually
// moves the bytes — serializing a block to its own file, dropping the
// in-memory copy, and deserializing it back on reload. Files use the same
// wire format as the PS (ps::ByteWriter/ByteReader), so the deserialization
// cost the SpillCostModel charges is the real code path's cost.
//
// Thread-safe: spill/reload run on executor threads (background reload
// overlaps other jobs' COMP subtasks), so the ledger is guarded by a mutex.
// Distinct blocks never share a file, so the I/O itself needs no lock —
// only the (job, block) -> size ledger and the byte totals do.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <unordered_map>
#include <vector>

#include "check/check.h"
#include "common/sync.h"
#include "harmony/job.h"

namespace harmony::core {

class DiskSpillStore {
 public:
  // Creates `dir` if needed. Blocks are keyed by (job, block index); one
  // file per block so reloads read exactly what they need.
  explicit DiskSpillStore(std::filesystem::path dir);
  ~DiskSpillStore();

  DiskSpillStore(const DiskSpillStore&) = delete;
  DiskSpillStore& operator=(const DiskSpillStore&) = delete;

  // Writes the block to disk (fsync-less; spill is a cache, the in-memory
  // source of truth is dropped by the caller afterwards).
  void spill(JobId job, std::size_t block, std::span<const double> data);

  // Reads a block back; throws if it was never spilled.
  std::vector<double> reload(JobId job, std::size_t block);

  bool contains(JobId job, std::size_t block) const;
  void remove(JobId job, std::size_t block);
  // Drops every block of a job (called when the job finishes or migrates
  // with its input re-read from the original source).
  void remove_job(JobId job);

  std::size_t blocks_on_disk() const;
  std::uint64_t bytes_on_disk() const;
  std::uint64_t bytes_spilled_total() const;
  std::uint64_t bytes_reloaded_total() const;

  const std::filesystem::path& dir() const noexcept { return dir_; }

 private:
  friend void validate_spill_store(const DiskSpillStore&, check::Validation&);

  struct Key {
    JobId job = 0;
    std::size_t block = 0;
    bool operator==(const Key&) const = default;
    // Deterministic ledger-walk order for validators (common::sorted_view).
    bool operator<(const Key& o) const noexcept {
      return job != o.job ? job < o.job : block < o.block;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(k.job) << 32) ^ k.block);
    }
  };

  std::filesystem::path path_for(const Key& key) const;

  std::filesystem::path dir_;
  mutable common::Mutex mu_;  // guards the ledger below
  // Payload bytes per block.
  std::unordered_map<Key, std::uint64_t, KeyHash> sizes_ GUARDED_BY(mu_);
  std::uint64_t bytes_on_disk_ GUARDED_BY(mu_) = 0;
  std::uint64_t spilled_total_ GUARDED_BY(mu_) = 0;
  std::uint64_t reloaded_total_ GUARDED_BY(mu_) = 0;
};

}  // namespace harmony::core
