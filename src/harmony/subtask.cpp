#include "harmony/subtask.h"

namespace harmony::core {

const char* to_string(SubtaskType t) noexcept {
  switch (t) {
    case SubtaskType::kComp:
      return "COMP";
    case SubtaskType::kComm:
      return "COMM";
  }
  return "?";
}

}  // namespace harmony::core
