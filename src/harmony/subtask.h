// Subtasks: Harmony's fine-grained scheduling unit (§IV-A).
//
// A worker task is decomposed into COMP subtasks (CPU-dominant: gradient
// computation plus the (de)serialization halves of pull/push, which Harmony
// moves out of the communication path) and COMM subtasks (network-dominant:
// the PULL and PUSH transfers).
#pragma once

#include <functional>

#include "harmony/job.h"

namespace harmony::core {

enum class SubtaskType { kComp, kComm };

const char* to_string(SubtaskType t) noexcept;

struct Subtask {
  JobId job = kNoJob;
  SubtaskType type = SubtaskType::kComp;
  // The actual work: a gradient computation, a throttled transfer, ...
  std::function<void()> body;
  // Invoked after `body` returns (used to report completion to the
  // synchronizer). Runs on the executor thread.
  std::function<void()> on_complete;
};

}  // namespace harmony::core
