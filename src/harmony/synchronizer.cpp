#include "harmony/synchronizer.h"

#include <stdexcept>

#include "obs/metrics.h"

namespace harmony::core {

void SubtaskSynchronizer::register_job(JobId job, std::size_t workers) {
  if (workers == 0) throw std::invalid_argument("SubtaskSynchronizer: zero workers");
  common::MutexLock lock(mu_);
  auto [it, inserted] = jobs_.try_emplace(job);
  if (!inserted && it->second.remaining != 0)
    throw std::logic_error("SubtaskSynchronizer: re-registering job with step in flight");
  it->second.workers = workers;
  it->second.remaining = 0;
  it->second.on_all = nullptr;
}

void SubtaskSynchronizer::unregister_job(JobId job) {
  common::MutexLock lock(mu_);
  jobs_.erase(job);
}

void SubtaskSynchronizer::begin_step(JobId job, std::function<void()> on_all_arrived) {
  common::MutexLock lock(mu_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) throw std::logic_error("SubtaskSynchronizer: unknown job");
  if (it->second.remaining != 0)
    throw std::logic_error("SubtaskSynchronizer: previous step still in flight");
  it->second.remaining = it->second.workers;
  it->second.on_all = std::move(on_all_arrived);
}

void SubtaskSynchronizer::arrive(JobId job) {
  std::function<void()> fire;
  {
    common::MutexLock lock(mu_);
    auto it = jobs_.find(job);
    if (it == jobs_.end()) throw std::logic_error("SubtaskSynchronizer: unknown job");
    StepState& step = it->second;
    if (step.remaining == 0)
      throw std::logic_error("SubtaskSynchronizer: arrive without a step in flight");
    if (--step.remaining == 0) fire = std::move(step.on_all);
  }
  // Fired outside the lock: the continuation typically begins the next step.
  if (fire) {
    static obs::Counter& steps =
        obs::MetricsRegistry::instance().counter("synchronizer.steps_completed");
    steps.add();
    fire();
  }
}

std::size_t SubtaskSynchronizer::pending(JobId job) const {
  common::MutexLock lock(mu_);
  auto it = jobs_.find(job);
  return it == jobs_.end() ? 0 : it->second.remaining;
}

}  // namespace harmony::core
