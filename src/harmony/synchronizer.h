// SubTask Synchronizer (§IV-A, Fig. 7): the master-side component that tracks
// completion of a job's distributed subtasks across workers and fires a
// continuation when the whole step is done — e.g. "when all distributed COMM
// subtasks of job C are complete, the COMP subtask of C is enqueued".
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>

#include "common/sync.h"
#include "harmony/job.h"

namespace harmony::core {

class SubtaskSynchronizer {
 public:
  // Declares that `job`'s steps span `workers` participants.
  void register_job(JobId job, std::size_t workers);
  void unregister_job(JobId job);

  // Begins a new synchronized step for `job`; `on_all_arrived` fires (on the
  // thread of the last arriving worker) once all participants arrive.
  // Steps for a job are strictly sequential: starting a new step while one is
  // in flight is a caller bug and throws.
  void begin_step(JobId job, std::function<void()> on_all_arrived);

  // Reports one worker's completion of the current step.
  void arrive(JobId job);

  std::size_t pending(JobId job) const;

 private:
  struct StepState {
    std::size_t workers = 0;
    std::size_t remaining = 0;  // 0 = no step in flight
    std::function<void()> on_all;
  };

  mutable common::Mutex mu_;
  std::unordered_map<JobId, StepState> jobs_ GUARDED_BY(mu_);
};

}  // namespace harmony::core
