#include "harmony/validate.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/sorted_view.h"

namespace harmony::core {

void validate_decision(const ScheduleDecision& decision, std::span<const SchedJob> pool,
                       std::size_t machines, check::Validation& v) {
  std::unordered_set<JobId> pool_ids;
  for (const SchedJob& j : pool) pool_ids.insert(j.id);

  std::size_t total_machines = 0;
  std::size_t total_jobs = 0;
  std::unordered_set<JobId> placed;
  for (std::size_t g = 0; g < decision.groups.size(); ++g) {
    const GroupPlan& plan = decision.groups[g];
    HARMONY_VALIDATE(v, plan.machines >= 1)
        << check::group(g) << "group plan allocates zero machines";
    HARMONY_VALIDATE(v, !plan.jobs.empty())
        << check::group(g) << "group plan holds machines but no jobs";
    total_machines += plan.machines;
    for (JobId id : plan.jobs) {
      ++total_jobs;
      HARMONY_VALIDATE(v, placed.insert(id).second)
          << check::job(id) << check::group(g) << "job placed in more than one group";
      HARMONY_VALIDATE(v, pool_ids.contains(id))
          << check::job(id) << check::group(g) << "placed job is not in the scheduling pool";
    }
  }
  HARMONY_VALIDATE(v, total_machines <= machines)
      << "decision allocates " << total_machines << " machines from a budget of " << machines;
  HARMONY_VALIDATE(v, decision.jobs_scheduled == total_jobs)
      << "jobs_scheduled says " << decision.jobs_scheduled << " but the plans place "
      << total_jobs;
  // Algorithm 1 schedules a prefix of the queue: the placed set must be
  // exactly the first jobs_scheduled pool entries.
  const std::size_t prefix = std::min(decision.jobs_scheduled, pool.size());
  for (std::size_t i = 0; i < prefix; ++i)
    HARMONY_VALIDATE(v, placed.contains(pool[i].id))
        << check::job(pool[i].id) << "queue-prefix job at position " << i
        << " missing from the decision";
}

void validate_block_manager(const BlockManager& blocks, check::Validation& v) {
  double disk = 0.0;
  double memory = 0.0;
  double total = 0.0;
  std::size_t disk_count = 0;
  bool seen_disk = false;
  bool suffix_ok = true;
  for (const auto& b : blocks.blocks_) {
    total += b.bytes;
    if (b.on_disk) {
      disk += b.bytes;
      ++disk_count;
      seen_disk = true;
    } else {
      memory += b.bytes;
      if (seen_disk) suffix_ok = false;  // memory block after a disk block
    }
  }
  const double eps = 1e-6 * std::max(total, 1.0);
  HARMONY_VALIDATE(v, std::abs(blocks.memory_bytes() + blocks.disk_bytes() - total) <= eps)
      << "memory (" << blocks.memory_bytes() << ") + disk (" << blocks.disk_bytes()
      << ") bytes do not partition the total (" << total << ")";
  HARMONY_VALIDATE(v, std::abs(blocks.disk_bytes() - disk) <= eps)
      << "disk_bytes() reports " << blocks.disk_bytes() << " but the blocks sum to " << disk
      << " (skewed spill byte count)";
  HARMONY_VALIDATE(v, blocks.disk_blocks() == disk_count)
      << "disk_blocks() reports " << blocks.disk_blocks() << " but " << disk_count
      << " blocks are on disk";
  const double want_alpha =
      blocks.blocks_.empty()
          ? 0.0
          : static_cast<double>(disk_count) / static_cast<double>(blocks.blocks_.size());
  HARMONY_VALIDATE(v, std::abs(blocks.alpha() - want_alpha) <= 1e-12)
      << "alpha() reports " << blocks.alpha() << " but the disk fraction is " << want_alpha;
  HARMONY_VALIDATE(v, suffix_ok)
      << "disk-resident blocks are not a suffix (spill order invariant broken)";
}

void validate_spill_store(const DiskSpillStore& store, check::Validation& v) {
  common::MutexLock lock(store.mu_);
  std::uint64_t ledger_sum = 0;
  for (const auto& [key, payload] : common::sorted_view(store.sizes_)) {
    ledger_sum += payload;
    const auto path = store.path_for(key);
    std::error_code ec;
    const auto file_size = std::filesystem::file_size(path, ec);
    HARMONY_VALIDATE(v, !ec) << check::job(key.job) << "spill file missing for block "
                             << key.block << ": " << path.string();
    if (ec) continue;
    // File layout: u32 job + u64 block + u64 count + payload doubles.
    const std::uint64_t expected = sizeof(std::uint32_t) + 2 * sizeof(std::uint64_t) + payload;
    HARMONY_VALIDATE(v, file_size == expected)
        << check::job(key.job) << "block " << key.block << " file holds " << file_size
        << " bytes, ledger expects " << expected;
  }
  HARMONY_VALIDATE(v, store.bytes_on_disk_ == ledger_sum)
      << "bytes_on_disk (" << store.bytes_on_disk_ << ") != sum of per-block ledger entries ("
      << ledger_sum << ")";
  HARMONY_VALIDATE(v, store.spilled_total_ >= store.bytes_on_disk_)
      << "cumulative spilled bytes (" << store.spilled_total_
      << ") below current on-disk bytes (" << store.bytes_on_disk_ << ")";
}

void validate_incremental_state(const IncrementalScheduler& inc, check::Validation& v) {
  inc.validate(v);
}

void validate_incremental_vs_full(const IncrementalScheduler& inc, const Scheduler& full,
                                  double slack, check::Validation& v) {
  const std::vector<SchedJob> pool = inc.pool();
  if (pool.empty()) return;  // nothing placed; trivially equivalent

  // Score against a full-algorithm *repack* of the same job set — both sides
  // then place every job, so the scores share an objective. (schedule()
  // proper optimizes an admission prefix and may park pool-tail jobs; its
  // score is not comparable to a state that must keep every job running.)
  const ScheduleDecision decision = full.repack(pool, inc.total_machines());
  validate_decision(decision, pool, inc.total_machines(), v);

  // Score the full decision with the same model the incremental state uses.
  std::vector<GroupShape> shapes;
  shapes.reserve(decision.groups.size());
  std::unordered_map<JobId, JobProfile> profiles;
  profiles.reserve(pool.size());
  for (const SchedJob& j : pool) profiles.emplace(j.id, j.profile);
  for (const GroupPlan& plan : decision.groups) {
    GroupShape shape;
    shape.machines = plan.machines;
    shape.jobs.reserve(plan.jobs.size());
    for (JobId id : plan.jobs) shape.jobs.push_back(profiles.at(id));
    shapes.push_back(std::move(shape));
  }
  const double full_score = inc.model().score(shapes);
  const double inc_score = inc.current_score();

  HARMONY_VALIDATE(v, check::within_relative_slack(inc_score, full_score, slack))
      << "incremental grouping scores " << inc_score << " vs " << full_score
      << " for a full Algorithm-1 repack of the same " << pool.size()
      << " jobs — beyond the documented drift bound (slack " << slack << ")";
}

}  // namespace harmony::core
