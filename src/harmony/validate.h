// Deep validators for the scheduler and spill subsystems: cross-check
// incrementally maintained state against brute-force recomputation.
//
// Everything here is read-only and side-effect free on the validated objects,
// so a validation pass can run at any quiescent point (tests, the simulator's
// --validate hook) without perturbing behaviour.
#pragma once

#include <span>

#include "check/check.h"
#include "harmony/incremental.h"
#include "harmony/scheduler.h"
#include "harmony/spill_manager.h"
#include "harmony/spill_store.h"

namespace harmony::core {

// Structural invariants of an Algorithm 1 decision against the job pool and
// machine budget it was computed from:
//  * total allocated machines never exceed the budget, every group gets >= 1;
//  * no job is placed twice, every placed job comes from the pool;
//  * jobs_scheduled equals the number of placed jobs and counts a prefix of
//    the pool (Algorithm 1 grows candidate sets from the queue front).
void validate_decision(const ScheduleDecision& decision, std::span<const SchedJob> pool,
                       std::size_t machines, check::Validation& v);

// Block-ledger invariants of a BlockManager:
//  * memory + disk bytes exactly partition the total;
//  * alpha() equals the recomputed disk fraction;
//  * disk-resident blocks form a suffix (spill is coldest-first, so the
//    memory-side prefix must be stable across any set_alpha history).
void validate_block_manager(const BlockManager& blocks, check::Validation& v);

// Byte-accounting invariants of a DiskSpillStore, cross-checked against the
// filesystem: bytes_on_disk() matches the sum of the per-block ledger, and
// every ledger entry has a backing file of exactly the serialized size
// (header + payload). Catches skewed accounting and lost/truncated spills.
void validate_spill_store(const DiskSpillStore& store, check::Validation& v);

// Structural invariants of an IncrementalScheduler (machine conservation,
// membership index consistency, cached aggregates vs a from-scratch
// recompute). Thin forwarding wrapper so every deep validator is reachable
// from one header.
void validate_incremental_state(const IncrementalScheduler& inc, check::Validation& v);

// Incremental-vs-full-reschedule equivalence: re-runs full Algorithm 1
// (`full`) over the incremental state's own job pool and machine budget and
// checks that the modelled score of the locally-repaired grouping stays
// within `slack` (relative) of the from-scratch decision's modelled score.
// This is the documented drift bound of the online service: local repair may
// trail a fresh Algorithm-1 run, but once the gap exceeds the drift
// threshold a full re-run is triggered, so the steady-state gap is bounded
// by drift_threshold plus the score the bounded probe window gives up on a
// single join. `slack` should therefore be chosen comfortably above
// inc.params().drift_threshold (the service defaults pair 0.10 with 0.35).
// The comparison scores each grouping over the machines it actually
// allocates, so a full decision that parks jobs (schedules a prefix) is
// still comparable.
void validate_incremental_vs_full(const IncrementalScheduler& inc, const Scheduler& full,
                                  double slack, check::Validation& v);

}  // namespace harmony::core
