// Deep validators for the scheduler and spill subsystems: cross-check
// incrementally maintained state against brute-force recomputation.
//
// Everything here is read-only and side-effect free on the validated objects,
// so a validation pass can run at any quiescent point (tests, the simulator's
// --validate hook) without perturbing behaviour.
#pragma once

#include <span>

#include "check/check.h"
#include "harmony/scheduler.h"
#include "harmony/spill_manager.h"
#include "harmony/spill_store.h"

namespace harmony::core {

// Structural invariants of an Algorithm 1 decision against the job pool and
// machine budget it was computed from:
//  * total allocated machines never exceed the budget, every group gets >= 1;
//  * no job is placed twice, every placed job comes from the pool;
//  * jobs_scheduled equals the number of placed jobs and counts a prefix of
//    the pool (Algorithm 1 grows candidate sets from the queue front).
void validate_decision(const ScheduleDecision& decision, std::span<const SchedJob> pool,
                       std::size_t machines, check::Validation& v);

// Block-ledger invariants of a BlockManager:
//  * memory + disk bytes exactly partition the total;
//  * alpha() equals the recomputed disk fraction;
//  * disk-resident blocks form a suffix (spill is coldest-first, so the
//    memory-side prefix must be stable across any set_alpha history).
void validate_block_manager(const BlockManager& blocks, check::Validation& v);

// Byte-accounting invariants of a DiskSpillStore, cross-checked against the
// filesystem: bytes_on_disk() matches the sum of the per-block ledger, and
// every ledger entry has a backing file of exactly the serialized size
// (header + payload). Catches skewed accounting and lost/truncated spills.
void validate_spill_store(const DiskSpillStore& store, check::Validation& v);

}  // namespace harmony::core
