#include "ml/app.h"

#include <cassert>

namespace harmony::ml {

void MlApp::apply_update(std::span<double> params, std::span<const double> update) const {
  assert(params.size() == update.size());
  for (std::size_t i = 0; i < params.size(); ++i) params[i] += update[i];
}

}  // namespace harmony::ml
