// Application interface the PS runtime trains against.
//
// The Parameter-Server contract (paper §II-A): servers hold the flat model
// parameter vector; in every mini-batch each worker PULLs the model, COMPutes
// an additive update from its input partition, and PUSHes the update. An
// MlApp supplies the three application-specific pieces: parameter
// initialization, the worker-side update computation, and the server-side
// update application, plus a full-data objective used as the convergence
// check ("we monitor the objective value at the end of every epoch", §V-B).
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace harmony::ml {

class MlApp {
 public:
  virtual ~MlApp() = default;

  virtual std::string name() const = 0;

  // Total number of model parameters (the flat vector servers partition).
  virtual std::size_t param_dim() const = 0;

  // Number of input units (examples / users / documents). Workers partition
  // [0, num_data) into contiguous ranges.
  virtual std::size_t num_data() const = 0;

  virtual void init_params(std::span<double> params) const = 0;

  // Computes the additive update for input range [begin, end) under `params`.
  // `update_out` has param_dim entries and arrives zeroed.
  //
  // Thread-safety: concurrent calls are safe iff their ranges are disjoint —
  // apps with worker-local state (NMF user factors, LDA doc-topic counts)
  // index that state by data id, so disjoint partitions touch disjoint state.
  virtual void compute_update(std::span<const double> params, std::span<double> update_out,
                              std::size_t begin, std::size_t end) = 0;

  // Server-side update rule; default is plain addition (the worker bakes any
  // learning-rate scaling into the update it pushes).
  virtual void apply_update(std::span<double> params, std::span<const double> update) const;

  // Full-data objective under `params` (L2 loss, negative log-likelihood...).
  // Lower is better for every app in this suite.
  virtual double loss(std::span<const double> params) = 0;

  // Approximate bytes of input data resident on workers; feeds the memory
  // model and the spill/reload manager.
  virtual std::size_t input_bytes() const = 0;

  // Approximate bytes of model state resident on servers.
  std::size_t model_bytes() const { return param_dim() * sizeof(double); }
};

}  // namespace harmony::ml
