#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace harmony::ml {
namespace {

// Draws a point on the unit sphere (direction for planted weights).
std::vector<double> random_unit(Rng& rng, std::size_t dim) {
  std::vector<double> v(dim);
  double norm_sq = 0.0;
  for (double& x : v) {
    x = rng.normal(0.0, 1.0);
    norm_sq += x * x;
  }
  const double inv = 1.0 / std::sqrt(std::max(norm_sq, 1e-12));
  for (double& x : v) x *= inv;
  return v;
}

// Symmetric Dirichlet draw via normalized Gamma(alpha, 1) samples.
std::vector<double> dirichlet(Rng& rng, std::size_t k, double alpha) {
  std::gamma_distribution<double> gamma(alpha, 1.0);
  std::vector<double> v(k);
  double sum = 0.0;
  for (double& x : v) {
    x = gamma(rng.engine());
    sum += x;
  }
  for (double& x : v) x /= std::max(sum, 1e-300);
  return v;
}

std::size_t sample_categorical(Rng& rng, const std::vector<double>& probs) {
  double u = rng.uniform(0.0, 1.0);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    u -= probs[i];
    if (u <= 0.0) return i;
  }
  return probs.size() - 1;
}

}  // namespace

DenseDataset make_classification(std::size_t n, std::size_t dim, std::size_t classes,
                                 double label_noise, std::uint64_t seed) {
  assert(classes >= 2);
  Rng rng(seed);
  // Planted per-class weights with margin-scaled magnitude.
  std::vector<std::vector<double>> weights;
  weights.reserve(classes);
  for (std::size_t c = 0; c < classes; ++c) {
    auto w = random_unit(rng, dim);
    for (double& x : w) x *= 3.0;
    weights.push_back(std::move(w));
  }

  DenseDataset ds;
  ds.feature_dim = dim;
  ds.num_classes = classes;
  ds.examples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DenseExample ex;
    ex.features.resize(dim);
    for (double& x : ex.features) x = rng.normal(0.0, 1.0);
    std::size_t best = 0;
    double best_logit = -1e300;
    for (std::size_t c = 0; c < classes; ++c) {
      const double logit =
          dot(ex.features, weights[c]) + rng.normal(0.0, label_noise);
      if (logit > best_logit) {
        best_logit = logit;
        best = c;
      }
    }
    ex.label = static_cast<double>(best);
    ds.examples.push_back(std::move(ex));
  }
  return ds;
}

DenseDataset make_regression(std::size_t n, std::size_t dim, std::size_t support,
                             double noise_std, std::uint64_t seed) {
  assert(support <= dim);
  Rng rng(seed);
  std::vector<double> w(dim, 0.0);
  // The planted weights live on the first `support` coordinates after a
  // permutation, so recovery tests can check sparsity patterns.
  std::vector<std::size_t> idx(dim);
  for (std::size_t i = 0; i < dim; ++i) idx[i] = i;
  rng.shuffle(idx);
  for (std::size_t i = 0; i < support; ++i)
    w[idx[i]] = rng.normal(0.0, 1.0) + (rng.bernoulli(0.5) ? 1.0 : -1.0);

  DenseDataset ds;
  ds.feature_dim = dim;
  ds.num_classes = 0;
  ds.examples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    DenseExample ex;
    ex.features.resize(dim);
    for (double& x : ex.features) x = rng.normal(0.0, 1.0);
    ex.label = dot(ex.features, w) + rng.normal(0.0, noise_std);
    ds.examples.push_back(std::move(ex));
  }
  return ds;
}

RatingsDataset make_ratings(std::size_t users, std::size_t items, std::size_t rank,
                            double density, double noise_std, std::uint64_t seed) {
  assert(density > 0.0 && density <= 1.0);
  Rng rng(seed);

  // Planted non-negative factors; |W_u . H_i| lands roughly in [0, ~4], then
  // shifted into a ratings-like 1..5 band.
  auto planted_factor = [&rng](std::size_t rows, std::size_t r) {
    std::vector<double> f(rows * r);
    for (double& x : f) x = std::abs(rng.normal(0.5, 0.3));
    return f;
  };
  const std::vector<double> w = planted_factor(users, rank);
  const std::vector<double> h = planted_factor(items, rank);

  RatingsDataset ds;
  ds.num_users = users;
  ds.num_items = items;
  ds.user_offsets.reserve(users + 1);
  ds.user_offsets.push_back(0);

  const auto per_user =
      std::max<std::size_t>(1, static_cast<std::size_t>(density * static_cast<double>(items)));
  for (std::size_t u = 0; u < users; ++u) {
    // Sample `per_user` distinct items for this user.
    std::vector<std::uint32_t> chosen;
    chosen.reserve(per_user);
    for (std::size_t k = 0; k < per_user; ++k)
      chosen.push_back(static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<std::int64_t>(items) - 1)));
    std::sort(chosen.begin(), chosen.end());
    chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());

    for (std::uint32_t item : chosen) {
      const double truth =
          dot(std::span<const double>(w).subspan(u * rank, rank),
              std::span<const double>(h).subspan(item * rank, rank));
      const double value =
          std::clamp(1.0 + 4.0 * truth + rng.normal(0.0, noise_std), 1.0, 5.0);
      ds.ratings.push_back(Rating{static_cast<std::uint32_t>(u), item, value});
    }
    ds.user_offsets.push_back(ds.ratings.size());
  }
  return ds;
}

std::size_t CorpusDataset::total_tokens() const noexcept {
  std::size_t n = 0;
  for (const auto& d : docs) n += d.tokens.size();
  return n;
}

std::size_t CorpusDataset::bytes() const noexcept {
  return total_tokens() * sizeof(std::uint32_t) + docs.size() * sizeof(Document);
}

CorpusDataset make_corpus(std::size_t docs, std::size_t vocab, std::size_t topics,
                          std::size_t mean_doc_len, std::uint64_t seed) {
  Rng rng(seed);

  // Topic-word distributions: each topic prefers a Zipf-weighted slice of the
  // vocabulary, giving realistic skewed word frequencies.
  std::vector<std::vector<double>> topic_word(topics);
  for (std::size_t t = 0; t < topics; ++t) {
    topic_word[t] = dirichlet(rng, vocab, 0.08);
  }

  CorpusDataset ds;
  ds.vocab_size = vocab;
  ds.num_topics_hint = topics;
  ds.docs.reserve(docs);
  for (std::size_t d = 0; d < docs; ++d) {
    const auto theta = dirichlet(rng, topics, 0.3);
    const auto len = std::max<std::size_t>(
        4, static_cast<std::size_t>(rng.exponential(static_cast<double>(mean_doc_len))));
    Document doc;
    doc.tokens.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      const std::size_t z = sample_categorical(rng, theta);
      const std::size_t word = sample_categorical(rng, topic_word[z]);
      doc.tokens.push_back(static_cast<std::uint32_t>(word));
    }
    ds.docs.push_back(std::move(doc));
  }
  return ds;
}

}  // namespace harmony::ml
