// Synthetic dataset generators.
//
// The paper trains on Netflix (ratings), PubMed/NYTimes (bag-of-words) and
// Bösen-generated synthetic classification/regression data (Table I). None of
// those are shippable here, so each generator reproduces the *statistical
// shape* the corresponding application cares about:
//
//  * classification/regression — rows drawn from a planted linear/softmax
//    model plus noise, so the optimizers have a recoverable optimum;
//  * ratings — a low-rank matrix observed at a given density, so NMF's
//    factorization objective is well-posed;
//  * corpus — documents sampled from an LDA generative process with a Zipfian
//    vocabulary, so collapsed Gibbs sampling has real topic structure to find.
//
// All generators are deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "ml/linalg.h"

namespace harmony::ml {

// ---------------------------------------------------------------------------
// Dense supervised data (MLR, Lasso)

struct DenseExample {
  std::vector<double> features;
  double label = 0.0;  // class index for MLR, regression target for Lasso
};

struct DenseDataset {
  std::size_t feature_dim = 0;
  std::size_t num_classes = 0;  // 0 for regression
  std::vector<DenseExample> examples;

  std::size_t size() const noexcept { return examples.size(); }
  // Approximate resident size, used for memory-footprint accounting.
  std::size_t bytes() const noexcept {
    return examples.size() * (feature_dim + 1) * sizeof(double);
  }
};

// Multi-class data from a planted softmax model: class weight vectors are
// sampled, rows are Gaussian, labels are argmax of (true logits + noise).
DenseDataset make_classification(std::size_t n, std::size_t dim, std::size_t classes,
                                 double label_noise, std::uint64_t seed);

// Regression data from a planted sparse weight vector (Lasso's use case):
// `support` coordinates are nonzero, the rest are exactly zero.
DenseDataset make_regression(std::size_t n, std::size_t dim, std::size_t support,
                             double noise_std, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Ratings data (NMF)

struct Rating {
  std::uint32_t user;
  std::uint32_t item;
  double value;
};

struct RatingsDataset {
  std::size_t num_users = 0;
  std::size_t num_items = 0;
  // Grouped by user and sorted (user, item) so a contiguous user range is a
  // contiguous slice — matching how workers partition input by user.
  std::vector<Rating> ratings;
  // ratings index of the first rating of each user (size num_users + 1).
  std::vector<std::size_t> user_offsets;

  std::size_t size() const noexcept { return ratings.size(); }
  std::size_t bytes() const noexcept { return ratings.size() * sizeof(Rating); }
};

// Observes a planted non-negative rank-`rank` matrix at `density`, with
// multiplicative noise; values land in a Netflix-like 1..5 range.
RatingsDataset make_ratings(std::size_t users, std::size_t items, std::size_t rank,
                            double density, double noise_std, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Bag-of-words corpus (LDA)

struct Document {
  // One entry per token occurrence (not per distinct word): Gibbs sampling
  // assigns a topic to every token.
  std::vector<std::uint32_t> tokens;
};

struct CorpusDataset {
  std::size_t vocab_size = 0;
  std::size_t num_topics_hint = 0;  // topics used by the generative process
  std::vector<Document> docs;

  std::size_t size() const noexcept { return docs.size(); }
  std::size_t total_tokens() const noexcept;
  std::size_t bytes() const noexcept;
};

// Samples documents from the LDA generative process (symmetric Dirichlet
// priors) with a Zipf-weighted vocabulary inside each topic.
CorpusDataset make_corpus(std::size_t docs, std::size_t vocab, std::size_t topics,
                          std::size_t mean_doc_len, std::uint64_t seed);

}  // namespace harmony::ml
