#include "ml/lasso.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "ml/linalg.h"

namespace harmony::ml {

LassoApp::LassoApp(std::shared_ptr<const DenseDataset> data, LassoConfig config)
    : data_(std::move(data)), config_(config) {
  if (!data_ || data_->num_classes != 0)
    throw std::invalid_argument("LassoApp: needs regression data");
}

void LassoApp::init_params(std::span<double> params) const {
  for (double& p : params) p = 0.0;
}

void LassoApp::compute_update(std::span<const double> params, std::span<double> update_out,
                              std::size_t begin, std::size_t end) {
  assert(end <= data_->size() && begin <= end);
  const double count = std::max<double>(1.0, static_cast<double>(end - begin));
  for (std::size_t i = begin; i < end; ++i) {
    const auto& ex = data_->examples[i];
    const double residual = dot(ex.features, params) - ex.label;
    // Gradient of 1/2 (x.w - y)^2 is residual * x; push -lr * grad.
    axpy(-config_.learning_rate * residual / count, ex.features, update_out);
  }
}

void LassoApp::apply_update(std::span<double> params, std::span<const double> update) const {
  assert(params.size() == update.size());
  const double threshold = config_.learning_rate * config_.l1_reg;
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] = soft_threshold(params[i] + update[i], threshold);
}

double LassoApp::loss(std::span<const double> params) {
  double sq = 0.0;
  for (const auto& ex : data_->examples) {
    const double r = dot(ex.features, params) - ex.label;
    sq += r * r;
  }
  return 0.5 * sq / static_cast<double>(data_->size()) + config_.l1_reg * l1_norm(params);
}

double LassoApp::sparsity(std::span<const double> params) {
  if (params.empty()) return 0.0;
  std::size_t zeros = 0;
  for (double p : params)
    if (p == 0.0) ++zeros;
  return static_cast<double>(zeros) / static_cast<double>(params.size());
}

}  // namespace harmony::ml
