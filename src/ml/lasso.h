// Lasso regression trained by proximal gradient descent (ISTA) through the
// PS: workers push the smooth squared-error gradient step; the server-side
// update application performs the L1 proximal (soft-threshold) step.
#pragma once

#include <memory>

#include "ml/app.h"
#include "ml/dataset.h"

namespace harmony::ml {

struct LassoConfig {
  double learning_rate = 0.01;
  double l1_reg = 0.05;
};

class LassoApp final : public MlApp {
 public:
  // The dataset must be regression data (num_classes == 0).
  LassoApp(std::shared_ptr<const DenseDataset> data, LassoConfig config = {});

  std::string name() const override { return "Lasso"; }
  std::size_t param_dim() const override { return data_->feature_dim; }
  std::size_t num_data() const override { return data_->size(); }
  void init_params(std::span<double> params) const override;
  void compute_update(std::span<const double> params, std::span<double> update_out,
                      std::size_t begin, std::size_t end) override;
  // Adds the gradient step, then soft-thresholds — the ISTA proximal step is
  // a server-side rule, which is exactly why apply_update is virtual.
  void apply_update(std::span<double> params, std::span<const double> update) const override;
  double loss(std::span<const double> params) override;
  std::size_t input_bytes() const override { return data_->bytes(); }

  // Fraction of exactly-zero coefficients; Lasso should drive most
  // off-support coordinates to zero.
  static double sparsity(std::span<const double> params);

 private:
  std::shared_ptr<const DenseDataset> data_;
  LassoConfig config_;
};

}  // namespace harmony::ml
