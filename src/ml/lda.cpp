#include "ml/lda.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace harmony::ml {

LdaApp::LdaApp(std::shared_ptr<const CorpusDataset> data, LdaConfig config)
    : data_(std::move(data)), config_(config) {
  if (!data_) throw std::invalid_argument("LdaApp: null corpus");
  docs_.resize(data_->size());
  doc_rngs_.reserve(data_->size());
  Rng root(config_.seed);
  for (std::size_t d = 0; d < data_->size(); ++d) doc_rngs_.push_back(root.fork());
}

void LdaApp::init_params(std::span<double> params) const {
  assert(params.size() == param_dim());
  // Counts start at zero; the first sweep over each partition performs the
  // initial assignment and pushes the corresponding +counts.
  for (double& p : params) p = 0.0;
}

void LdaApp::compute_update(std::span<const double> params, std::span<double> update_out,
                            std::size_t begin, std::size_t end) {
  assert(end <= data_->size() && begin <= end);
  const std::size_t T = config_.topics;
  const double v_beta = static_cast<double>(data_->vocab_size) * config_.beta;

  std::vector<double> weights(T);
  for (std::size_t d = begin; d < end; ++d) {
    const Document& doc = data_->docs[d];
    DocState& state = docs_[d];
    Rng& rng = doc_rngs_[d];

    if (!state.initialized) {
      state.assignment.resize(doc.tokens.size());
      state.topic_count.assign(T, 0);
    }

    for (std::size_t pos = 0; pos < doc.tokens.size(); ++pos) {
      const std::uint32_t word = doc.tokens[pos];

      if (state.initialized) {
        // Remove the token's current assignment before resampling. The
        // decrement is pushed as a delta; locally we only track doc counts.
        const std::uint32_t old_t = state.assignment[pos];
        state.topic_count[old_t]--;
        update_out[wt_index(word, old_t)] -= 1.0;
        update_out[topic_total_index(old_t)] -= 1.0;
      }

      // p(z = t) ∝ (N_dt + α) (N_wt + β) / (N_t + Vβ), with the global counts
      // read from the pulled snapshot plus this sweep's own deltas so a
      // token's removal is visible to its own resample.
      double total_w = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        const double n_dt = static_cast<double>(state.topic_count[t]);
        const double n_wt =
            std::max(0.0, params[wt_index(word, t)] + update_out[wt_index(word, t)]);
        const double n_t =
            std::max(0.0, params[topic_total_index(t)] + update_out[topic_total_index(t)]);
        weights[t] = (n_dt + config_.alpha) * (n_wt + config_.beta) / (n_t + v_beta);
        total_w += weights[t];
      }
      double u = rng.uniform(0.0, total_w);
      std::size_t new_t = T - 1;
      for (std::size_t t = 0; t < T; ++t) {
        u -= weights[t];
        if (u <= 0.0) {
          new_t = t;
          break;
        }
      }

      state.assignment[pos] = static_cast<std::uint32_t>(new_t);
      state.topic_count[new_t]++;
      update_out[wt_index(word, new_t)] += 1.0;
      update_out[topic_total_index(new_t)] += 1.0;
    }
    state.initialized = true;
  }
}

double LdaApp::loss(std::span<const double> params) {
  const std::size_t T = config_.topics;
  const double v_beta = static_cast<double>(data_->vocab_size) * config_.beta;
  const double t_alpha = static_cast<double>(T) * config_.alpha;

  double log_lik = 0.0;
  std::size_t tokens = 0;
  for (std::size_t d = 0; d < data_->size(); ++d) {
    const Document& doc = data_->docs[d];
    const DocState& state = docs_[d];
    if (!state.initialized) continue;
    const double doc_len = static_cast<double>(doc.tokens.size());
    for (std::uint32_t word : doc.tokens) {
      double p = 0.0;
      for (std::size_t t = 0; t < T; ++t) {
        const double theta =
            (static_cast<double>(state.topic_count[t]) + config_.alpha) / (doc_len + t_alpha);
        const double phi = (std::max(0.0, params[wt_index(word, t)]) + config_.beta) /
                           (std::max(0.0, params[topic_total_index(t)]) + v_beta);
        p += theta * phi;
      }
      log_lik += std::log(std::max(p, 1e-300));
      ++tokens;
    }
  }
  if (tokens == 0) return std::log(static_cast<double>(data_->vocab_size));
  return -log_lik / static_cast<double>(tokens);
}

}  // namespace harmony::ml
