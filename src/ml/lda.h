// Latent Dirichlet Allocation by distributed collapsed Gibbs sampling — the
// paper's topic-modeling workload (PubMed/NYTimes).
//
// Server-side model: topic-word count matrix N[w][t] plus per-topic totals
// N[t], stored as one flat vector (vocab*topics word counts followed by
// `topics` totals). Worker state: per-document topic assignments and
// doc-topic counts. One iteration = one Gibbs sweep over the worker's
// document partition against the *pulled* (slightly stale) global counts;
// workers push count deltas, which servers apply additively — the classic
// AD-LDA scheme used by PS systems.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "ml/app.h"
#include "ml/dataset.h"

namespace harmony::ml {

struct LdaConfig {
  std::size_t topics = 20;
  double alpha = 0.1;  // doc-topic Dirichlet prior
  double beta = 0.01;  // topic-word Dirichlet prior
  std::uint64_t seed = 11;
};

class LdaApp final : public MlApp {
 public:
  LdaApp(std::shared_ptr<const CorpusDataset> data, LdaConfig config = {});

  std::string name() const override { return "LDA"; }
  std::size_t param_dim() const override {
    return data_->vocab_size * config_.topics + config_.topics;
  }
  std::size_t num_data() const override { return data_->size(); }
  void init_params(std::span<double> params) const override;
  void compute_update(std::span<const double> params, std::span<double> update_out,
                      std::size_t begin, std::size_t end) override;
  // Negative predictive log-likelihood per token (lower = better), computed
  // from the global counts and the worker-side doc-topic counts.
  double loss(std::span<const double> params) override;
  std::size_t input_bytes() const override { return data_->bytes(); }

  const LdaConfig& config() const noexcept { return config_; }

 private:
  // Index of word w / topic t in the flat parameter vector.
  std::size_t wt_index(std::size_t w, std::size_t t) const {
    return w * config_.topics + t;
  }
  std::size_t topic_total_index(std::size_t t) const {
    return data_->vocab_size * config_.topics + t;
  }

  std::shared_ptr<const CorpusDataset> data_;
  LdaConfig config_;

  struct DocState {
    bool initialized = false;
    std::vector<std::uint32_t> assignment;  // topic of each token
    std::vector<std::uint32_t> topic_count;  // doc-topic histogram
  };
  // Indexed by document id; disjoint ranges touch disjoint entries.
  std::vector<DocState> docs_;
  std::vector<Rng> doc_rngs_;  // per-doc streams keep sweeps deterministic
};

}  // namespace harmony::ml
