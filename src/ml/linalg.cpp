#include "ml/linalg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace harmony::ml {

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double l2_norm_sq(std::span<const double> x) { return dot(x, x); }

double l1_norm(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += std::abs(v);
  return acc;
}

void softmax_inplace(std::span<double> logits) {
  if (logits.empty()) return;
  const double peak = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (double& v : logits) {
    v = std::exp(v - peak);
    sum += v;
  }
  for (double& v : logits) v /= sum;
}

double sparse_dense_dot(const SparseVector& sparse, std::span<const double> dense) {
  double acc = 0.0;
  for (const auto& e : sparse) {
    assert(e.index < dense.size());
    acc += e.value * dense[e.index];
  }
  return acc;
}

void sparse_axpy(double alpha, const SparseVector& sparse, std::span<double> dense) {
  for (const auto& e : sparse) {
    assert(e.index < dense.size());
    dense[e.index] += alpha * e.value;
  }
}

double soft_threshold(double x, double t) {
  if (x > t) return x - t;
  if (x < -t) return x + t;
  return 0.0;
}

}  // namespace harmony::ml
