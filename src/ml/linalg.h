// Minimal dense/sparse linear algebra for the ML applications.
//
// We deliberately avoid an external BLAS: the kernels here are small, the
// applications' compute cost is dominated by simple dot/axpy loops, and a
// dependency-free build keeps the reproduction portable.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace harmony::ml {

// Row-major dense matrix view helpers over a flat parameter vector. The PS
// stores parameters as one flat array partitioned by key ranges; apps
// interpret slices of it as matrices.
inline std::span<double> row(std::span<double> flat, std::size_t row_idx, std::size_t cols) {
  return flat.subspan(row_idx * cols, cols);
}
inline std::span<const double> row(std::span<const double> flat, std::size_t row_idx,
                                   std::size_t cols) {
  return flat.subspan(row_idx * cols, cols);
}

double dot(std::span<const double> a, std::span<const double> b);

// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

// x *= alpha
void scale(double alpha, std::span<double> x);

double l2_norm_sq(std::span<const double> x);
double l1_norm(std::span<const double> x);

// In-place numerically-stable softmax.
void softmax_inplace(std::span<double> logits);

// Sparse feature vector: sorted (index, value) pairs.
struct SparseEntry {
  std::size_t index;
  double value;
};
using SparseVector = std::vector<SparseEntry>;

double sparse_dense_dot(const SparseVector& sparse, std::span<const double> dense);

// dense += alpha * sparse
void sparse_axpy(double alpha, const SparseVector& sparse, std::span<double> dense);

// Soft-thresholding operator used by Lasso's proximal step:
//   S(x, t) = sign(x) * max(|x| - t, 0)
double soft_threshold(double x, double t);

}  // namespace harmony::ml
