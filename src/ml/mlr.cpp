#include "ml/mlr.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "ml/linalg.h"

namespace harmony::ml {

MlrApp::MlrApp(std::shared_ptr<const DenseDataset> data, MlrConfig config)
    : data_(std::move(data)), config_(config) {
  if (!data_ || data_->num_classes < 2)
    throw std::invalid_argument("MlrApp: needs classification data");
}

std::size_t MlrApp::param_dim() const { return data_->num_classes * data_->feature_dim; }

void MlrApp::init_params(std::span<double> params) const {
  assert(params.size() == param_dim());
  for (double& p : params) p = 0.0;
}

void MlrApp::compute_update(std::span<const double> params, std::span<double> update_out,
                            std::size_t begin, std::size_t end) {
  assert(end <= data_->size() && begin <= end);
  const std::size_t dim = data_->feature_dim;
  const std::size_t classes = data_->num_classes;
  const double count = std::max<double>(1.0, static_cast<double>(end - begin));

  std::vector<double> probs(classes);
  for (std::size_t i = begin; i < end; ++i) {
    const auto& ex = data_->examples[i];
    for (std::size_t c = 0; c < classes; ++c)
      probs[c] = dot(ex.features, row(params, c, dim));
    softmax_inplace(probs);

    const auto label = static_cast<std::size_t>(ex.label);
    for (std::size_t c = 0; c < classes; ++c) {
      // d(NLL)/d(logit_c) = p_c - 1{c == y}; update is -lr * grad.
      const double err = probs[c] - (c == label ? 1.0 : 0.0);
      axpy(-config_.learning_rate * err / count, ex.features, row(update_out, c, dim));
    }
  }
  // L2 weight decay, also scaled by the learning rate.
  axpy(-config_.learning_rate * config_.l2_reg, params, update_out);
}

double MlrApp::loss(std::span<const double> params) {
  const std::size_t dim = data_->feature_dim;
  const std::size_t classes = data_->num_classes;
  double nll = 0.0;
  std::vector<double> probs(classes);
  for (const auto& ex : data_->examples) {
    for (std::size_t c = 0; c < classes; ++c)
      probs[c] = dot(ex.features, row(params, c, dim));
    softmax_inplace(probs);
    const auto label = static_cast<std::size_t>(ex.label);
    nll -= std::log(std::max(probs[label], 1e-300));
  }
  const double reg = 0.5 * config_.l2_reg * l2_norm_sq(params);
  return nll / static_cast<double>(data_->size()) + reg;
}

double MlrApp::accuracy(std::span<const double> params) const {
  const std::size_t dim = data_->feature_dim;
  const std::size_t classes = data_->num_classes;
  std::size_t correct = 0;
  std::vector<double> logits(classes);
  for (const auto& ex : data_->examples) {
    std::size_t best = 0;
    double best_v = -1e300;
    for (std::size_t c = 0; c < classes; ++c) {
      logits[c] = dot(ex.features, row(params, c, dim));
      if (logits[c] > best_v) {
        best_v = logits[c];
        best = c;
      }
    }
    if (best == static_cast<std::size_t>(ex.label)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data_->size());
}

}  // namespace harmony::ml
