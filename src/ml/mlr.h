// Multinomial logistic regression (softmax classification) — the paper's MLR
// workload, trained by mini-batch gradient descent through the PS.
#pragma once

#include <memory>

#include "ml/app.h"
#include "ml/dataset.h"

namespace harmony::ml {

struct MlrConfig {
  double learning_rate = 0.05;
  double l2_reg = 1e-4;
};

class MlrApp final : public MlApp {
 public:
  // The dataset must be classification data (num_classes >= 2).
  MlrApp(std::shared_ptr<const DenseDataset> data, MlrConfig config = {});

  std::string name() const override { return "MLR"; }
  std::size_t param_dim() const override;
  std::size_t num_data() const override { return data_->size(); }
  void init_params(std::span<double> params) const override;
  void compute_update(std::span<const double> params, std::span<double> update_out,
                      std::size_t begin, std::size_t end) override;
  double loss(std::span<const double> params) override;
  std::size_t input_bytes() const override { return data_->bytes(); }

  // Classification accuracy over the full dataset; used by convergence tests.
  double accuracy(std::span<const double> params) const;

 private:
  std::shared_ptr<const DenseDataset> data_;
  MlrConfig config_;
};

}  // namespace harmony::ml
