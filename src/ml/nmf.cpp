#include "ml/nmf.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "ml/linalg.h"

namespace harmony::ml {

NmfApp::NmfApp(std::shared_ptr<const RatingsDataset> data, NmfConfig config)
    : data_(std::move(data)), config_(config) {
  if (!data_) throw std::invalid_argument("NmfApp: null dataset");
  Rng rng(config_.init_seed);
  user_factors_.resize(data_->num_users * config_.rank);
  for (double& x : user_factors_) x = std::abs(rng.normal(0.4, 0.15));
}

void NmfApp::init_params(std::span<double> params) const {
  assert(params.size() == param_dim());
  // Item factors start small-positive so the first gradients are informative;
  // the seed is fixed so every worker/server agrees on the starting point.
  Rng rng(config_.init_seed + 1);
  for (double& p : params) p = std::abs(rng.normal(0.4, 0.15));
}

void NmfApp::compute_update(std::span<const double> params, std::span<double> update_out,
                            std::size_t begin, std::size_t end) {
  assert(end <= data_->num_users && begin <= end);
  const std::size_t rank = config_.rank;
  const double lr = config_.learning_rate;

  for (std::size_t u = begin; u < end; ++u) {
    auto w_u = std::span<double>(user_factors_).subspan(u * rank, rank);
    const std::size_t lo = data_->user_offsets[u];
    const std::size_t hi = data_->user_offsets[u + 1];
    if (lo == hi) continue;
    const double inv_n = 1.0 / static_cast<double>(hi - lo);

    for (std::size_t k = lo; k < hi; ++k) {
      const Rating& r = data_->ratings[k];
      const auto h_i = row(params, r.item, rank);
      const double err = dot(w_u, h_i) - r.value;

      // Local step on the user factor (data-parallel, never leaves the
      // worker), projected to stay non-negative.
      for (std::size_t f = 0; f < rank; ++f) {
        w_u[f] -= lr * inv_n * (err * h_i[f] + config_.l2_reg * w_u[f]);
        w_u[f] = std::max(w_u[f], 0.0);
      }
      // Shared-model gradient for the item factor, pushed to servers.
      auto upd_i = row(update_out, r.item, rank);
      for (std::size_t f = 0; f < rank; ++f)
        upd_i[f] -= lr * inv_n * (err * w_u[f] + config_.l2_reg * h_i[f]);
    }
  }
}

void NmfApp::apply_update(std::span<double> params, std::span<const double> update) const {
  assert(params.size() == update.size());
  for (std::size_t i = 0; i < params.size(); ++i)
    params[i] = std::max(params[i] + update[i], 0.0);
}

double NmfApp::loss(std::span<const double> params) {
  const std::size_t rank = config_.rank;
  double sq = 0.0;
  for (const Rating& r : data_->ratings) {
    const auto w_u = std::span<const double>(user_factors_).subspan(r.user * rank, rank);
    const double err = dot(w_u, row(params, r.item, rank)) - r.value;
    sq += err * err;
  }
  return 0.5 * sq / std::max<double>(1.0, static_cast<double>(data_->ratings.size()));
}

}  // namespace harmony::ml
