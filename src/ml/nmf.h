// Non-negative matrix factorization — the paper's recommendation workload
// (Netflix). Server-side model: item factor matrix H (items × rank). Worker
// state: user factor rows W_u for the worker's user partition, updated
// locally every iteration (the standard PS formulation of distributed MF:
// user factors are data-parallel, item factors are the shared model).
#pragma once

#include <memory>
#include <vector>

#include "ml/app.h"
#include "ml/dataset.h"

namespace harmony::ml {

struct NmfConfig {
  std::size_t rank = 16;
  double learning_rate = 0.02;
  double l2_reg = 1e-3;
  std::uint64_t init_seed = 7;
};

class NmfApp final : public MlApp {
 public:
  NmfApp(std::shared_ptr<const RatingsDataset> data, NmfConfig config = {});

  std::string name() const override { return "NMF"; }
  std::size_t param_dim() const override { return data_->num_items * config_.rank; }
  // Input units are users: a contiguous user range is a contiguous slice of
  // the ratings array (RatingsDataset keeps user_offsets).
  std::size_t num_data() const override { return data_->num_users; }
  void init_params(std::span<double> params) const override;
  void compute_update(std::span<const double> params, std::span<double> update_out,
                      std::size_t begin, std::size_t end) override;
  // Adds the gradient and projects onto the non-negative orthant.
  void apply_update(std::span<double> params, std::span<const double> update) const override;
  double loss(std::span<const double> params) override;
  std::size_t input_bytes() const override { return data_->bytes(); }

  const NmfConfig& config() const noexcept { return config_; }

 private:
  std::shared_ptr<const RatingsDataset> data_;
  NmfConfig config_;
  // User factors, rank doubles per user. Concurrent compute_update calls on
  // disjoint user ranges touch disjoint rows (see MlApp thread-safety note).
  std::vector<double> user_factors_;
};

}  // namespace harmony::ml
