#include "obs/analysis/analysis.h"

#include "obs/analysis/internal.h"

namespace harmony::obs::analysis {

RunAnalysis analyze(std::vector<TraceEvent> events, const RunTotals* totals,
                    const AnalysisOptions& options) {
  RunAnalysis out;
  out.options = options;
  const internal::TraceIndex index = internal::build_index(std::move(events));
  internal::attribute_phases(index, out);
  internal::classify_bounds(index, out);
  internal::rollup_cluster(index, totals, out);
  return out;
}

}  // namespace harmony::obs::analysis
