// Trace analysis engine (read-only interpretation of the observability data).
//
// Consumes a vector of TraceEvents — from Tracer::snapshot() in-process, or
// re-loaded from an exported Chrome trace (see report.h) — plus optional
// ground-truth run totals, and derives the quantities the paper's evaluation
// is built on:
//
//  * per-job, per-iteration phase attribution: how each iteration's wall time
//    splits into PULL / COMP / PUSH service, spill-reload stalls, checkpoint
//    pauses and sync-wait (lane queueing), reconciling exactly with the
//    iteration spans;
//  * per-group bound classification: CPU-bound vs network-bound per time
//    window from measured lane busy-time (the bound-switch at the heart of
//    Algorithm 1's performance model, §IV), with bound-switch events
//    surfaced and every scheduler kPrediction instant scored against what
//    actually happened (Fig. 13-style model-error report);
//  * cluster roll-ups: utilization timelines, the JCT CDF, per-lane
//    busy/idle heatmap rows and straggler attribution (which subtask chain
//    bounds each job's iterations).
//
// Everything here is a pure function of its inputs: analysis never touches
// the live Tracer or MetricsRegistry (enforced by tools/lint.py's
// read-only-analysis rule), so running it cannot perturb a measurement, and
// identical traces produce identical — byte-identical, via report.h —
// results.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace harmony::obs::analysis {

// Which lane bounds a group in a window. Mirrors core::Bound (Eq. 1's
// arg-max) without depending on the scheduler library: obs stays a leaf.
enum class Bound : std::uint8_t { kCpu, kNet };

const char* to_string(Bound bound) noexcept;

// Seconds of an iteration attributed to each phase. `wait` is the residual:
// iteration wall time not covered by any recorded service/stall span, i.e.
// time queued behind co-located jobs on the group's lanes (sync-wait).
struct PhaseTotals {
  double pull = 0.0;
  double comp = 0.0;
  double push = 0.0;
  double reload = 0.0;
  double checkpoint = 0.0;
  double wait = 0.0;

  double total() const noexcept {
    return pull + comp + push + reload + checkpoint + wait;
  }
  void add(const PhaseTotals& o) noexcept {
    pull += o.pull;
    comp += o.comp;
    push += o.push;
    reload += o.reload;
    checkpoint += o.checkpoint;
    wait += o.wait;
  }
  // Largest attributed component ("pull"/"comp"/"push"/"reload"/
  // "checkpoint"/"wait"); ties resolve to the earlier pipeline stage.
  const char* dominant() const noexcept;
};

struct JobAnalysis {
  std::uint32_t job = 0;
  std::size_t iterations = 0;
  double first_event_sec = 0.0;  // start of the job's earliest event
  double last_event_sec = 0.0;   // end of the job's latest event
  PhaseTotals phases;            // summed over all iterations (+ checkpoints)
  double iteration_total_sec = 0.0;  // Σ iteration wall times
  double mean_iteration_sec = 0.0;
  // Ground truth when RunTotals was provided, else derived from the trace
  // (submit = first event start, finish = last event end).
  double submit_sec = 0.0;
  double finish_sec = 0.0;
  double jct_sec = 0.0;
  // JCT not inside any iteration or checkpoint pause: profiling queue time,
  // parked time during regroups, arrival-to-schedule latency.
  double outside_iterations_sec = 0.0;
};

struct BoundWindow {
  double t0_sec = 0.0;
  double t1_sec = 0.0;
  double comp_busy_sec = 0.0;  // COMP service inside the window
  double comm_busy_sec = 0.0;  // PULL + PUSH service inside the window
  Bound bound = Bound::kCpu;
};

struct BoundSwitch {
  double t_sec = 0.0;  // start of the window that flipped
  Bound from = Bound::kCpu;
  Bound to = Bound::kNet;
};

// One scheduler kPrediction instant scored against measured behaviour in the
// horizon that follows it.
struct PredictionCheck {
  double t_sec = 0.0;
  double predicted_titr_sec = 0.0;
  Bound predicted_bound = Bound::kCpu;
  double measured_titr_sec = 0.0;  // 0 when too few iterations followed
  Bound measured_bound = Bound::kCpu;
  bool measured = false;       // enough post-prediction activity to score
  bool bound_agrees = false;   // valid when measured
  double titr_rel_error = 0.0;  // |measured - predicted| / predicted
};

struct GroupAnalysis {
  std::uint32_t group = 0;
  double created_sec = 0.0;
  double dissolved_sec = 0.0;  // last activity when no dissolve was traced
  std::size_t machines = 0;    // DoP at creation (expansion is not traced)
  double comp_busy_sec = 0.0;
  double comm_busy_sec = 0.0;
  double busy_fraction_cpu = 0.0;  // busy / lifetime, the heatmap row value
  double busy_fraction_net = 0.0;
  std::vector<BoundWindow> windows;
  std::vector<BoundSwitch> switches;
  std::vector<PredictionCheck> predictions;
};

struct UtilizationWindow {
  double t0_sec = 0.0;
  double t1_sec = 0.0;
  double cpu = 0.0;  // machine-weighted comp-lane busy fraction
  double net = 0.0;
  std::size_t live_groups = 0;
};

struct CdfPoint {
  double x = 0.0;
  double f = 0.0;
};

struct StragglerRecord {
  std::uint32_t job = 0;
  double mean_iteration_sec = 0.0;
  double vs_cluster_mean = 0.0;     // mean iteration / cluster mean iteration
  const char* bottleneck = "comp";  // dominant phase of the job's iterations
};

// Ground truth from the harness (RunSummary-shaped, but decoupled from
// src/exp so obs stays a leaf library). When absent, the analysis derives
// JCT-like quantities from the trace alone and flags them as such.
struct RunTotals {
  double makespan_sec = 0.0;
  struct JobOutcome {
    std::uint32_t job = 0;
    double submit_sec = 0.0;
    double finish_sec = 0.0;
  };
  std::vector<JobOutcome> jobs;
};

struct AnalysisOptions {
  // Window for bound classification and utilization roll-ups; the paper
  // samples utilization at 1-minute intervals.
  double window_sec = 60.0;
  std::size_t cdf_points = 20;
  std::size_t top_stragglers = 5;
  // Minimum iteration samples after a prediction before it is scored.
  std::size_t min_prediction_samples = 3;
};

struct RunAnalysis {
  AnalysisOptions options;
  ClockDomain clock = ClockDomain::kSim;
  bool has_totals = false;
  double start_sec = 0.0;  // earliest event start
  double end_sec = 0.0;    // latest event end
  double makespan_sec = 0.0;  // from totals, else end - start
  std::size_t event_count = 0;
  std::map<std::string, std::size_t> events_by_kind;

  std::vector<JobAnalysis> jobs;      // sorted by job id
  std::vector<GroupAnalysis> groups;  // sorted by group id
  PhaseTotals cluster_phases;         // Σ over jobs

  std::vector<UtilizationWindow> utilization;
  std::vector<CdfPoint> jct_cdf;
  std::vector<StragglerRecord> stragglers;

  // Model-error roll-up over every scored prediction (Fig. 13 style).
  std::size_t predictions_total = 0;
  std::size_t predictions_scored = 0;
  std::size_t bound_agreements = 0;
  double titr_mean_rel_error = 0.0;

  double bound_agreement() const noexcept {
    return predictions_scored > 0
               ? static_cast<double>(bound_agreements) /
                     static_cast<double>(predictions_scored)
               : 0.0;
  }
};

// Runs the full pipeline over `events` (any order; the engine sorts a copy).
// Events from a clock domain other than the dominant one are ignored, so a
// mixed sim+wall trace analyzes its majority domain. `totals` may be null.
RunAnalysis analyze(std::vector<TraceEvent> events, const RunTotals* totals = nullptr,
                    const AnalysisOptions& options = {});

}  // namespace harmony::obs::analysis
