// Stage 2: per-group critical-path / bound classification.
//
// For each group the lifetime is cut into fixed windows and the measured
// busy-time of the two pipelined lanes (COMP vs PULL+PUSH service) decides
// which resource bounds the group in that window — the empirical counterpart
// of Eq. 1's arg-max. A window whose busier lane flips relative to the
// previous classified window is a bound-switch event, the behaviour
// Algorithm 1's model predicts when DoP or membership changes.
//
// Every scheduler kPrediction instant (predicted T_itr + predicted bound,
// recorded at decision time) is then scored against the window that followed
// it: measured bound from lane busy-time, measured T_itr as the mean of
// steady-state member iterations inside the horizon. The roll-up is the
// online model-error report (Fig. 13 style), and "does the measured bound
// agree with the scheduler's decision?" becomes a checkable number.
#include <algorithm>
#include <cmath>

#include "obs/analysis/internal.h"

namespace harmony::obs::analysis {

const char* to_string(Bound bound) noexcept {
  return bound == Bound::kCpu ? "cpu" : "net";
}

}  // namespace harmony::obs::analysis

namespace harmony::obs::analysis::internal {

namespace {

// Busy seconds of `spans` (sorted by start) inside [t0, t1).
double busy_in(const std::vector<const TraceEvent*>& spans, double t0, double t1) {
  double busy = 0.0;
  for (const TraceEvent* s : spans) {
    if (start_sec(*s) >= t1) break;
    busy += overlap_sec(*s, t0, t1);
  }
  return busy;
}

PredictionCheck score_prediction(const GroupEvents& g, const TraceEvent& p,
                                 const AnalysisOptions& options) {
  PredictionCheck check;
  check.t_sec = start_sec(p);
  check.predicted_titr_sec = p.value / kUsPerSec;
  check.predicted_bound = p.bytes != 0 ? Bound::kCpu : Bound::kNet;

  // Horizon: long enough for a few full group cycles, at least one window.
  // The first predicted cycle after a placement is warm-up (reload stalls,
  // refilling pipelines), so both the busy-time window and the iteration
  // samples start one predicted T_itr after the decision.
  const double horizon =
      std::max(4.0 * check.predicted_titr_sec, options.window_sec);
  const double t0 = check.t_sec + check.predicted_titr_sec;
  const double t1 = std::min(check.t_sec + horizon, g.dissolved_sec);

  // Steady-state iteration samples: member iterations fully inside [t0, t1].
  double iter_sum = 0.0;
  std::size_t iter_n = 0;
  for (const TraceEvent* itr : g.iterations) {
    if (start_sec(*itr) < t0) continue;
    if (end_sec(*itr) > t1) break;
    iter_sum += itr->dur_us / kUsPerSec;
    ++iter_n;
  }

  const double comp_busy = busy_in(g.comps, t0, t1);
  const double comm_busy = busy_in(g.comms, t0, t1);
  if (iter_n < options.min_prediction_samples || comp_busy + comm_busy <= 0.0)
    return check;  // not enough signal: left unscored

  check.measured = true;
  check.measured_titr_sec = iter_sum / static_cast<double>(iter_n);
  check.measured_bound = comp_busy >= comm_busy ? Bound::kCpu : Bound::kNet;
  check.bound_agrees = check.measured_bound == check.predicted_bound;
  check.titr_rel_error =
      check.predicted_titr_sec > 0.0
          ? std::abs(check.measured_titr_sec - check.predicted_titr_sec) /
                check.predicted_titr_sec
          : 0.0;
  return check;
}

}  // namespace

void classify_bounds(const TraceIndex& index, RunAnalysis& out) {
  out.groups.clear();
  out.groups.reserve(index.groups.size());
  double rel_error_sum = 0.0;

  for (const auto& [id, ev] : index.groups) {
    GroupAnalysis group;
    group.group = id;
    group.created_sec = ev.created_sec;
    group.dissolved_sec = ev.dissolved_sec;
    group.machines = static_cast<std::size_t>(ev.machines);
    group.comp_busy_sec = busy_in(ev.comps, ev.created_sec, ev.dissolved_sec);
    group.comm_busy_sec = busy_in(ev.comms, ev.created_sec, ev.dissolved_sec);
    const double lifetime = ev.dissolved_sec - ev.created_sec;
    if (lifetime > 0.0) {
      group.busy_fraction_cpu = group.comp_busy_sec / lifetime;
      group.busy_fraction_net = group.comm_busy_sec / lifetime;
    }

    // Windowed classification over the group's lifetime. Windows with no lane
    // activity at all (drained, parked) are skipped — they carry no bound.
    const double w = out.options.window_sec;
    for (double t0 = ev.created_sec; t0 < ev.dissolved_sec; t0 += w) {
      const double t1 = std::min(t0 + w, ev.dissolved_sec);
      BoundWindow window;
      window.t0_sec = t0;
      window.t1_sec = t1;
      window.comp_busy_sec = busy_in(ev.comps, t0, t1);
      window.comm_busy_sec = busy_in(ev.comms, t0, t1);
      if (window.comp_busy_sec + window.comm_busy_sec <= 0.0) continue;
      window.bound =
          window.comp_busy_sec >= window.comm_busy_sec ? Bound::kCpu : Bound::kNet;
      if (!group.windows.empty() && group.windows.back().bound != window.bound) {
        group.switches.push_back(
            BoundSwitch{window.t0_sec, group.windows.back().bound, window.bound});
      }
      group.windows.push_back(window);
    }

    for (const TraceEvent* p : ev.predictions) {
      PredictionCheck check = score_prediction(ev, *p, out.options);
      ++out.predictions_total;
      if (check.measured) {
        ++out.predictions_scored;
        out.bound_agreements += check.bound_agrees;
        rel_error_sum += check.titr_rel_error;
      }
      group.predictions.push_back(check);
    }

    out.groups.push_back(std::move(group));
  }

  out.titr_mean_rel_error = out.predictions_scored > 0
                                ? rel_error_sum / static_cast<double>(out.predictions_scored)
                                : 0.0;
}

}  // namespace harmony::obs::analysis::internal
