// Internal plumbing shared by the analysis stages: the sorted, entity-indexed
// view of a trace that every stage walks. Not part of the public API.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/analysis/analysis.h"
#include "obs/trace.h"

namespace harmony::obs::analysis::internal {

inline constexpr double kUsPerSec = 1e6;

inline double start_sec(const TraceEvent& e) noexcept { return e.ts_us / kUsPerSec; }
inline double end_sec(const TraceEvent& e) noexcept {
  return (e.ts_us + e.dur_us) / kUsPerSec;
}

// Seconds of overlap between a span event and [t0, t1).
double overlap_sec(const TraceEvent& e, double t0_sec, double t1_sec) noexcept;

struct JobEvents {
  std::uint32_t job = 0;
  // Spans sorted by start time, separated by kind (all in the index's domain).
  std::vector<const TraceEvent*> iterations;
  std::vector<const TraceEvent*> pulls;
  std::vector<const TraceEvent*> comps;
  std::vector<const TraceEvent*> pushes;
  std::vector<const TraceEvent*> reloads;
  std::vector<const TraceEvent*> checkpoints;
  double first_sec = 0.0;
  double last_sec = 0.0;
};

struct GroupEvents {
  std::uint32_t group = 0;
  std::vector<const TraceEvent*> comps;       // COMP service on this group
  std::vector<const TraceEvent*> comms;       // PULL + PUSH service
  std::vector<const TraceEvent*> iterations;  // member-job iterations
  std::vector<const TraceEvent*> predictions;
  double created_sec = -1.0;    // kGroupCreate ts, else first activity
  double dissolved_sec = -1.0;  // kGroupDissolve ts, else last activity
  std::uint64_t machines = 0;   // kGroupCreate payload
  double first_sec = 0.0;
  double last_sec = 0.0;
};

struct TraceIndex {
  ClockDomain clock = ClockDomain::kSim;
  std::vector<TraceEvent> events;  // dominant-domain events, sorted by start
  std::map<std::uint32_t, JobEvents> jobs;
  std::map<std::uint32_t, GroupEvents> groups;
  double start_sec = 0.0;
  double end_sec = 0.0;
};

// Sorts, picks the dominant clock domain, and buckets events by entity.
TraceIndex build_index(std::vector<TraceEvent> events);

// Stage 1: per-job, per-iteration phase attribution -> out.jobs,
// out.cluster_phases (iteration-interior phases + checkpoints).
void attribute_phases(const TraceIndex& index, RunAnalysis& out);

// Stage 2: per-group windowed bound classification, switch detection and
// prediction scoring -> out.groups and the model-error roll-up.
void classify_bounds(const TraceIndex& index, RunAnalysis& out);

// Stage 3: cluster roll-ups (utilization timeline, JCT CDF, stragglers),
// merging ground-truth totals when provided -> remaining RunAnalysis fields.
void rollup_cluster(const TraceIndex& index, const RunTotals* totals, RunAnalysis& out);

}  // namespace harmony::obs::analysis::internal
