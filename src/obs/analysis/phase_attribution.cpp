// Stage 1: per-job, per-iteration phase attribution.
//
// Within an iteration span, the recorded sub-spans (PULL service, reload
// stall, COMP service, PUSH service) are sequential and disjoint by
// construction of the subtask pipeline; each is assigned to the iteration
// containing its midpoint and clipped to the iteration's bounds, and the
// uncovered residual is sync-wait — time the job spent queued behind its
// co-tenants on the group's lanes. Checkpoint/migration pauses happen
// between iterations and are attributed at the job level, so
//
//   Σ phases(job) = Σ iteration walls + Σ checkpoint pauses
//
// holds exactly (to fp rounding), which is what the reconciliation tests and
// the report's coverage column rely on.
#include <algorithm>
#include <cmath>

#include "obs/analysis/internal.h"

namespace harmony::obs::analysis {

const char* PhaseTotals::dominant() const noexcept {
  const char* name = "pull";
  double best = pull;
  const auto consider = [&](double v, const char* n) {
    if (v > best) {
      best = v;
      name = n;
    }
  };
  consider(comp, "comp");
  consider(push, "push");
  consider(reload, "reload");
  consider(checkpoint, "checkpoint");
  consider(wait, "wait");
  return name;
}

}  // namespace harmony::obs::analysis

namespace harmony::obs::analysis::internal {

namespace {

// Index of the iteration whose [start, end) contains the span's midpoint;
// iterations.size() when none does (e.g. a checkpoint between iterations).
std::size_t owning_iteration(const std::vector<const TraceEvent*>& iterations,
                             const TraceEvent& span) {
  const double mid = 0.5 * (start_sec(span) + end_sec(span));
  // Iterations are sorted by start; find the last one starting at/before mid.
  auto it = std::upper_bound(iterations.begin(), iterations.end(), mid,
                             [](double t, const TraceEvent* e) { return t < start_sec(*e); });
  if (it == iterations.begin()) return iterations.size();
  --it;
  const TraceEvent& cand = **it;
  if (mid < start_sec(cand) || mid > end_sec(cand)) return iterations.size();
  return static_cast<std::size_t>(it - iterations.begin());
}

void clip_into(const std::vector<const TraceEvent*>& iterations,
               const std::vector<const TraceEvent*>& spans,
               std::vector<PhaseTotals>& per_iter, double PhaseTotals::*member) {
  for (const TraceEvent* s : spans) {
    const std::size_t idx = owning_iteration(iterations, *s);
    if (idx >= iterations.size()) continue;  // outside any iteration: rare, skip
    const TraceEvent& itr = *iterations[idx];
    per_iter[idx].*member += overlap_sec(*s, start_sec(itr), end_sec(itr));
  }
}

}  // namespace

void attribute_phases(const TraceIndex& index, RunAnalysis& out) {
  out.jobs.clear();
  out.jobs.reserve(index.jobs.size());
  for (const auto& [id, ev] : index.jobs) {
    JobAnalysis job;
    job.job = id;
    job.first_event_sec = ev.first_sec;
    job.last_event_sec = ev.last_sec;
    job.iterations = ev.iterations.size();

    std::vector<PhaseTotals> per_iter(ev.iterations.size());
    clip_into(ev.iterations, ev.pulls, per_iter, &PhaseTotals::pull);
    clip_into(ev.iterations, ev.comps, per_iter, &PhaseTotals::comp);
    clip_into(ev.iterations, ev.pushes, per_iter, &PhaseTotals::push);
    clip_into(ev.iterations, ev.reloads, per_iter, &PhaseTotals::reload);

    for (std::size_t i = 0; i < ev.iterations.size(); ++i) {
      const double wall = ev.iterations[i]->dur_us / kUsPerSec;
      job.iteration_total_sec += wall;
      PhaseTotals& p = per_iter[i];
      const double covered = p.pull + p.comp + p.push + p.reload;
      p.wait = std::max(0.0, wall - covered);
      job.phases.add(p);
    }
    // Checkpoint/migration pauses live between iterations, at job scope.
    for (const TraceEvent* c : ev.checkpoints)
      job.phases.checkpoint += c->dur_us / kUsPerSec;

    job.mean_iteration_sec =
        job.iterations > 0
            ? job.iteration_total_sec / static_cast<double>(job.iterations)
            : 0.0;
    out.cluster_phases.add(job.phases);
    out.jobs.push_back(std::move(job));
  }
}

}  // namespace harmony::obs::analysis::internal
