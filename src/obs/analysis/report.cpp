#include "obs/analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "common/json.h"

namespace harmony::obs::analysis {

namespace {

// Fixed-format numbers: every value the report prints goes through one of
// these, so output bytes depend only on the analyzed values.
std::string sec(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

std::string frac(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.4f", v);
  return buf;
}

std::string pct(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * v);
  return buf;
}

const char* clock_name(ClockDomain clock) {
  return clock == ClockDomain::kSim ? "sim" : "wall";
}

}  // namespace

// ---------------------------------------------------------------------------
// Chrome trace loader

std::vector<TraceEvent> events_from_chrome_trace(const std::string& json_text) {
  const json::JsonValue doc = json::parse_json(json_text);
  const auto& records = doc.at("traceEvents").array();
  std::vector<TraceEvent> events;
  events.reserve(records.size());
  for (const auto& rec : records) {
    const std::string& ph = rec.at("ph").string();
    if (ph == "M") continue;  // process/thread metadata
    if (ph != "X" && ph != "i")
      throw std::runtime_error("trace: unsupported event phase '" + ph + "'");
    TraceEvent e;
    const std::string& name = rec.at("name").string();
    if (!kind_from_string(name, e.kind))
      throw std::runtime_error("trace: unknown event name '" + name + "'");
    e.phase = ph == "X" ? Phase::kComplete : Phase::kInstant;
    e.ts_us = rec.at("ts").number();
    if (ph == "X") e.dur_us = rec.at("dur").number();
    const std::string& cat = rec.at("cat").string();
    if (cat != "sim" && cat != "wall")
      throw std::runtime_error("trace: unknown clock domain '" + cat + "'");
    e.clock = cat == "sim" ? ClockDomain::kSim : ClockDomain::kWall;
    if (rec.contains("args")) {
      const auto& args = rec.at("args");
      if (args.contains("job"))
        e.job = static_cast<std::uint32_t>(args.at("job").number());
      if (args.contains("group"))
        e.group = static_cast<std::uint32_t>(args.at("group").number());
      if (args.contains("machine"))
        e.machine = static_cast<std::uint32_t>(args.at("machine").number());
      if (args.contains("bytes"))
        e.bytes = static_cast<std::uint64_t>(args.at("bytes").number());
      if (args.contains("value")) e.value = args.at("value").number();
    }
    events.push_back(e);
  }
  return events;
}

// ---------------------------------------------------------------------------
// Markdown

void write_markdown(const RunAnalysis& a, const std::string& metrics_json,
                    std::ostream& out) {
  out << "# Harmony run report\n\n";
  out << "- clock domain: " << clock_name(a.clock) << "\n";
  out << "- events analyzed: " << a.event_count << "\n";
  out << "- span: " << sec(a.start_sec) << " s – " << sec(a.end_sec) << " s\n";
  out << "- makespan: " << sec(a.makespan_sec) << " s ("
      << (a.has_totals ? "from run summary" : "derived from trace") << ")\n";
  out << "- jobs: " << a.jobs.size() << ", groups: " << a.groups.size() << "\n";

  out << "\n## Events by kind\n\n| kind | count |\n|---|---|\n";
  for (const auto& [kind, count] : a.events_by_kind)
    out << "| " << kind << " | " << count << " |\n";

  out << "\n## Phase attribution (per job)\n\n"
      << "Seconds of each job's iterations attributed to subtask phases; "
         "`wait` is lane queueing behind co-tenants, `outside` is JCT spent "
         "between iterations (profiling queue, regroup parking).\n\n"
      << "| job | iters | pull | comp | push | reload | wait | ckpt | outside "
         "| JCT | dominant |\n|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const JobAnalysis& j : a.jobs) {
    out << "| " << j.job << " | " << j.iterations << " | " << sec(j.phases.pull) << " | "
        << sec(j.phases.comp) << " | " << sec(j.phases.push) << " | "
        << sec(j.phases.reload) << " | " << sec(j.phases.wait) << " | "
        << sec(j.phases.checkpoint) << " | " << sec(j.outside_iterations_sec) << " | "
        << sec(j.jct_sec) << " | " << j.phases.dominant() << " |\n";
  }

  const double cluster_total = a.cluster_phases.total();
  out << "\n## Cluster phase shares\n\n| phase | seconds | share |\n|---|---|---|\n";
  const auto share_row = [&](const char* name, double v) {
    out << "| " << name << " | " << sec(v) << " | "
        << (cluster_total > 0.0 ? pct(v / cluster_total) : pct(0.0)) << " |\n";
  };
  share_row("pull", a.cluster_phases.pull);
  share_row("comp", a.cluster_phases.comp);
  share_row("push", a.cluster_phases.push);
  share_row("reload", a.cluster_phases.reload);
  share_row("wait", a.cluster_phases.wait);
  share_row("checkpoint", a.cluster_phases.checkpoint);

  out << "\n## Group bound classification\n\n"
      << "Measured per-window critical path: CPU-bound when the COMP lane out-busies "
         "the PULL+PUSH lane (Eq. 1's arg-max, from observed busy-time).\n\n"
      << "| group | machines | lifetime s | cpu busy | net busy | windows | cpu-bound "
         "| net-bound | switches | predictions | agreement | T_itr err |\n"
      << "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const GroupAnalysis& g : a.groups) {
    std::size_t cpu_windows = 0;
    for (const BoundWindow& w : g.windows) cpu_windows += w.bound == Bound::kCpu;
    std::size_t scored = 0, agree = 0;
    double err_sum = 0.0;
    for (const PredictionCheck& p : g.predictions) {
      if (!p.measured) continue;
      ++scored;
      agree += p.bound_agrees;
      err_sum += p.titr_rel_error;
    }
    out << "| " << g.group << " | " << g.machines << " | "
        << sec(g.dissolved_sec - g.created_sec) << " | " << pct(g.busy_fraction_cpu)
        << " | " << pct(g.busy_fraction_net) << " | " << g.windows.size() << " | "
        << cpu_windows << " | " << (g.windows.size() - cpu_windows) << " | "
        << g.switches.size() << " | " << g.predictions.size() << " | "
        << (scored > 0 ? pct(static_cast<double>(agree) / static_cast<double>(scored))
                       : std::string("n/a"))
        << " | "
        << (scored > 0 ? frac(err_sum / static_cast<double>(scored)) : std::string("n/a"))
        << " |\n";
  }

  // Bound switches, capped so pathological traces stay readable.
  std::size_t switch_total = 0;
  for (const GroupAnalysis& g : a.groups) switch_total += g.switches.size();
  out << "\n### Bound switches (" << switch_total << ")\n\n";
  if (switch_total == 0) {
    out << "none observed\n";
  } else {
    out << "| t (s) | group | flip |\n|---|---|---|\n";
    std::size_t emitted = 0;
    for (const GroupAnalysis& g : a.groups) {
      for (const BoundSwitch& s : g.switches) {
        if (emitted >= 20) break;
        out << "| " << sec(s.t_sec) << " | " << g.group << " | " << to_string(s.from)
            << " -> " << to_string(s.to) << " |\n";
        ++emitted;
      }
    }
    if (switch_total > 20) out << "\n(showing first 20)\n";
  }

  out << "\n## Model error (Fig. 13 style)\n\n";
  out << "- predictions recorded: " << a.predictions_total << ", scored: "
      << a.predictions_scored << "\n";
  if (a.predictions_scored > 0) {
    out << "- bound agreement with scheduler decisions: " << pct(a.bound_agreement())
        << "\n";
    out << "- mean |T_itr relative error|: " << frac(a.titr_mean_rel_error) << "\n";
  } else {
    out << "- no scored predictions (trace lacks kPrediction events or "
           "post-decision iterations)\n";
  }

  out << "\n## Utilization timeline\n\n"
      << "Machine-weighted lane busy fractions per " << sec(a.options.window_sec)
      << " s window (creation-time DoP approximation).\n\n"
      << "| t0 (s) | cpu | net | live groups |\n|---|---|---|---|\n";
  // Downsample long runs to at most 40 rows, deterministically.
  const std::size_t stride =
      a.utilization.size() > 40 ? (a.utilization.size() + 39) / 40 : 1;
  for (std::size_t i = 0; i < a.utilization.size(); i += stride) {
    const UtilizationWindow& w = a.utilization[i];
    out << "| " << sec(w.t0_sec) << " | " << pct(w.cpu) << " | " << pct(w.net) << " | "
        << w.live_groups << " |\n";
  }

  out << "\n## JCT CDF\n\n| JCT (s) | F |\n|---|---|\n";
  for (const CdfPoint& p : a.jct_cdf)
    out << "| " << sec(p.x) << " | " << frac(p.f) << " |\n";

  out << "\n## Stragglers\n\n"
      << "Jobs with the slowest mean iterations and the subtask chain that "
         "bounds them.\n\n"
      << "| job | mean iter (s) | vs cluster mean | bottleneck |\n|---|---|---|---|\n";
  for (const StragglerRecord& s : a.stragglers) {
    out << "| " << s.job << " | " << sec(s.mean_iteration_sec) << " | "
        << frac(s.vs_cluster_mean) << "x | " << s.bottleneck << " |\n";
  }

  if (!metrics_json.empty()) {
    out << "\n## Metrics snapshot\n\n| metric | value |\n|---|---|\n";
    const json::JsonValue doc = json::parse_json(metrics_json);
    if (doc.contains("counters")) {
      for (const auto& [name, v] : doc.at("counters").object()) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.0f", v.number());
        out << "| " << name << " | " << buf << " |\n";
      }
    }
    if (doc.contains("gauges")) {
      for (const auto& [name, v] : doc.at("gauges").object()) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%.17g", v.number());
        out << "| " << name << " | " << buf << " |\n";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// JSON

namespace {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void open_object() { punctuate("{"); }
  void close_object() {
    out_ << "}";
    fresh_ = false;
  }
  void open_array() { punctuate("["); }
  void close_array() {
    out_ << "]";
    fresh_ = false;
  }
  void key(const char* k) {
    comma();
    out_ << "\"" << k << "\":";
    fresh_ = true;
  }
  void value(const std::string& s) { punctuate("\"" + s + "\""); }
  void value(const char* s) { value(std::string(s)); }
  // %.17g: exact double round-trip, so JSON consumers can re-check the
  // reconciliation invariants (Σ phases + outside == JCT) to full precision.
  void value(double v) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    punctuate(buf);
  }
  void value(std::size_t v) { punctuate(std::to_string(v)); }
  void value(bool v) { punctuate(v ? "true" : "false"); }
  void raw(const std::string& text) { punctuate(text); }

 private:
  void comma() {
    if (!fresh_) out_ << ",";
    fresh_ = true;
  }
  void punctuate(const std::string& tok) {
    comma();
    out_ << tok;
    fresh_ = tok == "{" || tok == "[";
  }

  std::ostream& out_;
  bool fresh_ = true;
};

}  // namespace

void write_json(const RunAnalysis& a, const std::string& metrics_json, std::ostream& out) {
  JsonWriter w(out);
  w.open_object();
  w.key("schema");
  w.value("harmony-run-report-v1");
  w.key("clock");
  w.value(clock_name(a.clock));
  w.key("events");
  w.value(a.event_count);
  w.key("start_sec");
  w.value(a.start_sec);
  w.key("end_sec");
  w.value(a.end_sec);
  w.key("makespan_sec");
  w.value(a.makespan_sec);
  w.key("makespan_source");
  w.value(a.has_totals ? "run_summary" : "trace");
  w.key("window_sec");
  w.value(a.options.window_sec);

  w.key("events_by_kind");
  w.open_object();
  for (const auto& [kind, count] : a.events_by_kind) {
    w.key(kind.c_str());
    w.value(count);
  }
  w.close_object();

  w.key("jobs");
  w.open_array();
  for (const JobAnalysis& j : a.jobs) {
    w.open_object();
    w.key("job");
    w.value(static_cast<std::size_t>(j.job));
    w.key("iterations");
    w.value(j.iterations);
    w.key("submit_sec");
    w.value(j.submit_sec);
    w.key("finish_sec");
    w.value(j.finish_sec);
    w.key("jct_sec");
    w.value(j.jct_sec);
    w.key("iteration_total_sec");
    w.value(j.iteration_total_sec);
    w.key("mean_iteration_sec");
    w.value(j.mean_iteration_sec);
    w.key("outside_iterations_sec");
    w.value(j.outside_iterations_sec);
    w.key("dominant_phase");
    w.value(j.phases.dominant());
    w.key("phases_sec");
    w.open_object();
    w.key("pull");
    w.value(j.phases.pull);
    w.key("comp");
    w.value(j.phases.comp);
    w.key("push");
    w.value(j.phases.push);
    w.key("reload");
    w.value(j.phases.reload);
    w.key("wait");
    w.value(j.phases.wait);
    w.key("checkpoint");
    w.value(j.phases.checkpoint);
    w.close_object();
    w.close_object();
  }
  w.close_array();

  w.key("cluster_phases_sec");
  w.open_object();
  w.key("pull");
  w.value(a.cluster_phases.pull);
  w.key("comp");
  w.value(a.cluster_phases.comp);
  w.key("push");
  w.value(a.cluster_phases.push);
  w.key("reload");
  w.value(a.cluster_phases.reload);
  w.key("wait");
  w.value(a.cluster_phases.wait);
  w.key("checkpoint");
  w.value(a.cluster_phases.checkpoint);
  w.close_object();

  w.key("groups");
  w.open_array();
  for (const GroupAnalysis& g : a.groups) {
    w.open_object();
    w.key("group");
    w.value(static_cast<std::size_t>(g.group));
    w.key("machines");
    w.value(g.machines);
    w.key("created_sec");
    w.value(g.created_sec);
    w.key("dissolved_sec");
    w.value(g.dissolved_sec);
    w.key("comp_busy_sec");
    w.value(g.comp_busy_sec);
    w.key("comm_busy_sec");
    w.value(g.comm_busy_sec);
    w.key("busy_fraction_cpu");
    w.value(g.busy_fraction_cpu);
    w.key("busy_fraction_net");
    w.value(g.busy_fraction_net);
    w.key("windows");
    w.open_array();
    for (const BoundWindow& win : g.windows) {
      w.open_object();
      w.key("t0_sec");
      w.value(win.t0_sec);
      w.key("t1_sec");
      w.value(win.t1_sec);
      w.key("comp_busy_sec");
      w.value(win.comp_busy_sec);
      w.key("comm_busy_sec");
      w.value(win.comm_busy_sec);
      w.key("bound");
      w.value(to_string(win.bound));
      w.close_object();
    }
    w.close_array();
    w.key("bound_switches");
    w.open_array();
    for (const BoundSwitch& s : g.switches) {
      w.open_object();
      w.key("t_sec");
      w.value(s.t_sec);
      w.key("from");
      w.value(to_string(s.from));
      w.key("to");
      w.value(to_string(s.to));
      w.close_object();
    }
    w.close_array();
    w.key("predictions");
    w.open_array();
    for (const PredictionCheck& p : g.predictions) {
      w.open_object();
      w.key("t_sec");
      w.value(p.t_sec);
      w.key("predicted_titr_sec");
      w.value(p.predicted_titr_sec);
      w.key("predicted_bound");
      w.value(to_string(p.predicted_bound));
      w.key("measured");
      w.value(p.measured);
      if (p.measured) {
        w.key("measured_titr_sec");
        w.value(p.measured_titr_sec);
        w.key("measured_bound");
        w.value(to_string(p.measured_bound));
        w.key("bound_agrees");
        w.value(p.bound_agrees);
        w.key("titr_rel_error");
        w.value(p.titr_rel_error);
      }
      w.close_object();
    }
    w.close_array();
    w.close_object();
  }
  w.close_array();

  w.key("model_error");
  w.open_object();
  w.key("predictions_total");
  w.value(a.predictions_total);
  w.key("predictions_scored");
  w.value(a.predictions_scored);
  w.key("bound_agreement");
  w.value(a.bound_agreement());
  w.key("titr_mean_rel_error");
  w.value(a.titr_mean_rel_error);
  w.close_object();

  w.key("utilization");
  w.open_array();
  for (const UtilizationWindow& u : a.utilization) {
    w.open_object();
    w.key("t0_sec");
    w.value(u.t0_sec);
    w.key("t1_sec");
    w.value(u.t1_sec);
    w.key("cpu");
    w.value(u.cpu);
    w.key("net");
    w.value(u.net);
    w.key("live_groups");
    w.value(u.live_groups);
    w.close_object();
  }
  w.close_array();

  w.key("jct_cdf");
  w.open_array();
  for (const CdfPoint& p : a.jct_cdf) {
    w.open_object();
    w.key("jct_sec");
    w.value(p.x);
    w.key("f");
    w.value(p.f);
    w.close_object();
  }
  w.close_array();

  w.key("stragglers");
  w.open_array();
  for (const StragglerRecord& s : a.stragglers) {
    w.open_object();
    w.key("job");
    w.value(static_cast<std::size_t>(s.job));
    w.key("mean_iteration_sec");
    w.value(s.mean_iteration_sec);
    w.key("vs_cluster_mean");
    w.value(s.vs_cluster_mean);
    w.key("bottleneck");
    w.value(s.bottleneck);
    w.close_object();
  }
  w.close_array();

  if (!metrics_json.empty()) {
    // The registry snapshot is already a deterministic, key-sorted JSON
    // object; validate and embed it verbatim.
    (void)json::parse_json(metrics_json);
    w.key("metrics");
    w.raw(metrics_json);
  }

  w.close_object();
  out << "\n";
}

bool write_report_files(const RunAnalysis& analysis, const std::string& metrics_json,
                        const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;
  {
    std::ofstream md(dir + "/report.md");
    if (!md) return false;
    write_markdown(analysis, metrics_json, md);
    if (!md.flush()) return false;
  }
  {
    std::ofstream js(dir + "/report.json");
    if (!js) return false;
    write_json(analysis, metrics_json, js);
    if (!js.flush()) return false;
  }
  return true;
}

}  // namespace harmony::obs::analysis
