// Run reports: deterministic Markdown + JSON renderings of a RunAnalysis,
// plus the loader that turns an exported Chrome trace back into TraceEvents
// so the harmony-report CLI can analyze a file it did not record.
//
// Determinism guarantee: both writers are pure functions of the RunAnalysis
// and the (already deterministic, key-sorted) metrics snapshot text — fixed
// formats, sorted entities, no clocks, no locales. Two identical traces
// produce byte-identical reports; the golden-determinism test pins this.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/analysis/analysis.h"

namespace harmony::obs::analysis {

// Parses a Chrome trace-event JSON document (the Tracer::write_chrome_trace
// format) back into events. Metadata records are skipped; unknown event
// names throw std::runtime_error, as does malformed JSON.
std::vector<TraceEvent> events_from_chrome_trace(const std::string& json_text);

// Human-facing Markdown run report. `metrics_json` is a MetricsRegistry
// snapshot to fold in (selected counters/gauges), or "" for none.
void write_markdown(const RunAnalysis& analysis, const std::string& metrics_json,
                    std::ostream& out);

// Machine-facing JSON run report (schema "harmony-run-report-v1"); the
// metrics snapshot is embedded verbatim under "metrics" when present.
void write_json(const RunAnalysis& analysis, const std::string& metrics_json,
                std::ostream& out);

// Writes <dir>/report.md and <dir>/report.json (creating `dir` if needed).
// Returns false on I/O failure.
bool write_report_files(const RunAnalysis& analysis, const std::string& metrics_json,
                        const std::string& dir);

}  // namespace harmony::obs::analysis
