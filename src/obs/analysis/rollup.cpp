// Stage 3: cluster roll-ups — utilization timeline, JCT CDF, stragglers —
// plus the merge of harness ground truth (RunTotals) into the per-job rows.
//
// Utilization is machine-weighted lane busy-time: in each window, every group
// alive in it contributes its creation-time DoP worth of machines, busy for
// the COMP (CPU) or PULL+PUSH (network) seconds its lanes served. DoP growth
// from tail expansion is not traced, so this is the creation-time
// approximation; the report labels it as such.
#include <algorithm>
#include <cmath>

#include "obs/analysis/internal.h"

namespace harmony::obs::analysis::internal {

namespace {

double busy_in(const std::vector<const TraceEvent*>& spans, double t0, double t1) {
  double busy = 0.0;
  for (const TraceEvent* s : spans) {
    if (start_sec(*s) >= t1) break;
    busy += overlap_sec(*s, t0, t1);
  }
  return busy;
}

std::vector<CdfPoint> cdf_of(std::vector<double> samples, std::size_t points) {
  std::vector<CdfPoint> cdf;
  if (samples.empty() || points == 0) return cdf;
  std::sort(samples.begin(), samples.end());
  const double lo = samples.front();
  const double hi = samples.back();
  const std::size_t n = std::max<std::size_t>(points, 2);
  cdf.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
    const auto le = std::upper_bound(samples.begin(), samples.end(), x) - samples.begin();
    cdf.push_back(CdfPoint{x, static_cast<double>(le) / static_cast<double>(samples.size())});
  }
  return cdf;
}

}  // namespace

void rollup_cluster(const TraceIndex& index, const RunTotals* totals, RunAnalysis& out) {
  out.start_sec = index.start_sec;
  out.end_sec = index.end_sec;
  out.clock = index.clock;
  out.event_count = index.events.size();
  for (const TraceEvent& e : index.events) ++out.events_by_kind[to_string(e.kind)];

  // --- merge ground truth (or derive JCTs from the trace) -----------------
  out.has_totals = totals != nullptr;
  out.makespan_sec = totals ? totals->makespan_sec : index.end_sec - index.start_sec;
  for (JobAnalysis& job : out.jobs) {
    job.submit_sec = job.first_event_sec;
    job.finish_sec = job.last_event_sec;
    if (totals) {
      for (const RunTotals::JobOutcome& o : totals->jobs) {
        if (o.job == job.job) {
          job.submit_sec = o.submit_sec;
          job.finish_sec = o.finish_sec;
          break;
        }
      }
    }
    job.jct_sec = job.finish_sec - job.submit_sec;
    job.outside_iterations_sec = std::max(
        0.0, job.jct_sec - job.iteration_total_sec - job.phases.checkpoint);
  }

  // --- utilization timeline ----------------------------------------------
  const double w = out.options.window_sec;
  if (w > 0.0 && index.end_sec > index.start_sec) {
    const double origin = index.start_sec;
    const auto windows =
        static_cast<std::size_t>(std::ceil((index.end_sec - origin) / w));
    out.utilization.reserve(windows);
    for (std::size_t k = 0; k < windows; ++k) {
      UtilizationWindow uw;
      uw.t0_sec = origin + static_cast<double>(k) * w;
      uw.t1_sec = std::min(uw.t0_sec + w, index.end_sec);
      double machine_seconds = 0.0;
      double cpu_busy_machine_sec = 0.0;
      double net_busy_machine_sec = 0.0;
      for (const auto& [id, g] : index.groups) {
        const double live0 = std::max(uw.t0_sec, g.created_sec);
        const double live1 = std::min(uw.t1_sec, g.dissolved_sec);
        if (live1 <= live0) continue;
        ++uw.live_groups;
        const double m = static_cast<double>(std::max<std::uint64_t>(1, g.machines));
        machine_seconds += (live1 - live0) * m;
        cpu_busy_machine_sec += busy_in(g.comps, live0, live1) * m;
        net_busy_machine_sec += busy_in(g.comms, live0, live1) * m;
      }
      if (machine_seconds > 0.0) {
        uw.cpu = cpu_busy_machine_sec / machine_seconds;
        uw.net = net_busy_machine_sec / machine_seconds;
      }
      out.utilization.push_back(uw);
    }
  }

  // --- JCT CDF -------------------------------------------------------------
  std::vector<double> jcts;
  jcts.reserve(out.jobs.size());
  for (const JobAnalysis& job : out.jobs)
    if (job.jct_sec > 0.0) jcts.push_back(job.jct_sec);
  out.jct_cdf = cdf_of(std::move(jcts), out.options.cdf_points);

  // --- straggler attribution ----------------------------------------------
  double iter_sum = 0.0;
  std::size_t iter_jobs = 0;
  for (const JobAnalysis& job : out.jobs) {
    if (job.iterations == 0) continue;
    iter_sum += job.mean_iteration_sec;
    ++iter_jobs;
  }
  const double cluster_mean = iter_jobs > 0 ? iter_sum / static_cast<double>(iter_jobs) : 0.0;
  if (cluster_mean > 0.0) {
    std::vector<const JobAnalysis*> ranked;
    for (const JobAnalysis& job : out.jobs)
      if (job.iterations > 0) ranked.push_back(&job);
    std::sort(ranked.begin(), ranked.end(), [](const JobAnalysis* a, const JobAnalysis* b) {
      if (a->mean_iteration_sec != b->mean_iteration_sec)
        return a->mean_iteration_sec > b->mean_iteration_sec;
      return a->job < b->job;
    });
    const std::size_t top = std::min(out.options.top_stragglers, ranked.size());
    out.stragglers.reserve(top);
    for (std::size_t i = 0; i < top; ++i) {
      const JobAnalysis& job = *ranked[i];
      StragglerRecord rec;
      rec.job = job.job;
      rec.mean_iteration_sec = job.mean_iteration_sec;
      rec.vs_cluster_mean = job.mean_iteration_sec / cluster_mean;
      rec.bottleneck = job.phases.dominant();
      out.stragglers.push_back(rec);
    }
  }
}

}  // namespace harmony::obs::analysis::internal
