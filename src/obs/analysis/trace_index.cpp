#include "obs/analysis/internal.h"

#include <algorithm>

namespace harmony::obs::analysis::internal {

double overlap_sec(const TraceEvent& e, double t0_sec, double t1_sec) noexcept {
  const double s = std::max(start_sec(e), t0_sec);
  const double t = std::min(end_sec(e), t1_sec);
  return t > s ? t - s : 0.0;
}

TraceIndex build_index(std::vector<TraceEvent> events) {
  TraceIndex index;

  // Majority clock domain wins; ties go to sim (the deterministic domain).
  std::size_t sim_count = 0;
  for (const TraceEvent& e : events) sim_count += e.clock == ClockDomain::kSim;
  index.clock =
      2 * sim_count >= events.size() ? ClockDomain::kSim : ClockDomain::kWall;
  std::erase_if(events, [&](const TraceEvent& e) { return e.clock != index.clock; });

  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) { return a.ts_us < b.ts_us; });
  index.events = std::move(events);
  if (!index.events.empty()) {
    index.start_sec = start_sec(index.events.front());
    index.end_sec = index.start_sec;
  }

  for (const TraceEvent& e : index.events) {
    index.end_sec = std::max(index.end_sec, end_sec(e));

    if (e.job != kNoEntity) {
      auto [jit, job_fresh] = index.jobs.try_emplace(e.job);
      JobEvents& j = jit->second;
      if (job_fresh) {
        j.job = e.job;
        j.first_sec = start_sec(e);
        j.last_sec = end_sec(e);
      }
      j.first_sec = std::min(j.first_sec, start_sec(e));
      j.last_sec = std::max(j.last_sec, end_sec(e));
      switch (e.kind) {
        case EventKind::kIteration: j.iterations.push_back(&e); break;
        case EventKind::kSubtaskPull: j.pulls.push_back(&e); break;
        case EventKind::kSubtaskComp: j.comps.push_back(&e); break;
        case EventKind::kSubtaskPush: j.pushes.push_back(&e); break;
        case EventKind::kReload: j.reloads.push_back(&e); break;
        case EventKind::kCheckpoint: j.checkpoints.push_back(&e); break;
        default: break;
      }
    }

    if (e.group != kNoEntity) {
      auto [git, group_fresh] = index.groups.try_emplace(e.group);
      GroupEvents& g = git->second;
      if (group_fresh) {
        g.group = e.group;
        g.first_sec = start_sec(e);
        g.last_sec = end_sec(e);
      }
      g.first_sec = std::min(g.first_sec, start_sec(e));
      g.last_sec = std::max(g.last_sec, end_sec(e));
      switch (e.kind) {
        case EventKind::kSubtaskComp: g.comps.push_back(&e); break;
        case EventKind::kSubtaskPull:
        case EventKind::kSubtaskPush: g.comms.push_back(&e); break;
        case EventKind::kIteration: g.iterations.push_back(&e); break;
        case EventKind::kPrediction: g.predictions.push_back(&e); break;
        case EventKind::kGroupCreate:
          g.created_sec = start_sec(e);
          g.machines = e.bytes;
          break;
        case EventKind::kGroupDissolve: g.dissolved_sec = start_sec(e); break;
        default: break;
      }
    }
  }

  for (auto& [id, g] : index.groups) {
    if (g.created_sec < 0.0) g.created_sec = g.first_sec;
    if (g.dissolved_sec < 0.0) g.dissolved_sec = g.last_sec;
  }
  return index;
}

}  // namespace harmony::obs::analysis::internal
