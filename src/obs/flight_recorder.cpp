#include "obs/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/logging.h"

namespace harmony::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder* recorder = new FlightRecorder();  // lint: allow-naked-new
  return *recorder;
}

void FlightRecorder::arm(const std::string& dir, std::size_t capacity,
                         std::size_t max_dumps) {
  // Create the bundle directory up front: an unwritable path should surface
  // at arm time, not be discovered during the crash we were meant to record.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    HLOG(kError) << "flight recorder: cannot create " << dir << ": " << ec.message();
  }
  common::MutexLock lock(mu_);
  dir_ = dir;
  capacity_ = std::max<std::size_t>(capacity, 1);
  max_dumps_ = max_dumps;
  ring_.clear();
  ring_.reserve(capacity_);
  ring_head_ = 0;
  context_.clear();
  metrics_json_.clear();
  dump_index_ = 0;
  armed_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disarm() {
  armed_.store(false, std::memory_order_relaxed);
  common::MutexLock lock(mu_);
  ring_.clear();
  ring_head_ = 0;
  context_.clear();
  metrics_json_.clear();
}

void FlightRecorder::append(const TraceEvent& event) {
  if (!armed()) return;
  common::MutexLock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[ring_head_] = event;
    ring_head_ = (ring_head_ + 1) % capacity_;
  }
}

void FlightRecorder::set_context(const std::string& key, const std::string& value) {
  if (!armed()) return;
  common::MutexLock lock(mu_);
  context_[key] = value;
}

void FlightRecorder::note_metrics_json(const std::string& json) {
  if (!armed()) return;
  common::MutexLock lock(mu_);
  metrics_json_ = json;
}

bool FlightRecorder::dump(const std::string& reason, const std::string& detail,
                          const std::string& validator) {
  if (!armed()) return false;

  std::string dir;
  std::uint64_t index = 0;
  std::vector<TraceEvent> events;
  std::map<std::string, std::string> context;
  std::string metrics;
  {
    common::MutexLock lock(mu_);
    if (dump_index_ >= max_dumps_) return false;  // disk-fill guard
    dir = dir_;
    index = dump_index_++;
    // Unroll the ring into insertion order: [head, end) then [0, head).
    events.reserve(ring_.size());
    events.insert(events.end(), ring_.begin() + static_cast<std::ptrdiff_t>(ring_head_),
                  ring_.end());
    events.insert(events.end(), ring_.begin(),
                  ring_.begin() + static_cast<std::ptrdiff_t>(ring_head_));
    context = context_;
    metrics = metrics_json_;
  }

  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    HLOG(kError) << "flight recorder: cannot create " << dir << ": " << ec.message();
    return false;
  }

  // Chrome-trace half of the bundle. The ring is insertion-ordered; the
  // writer wants (clock, ts) order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.clock != b.clock) return a.clock < b.clock;
                     return a.ts_us < b.ts_us;
                   });
  const std::string stem = dir + "/flight-" + std::to_string(index);
  {
    std::ofstream out(stem + ".trace.json");
    if (!out) {
      HLOG(kError) << "flight recorder: cannot open " << stem << ".trace.json";
      return false;
    }
    write_chrome_trace(events, out);
    out.flush();
    if (!out) return false;
  }

  // Context half: who pulled the handle and what the world looked like.
  std::ofstream out(stem + ".context.json");
  if (!out) {
    HLOG(kError) << "flight recorder: cannot open " << stem << ".context.json";
    return false;
  }
  out << "{\n  \"schema\": \"harmony-flight-v1\",\n";
  out << "  \"reason\": \"" << json_escape(reason) << "\",\n";
  out << "  \"detail\": \"" << json_escape(detail) << "\",\n";
  out << "  \"validator\": \"" << json_escape(validator) << "\",\n";
  out << "  \"dump_index\": " << index << ",\n";
  out << "  \"events_in_ring\": " << events.size() << ",\n";
  out << "  \"context\": {";
  bool first = true;
  for (const auto& [key, value] : context) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    \"" << json_escape(key) << "\": \"" << json_escape(value) << "\"";
  }
  out << (first ? "},\n" : "\n  },\n");
  out << "  \"metrics\": " << (metrics.empty() ? "null" : metrics) << "\n";
  out << "}\n";
  out.flush();
  if (!out) return false;
  HLOG(kInfo) << "flight recorder: dumped " << stem << ".{trace,context}.json ("
              << reason << ")";
  return true;
}

void FlightRecorder::on_check_failure(const std::string& description,
                                      const std::string& validator) {
  if (!armed()) return;
  dump("check-failure", description, validator);
}

std::uint64_t FlightRecorder::dumps() const {
  common::MutexLock lock(mu_);
  return dump_index_;
}

std::size_t FlightRecorder::ring_size() const {
  common::MutexLock lock(mu_);
  return ring_.size();
}

void FlightRecorder::on_fatal_signal(int signo) {
  if (!armed()) return;
  dump("fatal-signal:" + std::to_string(signo), "fatal signal received");
}

}  // namespace harmony::obs
