// Flight recorder: the black box for service-mode runs.
//
// An always-on (once armed) bounded ring of recent trace events plus the
// last metrics/context snapshot, cheap to append — one relaxed atomic load
// when disarmed, a short uncontended critical section when armed. When the
// run goes wrong — a validator fails, a CHECK fires, a fatal signal arrives,
// or an SLO pages — the recorder dumps everything it holds as a bundle:
//
//   <dir>/flight-<n>.trace.json    Chrome trace of the event ring
//   <dir>/flight-<n>.context.json  reason, failing validator, key=value
//                                  context, last telemetry/metrics snapshot
//
// Dumping is the one place the observability layer touches the filesystem
// outside an explicit export call, and the signal path is the one sanctioned
// wall-clock/signal escape in src/obs (see the lint.py signal-handling
// rule). Recording itself never reads any clock: callers stamp events with
// sim time, so recording cannot perturb a deterministic run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sync.h"
#include "obs/trace.h"

namespace harmony::obs {

class FlightRecorder {
 public:
  // Process-wide recorder (leaky singleton, same rationale as the tracer:
  // the fatal-signal path may run during static destruction).
  static FlightRecorder& instance();

  // Starts recording into a ring of `capacity` events; dumps go to `dir`
  // (created on first dump). At most `max_dumps` bundles are written per
  // arm() — a repeatedly-paging SLO must not fill the disk. Re-arming resets
  // the ring and dump counter.
  void arm(const std::string& dir, std::size_t capacity = 4096,
           std::size_t max_dumps = 16);
  void disarm();
  bool armed() const noexcept { return armed_.load(std::memory_order_relaxed); }

  // Appends one event to the ring (evicting the oldest when full). No-op
  // when disarmed — one relaxed load and a branch.
  void append(const TraceEvent& event);

  // Key=value context shown in the dump bundle ("seed", "machines", ...).
  void set_context(const std::string& key, const std::string& value);

  // Latest metrics/telemetry snapshot, stored verbatim as pre-rendered JSON
  // and embedded raw in the context bundle.
  void note_metrics_json(const std::string& json);

  // Writes flight-<n>.trace.json + flight-<n>.context.json. `reason` is a
  // short machine-readable cause ("check-failure", "slo-page:NAME",
  // "fatal-signal:6"); `detail` is free text; `validator` names the failing
  // validator when one is known. Returns false on I/O failure (and when
  // disarmed). Thread-safe; each dump gets a fresh index.
  bool dump(const std::string& reason, const std::string& detail = "",
            const std::string& validator = "");

  // Hook for check::fail: records the failure and dumps. Never throws.
  void on_check_failure(const std::string& description, const std::string& validator);

  // Hook for the fatal-signal handler installed by tools/harmony_sim.cpp.
  // Best-effort: not strictly async-signal-safe (it allocates), but the
  // process is already doomed and the bundle is usually recoverable.
  void on_fatal_signal(int signo);

  std::uint64_t dumps() const;
  std::size_t ring_size() const;

 private:
  FlightRecorder() = default;

  std::atomic<bool> armed_{false};
  mutable common::Mutex mu_;
  std::string dir_ GUARDED_BY(mu_);
  std::size_t capacity_ GUARDED_BY(mu_) = 0;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);  // insertion order, oldest first
  std::size_t ring_head_ GUARDED_BY(mu_) = 0;     // next slot once the ring wrapped
  std::map<std::string, std::string> context_ GUARDED_BY(mu_);
  std::string metrics_json_ GUARDED_BY(mu_);
  std::uint64_t dump_index_ GUARDED_BY(mu_) = 0;
  std::uint64_t max_dumps_ GUARDED_BY(mu_) = 16;
};

}  // namespace harmony::obs
