#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace harmony::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins) {}

void HistogramMetric::observe(double x) {
  common::MutexLock lock(mu_);
  hist_.add(x);
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

std::size_t HistogramMetric::count() const {
  common::MutexLock lock(mu_);
  return count_;
}

double HistogramMetric::sum() const {
  common::MutexLock lock(mu_);
  return sum_;
}

double HistogramMetric::min() const {
  common::MutexLock lock(mu_);
  return min_;
}

double HistogramMetric::max() const {
  common::MutexLock lock(mu_);
  return max_;
}

Histogram HistogramMetric::histogram() const {
  common::MutexLock lock(mu_);
  return hist_;
}

double HistogramMetric::percentile(double q) const {
  common::MutexLock lock(mu_);
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank in [0, count]; walk the bins until the cumulative mass covers it,
  // then interpolate linearly inside the covering bin.
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  const auto& counts = hist_.bins();
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const auto c = static_cast<double>(counts[i]);
    if (c > 0.0 && cumulative + c >= target) {
      const double frac = std::clamp((target - cumulative) / c, 0.0, 1.0);
      const double lo = hist_.bin_lo(i);
      const double hi = hist_.bin_hi(i);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cumulative += c;
  }
  return max_;
}

MetricsSnapshot::HistogramState HistogramMetric::state() const {
  common::MutexLock lock(mu_);
  MetricsSnapshot::HistogramState s;
  s.lo = lo_;
  s.hi = hi_;
  s.bins = hist_.bins();
  s.count = count_;
  s.sum = sum_;
  return s;
}

void HistogramMetric::reset() {
  common::MutexLock lock(mu_);
  hist_ = Histogram(lo_, hi_, bins_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaky singleton for the same reason as the tracer: instrumented worker
  // threads may outlive static destruction order.
  static MetricsRegistry* registry = new MetricsRegistry();  // lint: allow-naked-new
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  common::MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  common::MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                            std::size_t bins) {
  common::MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>(lo, hi, bins))
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  common::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  common::MutexLock lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) snap.histograms.emplace(name, h->state());
  return snap;
}

std::size_t MetricsRegistry::series_count() const {
  common::MutexLock lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

std::vector<std::pair<std::string, const Counter*>> MetricsRegistry::counter_series()
    const {
  common::MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Counter*>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.get());
  return out;
}

std::vector<std::pair<std::string, const Gauge*>> MetricsRegistry::gauge_series() const {
  common::MutexLock lock(mu_);
  std::vector<std::pair<std::string, const Gauge*>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.get());
  return out;
}

std::vector<std::pair<std::string, const HistogramMetric*>>
MetricsRegistry::histogram_series() const {
  common::MutexLock lock(mu_);
  std::vector<std::pair<std::string, const HistogramMetric*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.get());
  return out;
}

MetricsSnapshot delta_snapshot(const MetricsSnapshot& prev, const MetricsSnapshot& cur) {
  MetricsSnapshot delta;
  for (const auto& [name, value] : cur.counters) {
    const auto it = prev.counters.find(name);
    // A reset between snapshots makes the counter run backwards; the restart
    // rule (whole current value is the delta) avoids unsigned wraparound.
    const std::uint64_t base = (it != prev.counters.end() && it->second <= value)
                                   ? it->second
                                   : 0;
    delta.counters.emplace(name, value - base);
  }
  delta.gauges = cur.gauges;  // levels, not flows: latest value wins
  for (const auto& [name, h] : cur.histograms) {
    MetricsSnapshot::HistogramState d = h;
    const auto it = prev.histograms.find(name);
    if (it != prev.histograms.end() && it->second.count <= h.count &&
        it->second.bins.size() == h.bins.size()) {
      d.count = h.count - it->second.count;
      d.sum = h.sum - it->second.sum;
      for (std::size_t i = 0; i < d.bins.size(); ++i) {
        // Per-bin restart rule, same rationale as counters.
        if (it->second.bins[i] <= h.bins[i]) d.bins[i] = h.bins[i] - it->second.bins[i];
      }
    }
    delta.histograms.emplace(name, std::move(d));
  }
  return delta;
}

double histogram_state_percentile(const MetricsSnapshot::HistogramState& h, double q) {
  if (h.count == 0 || h.bins.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double width = (h.hi - h.lo) / static_cast<double>(h.bins.size());
  // Envelope of occupied bins: the tightest bound recoverable from deltas
  // (raw min/max don't survive subtraction).
  std::size_t first = 0;
  while (first < h.bins.size() && h.bins[first] == 0) ++first;
  std::size_t last = h.bins.size();
  while (last > first && h.bins[last - 1] == 0) --last;
  if (first >= last) return 0.0;
  const double env_lo = h.lo + static_cast<double>(first) * width;
  const double env_hi = h.lo + static_cast<double>(last) * width;
  const double target = q * static_cast<double>(h.count);
  double cumulative = 0.0;
  for (std::size_t i = first; i < last; ++i) {
    const auto c = static_cast<double>(h.bins[i]);
    if (c > 0.0 && cumulative + c >= target) {
      const double frac = std::clamp((target - cumulative) / c, 0.0, 1.0);
      const double bin_lo = h.lo + static_cast<double>(i) * width;
      return std::clamp(bin_lo + frac * width, env_lo, env_hi);
    }
    cumulative += c;
  }
  return env_hi;
}

namespace {

// JSON-safe number: finite doubles printed with enough digits to round-trip.
std::string json_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::snapshot_json() const {
  common::MutexLock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buf[64];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c->value());
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + json_double(g->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram hist = h->histogram();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + json_double(h->sum()) + ", \"min\": " + json_double(h->min()) +
           ", \"max\": " + json_double(h->max()) + ", \"p50\": " +
           json_double(h->percentile(0.50)) + ", \"p95\": " +
           json_double(h->percentile(0.95)) + ", \"p99\": " +
           json_double(h->percentile(0.99)) + ", \"bin_lo\": " +
           json_double(hist.bin_lo(0)) + ", \"bin_hi\": " +
           json_double(hist.bin_hi(hist.bins().size() - 1)) + ", \"bins\": [";
    for (std::size_t i = 0; i < hist.bins().size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(hist.bins()[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    HLOG(kError) << "metrics: cannot open " << path << " for writing";
    return false;
  }
  out << snapshot_json();
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace harmony::obs
