#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace harmony::obs {

HistogramMetric::HistogramMetric(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bins_(bins), hist_(lo, hi, bins) {}

void HistogramMetric::observe(double x) {
  std::scoped_lock lock(mu_);
  hist_.add(x);
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

std::size_t HistogramMetric::count() const {
  std::scoped_lock lock(mu_);
  return count_;
}

double HistogramMetric::sum() const {
  std::scoped_lock lock(mu_);
  return sum_;
}

double HistogramMetric::min() const {
  std::scoped_lock lock(mu_);
  return min_;
}

double HistogramMetric::max() const {
  std::scoped_lock lock(mu_);
  return max_;
}

Histogram HistogramMetric::histogram() const {
  std::scoped_lock lock(mu_);
  return hist_;
}

void HistogramMetric::reset() {
  std::scoped_lock lock(mu_);
  hist_ = Histogram(lo_, hi_, bins_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

MetricsRegistry& MetricsRegistry::instance() {
  // Leaky singleton for the same reason as the tracer: instrumented worker
  // threads may outlive static destruction order.
  static MetricsRegistry* registry = new MetricsRegistry();  // lint: allow-naked-new
  return *registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

HistogramMetric& MetricsRegistry::histogram(std::string_view name, double lo, double hi,
                                            std::size_t bins) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<HistogramMetric>(lo, hi, bins))
             .first;
  return *it->second;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

namespace {

// JSON-safe number: finite doubles printed with enough digits to round-trip.
std::string json_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::snapshot_json() const {
  std::scoped_lock lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  char buf[64];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, c->value());
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    out += "    \"" + name + "\": " + json_double(g->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const Histogram hist = h->histogram();
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + name + "\": {\"count\": " + std::to_string(h->count()) +
           ", \"sum\": " + json_double(h->sum()) + ", \"min\": " + json_double(h->min()) +
           ", \"max\": " + json_double(h->max()) + ", \"bin_lo\": " +
           json_double(hist.bin_lo(0)) + ", \"bin_hi\": " +
           json_double(hist.bin_hi(hist.bins().size() - 1)) + ", \"bins\": [";
    for (std::size_t i = 0; i < hist.bins().size(); ++i) {
      if (i) out += ", ";
      out += std::to_string(hist.bins()[i]);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

bool MetricsRegistry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    HLOG(kError) << "metrics: cannot open " << path << " for writing";
    return false;
  }
  out << snapshot_json();
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace harmony::obs
