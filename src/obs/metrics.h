// Metrics registry (the observability layer's aggregate half).
//
// Named counters, gauges and histograms for run-level telemetry: scheduler
// invocations, regroup events, spill bytes, queue depths, event-loop
// throughput. Registration hands back a stable reference that call sites
// cache (typically in a function-local static), so steady-state updates are
// one relaxed atomic op with no lookup. Snapshots serialize to JSON for the
// --metrics flag and for attaching to bench reports.
//
// Metrics are always on: the per-update cost is a single uncontended atomic
// add at decision-level granularity (per schedule call, per regroup, per
// subtask in the threaded runtime), never inside the simulator's event loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.h"
#include "common/sync.h"

namespace harmony::obs {

// Point-in-time copy of every registered metric, cheap to diff. The unit the
// time-series engine (obs/timeseries.h) works in: two snapshots one window
// apart yield per-window deltas via delta_snapshot().
struct MetricsSnapshot {
  struct HistogramState {
    double lo = 0.0;  // first bin's lower edge
    double hi = 0.0;  // last bin's upper edge
    std::vector<std::uint64_t> bins;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramState> histograms;
};

// Per-window view of `cur` relative to `prev`: counter values and histogram
// bins/count/sum become deltas (cur - prev); gauges keep their latest value
// (a gauge is a level, not a flow). A counter or histogram whose current
// value ran *backwards* (a reset() between the snapshots) is treated as
// restarted: the whole current value is the window's delta, never a huge
// unsigned wraparound. Metrics absent from `prev` (registered mid-window)
// contribute their full current state; metrics absent from `cur` are dropped.
MetricsSnapshot delta_snapshot(const MetricsSnapshot& prev, const MetricsSnapshot& cur);

// Quantile over a (possibly delta) histogram state, q in [0, 1]: linear
// interpolation within the covering bin, clamped to the envelope of occupied
// bins (raw min/max are not recoverable from bin deltas). 0 when empty.
double histogram_state_percentile(const MetricsSnapshot::HistogramState& h, double q);

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-shape histogram (equal-width bins over [lo, hi], out-of-range samples
// clamp into the edge bins) plus running count/sum/min/max.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins);

  void observe(double x);

  std::size_t count() const;
  double sum() const;
  double min() const;
  double max() const;
  Histogram histogram() const;  // copy of the current bin state
  // Quantile estimate, q in [0, 1], linearly interpolated within bins (each
  // bin's mass is assumed uniform over its width). The estimate is clamped to
  // the observed [min, max] envelope, which also makes the edge bins exact
  // when out-of-range samples were clamped into them. Returns 0 when empty.
  double percentile(double q) const;
  // Bins + count/sum under one lock acquisition, for consistent snapshots.
  MetricsSnapshot::HistogramState state() const;
  void reset();

 private:
  double lo_;
  double hi_;
  std::size_t bins_;
  mutable common::Mutex mu_;
  Histogram hist_ GUARDED_BY(mu_);
  std::size_t count_ GUARDED_BY(mu_) = 0;
  double sum_ GUARDED_BY(mu_) = 0.0;
  double min_ GUARDED_BY(mu_) = 0.0;
  double max_ GUARDED_BY(mu_) = 0.0;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Process-wide registry used by all built-in instrumentation.
  static MetricsRegistry& instance();

  // Returns the named metric, creating it on first use. References stay
  // valid for the registry's lifetime — cache them at hot call sites. A
  // histogram's shape is fixed by whoever registers it first.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  HistogramMetric& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  // Zeroes every registered metric (registrations survive).
  void reset();

  // Consistent-ish point-in-time copy of every metric (each metric is read
  // atomically; the set is read under the registry lock).
  MetricsSnapshot snapshot() const;

  // Number of registered series across all kinds — a cheap staleness check
  // for cached series views (registrations are never removed).
  std::size_t series_count() const;

  // Sorted (name, metric) views over the registered series. The metric
  // pointers stay valid for the registry's lifetime; the *set* is a snapshot
  // — recheck series_count() to detect registrations made since. These are
  // what the time-series engine resolves its allow-list against once, so the
  // per-window sampling path reads metrics directly instead of copying the
  // whole registry.
  std::vector<std::pair<std::string, const Counter*>> counter_series() const;
  std::vector<std::pair<std::string, const Gauge*>> gauge_series() const;
  std::vector<std::pair<std::string, const HistogramMetric*>> histogram_series() const;

  // {"counters": {...}, "gauges": {...}, "histograms": {...}}, keys sorted.
  std::string snapshot_json() const;
  bool write_json_file(const std::string& path) const;

 private:
  mutable common::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<HistogramMetric>, std::less<>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace harmony::obs
