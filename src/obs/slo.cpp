#include "obs/slo.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace harmony::obs {

const char* to_string(SloKind kind) noexcept {
  switch (kind) {
    case SloKind::kQueueDelayP99:
      return "queue-delay-p99";
    case SloKind::kRejectionRate:
      return "rejection-rate";
    case SloKind::kDriftEscalationRate:
      return "drift-escalation-rate";
    case SloKind::kSchedThroughputFloor:
      return "sched-throughput-floor";
  }
  return "?";
}

const char* to_string(AlertState state) noexcept {
  switch (state) {
    case AlertState::kInactive:
      return "inactive";
    case AlertState::kPending:
      return "pending";
    case AlertState::kFiring:
      return "firing";
    case AlertState::kResolved:
      return "resolved";
  }
  return "?";
}

bool parse_slo(const std::string& arg, SloSpec& spec, std::string& error) {
  const auto eq = arg.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 == arg.size()) {
    error = "expected NAME=THRESHOLD, got '" + arg + "'";
    return false;
  }
  const std::string name = arg.substr(0, eq);
  const std::string value = arg.substr(eq + 1);

  SloSpec out;
  out.name = name;
  if (name == "queue-delay-p99") {
    out.kind = SloKind::kQueueDelayP99;
  } else if (name == "rejection-rate") {
    out.kind = SloKind::kRejectionRate;
  } else if (name == "drift-escalation-rate") {
    out.kind = SloKind::kDriftEscalationRate;
  } else if (name == "sched-throughput-floor") {
    out.kind = SloKind::kSchedThroughputFloor;
    out.lower_bound = true;
  } else {
    error = "unknown SLO '" + name +
            "' (known: queue-delay-p99, rejection-rate, drift-escalation-rate, "
            "sched-throughput-floor)";
    return false;
  }

  char* end = nullptr;
  out.threshold = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0') {
    error = "bad SLO threshold '" + value + "' for " + name;
    return false;
  }
  spec = std::move(out);
  return true;
}

double SloMonitor::window_value(const SloSpec& spec, const TelemetryWindow& w) {
  switch (spec.kind) {
    case SloKind::kQueueDelayP99: {
      const auto it = w.histograms.find("svc.queue_delay_sec");
      return it == w.histograms.end() ? 0.0 : it->second.p99;
    }
    case SloKind::kRejectionRate: {
      const auto arrivals = w.counter_deltas.find("svc.arrivals");
      const auto rejected = w.counter_deltas.find("svc.rejected");
      const double a =
          arrivals == w.counter_deltas.end() ? 0.0 : static_cast<double>(arrivals->second);
      const double r =
          rejected == w.counter_deltas.end() ? 0.0 : static_cast<double>(rejected->second);
      return a <= 0.0 ? 0.0 : r / a;
    }
    case SloKind::kDriftEscalationRate:
      return w.rate("svc.full_reschedules") * 3600.0;  // per sim-hour
    case SloKind::kSchedThroughputFloor:
      return w.rate("svc.scheduling_events");
  }
  return 0.0;
}

SloMonitor::SloMonitor(SloSpec spec) : spec_(std::move(spec)) {}

double SloMonitor::breach_fraction(std::size_t last_n) const {
  if (last_n == 0) return 0.0;
  const std::size_t n = std::min(last_n, breaches_.size());
  if (n == 0) return 0.0;
  std::size_t breached = 0;
  for (std::size_t i = breaches_.size() - n; i < breaches_.size(); ++i)
    if (breaches_[i]) ++breached;
  // Fraction over the nominal window, not the observed one: with only 1 of
  // 12 slow windows seen so far, one breach is 1/12 of the budget, not 1/1.
  return static_cast<double>(breached) / static_cast<double>(last_n);
}

void SloMonitor::transition(AlertState to, const TelemetryWindow& w) {
  AlertTransition t;
  t.window = w.index;
  t.time_sec = w.end_sec;
  t.from = state_;
  t.to = to;
  transitions_.push_back(t);
  state_ = to;
}

bool SloMonitor::evaluate(const TelemetryWindow& w) {
  last_value_ = window_value(spec_, w);
  const bool breached =
      spec_.lower_bound ? last_value_ < spec_.threshold : last_value_ > spec_.threshold;
  breaches_.push_back(breached);
  while (breaches_.size() > std::max(spec_.slow_windows, spec_.fast_windows))
    breaches_.pop_front();

  const bool burning = breach_fraction(spec_.fast_windows) >= spec_.fast_burn &&
                       breach_fraction(spec_.slow_windows) >= spec_.slow_burn;

  const AlertState before = state_;
  switch (state_) {
    case AlertState::kInactive:
    case AlertState::kResolved:
      if (burning) {
        burn_streak_ = 1;
        transition(AlertState::kPending, w);
        if (burn_streak_ >= spec_.pending_windows) {
          transition(AlertState::kFiring, w);
          ++pages_;
        }
      }
      break;
    case AlertState::kPending:
      if (burning) {
        if (++burn_streak_ >= spec_.pending_windows) {
          transition(AlertState::kFiring, w);
          ++pages_;
        }
      } else {
        // The burn didn't confirm: fall back to the last stable state.
        burn_streak_ = 0;
        transition(pages_ > 0 ? AlertState::kResolved : AlertState::kInactive, w);
      }
      break;
    case AlertState::kFiring:
      if (!burning) {
        burn_streak_ = 0;
        transition(AlertState::kResolved, w);
      }
      break;
  }
  return state_ != before;
}

std::string SloMonitor::state_json() const {
  char value[48];
  std::snprintf(value, sizeof(value), "%.17g", last_value_);
  std::string out = "{\"name\":\"" + spec_.name + "\",\"state\":\"";
  out += to_string(state_);
  out += "\",\"value\":";
  out += value;
  out += ",\"breached\":";
  out += last_breached() ? '1' : '0';
  out += '}';
  return out;
}

}  // namespace harmony::obs
