// SLO monitors: declarative service-level objectives over the telemetry
// window stream, evaluated with multi-window burn rates.
//
// Each objective names a windowed signal (queue-delay p99, rejection rate,
// drift-escalation rate, scheduling-throughput floor) and a threshold. A
// window either breaches or not; the monitor keeps a bounded breach history
// and pages only when both a fast window (last `fast_windows` samples, catch
// sharp regressions quickly) and a slow window (last `slow_windows`, filter
// one-off blips) burn past their fractions — the standard fast/slow
// burn-rate rule from SRE error-budget alerting, here on sim time.
//
// The alert state machine is fully deterministic: inactive → pending (burn
// condition met, waiting out `pending_windows` consecutive confirmations) →
// firing → resolved, every transition stamped with the sim time and window
// index that caused it.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/timeseries.h"

namespace harmony::obs {

enum class SloKind : std::uint8_t {
  kQueueDelayP99,         // per-window svc.queue_delay_sec p99 (seconds, upper bound)
  kRejectionRate,         // rejected / arrivals per window (fraction, upper bound)
  kDriftEscalationRate,   // full reschedules per sim-hour (upper bound)
  kSchedThroughputFloor,  // scheduling events per sim-second (lower bound)
};

const char* to_string(SloKind kind) noexcept;

struct SloSpec {
  SloKind kind = SloKind::kQueueDelayP99;
  std::string name;         // CLI spelling, e.g. "queue-delay-p99"
  double threshold = 0.0;
  bool lower_bound = false;  // true: breach when value < threshold
  // Burn-rate rule: page when >= fast_burn of the last fast_windows AND
  // >= slow_burn of the last slow_windows breached.
  std::size_t fast_windows = 3;
  std::size_t slow_windows = 12;
  double fast_burn = 1.0;
  double slow_burn = 0.5;
  std::size_t pending_windows = 2;  // consecutive burning windows before firing
};

// Parses "name=threshold" ("queue-delay-p99=120"). Recognized names:
// queue-delay-p99 (sec), rejection-rate (fraction), drift-escalation-rate
// (full reschedules per sim-hour), sched-throughput-floor (events/sim-sec).
// Returns false (and fills `error`) on unknown name or bad number.
bool parse_slo(const std::string& arg, SloSpec& spec, std::string& error);

enum class AlertState : std::uint8_t { kInactive, kPending, kFiring, kResolved };

const char* to_string(AlertState state) noexcept;

struct AlertTransition {
  std::uint64_t window = 0;  // telemetry window index that caused it
  double time_sec = 0.0;     // sim time of the window close
  AlertState from = AlertState::kInactive;
  AlertState to = AlertState::kInactive;
};

class SloMonitor {
 public:
  explicit SloMonitor(SloSpec spec);

  // Feeds one closed telemetry window; returns true when the alert state
  // changed. Deterministic: depends only on the window stream.
  bool evaluate(const TelemetryWindow& w);

  const SloSpec& spec() const { return spec_; }
  AlertState state() const { return state_; }
  double last_value() const { return last_value_; }
  bool last_breached() const { return !breaches_.empty() && breaches_.back(); }
  std::uint64_t pages() const { return pages_; }  // inactive/resolved->firing edges
  const std::vector<AlertTransition>& transitions() const { return transitions_; }

  // The objective's windowed signal value (exposed for tests).
  static double window_value(const SloSpec& spec, const TelemetryWindow& w);

  // Compact JSON fragment for this monitor's current state:
  // {"name":...,"state":...,"value":...,"breached":0|1}
  std::string state_json() const;

 private:
  void transition(AlertState to, const TelemetryWindow& w);
  double breach_fraction(std::size_t last_n) const;

  SloSpec spec_;
  AlertState state_ = AlertState::kInactive;
  std::deque<bool> breaches_;  // newest at back, bounded by slow_windows
  std::size_t burn_streak_ = 0;
  std::uint64_t pages_ = 0;
  double last_value_ = 0.0;
  std::vector<AlertTransition> transitions_;
};

}  // namespace harmony::obs
