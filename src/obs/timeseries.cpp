#include "obs/timeseries.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

namespace harmony::obs {

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

// Append variants for the per-window render path — no temporary strings.
void append_double(std::string& out, double v) {
  char buf[48];
  out.append(buf, static_cast<std::size_t>(std::snprintf(buf, sizeof(buf), "%.17g", v)));
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  out.append(buf,
             static_cast<std::size_t>(std::snprintf(buf, sizeof(buf), "%" PRIu64, v)));
}

void append_key(std::string& out, const std::string& name, bool& first) {
  if (!first) out += ',';
  first = false;
  out += '"';
  out += name;
  out += "\":";
}

}  // namespace

double TelemetryWindow::rate(const std::string& name) const {
  const auto it = counter_deltas.find(name);
  if (it == counter_deltas.end()) return 0.0;
  const double len = length_sec();
  if (len <= 0.0) return 0.0;
  return static_cast<double>(it->second) / len;
}

TimeSeriesEngine::TimeSeriesEngine(TimeSeriesConfig config, const MetricsRegistry& registry)
    : config_(std::move(config)), registry_(registry) {
  // Baseline at construction: metrics accumulated by earlier runs in this
  // process (the registry is global) must not leak into window 0.
  refresh_series();
  for (auto& c : counter_series_) c.prev = c.metric->value();
  for (auto& h : hist_series_) h.prev = h.metric->state();
}

void TimeSeriesEngine::refresh_series() {
  resolved_registry_count_ = registry_.series_count();

  auto counters = registry_.counter_series();
  std::vector<CounterSeries> new_counters;
  for (auto& [name, metric] : counters) {
    if (!selected(name)) continue;
    CounterSeries s{std::move(name), metric, 0};
    for (const auto& old : counter_series_)
      if (old.metric == metric) s.prev = old.prev;
    new_counters.push_back(std::move(s));
  }
  counter_series_ = std::move(new_counters);

  gauge_series_.clear();
  for (auto& [name, metric] : registry_.gauge_series())
    if (selected(name)) gauge_series_.push_back({std::move(name), metric});

  auto hists = registry_.histogram_series();
  std::vector<HistSeries> new_hists;
  for (auto& [name, metric] : hists) {
    if (!selected(name)) continue;
    HistSeries s{std::move(name), metric, {}};
    for (auto& old : hist_series_)
      if (old.metric == metric) s.prev = std::move(old.prev);
    new_hists.push_back(std::move(s));
  }
  hist_series_ = std::move(new_hists);
}

bool TimeSeriesEngine::selected(const std::string& name) const {
  for (const auto& excluded : config_.exclude)
    if (name == excluded) return false;
  if (config_.include_prefixes.empty()) return true;
  for (const auto& prefix : config_.include_prefixes)
    if (name.compare(0, prefix.size(), prefix) == 0) return true;
  return false;
}

MetricsSnapshot TimeSeriesEngine::filter(const MetricsSnapshot& snap) const {
  MetricsSnapshot out;
  for (const auto& [name, v] : snap.counters)
    if (selected(name)) out.counters.emplace(name, v);
  for (const auto& [name, v] : snap.gauges)
    if (selected(name)) out.gauges.emplace(name, v);
  for (const auto& [name, h] : snap.histograms)
    if (selected(name)) out.histograms.emplace(name, h);
  return out;
}

MetricsSnapshot TimeSeriesEngine::filtered_snapshot() const {
  return filter(registry_.snapshot());
}

const TelemetryWindow& TimeSeriesEngine::sample(double now_sec) {
  if (registry_.series_count() != resolved_registry_count_) refresh_series();

  TelemetryWindow w;
  w.index = next_index_++;
  w.start_sec = prev_time_sec_;
  w.end_sec = now_sec;

  // The series vectors are name-sorted (registry order), so every map insert
  // is an O(1) emplace at the end. Counter/histogram deltas use the same
  // restart rule as delta_snapshot(): a value that ran backwards (a reset
  // between windows) contributes its whole current value, never an unsigned
  // wraparound.
  for (auto& s : counter_series_) {
    const std::uint64_t value = s.metric->value();
    const std::uint64_t base = s.prev <= value ? s.prev : 0;
    w.counter_deltas.emplace_hint(w.counter_deltas.end(), s.name, value - base);
    s.prev = value;
  }
  for (const auto& s : gauge_series_)
    w.gauges.emplace_hint(w.gauges.end(), s.name, s.metric->value());
  for (auto& s : hist_series_) {
    MetricsSnapshot::HistogramState cur = s.metric->state();
    MetricsSnapshot::HistogramState d = cur;
    if (s.prev.count <= cur.count && s.prev.bins.size() == cur.bins.size()) {
      d.count = cur.count - s.prev.count;
      d.sum = cur.sum - s.prev.sum;
      for (std::size_t i = 0; i < d.bins.size(); ++i)
        if (s.prev.bins[i] <= cur.bins[i]) d.bins[i] = cur.bins[i] - s.prev.bins[i];
    }
    TelemetryWindow::HistWindow hw;
    hw.count = d.count;
    hw.sum = d.sum;
    hw.p50 = histogram_state_percentile(d, 0.50);
    hw.p99 = histogram_state_percentile(d, 0.99);
    w.histograms.emplace_hint(w.histograms.end(), s.name, hw);
    s.prev = std::move(cur);
  }

  prev_time_sec_ = now_sec;

  ring_.push_back(std::move(w));
  while (ring_.size() > config_.capacity) ring_.pop_front();
  return ring_.back();
}

std::string TimeSeriesEngine::to_jsonl(const TelemetryWindow& w, const std::string& extra) {
  std::string out;
  out.reserve(512 + extra.size());
  out += "{\"schema\":\"harmony-telemetry-v1\",\"window\":";
  append_u64(out, w.index);
  out += ",\"start\":";
  append_double(out, w.start_sec);
  out += ",\"end\":";
  append_double(out, w.end_sec);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : w.counter_deltas) {
    append_key(out, name, first);
    append_u64(out, v);
  }
  out += "},\"rates\":{";
  first = true;
  const double len = w.length_sec();
  for (const auto& [name, v] : w.counter_deltas) {
    append_key(out, name, first);
    append_double(out, len > 0.0 ? static_cast<double>(v) / len : 0.0);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : w.gauges) {
    append_key(out, name, first);
    append_double(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : w.histograms) {
    append_key(out, name, first);
    out += "{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum\":";
    append_double(out, h.sum);
    out += ",\"p50\":";
    append_double(out, h.p50);
    out += ",\"p99\":";
    append_double(out, h.p99);
    out += '}';
  }
  out += '}';
  out += extra;
  out += '}';
  return out;
}

namespace {

std::string prom_name(const std::string& name) {
  std::string out = "harmony_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, v] : snap.counters) {
    const std::string p = prom_name(name) + "_total";
    out += "# TYPE " + p + " counter\n";
    out += p + " " + fmt_u64(v) + "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + fmt_double(v) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string p = prom_name(name);
    out += "# TYPE " + p + " histogram\n";
    const double width =
        h.bins.empty() ? 0.0 : (h.hi - h.lo) / static_cast<double>(h.bins.size());
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.bins.size(); ++i) {
      cumulative += h.bins[i];
      const double le = h.lo + static_cast<double>(i + 1) * width;
      out += p + "_bucket{le=\"" + fmt_double(le) + "\"} " + fmt_u64(cumulative) + "\n";
    }
    out += p + "_bucket{le=\"+Inf\"} " + fmt_u64(h.count) + "\n";
    out += p + "_sum " + fmt_double(h.sum) + "\n";
    out += p + "_count " + fmt_u64(h.count) + "\n";
  }
  return out;
}

}  // namespace harmony::obs
