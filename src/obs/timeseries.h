// Time-series engine (the observability layer's live half).
//
// Turns cumulative MetricsRegistry state into windowed aggregates: at a
// configurable sim-time cadence the engine reads its selected series (metric
// pointers resolved once against the registry), diffs against the values at
// the previous sample — the same restart-rule semantics as
// obs::delta_snapshot — and pushes one TelemetryWindow — counter deltas and
// rates, gauge last-values, per-window histogram count/sum/p50/p99 — onto a
// fixed-capacity ring. Windows serialize to a byte-deterministic JSON Lines
// schema ("harmony-telemetry-v1") and the cumulative filtered snapshot
// exports as Prometheus text exposition.
//
// Determinism contract: the engine is driven by the *sim* clock (the caller
// passes window timestamps), reads only through MetricsRegistry, and filters
// to an explicit series allow-list. Series fed from wall-clock measurements
// or perturbed by pure-observer validators must be excluded by the caller so
// telemetry output stays a function of the seed alone.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace harmony::obs {

struct TimeSeriesConfig {
  double interval_sec = 60.0;  // window length in sim seconds
  std::size_t capacity = 512;  // ring size; oldest windows evicted
  // Only series whose name starts with one of these prefixes are sampled.
  // Empty = sample everything.
  std::vector<std::string> include_prefixes;
  // Exact series names dropped even when a prefix matches (wall-fed series).
  std::vector<std::string> exclude;
};

struct TelemetryWindow {
  std::uint64_t index = 0;  // monotone window number (survives ring eviction)
  double start_sec = 0.0;
  double end_sec = 0.0;
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, double> gauges;
  struct HistWindow {
    std::uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  std::map<std::string, HistWindow> histograms;

  double length_sec() const { return end_sec - start_sec; }
  // Per-second rate for a counter delta; 0 for a zero-length window.
  double rate(const std::string& name) const;
};

class TimeSeriesEngine {
 public:
  explicit TimeSeriesEngine(TimeSeriesConfig config, const MetricsRegistry& registry);

  // Closes the window ending at `now_sec`: reads the selected series, diffs
  // against the previous sample, pushes the result onto the ring, and
  // returns a reference to it (valid until the next sample() evicts it).
  const TelemetryWindow& sample(double now_sec);

  const std::deque<TelemetryWindow>& windows() const { return ring_; }
  std::uint64_t windows_sampled() const { return next_index_; }
  const TimeSeriesConfig& config() const { return config_; }

  // One JSON object per line, keys sorted, doubles printed with %.17g:
  // {"schema":"harmony-telemetry-v1","window":N,"start":S,"end":E,
  //  "counters":{...deltas...},"rates":{...},"gauges":{...},
  //  "histograms":{name:{count,sum,p50,p99}}}. `extra` (may be empty) is
  // spliced verbatim before the closing brace — the SLO layer appends its
  // alert fragment there.
  static std::string to_jsonl(const TelemetryWindow& w, const std::string& extra);

  // The registry snapshot filtered by this engine's include/exclude rules —
  // the cumulative counterpart of the windowed ring.
  MetricsSnapshot filtered_snapshot() const;

 private:
  // Selected series with their metric pointer (stable for the registry's
  // lifetime) and the cumulative value at the last sample() — the engine's
  // per-window diff state. Resolving once keeps sample() off the
  // copy-the-whole-registry path: a window costs one atomic load per counter
  // and gauge plus one short lock per histogram.
  struct CounterSeries {
    std::string name;
    const Counter* metric;
    std::uint64_t prev = 0;
  };
  struct GaugeSeries {
    std::string name;
    const Gauge* metric;
  };
  struct HistSeries {
    std::string name;
    const HistogramMetric* metric;
    MetricsSnapshot::HistogramState prev;
  };

  bool selected(const std::string& name) const;
  MetricsSnapshot filter(const MetricsSnapshot& snap) const;
  // Re-resolves the selected series from the registry, keeping the diff
  // state of series already tracked (new series start with a zero baseline:
  // mid-window registrations contribute their full current value).
  void refresh_series();

  TimeSeriesConfig config_;
  const MetricsRegistry& registry_;
  std::vector<CounterSeries> counter_series_;
  std::vector<GaugeSeries> gauge_series_;
  std::vector<HistSeries> hist_series_;
  std::size_t resolved_registry_count_ = 0;
  double prev_time_sec_ = 0.0;
  std::uint64_t next_index_ = 0;
  std::deque<TelemetryWindow> ring_;
};

// Prometheus text exposition (text/plain; version=0.0.4) of a cumulative
// snapshot. Series names are sanitized ('.'/'-' -> '_') and prefixed with
// "harmony_"; counters get a "_total" suffix, histograms emit cumulative
// _bucket{le=...} lines plus _sum and _count. Output is byte-deterministic
// (sorted names, %.17g doubles).
std::string prometheus_text(const MetricsSnapshot& snap);

}  // namespace harmony::obs
