#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>

#include "common/logging.h"

namespace harmony::obs {

std::atomic<bool> Tracer::g_enabled{false};

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kSubtaskComp:
      return "subtask_comp";
    case EventKind::kSubtaskPull:
      return "subtask_pull";
    case EventKind::kSubtaskPush:
      return "subtask_push";
    case EventKind::kIteration:
      return "iteration";
    case EventKind::kReload:
      return "reload";
    case EventKind::kCheckpoint:
      return "checkpoint";
    case EventKind::kSchedule:
      return "schedule";
    case EventKind::kRegroup:
      return "regroup";
    case EventKind::kSpill:
      return "spill";
    case EventKind::kGroupCreate:
      return "group_create";
    case EventKind::kGroupDissolve:
      return "group_dissolve";
    case EventKind::kOom:
      return "oom";
    case EventKind::kPrediction:
      return "prediction";
    case EventKind::kArrival:
      return "arrival";
    case EventKind::kAdmit:
      return "admit";
    case EventKind::kReject:
      return "reject";
    case EventKind::kDepart:
      return "depart";
    case EventKind::kSloAlert:
      return "slo_alert";
  }
  return "?";
}

bool kind_from_string(std::string_view name, EventKind& kind) noexcept {
  constexpr EventKind kAll[] = {
      EventKind::kSubtaskComp, EventKind::kSubtaskPull,   EventKind::kSubtaskPush,
      EventKind::kIteration,   EventKind::kReload,        EventKind::kCheckpoint,
      EventKind::kSchedule,    EventKind::kRegroup,       EventKind::kSpill,
      EventKind::kGroupCreate, EventKind::kGroupDissolve, EventKind::kOom,
      EventKind::kPrediction,  EventKind::kArrival,       EventKind::kAdmit,
      EventKind::kReject,      EventKind::kDepart,        EventKind::kSloAlert,
  };
  for (EventKind k : kAll) {
    if (name == to_string(k)) {
      kind = k;
      return true;
    }
  }
  return false;
}

Tracer& Tracer::instance() {
  // Leaky singleton: worker threads may record during static destruction.
  static Tracer* tracer = new Tracer();  // lint: allow-naked-new
  return *tracer;
}

double Tracer::wall_now_us() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return std::chrono::duration<double, std::micro>(clock::now() - epoch).count();
}

Tracer::ThreadBuffer& Tracer::buffer_for_this_thread() {
  // One buffer per (thread, process lifetime); the cached pointer stays valid
  // because the singleton and its registered buffers are never destroyed.
  thread_local ThreadBuffer* cached = nullptr;
  if (cached == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    cached = owned.get();
    common::MutexLock lock(registry_mu_);
    buffers_.push_back(std::move(owned));
  }
  return *cached;
}

void Tracer::record_enabled(const TraceEvent& event) {
  ThreadBuffer& buf = buffer_for_this_thread();
  common::MutexLock lock(buf.mu);
  buf.events.push_back(event);
}

void Tracer::complete(EventKind kind, ClockDomain clock, double ts_us, double dur_us,
                      std::uint32_t job, std::uint32_t group, std::uint32_t machine,
                      std::uint64_t bytes) {
  if (!enabled()) return;
  TraceEvent e;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.kind = kind;
  e.phase = Phase::kComplete;
  e.clock = clock;
  e.job = job;
  e.group = group;
  e.machine = machine;
  e.bytes = bytes;
  instance().record_enabled(e);
}

void Tracer::instant(EventKind kind, ClockDomain clock, double ts_us, std::uint32_t job,
                     std::uint32_t group, std::uint32_t machine, std::uint64_t bytes) {
  if (!enabled()) return;
  TraceEvent e;
  e.ts_us = ts_us;
  e.kind = kind;
  e.phase = Phase::kInstant;
  e.clock = clock;
  e.job = job;
  e.group = group;
  e.machine = machine;
  e.bytes = bytes;
  instance().record_enabled(e);
}

void Tracer::prediction(ClockDomain clock, double ts_us, std::uint32_t group,
                        double predicted_titr_us, bool cpu_bound) {
  if (!enabled()) return;
  TraceEvent e;
  e.ts_us = ts_us;
  e.kind = EventKind::kPrediction;
  e.phase = Phase::kInstant;
  e.clock = clock;
  e.group = group;
  e.bytes = cpu_bound ? 1 : 0;
  e.value = predicted_titr_us;
  instance().record_enabled(e);
}

std::size_t Tracer::size() const {
  common::MutexLock lock(registry_mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    common::MutexLock buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Tracer::clear() {
  common::MutexLock lock(registry_mu_);
  for (const auto& buf : buffers_) {
    common::MutexLock buf_lock(buf->mu);
    buf->events.clear();
  }
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> all;
  {
    common::MutexLock lock(registry_mu_);
    for (const auto& buf : buffers_) {
      common::MutexLock buf_lock(buf->mu);
      all.insert(all.end(), buf->events.begin(), buf->events.end());
    }
  }
  // Tracks never mix clock domains, so sorting by (domain, start) yields
  // monotone timestamps per track while keeping same-instant record order.
  std::stable_sort(all.begin(), all.end(), [](const TraceEvent& a, const TraceEvent& b) {
    if (a.clock != b.clock) return a.clock < b.clock;
    return a.ts_us < b.ts_us;
  });
  return all;
}

namespace {

// Chrome track mapping. Jobs are processes (pid = job + 1; pid 0 hosts
// cluster-scope events like scheduler decisions). Within a process, real
// machines are tracks; in the simulation domain each group exposes a comp
// lane and a comm lane (its two pipelined resources).
struct Track {
  std::int64_t pid = 0;
  std::int64_t tid = 0;
};

constexpr std::int64_t kLifecycleTid = 0;  // iterations / scheduler decisions
constexpr std::int64_t kMiscTid = 1;       // events with no group or machine

Track track_of(const TraceEvent& e) {
  Track t;
  t.pid = e.job == kNoEntity ? 0 : static_cast<std::int64_t>(e.job) + 1;
  if (e.clock == ClockDomain::kWall && e.machine != kNoEntity) {
    t.tid = 2 + static_cast<std::int64_t>(e.machine);
    return t;
  }
  if (e.kind == EventKind::kIteration || e.kind == EventKind::kSchedule) {
    t.tid = kLifecycleTid;
    return t;
  }
  if (e.group == kNoEntity) {
    t.tid = kMiscTid;
    return t;
  }
  const bool comm = e.kind == EventKind::kSubtaskPull || e.kind == EventKind::kSubtaskPush;
  t.tid = 2 + 2 * static_cast<std::int64_t>(e.group) + (comm ? 1 : 0);
  return t;
}

std::string track_name(const TraceEvent& e, const Track& t) {
  if (t.tid == kLifecycleTid) return e.job == kNoEntity ? "decisions" : "iterations";
  if (e.clock == ClockDomain::kWall && e.machine != kNoEntity)
    return "machine " + std::to_string(e.machine);
  if (t.tid == kMiscTid) return "events";
  const std::int64_t group = (t.tid - 2) / 2;
  return "g" + std::to_string(group) + ((t.tid - 2) % 2 ? " comm" : " comp");
}

void append_common_fields(std::string& out, const TraceEvent& e, const Track& t) {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "\"cat\":\"%s\",\"ts\":%.3f,\"pid\":%" PRId64
                                  ",\"tid\":%" PRId64,
                e.clock == ClockDomain::kSim ? "sim" : "wall", e.ts_us, t.pid, t.tid);
  out += buf;
}

void append_args(std::string& out, const TraceEvent& e) {
  out += ",\"args\":{";
  bool first = true;
  char buf[64];
  const auto field = [&](const char* key, std::uint64_t value) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "\"%s\":%" PRIu64, key, value);
    out += buf;
  };
  if (e.job != kNoEntity) field("job", e.job);
  if (e.group != kNoEntity) field("group", e.group);
  if (e.machine != kNoEntity) field("machine", e.machine);
  if (e.bytes != 0) field("bytes", e.bytes);
  if (e.value != 0.0) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf), "\"value\":%.3f", e.value);
    out += buf;
  }
  out += '}';
}

}  // namespace

void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& out) {
  // Name every process and track we are about to reference.
  std::map<std::int64_t, std::string> processes;
  std::map<std::pair<std::int64_t, std::int64_t>, std::string> tracks;
  for (const TraceEvent& e : events) {
    const Track t = track_of(e);
    auto [pit, pnew] = processes.try_emplace(t.pid);
    if (pnew)
      pit->second = t.pid == 0 ? "cluster" : "job " + std::to_string(t.pid - 1);
    tracks.try_emplace({t.pid, t.tid}, track_name(e, t));
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::string line;
  const auto emit = [&] {
    if (!first) out << ",";
    first = false;
    out << "\n" << line;
  };

  for (const auto& [pid, name] : processes) {
    line = "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":0,\"args\":{\"name\":\"" + name + "\"}}";
    emit();
  }
  for (const auto& [key, name] : tracks) {
    line = "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + std::to_string(key.first) +
           ",\"tid\":" + std::to_string(key.second) + ",\"args\":{\"name\":\"" + name +
           "\"}}";
    emit();
  }

  char buf[64];
  for (const TraceEvent& e : events) {
    const Track t = track_of(e);
    line.clear();
    line += "{\"name\":\"";
    line += to_string(e.kind);
    line += "\",";
    if (e.phase == Phase::kComplete) {
      line += "\"ph\":\"X\",";
      append_common_fields(line, e, t);
      std::snprintf(buf, sizeof(buf), ",\"dur\":%.3f", e.dur_us);
      line += buf;
    } else {
      line += "\"ph\":\"i\",\"s\":\"t\",";
      append_common_fields(line, e, t);
    }
    append_args(line, e);
    line += '}';
    emit();
  }
  out << "\n]}\n";
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  harmony::obs::write_chrome_trace(snapshot(), out);
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    HLOG(kError) << "tracer: cannot open " << path << " for writing";
    return false;
  }
  write_chrome_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace harmony::obs
