// Structured event tracing (the observability layer's timeline half).
//
// The tracer records typed span/instant events — subtask executions, scheduler
// decisions, regroups, spills/reloads, checkpoints, whole iterations — tagged
// with job/group/machine ids, and exports them as Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto). Jobs map to trace processes;
// group lanes (simulation) or machines (real runtime) map to tracks.
//
// Two clock domains coexist: simulated seconds from the discrete-event
// engine and wall time from the threaded runtime. Every event carries its
// domain so a trace never silently mixes the two timebases.
//
// Cost model: tracing is always compiled in but disabled by default. The
// disabled path is one relaxed atomic load and a branch — no allocation, no
// lock, no argument-dependent work (call sites guard argument computation
// with Tracer::enabled()). When enabled, each thread appends to its own
// buffer under its own (uncontended) mutex; buffers are only walked at
// snapshot/export time. Recording never influences scheduling decisions, so
// golden-determinism results are bit-identical with tracing on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"

namespace harmony::obs {

// Event taxonomy. Spans: subtask and iteration executions, reload stalls,
// checkpoint/migration pauses. Instants: decision points and state changes.
enum class EventKind : std::uint8_t {
  kSubtaskComp,    // COMP subtask service (span)
  kSubtaskPull,    // COMM pull-half service (span)
  kSubtaskPush,    // COMM push-half service (span)
  kIteration,      // one whole job iteration, queueing included (span)
  kReload,         // COMP stalled waiting on disk reload (span)
  kCheckpoint,     // checkpoint/migration pause (span)
  kSchedule,       // an Algorithm 1 / regrouper invocation (instant)
  kRegroup,        // a regroup event, 1:1 with RunSummary::regroup_events (instant)
  kSpill,          // a job's disk ratio changed (instant, bytes = spill target)
  kGroupCreate,    // group materialized (instant)
  kGroupDissolve,  // group drained and dissolved (instant)
  kOom,            // group crossed the OOM occupancy line (instant)
  kPrediction,     // scheduler perf-model prediction for a group (instant;
                   // value = predicted T_itr in us, bytes = 1 if the model
                   // says CPU-bound, 0 if network-bound)
  kArrival,        // service mode: a job arrived (instant)
  kAdmit,          // service mode: a job was admitted and placed (instant)
  kReject,         // service mode: admission control shed a job (instant)
  kDepart,         // service mode: a job completed and left (instant)
  kSloAlert,       // an SLO alert transition (instant; value = new AlertState)
};

const char* to_string(EventKind kind) noexcept;

// Inverse of to_string; false when `name` matches no event kind.
bool kind_from_string(std::string_view name, EventKind& kind) noexcept;

enum class Phase : std::uint8_t { kComplete, kInstant };

enum class ClockDomain : std::uint8_t { kSim, kWall };

inline constexpr std::uint32_t kNoEntity = 0xffffffffu;

struct TraceEvent {
  double ts_us = 0.0;   // event start, microseconds in its clock domain
  double dur_us = 0.0;  // span length (0 for instants)
  EventKind kind = EventKind::kSchedule;
  Phase phase = Phase::kInstant;
  ClockDomain clock = ClockDomain::kSim;
  std::uint32_t job = kNoEntity;      // maps to a Chrome process
  std::uint32_t group = kNoEntity;    // maps to a track in the sim domain
  std::uint32_t machine = kNoEntity;  // maps to a track in the wall domain
  std::uint64_t bytes = 0;            // payload size where meaningful
  double value = 0.0;                 // kind-specific scalar (kPrediction: T_itr us)
};

// Writes an arbitrary event list as Chrome trace-event JSON with process and
// track metadata — same format as Tracer::write_chrome_trace, usable by
// holders of their own event buffers (the flight recorder's crash ring).
// Events should be pre-sorted by (clock domain, start time).
void write_chrome_trace(const std::vector<TraceEvent>& events, std::ostream& out);

class Tracer {
 public:
  // Process-wide tracer. Static storage only — thread-local buffer pointers
  // cached by recording threads must never dangle.
  static Tracer& instance();

  static bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { g_enabled.store(on, std::memory_order_relaxed); }

  // Records one event. No-op (one load + branch, zero allocation) when
  // disabled. Thread-safe: each thread writes its own buffer.
  static void record(const TraceEvent& event) {
    if (!enabled()) return;
    instance().record_enabled(event);
  }

  // Convenience builders used by instrumentation sites. Call only under an
  // enabled() guard when computing the arguments costs anything.
  static void complete(EventKind kind, ClockDomain clock, double ts_us, double dur_us,
                       std::uint32_t job, std::uint32_t group = kNoEntity,
                       std::uint32_t machine = kNoEntity, std::uint64_t bytes = 0);
  static void instant(EventKind kind, ClockDomain clock, double ts_us,
                      std::uint32_t job = kNoEntity, std::uint32_t group = kNoEntity,
                      std::uint32_t machine = kNoEntity, std::uint64_t bytes = 0);

  // Perf-model cross-check hook: records the scheduler's prediction for a
  // group (kPrediction instant) so offline analysis can score the model
  // against what actually happened (Fig. 13-style model-error reports).
  static void prediction(ClockDomain clock, double ts_us, std::uint32_t group,
                         double predicted_titr_us, bool cpu_bound);

  // Wall-clock microseconds since the tracer was first touched (steady clock,
  // so wall-domain spans are monotone and comparable within a process).
  static double wall_now_us() noexcept;

  // Total events currently buffered across all threads.
  std::size_t size() const;

  // Drops every buffered event (thread buffers stay registered).
  void clear();

  // Copies all buffered events, stably sorted by (clock domain, start time).
  std::vector<TraceEvent> snapshot() const;

  // Writes the Chrome trace-event JSON object ({"traceEvents": [...]}) with
  // process/thread metadata. Events are emitted in sorted ts order per track.
  void write_chrome_trace(std::ostream& out) const;

  // Convenience wrapper; returns false (and logs) on I/O failure.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct ThreadBuffer {
    mutable common::Mutex mu;
    std::vector<TraceEvent> events GUARDED_BY(mu);
  };

  Tracer() = default;

  void record_enabled(const TraceEvent& event);
  ThreadBuffer& buffer_for_this_thread();

  static std::atomic<bool> g_enabled;

  mutable common::Mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ GUARDED_BY(registry_mu_);
};

// RAII wall-clock span: records a complete event on destruction when tracing
// was enabled at construction. For instrumenting the threaded runtime.
class WallSpan {
 public:
  WallSpan(EventKind kind, std::uint32_t job, std::uint32_t group = kNoEntity,
           std::uint32_t machine = kNoEntity, std::uint64_t bytes = 0) noexcept
      : armed_(Tracer::enabled()),
        kind_(kind),
        job_(job),
        group_(group),
        machine_(machine),
        bytes_(bytes),
        start_us_(armed_ ? Tracer::wall_now_us() : 0.0) {}

  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;

  ~WallSpan() {
    if (!armed_) return;
    const double end_us = Tracer::wall_now_us();
    Tracer::complete(kind_, ClockDomain::kWall, start_us_, end_us - start_us_, job_, group_,
                     machine_, bytes_);
  }

 private:
  bool armed_;
  EventKind kind_;
  std::uint32_t job_;
  std::uint32_t group_;
  std::uint32_t machine_;
  std::uint64_t bytes_;
  double start_us_;
};

}  // namespace harmony::obs
