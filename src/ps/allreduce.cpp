#include "ps/allreduce.h"

#include <cassert>
#include <stdexcept>
#include <thread>

namespace harmony::ps {

AllReduceGroup::AllReduceGroup(std::size_t workers, std::vector<Nic*> nics)
    : workers_(workers),
      nics_(std::move(nics)),
      barrier_(static_cast<std::ptrdiff_t>(workers)),
      buffers_(workers) {
  if (workers == 0) throw std::invalid_argument("AllReduceGroup: zero workers");
  if (nics_.size() != workers) throw std::invalid_argument("AllReduceGroup: nics size");
}

std::size_t AllReduceGroup::bytes_per_rank(std::size_t dim, std::size_t workers) {
  if (workers <= 1) return 0;
  const std::size_t chunk = (dim + workers - 1) / workers;
  // (W-1) reduce-scatter sends + (W-1) all-gather sends of one chunk each.
  return 2 * (workers - 1) * chunk * sizeof(double);
}

void AllReduceGroup::all_reduce(std::size_t rank, std::span<double> data) {
  assert(rank < workers_);
  if (workers_ == 1) return;  // nothing to combine

  buffers_[rank] = data;
  barrier_.arrive_and_wait();  // all buffers published

  const std::size_t dim = data.size();
  const auto chunks = partition_evenly(dim, workers_);
  const std::size_t prev = (rank + workers_ - 1) % workers_;
  auto chunk_of = [&](std::span<double> buf, std::size_t c) {
    return buf.subspan(chunks[c].begin, chunks[c].size());
  };

  // Reduce-scatter: after step s, the chunk a rank just updated carries the
  // partial sum of s+2 contributions; after W-1 steps rank r fully owns
  // chunk (r+1) mod W.
  for (std::size_t step = 0; step + 1 < workers_; ++step) {
    // Rank `prev` "sends" chunk (prev - step) mod W to us; we add it into
    // our copy. Reads and writes touch disjoint chunks in every buffer, and
    // the barriers order the steps.
    const std::size_t c = (prev + workers_ - step) % workers_;
    auto src = chunk_of(buffers_[prev], c);
    auto dst = chunk_of(data, c);
    if (nics_[rank] != nullptr) nics_[rank]->transfer(src.size() * sizeof(double));
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
    barrier_.arrive_and_wait();
  }

  // All-gather: rank r starts owning reduced chunk (r+1) mod W and forwards
  // it around the ring.
  for (std::size_t step = 0; step + 1 < workers_; ++step) {
    const std::size_t c = (prev + 1 + workers_ - step) % workers_;
    auto src = chunk_of(buffers_[prev], c);
    auto dst = chunk_of(data, c);
    if (nics_[rank] != nullptr) nics_[rank]->transfer(src.size() * sizeof(double));
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = src[i];
    barrier_.arrive_and_wait();
  }
}

AllReduceSystem::AllReduceSystem(std::shared_ptr<ml::MlApp> app, std::size_t workers,
                                 Config config)
    : app_(std::move(app)), workers_(workers), config_(config) {
  if (!app_) throw std::invalid_argument("AllReduceSystem: null app");
  if (workers_ == 0) throw std::invalid_argument("AllReduceSystem: zero workers");

  std::vector<Nic*> nic_ptrs;
  for (std::size_t w = 0; w < workers_; ++w) {
    nics_.push_back(std::make_unique<Nic>(config_.nic_bytes_per_sec,
                                          "ar-nic-" + std::to_string(w)));
    nic_ptrs.push_back(nics_.back().get());
  }
  group_ = std::make_unique<AllReduceGroup>(workers_, std::move(nic_ptrs));
  partitions_ = partition_evenly(app_->num_data(), workers_);
  replicas_.assign(workers_, std::vector<double>(app_->param_dim(), 0.0));
  updates_.assign(workers_, std::vector<double>(app_->param_dim(), 0.0));
}

void AllReduceSystem::init_model() {
  std::vector<double> initial(app_->param_dim());
  app_->init_params(initial);
  for (auto& replica : replicas_) replica = initial;
}

void AllReduceSystem::compute(std::size_t rank) {
  auto& update = updates_.at(rank);
  std::fill(update.begin(), update.end(), 0.0);
  const Range part = partitions_.at(rank);
  app_->compute_update(replicas_.at(rank), update, part.begin, part.end);
}

void AllReduceSystem::communicate_and_apply(std::size_t rank) {
  group_->all_reduce(rank, updates_.at(rank));
  // Every replica applies the identical combined update: replicas stay
  // bit-equal without any server.
  app_->apply_update(replicas_.at(rank), updates_.at(rank));
}

void AllReduceSystem::run_iterations_threaded(std::size_t n) {
  std::vector<std::jthread> threads;
  threads.reserve(workers_);
  for (std::size_t w = 0; w < workers_; ++w) {
    threads.emplace_back([this, w, n] {
      for (std::size_t i = 0; i < n; ++i) {
        compute(w);
        communicate_and_apply(w);
      }
    });
  }
}

double AllReduceSystem::loss() { return app_->loss(replicas_.at(0)); }

std::size_t AllReduceSystem::comm_bytes_per_iteration() const {
  return workers_ * AllReduceGroup::bytes_per_rank(app_->param_dim(), workers_);
}

}  // namespace harmony::ps
