// Ring all-reduce — the alternative communication architecture of §VI.
//
// The paper notes Harmony "does not care how exactly communication is done
// and only cares that there are distinct computation and communication
// steps"; all-reduce has exactly that shape: COMP produces a local update,
// one COMM collective replaces PULL+PUSH. This is a real threaded
// implementation: W participants synchronize through C++20 barriers, move
// chunk-sized messages through their NICs (so communication takes real,
// bandwidth-proportional time), and finish with every replica holding the
// element-wise sum.
#pragma once

#include <barrier>
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ml/app.h"
#include "ps/network.h"
#include "ps/partition.h"

namespace harmony::ps {

// One collective context shared by `workers` threads.
class AllReduceGroup {
 public:
  // `nics` must hold one NIC per rank (may be null entries for unthrottled).
  AllReduceGroup(std::size_t workers, std::vector<Nic*> nics);

  std::size_t workers() const noexcept { return workers_; }

  // Collective: every rank calls with its buffer (all the same size); blocks
  // until the ring completes; on return every buffer holds the sum.
  // Classic ring: W-1 reduce-scatter steps + W-1 all-gather steps, each
  // moving ~dim/W elements per rank.
  void all_reduce(std::size_t rank, std::span<double> data);

  // Bytes a single rank transmits for one all_reduce of `dim` doubles.
  static std::size_t bytes_per_rank(std::size_t dim, std::size_t workers);

 private:
  std::size_t workers_;
  std::vector<Nic*> nics_;
  std::barrier<> barrier_;
  // Registration area: each rank publishes its buffer for the collective.
  std::vector<std::span<double>> buffers_;
};

// Data-parallel training without servers: every worker holds a full model
// replica; updates are combined with all_reduce and applied identically on
// every replica, so the replicas never diverge.
class AllReduceSystem {
 public:
  struct Config {
    double nic_bytes_per_sec = 0.0;  // <= 0: unthrottled
  };

  AllReduceSystem(std::shared_ptr<ml::MlApp> app, std::size_t workers)
      : AllReduceSystem(std::move(app), workers, Config{}) {}
  AllReduceSystem(std::shared_ptr<ml::MlApp> app, std::size_t workers, Config config);

  void init_model();
  std::size_t num_workers() const noexcept { return workers_; }
  ml::MlApp& app() noexcept { return *app_; }

  // The two subtask-shaped phases for rank `r`:
  // COMP — compute the local update from this worker's partition;
  void compute(std::size_t rank);
  // COMM — the collective; every rank must call it once per iteration.
  void communicate_and_apply(std::size_t rank);

  // Runs `n` synchronous iterations using one thread per worker.
  void run_iterations_threaded(std::size_t n);

  double loss();
  std::span<const double> replica(std::size_t rank) const { return replicas_.at(rank); }

  // Total bytes transferred per iteration across all ranks (for the PS
  // comparison bench).
  std::size_t comm_bytes_per_iteration() const;

 private:
  std::shared_ptr<ml::MlApp> app_;
  std::size_t workers_;
  Config config_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<AllReduceGroup> group_;
  std::vector<Range> partitions_;
  std::vector<std::vector<double>> replicas_;
  std::vector<std::vector<double>> updates_;
};

}  // namespace harmony::ps
