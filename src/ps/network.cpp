#include "ps/network.h"

#include <algorithm>
#include <thread>

namespace harmony::ps {

Nic::Nic(double bytes_per_sec, std::string name)
    : bytes_per_sec_(bytes_per_sec), name_(std::move(name)), free_at_(Clock::now()) {}

void Nic::transfer(std::size_t bytes) {
  bytes_total_.fetch_add(bytes, std::memory_order_relaxed);
  if (bytes_per_sec_ <= 0.0 || bytes == 0) return;

  const auto duration = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(static_cast<double>(bytes) / bytes_per_sec_));

  Clock::time_point done_at;
  {
    common::MutexLock lock(mu_);
    const auto start = std::max(free_at_, Clock::now());
    done_at = start + duration;
    free_at_ = done_at;
  }
  std::this_thread::sleep_until(done_at);
}

}  // namespace harmony::ps
