// Bandwidth-throttled in-memory network.
//
// Each endpoint (one per machine in the in-process runtime) has a NIC with a
// configured bandwidth. A transfer occupies the sender NIC for
// bytes / bandwidth seconds of *wall-clock* time, so COMM subtasks really
// take time proportional to message size and really contend on the NIC —
// which is what Harmony's network lane serializes. Bandwidths are scaled up
// in unit tests to keep them fast.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/sync.h"

namespace harmony::ps {

class Nic {
 public:
  // `bytes_per_sec` <= 0 disables throttling (infinite bandwidth).
  explicit Nic(double bytes_per_sec, std::string name = "nic");

  // Blocks the calling thread for the transfer duration. Concurrent callers
  // serialize: the NIC is a single shared link, so two simultaneous transfers
  // each take at least twice as long as they would alone.
  void transfer(std::size_t bytes);

  std::uint64_t bytes_transferred() const noexcept {
    return bytes_total_.load(std::memory_order_relaxed);
  }
  double bytes_per_sec() const noexcept { return bytes_per_sec_; }
  const std::string& name() const noexcept { return name_; }

 private:
  using Clock = std::chrono::steady_clock;

  double bytes_per_sec_;
  std::string name_;
  common::Mutex mu_;
  // Time at which the link becomes free; transfers extend it and sleep until
  // their own completion instant (a virtual-time token bucket).
  Clock::time_point free_at_ GUARDED_BY(mu_){};
  std::atomic<std::uint64_t> bytes_total_{0};
};

}  // namespace harmony::ps
