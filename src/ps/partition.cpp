#include "ps/partition.h"

#include <cassert>
#include <stdexcept>

namespace harmony::ps {

std::vector<Range> partition_evenly(std::size_t total, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("partition_evenly: zero parts");
  std::vector<Range> out;
  out.reserve(parts);
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  std::size_t cursor = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    out.push_back(Range{cursor, cursor + len});
    cursor += len;
  }
  assert(cursor == total);
  return out;
}

std::size_t partition_of(std::size_t i, std::size_t total, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("partition_of: zero parts");
  if (i >= total) throw std::out_of_range("partition_of: key out of range");
  const std::size_t base = total / parts;
  const std::size_t extra = total % parts;
  // The first `extra` parts have size base+1 and cover [0, extra*(base+1)).
  const std::size_t big_span = extra * (base + 1);
  if (i < big_span) return i / (base + 1);
  return extra + (i - big_span) / (base == 0 ? 1 : base);
}

}  // namespace harmony::ps
