// Key-range partitioning: splits the flat parameter vector across server
// shards and the input data across workers, the way PS systems assign
// contiguous ranges.
#pragma once

#include <cstddef>
#include <vector>

namespace harmony::ps {

struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;  // exclusive

  std::size_t size() const noexcept { return end - begin; }
  bool empty() const noexcept { return begin >= end; }
  bool contains(std::size_t i) const noexcept { return i >= begin && i < end; }
  bool operator==(const Range&) const = default;
};

// Splits [0, total) into `parts` contiguous ranges whose sizes differ by at
// most one (the first `total % parts` ranges get the extra element).
std::vector<Range> partition_evenly(std::size_t total, std::size_t parts);

// Index of the partition that owns key `i` under partition_evenly(total, parts).
std::size_t partition_of(std::size_t i, std::size_t total, std::size_t parts);

}  // namespace harmony::ps
