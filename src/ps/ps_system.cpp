#include "ps/ps_system.h"

#include <stdexcept>

namespace harmony::ps {

PsSystem::PsSystem(std::shared_ptr<ml::MlApp> app, std::size_t num_machines, PsConfig config)
    : app_(std::move(app)), config_(config) {
  if (!app_) throw std::invalid_argument("PsSystem: null app");
  if (num_machines == 0) throw std::invalid_argument("PsSystem: zero machines");

  const std::size_t dim = app_->param_dim();
  const auto shard_ranges = partition_evenly(dim, num_machines);
  // The server-side apply rule delegates to the app (proximal step for Lasso,
  // non-negative projection for NMF, plain addition otherwise).
  ApplyFn apply = [app = app_.get()](std::span<double> params, std::span<const double> update) {
    app->apply_update(params, update);
  };

  const auto data_ranges = partition_evenly(app_->num_data(), num_machines);
  for (std::size_t m = 0; m < num_machines; ++m) {
    nics_.push_back(std::make_unique<Nic>(config_.nic_bytes_per_sec,
                                          "nic-" + std::to_string(m)));
    shards_.push_back(std::make_unique<ServerShard>(shard_ranges[m], apply));
  }
  // Workers are constructed after all NICs/shards exist (they hold references).
  for (std::size_t m = 0; m < num_machines; ++m) {
    workers_.push_back(std::make_unique<PsWorker>(*this, m, data_ranges[m], *nics_[m],
                                                  config_.batches_per_epoch));
  }
}

void PsSystem::init_model() {
  std::vector<double> initial(app_->param_dim());
  app_->init_params(initial);
  for (auto& shard : shards_) {
    const Range r = shard->range();
    shard->load(std::span<const double>(initial).subspan(r.begin, r.size()));
  }
}

std::vector<double> PsSystem::full_model() const {
  std::vector<double> model(app_->param_dim(), 0.0);
  for (const auto& shard : shards_) {
    const Range r = shard->range();
    const auto snap = shard->snapshot();
    std::copy(snap.begin(), snap.end(), model.begin() + static_cast<std::ptrdiff_t>(r.begin));
  }
  return model;
}

double PsSystem::loss() {
  const auto model = full_model();
  return app_->loss(model);
}

void PsSystem::run_iterations_sequential(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    // Synchronous training: every worker completes PULL+COMP before any PUSH
    // is applied, matching BSP semantics with staleness 0 (§V-B).
    for (auto& w : workers_) {
      w->pull_transfer();
      w->pull_deserialize();
      w->compute();
      w->push_serialize();
    }
    for (auto& w : workers_) w->push_transfer();
  }
}

}  // namespace harmony::ps
