// PsSystem wires one training job together: server shards partitioning the
// model, one worker per machine partitioning the input, and per-machine NICs
// (the paper co-locates a server and a worker on every instance, §II-A).
#pragma once

#include <memory>
#include <vector>

#include "ml/app.h"
#include "ps/network.h"
#include "ps/partition.h"
#include "ps/server.h"
#include "ps/worker.h"

namespace harmony::ps {

struct PsConfig {
  // Bytes/second per machine NIC; <= 0 disables throttling (fast tests).
  double nic_bytes_per_sec = 0.0;
  std::size_t batches_per_epoch = 1;
};

class PsSystem {
 public:
  PsSystem(std::shared_ptr<ml::MlApp> app, std::size_t num_machines, PsConfig config = {});

  // Loads the app's initial parameters into the shards. Must be called before
  // the first iteration (the constructor leaves parameters zeroed).
  void init_model();

  std::size_t num_machines() const noexcept { return workers_.size(); }
  PsWorker& worker(std::size_t i) { return *workers_.at(i); }
  ServerShard& shard(std::size_t i) { return *shards_.at(i); }
  std::size_t num_shards() const noexcept { return shards_.size(); }
  Nic& nic(std::size_t i) { return *nics_.at(i); }

  ml::MlApp& app() noexcept { return *app_; }

  // Gathers a consistent full-model snapshot (shard locks taken one at a
  // time; callers run it between iterations where the model is quiescent).
  std::vector<double> full_model() const;

  // Full-data objective at the current model; the convergence signal.
  double loss();

  // Runs `n` synchronous iterations across all workers on the calling thread
  // (workers advance in lockstep). The threaded execution paths live in the
  // runtime layer; this is the simple reference driver.
  void run_iterations_sequential(std::size_t n);

 private:
  std::shared_ptr<ml::MlApp> app_;
  PsConfig config_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<std::unique_ptr<ServerShard>> shards_;
  std::vector<std::unique_ptr<PsWorker>> workers_;
};

}  // namespace harmony::ps
