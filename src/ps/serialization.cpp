#include "ps/serialization.h"

// Header-only; this TU anchors the library target.
