// Byte-level serialization for PS messages.
//
// The runtime really serializes parameter slices to byte buffers and back —
// the paper moves (de)serialization *out* of COMM subtasks so network
// subtasks stay network-dominant (§IV-A); having a real wire format lets the
// runtime and benches account for that CPU cost explicitly.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace harmony::ps {

class ByteWriter {
 public:
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_double(double v) { put_raw(&v, sizeof(v)); }

  void put_doubles(std::span<const double> values) {
    put_u64(values.size());
    put_raw(values.data(), values.size() * sizeof(double));
  }

  void put_string(const std::string& s) {
    put_u64(s.size());
    put_raw(s.data(), s.size());
  }

  const std::vector<std::byte>& buffer() const noexcept { return buffer_; }
  std::vector<std::byte> take() noexcept { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  void put_raw(const void* data, std::size_t n) {
    if (n == 0) return;  // empty payloads may hand over a null data()
    const auto* p = static_cast<const std::byte*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }

  std::vector<std::byte> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint32_t get_u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_raw<std::uint64_t>(); }
  double get_double() { return get_raw<double>(); }

  std::vector<double> get_doubles() {
    const std::uint64_t n = get_u64();
    check(n * sizeof(double));
    std::vector<double> out(n);
    // n == 0 skips the copy: an empty span's data() is null, and memcpy's
    // pointers are declared nonnull even for zero sizes.
    if (n != 0) std::memcpy(out.data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return out;
  }

  // Deserializes directly into a caller-provided span (avoids an allocation
  // on the hot pull path).
  void get_doubles_into(std::span<double> out) {
    const std::uint64_t n = get_u64();
    if (n != out.size()) throw std::runtime_error("ByteReader: size mismatch");
    check(n * sizeof(double));
    if (n != 0) std::memcpy(out.data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
  }

  std::string get_string() {
    const std::uint64_t n = get_u64();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  template <typename T>
  T get_raw() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) throw std::runtime_error("ByteReader: out of data");
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace harmony::ps
