#include "ps/server.h"

#include <cassert>
#include <stdexcept>

namespace harmony::ps {

ServerShard::ServerShard(Range range, ApplyFn apply)
    : range_(range), apply_(std::move(apply)), params_(range.size(), 0.0) {
  if (!apply_) throw std::invalid_argument("ServerShard: null apply function");
}

std::vector<std::byte> ServerShard::serialize_params() const {
  ByteWriter writer;
  {
    common::MutexLock lock(mu_);
    writer.put_u64(range_.begin);
    writer.put_doubles(params_);
  }
  return writer.take();
}

std::size_t ServerShard::apply_push(std::span<const std::byte> payload) {
  ByteReader reader(payload);
  const std::uint64_t begin = reader.get_u64();
  if (begin != range_.begin) throw std::runtime_error("ServerShard: push to wrong shard");
  const std::vector<double> update = reader.get_doubles();
  {
    common::MutexLock lock(mu_);
    if (update.size() != params_.size())
      throw std::runtime_error("ServerShard: push size mismatch");
    apply_(params_, update);
    ++pushes_;
  }
  return update.size();
}

void ServerShard::load(std::span<const double> values) {
  common::MutexLock lock(mu_);
  if (values.size() != params_.size())
    throw std::invalid_argument("ServerShard: load size mismatch");
  std::copy(values.begin(), values.end(), params_.begin());
}

std::vector<double> ServerShard::snapshot() const {
  common::MutexLock lock(mu_);
  return params_;
}

}  // namespace harmony::ps
