// Server shard: owns one contiguous key range of the model.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/sync.h"
#include "ps/partition.h"
#include "ps/serialization.h"

namespace harmony::ps {

// Applies an additive update to a parameter slice. The application supplies
// this so server-side rules (Lasso's proximal step, NMF's non-negativity
// projection) run where the model lives.
using ApplyFn =
    std::function<void(std::span<double> params, std::span<const double> update)>;

class ServerShard {
 public:
  ServerShard(Range range, ApplyFn apply);

  const Range& range() const noexcept { return range_; }

  // Serializes the shard's current parameters (a PULL response).
  std::vector<std::byte> serialize_params() const;

  // Deserializes a pushed update payload and applies it under the shard lock
  // (a PUSH request). Returns the number of parameters updated.
  std::size_t apply_push(std::span<const std::byte> payload);

  // Direct accessors for initialization / checkpointing (master-side paths,
  // still lock-protected).
  void load(std::span<const double> values);
  std::vector<double> snapshot() const;

  std::uint64_t pushes_applied() const {
    common::MutexLock lock(mu_);
    return pushes_;
  }

 private:
  Range range_;
  ApplyFn apply_;
  mutable common::Mutex mu_;
  std::vector<double> params_ GUARDED_BY(mu_);
  std::uint64_t pushes_ GUARDED_BY(mu_) = 0;
};

}  // namespace harmony::ps
