#include "ps/worker.h"

#include <cassert>

#include "obs/metrics.h"
#include "ps/ps_system.h"
#include "ps/serialization.h"

namespace harmony::ps {

PsWorker::PsWorker(PsSystem& system, std::size_t index, Range data_range, Nic& nic,
                   std::size_t batches_per_epoch)
    : system_(system),
      index_(index),
      data_range_(data_range),
      nic_(nic),
      batches_(batches_per_epoch == 0 ? 1 : batches_per_epoch) {
  const std::size_t dim = system_.app().param_dim();
  params_.assign(dim, 0.0);
  update_.assign(dim, 0.0);
}

Range PsWorker::current_batch() const noexcept {
  const std::size_t batch_idx = iteration_ % batches_;
  const auto slices = partition_evenly(data_range_.size(), batches_);
  const Range slice = slices[batch_idx];
  return Range{data_range_.begin + slice.begin, data_range_.begin + slice.end};
}

void PsWorker::pull_transfer() {
  static obs::Counter& pull_bytes = obs::MetricsRegistry::instance().counter("ps.pull_bytes");
  pulled_payloads_.clear();
  pulled_payloads_.reserve(system_.num_shards());
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < system_.num_shards(); ++s) {
    auto payload = system_.shard(s).serialize_params();
    nic_.transfer(payload.size());
    bytes += payload.size();
    pulled_payloads_.push_back(std::move(payload));
  }
  pull_bytes.add(bytes);
}

void PsWorker::pull_deserialize() {
  for (const auto& payload : pulled_payloads_) {
    ByteReader reader(payload);
    const std::uint64_t begin = reader.get_u64();
    const std::uint64_t count = reader.get_u64();
    assert(begin + count <= params_.size());
    // Rewind: get_doubles_into expects the length prefix, so re-read it.
    ByteReader body(payload);
    body.get_u64();
    body.get_doubles_into(std::span<double>(params_).subspan(begin, count));
  }
  pulled_payloads_.clear();
}

void PsWorker::compute() {
  std::fill(update_.begin(), update_.end(), 0.0);
  const Range batch = current_batch();
  system_.app().compute_update(params_, update_, batch.begin, batch.end);
  ++iteration_;
}

void PsWorker::push_serialize() {
  push_payloads_.clear();
  push_payloads_.reserve(system_.num_shards());
  for (std::size_t s = 0; s < system_.num_shards(); ++s) {
    const Range range = system_.shard(s).range();
    ByteWriter writer;
    writer.put_u64(range.begin);
    writer.put_doubles(std::span<const double>(update_).subspan(range.begin, range.size()));
    push_payloads_.push_back(writer.take());
  }
}

void PsWorker::push_transfer() {
  static obs::Counter& push_bytes = obs::MetricsRegistry::instance().counter("ps.push_bytes");
  std::size_t bytes = 0;
  for (std::size_t s = 0; s < push_payloads_.size(); ++s) {
    nic_.transfer(push_payloads_[s].size());
    system_.shard(s).apply_push(push_payloads_[s]);
    bytes += push_payloads_[s].size();
  }
  push_bytes.add(bytes);
  push_payloads_.clear();
}

void PsWorker::run_iteration() {
  pull_transfer();
  pull_deserialize();
  compute();
  push_serialize();
  push_transfer();
}

}  // namespace harmony::ps
