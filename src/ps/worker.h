// PS worker: executes one job's PULL / COMP / PUSH steps on one machine.
//
// Each step is split along the paper's subtask boundary (§IV-A): the
// (de)serialization halves of PULL/PUSH are CPU work and are exposed as
// separate methods so Harmony's executor can schedule them in the CPU lane,
// keeping COMM subtasks network-dominant.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "ml/app.h"
#include "ps/network.h"
#include "ps/partition.h"

namespace harmony::ps {

class PsSystem;

class PsWorker {
 public:
  // `data_range` is this worker's slice of the input; `batches_per_epoch`
  // splits it into mini-batches processed round-robin (1 = full slice per
  // iteration).
  PsWorker(PsSystem& system, std::size_t index, Range data_range, Nic& nic,
           std::size_t batches_per_epoch = 1);

  // --- PULL ---------------------------------------------------------------
  // Network half: fetch serialized shard payloads over the NIC.
  void pull_transfer();
  // CPU half: deserialize payloads into the local parameter snapshot.
  void pull_deserialize();

  // --- COMP ---------------------------------------------------------------
  // Computes the update for the current mini-batch and advances the cursor.
  void compute();

  // --- PUSH ---------------------------------------------------------------
  // CPU half: serialize the update into per-shard payloads.
  void push_serialize();
  // Network half: send payloads; shards apply them on receipt.
  void push_transfer();

  // Runs one full iteration (all five phases in order); convenience for
  // tests and the quickstart example.
  void run_iteration();

  std::size_t index() const noexcept { return index_; }
  const Range& data_range() const noexcept { return data_range_; }
  std::span<const double> params() const noexcept { return params_; }
  std::size_t iterations_done() const noexcept { return iteration_; }
  // True once the cursor has wrapped: `iterations_done / batches_per_epoch`
  // epochs are complete.
  std::size_t epochs_done() const noexcept { return iteration_ / batches_; }

 private:
  Range current_batch() const noexcept;

  PsSystem& system_;
  std::size_t index_;
  Range data_range_;
  Nic& nic_;
  std::size_t batches_;
  std::size_t iteration_ = 0;

  std::vector<double> params_;
  std::vector<double> update_;
  std::vector<std::vector<std::byte>> pulled_payloads_;
  std::vector<std::vector<std::byte>> push_payloads_;
};

}  // namespace harmony::ps
