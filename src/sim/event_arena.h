// Slab-allocated, type-erased storage for pending event callbacks.
//
// Every scheduled event used to carry a std::function whose capture state
// lived in its own heap allocation; at millions of events per simulated run
// the allocator became a first-order cost. The arena replaces that with
// fixed-size slots carved out of 1024-slot slabs: scheduling placement-news
// the callable into a free slot, firing invokes it in place, and the slot
// returns to a freelist. Slabs are never moved or freed while the arena
// lives, so payload addresses stay stable for the whole event lifetime.
//
// Slots are reused aggressively, so a (slot, generation) pair — not the slot
// index — identifies one scheduled event. The generation bumps whenever a
// slot is cancelled or claimed for firing, which makes stale cancels O(1)
// harmless no-ops exactly like the old tombstone scheme, without the
// unordered_set lookup per event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace harmony::sim {

class EventArena {
 public:
  // Sized for the largest hot-path capture: a resource completion closure
  // (one back-pointer plus an inline SmallFn continuation). Larger callables
  // fall back to a heap box — rare, and still one allocation instead of
  // std::function's manager machinery.
  static constexpr std::size_t kPayloadBytes = 80;
  static constexpr std::size_t kSlabSlots = 1024;

  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;
  };

  EventArena() = default;
  EventArena(const EventArena&) = delete;
  EventArena& operator=(const EventArena&) = delete;

  ~EventArena() {
    for (std::uint32_t i = 0; i < size_; ++i) {
      Slot& s = slot_at(i);
      if (s.state != Slot::kFree) s.destroy(s.payload);
    }
  }

  // Stores `f` in a free slot (reusing the freelist before growing a new
  // slab) and returns its handle. Generations start at 1, so a packed
  // (gen << 32 | slot) id is never 0.
  template <typename F>
  Handle emplace(F&& f) {
    using Fn = std::decay_t<F>;
    const std::uint32_t idx = acquire_slot();
    Slot& s = slot_at(idx);
    if constexpr (sizeof(Fn) <= kPayloadBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.payload)) Fn(std::forward<F>(f));  // lint: allow-naked-new placement into slot storage
      s.invoke = [](void* p) { (*static_cast<Fn*>(p))(); };
      s.destroy = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    } else {
      // Oversized callable: box it. The payload holds only the pointer.
      auto boxed = std::make_unique<Fn>(std::forward<F>(f));
      ::new (static_cast<void*>(s.payload)) Fn*(boxed.release());  // lint: allow-naked-new placement into slot storage
      s.invoke = [](void* p) { (**static_cast<Fn**>(p))(); };
      s.destroy = [](void* p) { delete *static_cast<Fn**>(p); };  // lint: allow-naked-new boxed payload teardown
    }
    s.state = Slot::kLive;
    ++live_;
    return Handle{idx, s.gen};
  }

  // True while the event identified by (slot, gen) is pending: scheduled and
  // neither fired nor cancelled.
  bool is_live(std::uint32_t slot, std::uint32_t gen) const noexcept {
    if (slot >= size_) return false;
    const Slot& s = slot_at(slot);
    return s.gen == gen && s.state == Slot::kLive;
  }

  // Claims a live slot for firing. Returns false when the handle is stale
  // (the event was cancelled, already fired, or reused). On success the
  // generation bumps immediately, so a cancel issued from inside the callback
  // against the firing event's own id is a no-op — the same contract the
  // tombstone scheme provided by erasing the id before invoking.
  bool begin_fire(std::uint32_t slot, std::uint32_t gen) noexcept {
    if (slot >= size_) return false;
    Slot& s = slot_at(slot);
    if (s.gen != gen || s.state != Slot::kLive) return false;
    s.state = Slot::kFiring;
    ++s.gen;
    --live_;
    return true;
  }

  // Invokes a slot claimed by begin_fire, then destroys the payload and
  // returns the slot to the freelist — also when the callback throws
  // (validator CheckErrors propagate through the event loop).
  void fire_and_release(std::uint32_t slot) {
    Slot& s = slot_at(slot);
    struct Release {
      EventArena* arena = nullptr;
      Slot* slot = nullptr;
      std::uint32_t idx = 0;
      ~Release() {
        slot->destroy(slot->payload);
        slot->state = Slot::kFree;
        arena->free_.push_back(idx);
      }
    } release{this, &s, slot};
    s.invoke(s.payload);
  }

  // Cancels a pending event. Returns false (and does nothing) for stale
  // handles.
  bool cancel(std::uint32_t slot, std::uint32_t gen) noexcept {
    if (slot >= size_) return false;
    Slot& s = slot_at(slot);
    if (s.gen != gen || s.state != Slot::kLive) return false;
    s.destroy(s.payload);
    s.state = Slot::kFree;
    ++s.gen;
    --live_;
    free_.push_back(slot);
    return true;
  }

  std::size_t live() const noexcept { return live_; }
  std::uint32_t slots() const noexcept { return size_; }

 private:
  struct Slot {
    enum State : std::uint8_t { kFree, kLive, kFiring };

    void (*invoke)(void*) = nullptr;
    void (*destroy)(void*) = nullptr;
    std::uint32_t gen = 1;
    State state = kFree;
    alignas(std::max_align_t) unsigned char payload[kPayloadBytes];
  };

  Slot& slot_at(std::uint32_t idx) noexcept {
    return slabs_[idx / kSlabSlots][idx % kSlabSlots];
  }
  const Slot& slot_at(std::uint32_t idx) const noexcept {
    return slabs_[idx / kSlabSlots][idx % kSlabSlots];
  }

  std::uint32_t acquire_slot() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    if (size_ % kSlabSlots == 0)
      slabs_.push_back(std::make_unique<Slot[]>(kSlabSlots));
    return size_++;
  }

  std::vector<std::unique_ptr<Slot[]>> slabs_;
  std::vector<std::uint32_t> free_;
  std::uint32_t size_ = 0;
  std::size_t live_ = 0;
};

}  // namespace harmony::sim
