#include "sim/event_queue.h"

#include <algorithm>

namespace harmony::sim {

namespace {

// std::*_heap comparator for a min-heap over (time, seq).
struct NodeAfter {
  bool operator()(const EventNode& a, const EventNode& b) const noexcept {
    return node_before(b, a);
  }
};


bool node_is_stale(const EventArena& arena, const EventNode& n) noexcept {
  return !arena.is_live(n.slot, n.gen);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// BinaryHeapQueue

void BinaryHeapQueue::push(const EventNode& n) {
  heap_.push_back(n);
  std::push_heap(heap_.begin(), heap_.end(), NodeAfter{});
}

bool BinaryHeapQueue::pop_min(EventNode& out) {
  if (heap_.empty()) return false;
  std::pop_heap(heap_.begin(), heap_.end(), NodeAfter{});
  out = heap_.back();
  heap_.pop_back();
  return true;
}

void BinaryHeapQueue::compact(const EventArena& arena) {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [&](const EventNode& n) { return node_is_stale(arena, n); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), NodeAfter{});
}

void BinaryHeapQueue::validate_structure(check::Validation& v) const {
  for (std::size_t i = 1; i < heap_.size(); ++i) {
    const EventNode& parent = heap_[(i - 1) / 2];
    const EventNode& child = heap_[i];
    HARMONY_VALIDATE(v, !node_before(child, parent))
        << "heap property violated between nodes " << (i - 1) / 2 << " and " << i
        << " (times " << parent.time << " vs " << child.time << ")";
  }
}

void BinaryHeapQueue::corrupt_order_for_test() {
  if (heap_.size() < 2) return;
  // Swap the root (minimum) with the maximum: the max on top is guaranteed to
  // order after at least one of its children.
  std::size_t max_i = 0;
  for (std::size_t i = 1; i < heap_.size(); ++i)
    if (node_before(heap_[max_i], heap_[i])) max_i = i;
  std::swap(heap_[0], heap_[max_i]);
}

void BinaryHeapQueue::push_duplicate_for_test() {
  if (heap_.empty()) return;
  push(heap_.front());
}

// ---------------------------------------------------------------------------
// CalendarQueue

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

double CalendarQueue::adapted_width() const noexcept {
  if (!have_gap_) return width_;
  // Aim for a couple of events per bucket at the observed event density.
  double w = 2.0 * gap_ewma_;
  if (w < 1e-9) w = 1e-9;
  if (w > 1e15) w = 1e15;
  return w;
}

void CalendarQueue::insert_into_window(const EventNode& n) {
  const double di = bucket_index(n.time);
  if (di >= static_cast<double>(buckets_.size())) {
    far_.push_back(n);
    std::push_heap(far_.begin(), far_.end(), NodeAfter{});
    return;
  }
  std::size_t b = cur_;
  if (di > static_cast<double>(cur_)) b = static_cast<std::size_t>(di);
  ++in_buckets_;
  std::vector<EventNode>& bk = buckets_[b];
  bk.push_back(n);
  if (b == cur_ && cur_heaped_) std::push_heap(bk.begin(), bk.end(), NodeAfter{});
}

void CalendarQueue::rebuild(std::size_t nb, double width) {
  std::vector<EventNode> all;
  all.reserve(count_);
  for (std::vector<EventNode>& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  all.insert(all.end(), far_.begin(), far_.end());
  far_.clear();

  buckets_.resize(nb);
  width_ = width;
  cur_ = 0;
  cur_heaped_ = false;
  in_buckets_ = 0;
  pops_since_rebuild_ = 0;

  double min_time = 0.0;
  bool first = true;
  for (const EventNode& n : all) {
    if (first || n.time < min_time) min_time = n.time;
    first = false;
  }
  win_start_ = min_time;
  for (const EventNode& n : all) insert_into_window(n);
}

void CalendarQueue::turnover() {
  win_start_ += width_ * static_cast<double>(buckets_.size());
  cur_ = 0;
  cur_heaped_ = false;
  if (far_.empty()) return;
  // Pull newly in-window far nodes into buckets.
  std::size_t kept = 0;
  const double nb = static_cast<double>(buckets_.size());
  for (std::size_t i = 0; i < far_.size(); ++i) {
    const EventNode n = far_[i];
    if (bucket_index(n.time) < nb) {
      std::size_t b = cur_;
      const double di = bucket_index(n.time);
      if (di > static_cast<double>(cur_)) b = static_cast<std::size_t>(di);
      buckets_[b].push_back(n);
      ++in_buckets_;
    } else {
      far_[kept++] = n;
    }
  }
  far_.resize(kept);
  std::make_heap(far_.begin(), far_.end(), NodeAfter{});
}

void CalendarQueue::push(const EventNode& n) {
  ++count_;
  insert_into_window(n);
  if (in_buckets_ > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    const std::size_t nb = round_up_pow2(std::min(in_buckets_, kMaxBuckets));
    if (nb != buckets_.size()) rebuild(nb, adapted_width());
  }
}

bool CalendarQueue::pop_min(EventNode& out) {
  if (count_ == 0) return false;
  for (;;) {
    if (in_buckets_ == 0) {
      // Everything pending sits beyond the window: re-anchor it at the far
      // minimum (this is the "jump" that skips idle stretches in O(n)).
      const std::size_t nb =
          std::min(std::max(round_up_pow2(count_), kMinBuckets), kMaxBuckets);
      rebuild(nb, adapted_width());
      continue;  // win_start_ is now the far minimum, so a bucket is occupied
    }
    // A long-lived steady-state population never triggers the grow/shrink
    // rebuilds, so the width set at the last rebuild can drift arbitrarily
    // far from the observed event density (and with it the per-bucket
    // population). Retune when it is off by 16x in either direction. The
    // band must sit far above the EWMA's own noise — exponential inter-pop
    // gaps swing the average across a 4x band routinely, and every false
    // trigger costs an O(n) redistribution — while real degeneration (a
    // width stuck at the wrong time scale) is off by orders of magnitude.
    // The pops-since-rebuild floor scales with the population so retunes
    // stay amortized O(1) per pop even if the density genuinely oscillates.
    if (have_gap_ && pops_since_rebuild_ >= std::max(kRetuneMinPops, count_ / 8)) {
      const double w = adapted_width();
      if (width_ > 16.0 * w || width_ < 0.0625 * w) {
        const std::size_t nb =
            std::min(std::max(round_up_pow2(count_), kMinBuckets), kMaxBuckets);
        rebuild(nb, w);
        continue;
      }
    }
    std::vector<EventNode>& bk = buckets_[cur_];
    if (bk.empty()) {
      cur_heaped_ = false;
      ++cur_;
      if (cur_ == buckets_.size()) turnover();
      continue;
    }
    if (!cur_heaped_ && bk.size() > kHeapThreshold) {
      std::make_heap(bk.begin(), bk.end(), NodeAfter{});
      cur_heaped_ = true;
    }
    if (cur_heaped_) {
      std::pop_heap(bk.begin(), bk.end(), NodeAfter{});
      out = bk.back();
      bk.pop_back();
    } else {
      std::size_t min_i = 0;
      for (std::size_t i = 1; i < bk.size(); ++i)
        if (node_before(bk[i], bk[min_i])) min_i = i;
      out = bk[min_i];
      bk[min_i] = bk.back();
      bk.pop_back();
    }
    --in_buckets_;
    --count_;
    ++pops_since_rebuild_;
    if (have_pop_) {
      const double gap = out.time - last_pop_time_;
      if (gap > 0.0) {
        gap_ewma_ = have_gap_ ? gap_ewma_ + 0.125 * (gap - gap_ewma_) : gap;
        have_gap_ = true;
      }
    }
    last_pop_time_ = out.time;
    have_pop_ = true;
    // Shrink a sparse calendar; amortized O(1) (>= 3/8 of the old population
    // was popped since the structure last fit).
    if (count_ > 0 && count_ * 8 < buckets_.size() && buckets_.size() > kMinBuckets) {
      const std::size_t nb = std::max(round_up_pow2(count_), kMinBuckets);
      if (nb != buckets_.size()) rebuild(nb, adapted_width());
    }
    return true;
  }
}

void CalendarQueue::compact(const EventArena& arena) {
  for (std::vector<EventNode>& bucket : buckets_) {
    const auto old = bucket.size();
    bucket.erase(
        std::remove_if(bucket.begin(), bucket.end(),
                       [&](const EventNode& n) { return node_is_stale(arena, n); }),
        bucket.end());
    in_buckets_ -= old - bucket.size();
    count_ -= old - bucket.size();
  }
  // Removing from the middle breaks the serving bucket's heap property.
  if (cur_heaped_)
    std::make_heap(buckets_[cur_].begin(), buckets_[cur_].end(), NodeAfter{});
  const auto old_far = far_.size();
  far_.erase(std::remove_if(far_.begin(), far_.end(),
                            [&](const EventNode& n) { return node_is_stale(arena, n); }),
             far_.end());
  count_ -= old_far - far_.size();
  std::make_heap(far_.begin(), far_.end(), NodeAfter{});
}

void CalendarQueue::validate_structure(check::Validation& v) const {
  std::size_t in_buckets = 0;
  for (const auto& bucket : buckets_) in_buckets += bucket.size();
  HARMONY_VALIDATE(v, in_buckets == in_buckets_)
      << "calendar bucket population is " << in_buckets << " but the cached count says "
      << in_buckets_;
  HARMONY_VALIDATE(v, count_ == in_buckets_ + far_.size())
      << "calendar count " << count_ << " != " << in_buckets_ << " bucket nodes + "
      << far_.size() << " far nodes";
  const double nb = static_cast<double>(buckets_.size());
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (b < cur_)
      HARMONY_VALIDATE(v, buckets_[b].empty())
          << "consumed calendar bucket " << b << " still holds " << buckets_[b].size()
          << " nodes (cursor is at " << cur_ << ")";
    for (const EventNode& n : buckets_[b]) {
      const double di = bucket_index(n.time);
      HARMONY_VALIDATE(v, di < nb)
          << "calendar bucket " << b << " holds event at t=" << n.time
          << " that belongs beyond the window (far ladder)";
      // Inserts clamp early times onto the cursor bucket; anything else must
      // sit exactly where its time maps.
      HARMONY_VALIDATE(v,
                       b == cur_ || (di >= 0.0 && static_cast<std::size_t>(di) == b))
          << "event at t=" << n.time << " sits in the wrong calendar bucket " << b
          << " (maps to " << di << ", cursor " << cur_ << ")";
    }
  }
  for (std::size_t i = 0; i < far_.size(); ++i) {
    const EventNode& n = far_[i];
    HARMONY_VALIDATE(v, bucket_index(n.time) >= nb)
        << "far ladder holds event at t=" << n.time << " that maps inside the window";
    if (i > 0) {
      const EventNode& parent = far_[(i - 1) / 2];
      HARMONY_VALIDATE(v, !node_before(n, parent))
          << "far-ladder heap property violated between nodes " << (i - 1) / 2 << " and "
          << i;
    }
  }
}

void CalendarQueue::corrupt_order_for_test() {
  for (std::size_t b = cur_; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    const EventNode n = buckets_[b].back();
    buckets_[b].pop_back();
    if (b + 1 < buckets_.size()) {
      buckets_[b + 1].push_back(n);  // wrong bucket: maps to b, stored in b+1
    } else {
      --in_buckets_;
      far_.push_back(n);  // in-window event hidden in the far ladder
      std::push_heap(far_.begin(), far_.end(), NodeAfter{});
    }
    return;
  }
  if (!far_.empty()) {
    // All nodes are far: surface one into the serving bucket, where its
    // beyond-window time is out of place.
    std::pop_heap(far_.begin(), far_.end(), NodeAfter{});
    const EventNode n = far_.back();
    far_.pop_back();
    buckets_[cur_].push_back(n);
    ++in_buckets_;
  }
}

void CalendarQueue::push_duplicate_for_test() {
  for (const auto& bucket : buckets_) {
    if (!bucket.empty()) {
      push(bucket.front());
      return;
    }
  }
  if (!far_.empty()) push(far_.front());
}

}  // namespace harmony::sim
