// Pending-event priority queues for the DES core.
//
// A queue node is 24 bytes of plain data: fire time, a global sequence number
// (FIFO tie-break for same-instant events — the determinism contract the
// golden tests pin), and the (slot, generation) handle of the callback in the
// EventArena. Cancellation never touches the queue; a node whose generation
// no longer matches its arena slot is an orphan and is dropped when popped,
// or swept out by compact() when orphans pile up.
//
// Two interchangeable implementations serve the same (time, seq) pop order:
//
//  * BinaryHeapQueue — std::push_heap/pop_heap, O(log n) per op. The
//    reference implementation: simple enough to trust, kept selectable so
//    golden runs can cross-check the calendar queue bit for bit.
//
//  * CalendarQueue — O(1) amortized bucketed queue (Brown's calendar queue
//    with a non-wrapping window plus a far-future spill ladder). Events
//    beyond the current bucket window wait in a min-heap "ladder" and are
//    pulled into buckets as the window advances; bucket width adapts to the
//    observed inter-pop gap, and bucket count to the population.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "check/check.h"
#include "sim/event_arena.h"

namespace harmony::sim {

struct EventNode {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;
};

// Strict total pop order: earliest time first, then scheduling order.
inline bool node_before(const EventNode& a, const EventNode& b) noexcept {
  if (a.time != b.time) return a.time < b.time;
  return a.seq < b.seq;
}

class BinaryHeapQueue {
 public:
  void push(const EventNode& n);
  // Pops the minimum node (live or orphan — the caller filters orphans).
  // Returns false when empty.
  bool pop_min(EventNode& out);
  std::size_t size() const noexcept { return heap_.size(); }
  // Drops nodes whose arena handle is stale; pop order of the survivors is
  // unchanged (the heap is rebuilt over the same (time, seq) keys).
  void compact(const EventArena& arena);

  template <typename F>
  void for_each(F&& f) const {
    for (const EventNode& n : heap_) f(n);
  }

  void validate_structure(check::Validation& v) const;
  // Swaps the root below a larger leaf so validate_structure can demonstrate
  // detection of a broken heap invariant.
  void corrupt_order_for_test();
  void push_duplicate_for_test();

 private:
  std::vector<EventNode> heap_;
};

class CalendarQueue {
 public:
  CalendarQueue();
  void push(const EventNode& n);
  bool pop_min(EventNode& out);
  std::size_t size() const noexcept { return count_; }
  void compact(const EventArena& arena);

  template <typename F>
  void for_each(F&& f) const {
    for (const auto& bucket : buckets_)
      for (const EventNode& n : bucket) f(n);
    for (const EventNode& n : far_) f(n);
  }

  void validate_structure(check::Validation& v) const;
  // Moves one node into a calendar bucket it does not belong to, so
  // validate_structure can demonstrate detection of a misplaced node.
  void corrupt_order_for_test();
  void push_duplicate_for_test();

 private:
  // Bucket index of `t` as a double: floor((t - win_start_) / width_).
  // Monotone in t (same subtraction and positive divisor), so bucket order
  // respects time order even at floating-point boundaries. Values >= the
  // bucket count mean "beyond the window" (far ladder); negative values are
  // clamped onto the cursor bucket at insert.
  double bucket_index(double t) const noexcept {
    return std::floor((t - win_start_) / width_);
  }

  void insert_into_window(const EventNode& n);
  // Collects every node and redistributes it over `nb` buckets of `width`,
  // with the window re-anchored at the earliest pending time.
  void rebuild(std::size_t nb, double width);
  // Advances the window one span and pulls newly in-window far nodes in.
  void turnover();
  double adapted_width() const noexcept;

  std::vector<std::vector<EventNode>> buckets_;
  std::vector<EventNode> far_;  // min-heap by node_before, times beyond window
  double width_ = 1.0;
  double win_start_ = 0.0;
  std::size_t cur_ = 0;         // buckets below cur_ are consumed (empty)
  std::size_t in_buckets_ = 0;  // nodes across buckets_ (count_ - far_.size())
  std::size_t count_ = 0;
  // Serving bucket turned into a binary min-heap once it crosses
  // kHeapThreshold: O(log k) pops and inserts instead of O(k) scans, and —
  // unlike a sorted vector — no O(k) memmove when a fired event schedules a
  // successor back into the bucket being served. Keys (time, seq) are unique,
  // so heap pops give the same total order a sort would.
  bool cur_heaped_ = false;
  // Deterministic width adaptation: EWMA of inter-pop gaps in simulated time.
  double last_pop_time_ = 0.0;
  double gap_ewma_ = 0.0;
  bool have_pop_ = false;
  bool have_gap_ = false;
  // Pops since the last rebuild; retuning the width costs O(n), so pop_min
  // only considers it after enough pops to amortize (see kRetuneMinPops).
  std::size_t pops_since_rebuild_ = 0;

  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 22;
  static constexpr std::size_t kHeapThreshold = 32;
  static constexpr std::size_t kRetuneMinPops = 128;
};

}  // namespace harmony::sim
