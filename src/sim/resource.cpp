#include "sim/resource.h"

#include <cassert>
#include <limits>
#include <stdexcept>

namespace harmony::sim {

FifoResource::FifoResource(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

TaskId FifoResource::submit(double duration, DoneFn on_done) {
  if (duration < 0.0) throw std::invalid_argument("FifoResource: negative duration");
  const TaskId id = next_id_++;
  pending_.push_back(Pending{id, duration, std::move(on_done)});
  if (!running_) start_next();
  return id;
}

bool FifoResource::cancel_pending(TaskId id) {
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (it->id == id) {
      pending_.erase(it);
      return true;
    }
  }
  return false;
}

double FifoResource::busy_time() const noexcept {
  return busy_accum_ + (running_ ? sim_.now() - busy_since_ : 0.0);
}

void FifoResource::start_next() {
  assert(!running_);
  if (pending_.empty()) return;
  Pending task = std::move(pending_.front());
  pending_.pop_front();
  running_ = true;
  busy_since_ = sim_.now();
  sim_.schedule_in(task.duration, [this, done = std::move(task.on_done)]() mutable {
    busy_accum_ += sim_.now() - busy_since_;
    running_ = false;
    // Start the successor before the completion callback so that a callback
    // which immediately resubmits observes consistent FIFO order.
    start_next();
    if (done) done();
  });
}

SharedResource::SharedResource(Simulator& sim, std::string name, double capacity,
                               double interference)
    : sim_(sim), name_(std::move(name)), capacity_(capacity), interference_(interference) {
  if (capacity <= 0.0) throw std::invalid_argument("SharedResource: capacity must be > 0");
  if (interference < 0.0) throw std::invalid_argument("SharedResource: negative interference");
}

double SharedResource::per_task_rate() const noexcept {
  const auto n = static_cast<double>(tasks_.size());
  if (tasks_.empty()) return 0.0;
  return capacity_ / n / (1.0 + interference_ * (n - 1.0));
}

TaskId SharedResource::submit(double work, DoneFn on_done) {
  if (work < 0.0) throw std::invalid_argument("SharedResource: negative work");
  settle_and_reschedule();  // account elapsed progress before membership change
  if (tasks_.empty()) busy_since_ = sim_.now();
  const TaskId id = next_id_++;
  tasks_.emplace(id, Task{work, std::move(on_done)});
  settle_and_reschedule();
  return id;
}

void SharedResource::settle_and_reschedule() {
  const double now = sim_.now();
  const double rate = per_task_rate();
  const double elapsed = now - last_settle_;
  if (elapsed > 0.0 && !tasks_.empty()) {
    for (auto& [id, task] : tasks_) {
      const double served = std::min(task.remaining, rate * elapsed);
      task.remaining -= served;
      work_done_ += served;
    }
  }
  last_settle_ = now;

  if (completion_event_ != kInvalidEvent) {
    sim_.cancel(completion_event_);
    completion_event_ = kInvalidEvent;
  }
  if (tasks_.empty()) return;

  // Next completion: the task with least remaining work at the current rate.
  double min_remaining = std::numeric_limits<double>::infinity();
  for (const auto& [id, task] : tasks_) min_remaining = std::min(min_remaining, task.remaining);
  const double new_rate = per_task_rate();
  const double dt = min_remaining / new_rate;

  completion_event_ = sim_.schedule_in(dt, [this] {
    completion_event_ = kInvalidEvent;
    const double now = sim_.now();
    const double rate = per_task_rate();
    const double elapsed = now - last_settle_;
    std::vector<DoneFn> finished;
    for (auto it = tasks_.begin(); it != tasks_.end();) {
      auto& task = it->second;
      const double served = std::min(task.remaining, rate * elapsed);
      task.remaining -= served;
      work_done_ += served;
      // Tolerance absorbs floating-point drift in the rate arithmetic.
      if (task.remaining <= 1e-9) {
        finished.push_back(std::move(task.on_done));
        it = tasks_.erase(it);
      } else {
        ++it;
      }
    }
    last_settle_ = now;
    if (tasks_.empty()) busy_accum_ += now - busy_since_;
    settle_and_reschedule();
    for (auto& done : finished)
      if (done) done();
  });
}

double SharedResource::busy_time() const noexcept {
  return busy_accum_ + (!tasks_.empty() ? sim_.now() - busy_since_ : 0.0);
}

}  // namespace harmony::sim
