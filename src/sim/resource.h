// Simulated resources.
//
// Two service disciplines model the two scheduling regimes the paper compares:
//
//  * FifoResource — one task at a time, in order. This is how Harmony's
//    subtask executor drives a resource: exactly one COMP subtask occupies the
//    CPU, so a task's service time equals its profiled duration (predictable).
//
//  * SharedResource — processor sharing with an interference penalty. This is
//    what naive co-location does: concurrent tasks split the capacity and
//    additionally slow each other down (cache/connection contention), which is
//    why the paper's naive baseline shows high variance and can be slower than
//    isolated execution (§II-B, Fig. 4/5a).
//
// Both track busy time and completed work so the harness can report
// utilization exactly as the paper does (fraction of time the resource is in
// use, Eq. 3).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "common/sorted_view.h"
#include "sim/simulator.h"
#include "sim/small_fn.h"

namespace harmony::sim {

using TaskId = std::uint64_t;

// Serves queued tasks one at a time in submission order.
class FifoResource {
 public:
  // Inline-storage continuation: submitting a task costs no heap allocation.
  using DoneFn = SmallFn<48>;

  FifoResource(Simulator& sim, std::string name);

  // Enqueues a task whose service time is `duration` seconds once it reaches
  // the head of the queue. `on_done` fires at completion.
  TaskId submit(double duration, DoneFn on_done);

  // Removes a task that has not started yet. Returns false if the task is
  // already running or finished (it will complete normally).
  bool cancel_pending(TaskId id);

  std::size_t queue_length() const noexcept { return pending_.size(); }
  bool busy() const noexcept { return running_; }

  // Total time with a task in service since construction (utilization
  // numerator).
  double busy_time() const noexcept;

  const std::string& name() const noexcept { return name_; }

 private:
  struct Pending {
    TaskId id = 0;
    double duration = 0.0;
    DoneFn on_done;
  };

  void start_next();

  Simulator& sim_;
  std::string name_;
  std::deque<Pending> pending_;
  bool running_ = false;
  double busy_accum_ = 0.0;
  double busy_since_ = 0.0;
  TaskId next_id_ = 1;
};

// Processor-sharing resource with interference.
//
// With n concurrent tasks each receives rate
//     capacity / n / (1 + interference * (n - 1))
// so total throughput degrades below capacity as soon as tasks contend —
// the super-linear slowdown naive co-location exhibits.
class SharedResource {
 public:
  using DoneFn = SmallFn<48>;

  SharedResource(Simulator& sim, std::string name, double capacity,
                 double interference = 0.0);

  // Submits `work` units (e.g. core-seconds, bytes); `on_done` fires when the
  // task's work is fully served.
  TaskId submit(double work, DoneFn on_done);

  std::size_t active() const noexcept { return tasks_.size(); }
  double capacity() const noexcept { return capacity_; }
  double busy_time() const noexcept;
  double work_completed() const noexcept { return work_done_; }

 private:
  struct Task {
    double remaining = 0.0;
    DoneFn on_done;
  };

  // Advances all remaining-work counters to `now`, then reschedules the next
  // completion event. Called whenever membership changes.
  void settle_and_reschedule();
  double per_task_rate() const noexcept;

  Simulator& sim_;
  std::string name_;
  double capacity_;
  double interference_;

  // Ordered by TaskId (= submission order) so the settle loop's float
  // accumulation and the completion callbacks fire in a deterministic order
  // regardless of hash-table bucket layout.
  common::ordered_map<TaskId, Task> tasks_;
  TaskId next_id_ = 1;

  double last_settle_ = 0.0;
  EventId completion_event_ = kInvalidEvent;

  double busy_accum_ = 0.0;
  double busy_since_ = 0.0;
  double work_done_ = 0.0;
};

}  // namespace harmony::sim
