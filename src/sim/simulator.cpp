#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace harmony::sim {

EventId Simulator::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator: scheduling into the past");
  const EventId id = next_id_++;
  queue_.push(Event{t, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

void Simulator::cancel(EventId id) {
  // The heap node stays behind as a tombstone and is skipped when popped.
  if (callbacks_.erase(id) > 0) --live_count_;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) continue;  // cancelled tombstone
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    --live_count_;
    assert(ev.time >= now_);
    now_ = ev.time;
    ++fired_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(double t) {
  while (!queue_.empty()) {
    // Skip tombstones cheaply before peeking at the time.
    const Event ev = queue_.top();
    if (callbacks_.find(ev.id) == callbacks_.end()) {
      queue_.pop();
      continue;
    }
    if (ev.time > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

}  // namespace harmony::sim
