#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace harmony::sim {

EventId Simulator::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator: scheduling into the past");
  const EventId id = next_id_++;
  heap_.push_back(Event{t, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  live_.insert(id);
  return id;
}

void Simulator::cancel(EventId id) {
  // Cancelling an already-fired or unknown id is a harmless no-op; the
  // orphaned heap node is discarded when it reaches the top.
  live_.erase(id);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (live_.erase(ev.id) == 0) continue;  // cancelled tombstone
    assert(ev.time >= now_);
    now_ = ev.time;
    ++fired_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(double t) {
  while (!heap_.empty()) {
    // Skip tombstones cheaply before peeking at the time.
    const Event& ev = heap_.front();
    if (live_.find(ev.id) == live_.end()) {
      std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
      heap_.pop_back();
      continue;
    }
    if (ev.time > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

}  // namespace harmony::sim
