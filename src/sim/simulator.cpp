#include "sim/simulator.h"

#include <vector>

namespace harmony::sim {

void Simulator::push_node(const EventNode& n) {
  if (queue_kind_ == EventQueueKind::kCalendar)
    calendar_.push(n);
  else
    heap_.push(n);
}

bool Simulator::pop_node(EventNode& out) {
  if (queue_kind_ == EventQueueKind::kCalendar) return calendar_.pop_min(out);
  return heap_.pop_min(out);
}

std::size_t Simulator::queue_nodes() const noexcept {
  return queue_kind_ == EventQueueKind::kCalendar ? calendar_.size() : heap_.size();
}

void Simulator::maybe_compact() {
  // Lazy deletion leaves the cancelled node behind; sweep the orphans out
  // once they outnumber the live events (the +64 floor avoids thrashing tiny
  // queues). Pop order is unaffected — survivors keep their (time, seq) keys.
  if (queue_nodes() > 2 * arena_.live() + 64) {
    if (queue_kind_ == EventQueueKind::kCalendar)
      calendar_.compact(arena_);
    else
      heap_.compact(arena_);
  }
}

void Simulator::cancel(EventId id) {
  // Cancelling an already-fired or unknown id is a harmless no-op; the arena
  // generation check rejects stale handles in O(1).
  const auto slot = static_cast<std::uint32_t>(id & 0xffffffffu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (arena_.cancel(slot, gen)) maybe_compact();
}

bool Simulator::step() {
  EventNode node;
  while (pop_node(node)) {
    if (!arena_.begin_fire(node.slot, node.gen)) continue;  // cancelled orphan
    // Pops must be time-monotonic or causality breaks silently downstream.
    HARMONY_DCHECK(node.time >= now_)
        << "event " << node.seq << " fires at " << node.time << " but clock is at "
        << now_;
    now_ = node.time;
    ++fired_;
    arena_.fire_and_release(node.slot);
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::run_until(double t) {
  EventNode node;
  while (pop_node(node)) {
    if (!arena_.is_live(node.slot, node.gen)) continue;  // drop orphans cheaply
    if (node.time > t) {
      // Went one past the horizon: re-insert. The node keeps its (time, seq)
      // key, so FIFO order within its instant is preserved.
      push_node(node);
      break;
    }
    if (!arena_.begin_fire(node.slot, node.gen)) continue;
    HARMONY_DCHECK(node.time >= now_)
        << "event " << node.seq << " fires at " << node.time << " but clock is at "
        << now_;
    now_ = node.time;
    ++fired_;
    arena_.fire_and_release(node.slot);
  }
  if (t > now_) now_ = t;
}

void Simulator::validate(check::Validation& v) const {
  // Brute-force recount of queue nodes per live event, and the true minimum
  // over live pending events — on whichever queue implementation is active.
  std::vector<std::uint8_t> node_count(arena_.slots(), 0);
  std::size_t live_nodes = 0;
  const EventNode* min_live = nullptr;
  EventNode min_copy{};
  auto visit = [&](const EventNode& n) {
    if (!arena_.is_live(n.slot, n.gen)) return;  // orphan of a cancelled event
    ++node_count[n.slot];
    ++live_nodes;
    if (min_live == nullptr || node_before(n, *min_live)) {
      min_copy = n;
      min_live = &min_copy;
    }
  };
  if (queue_kind_ == EventQueueKind::kCalendar)
    calendar_.for_each(visit);
  else
    heap_.for_each(visit);

  HARMONY_VALIDATE(v, live_nodes == arena_.live())
      << "arena holds " << arena_.live() << " live events but the queue holds nodes for "
      << live_nodes << " of them";
  for (std::size_t slot = 0; slot < node_count.size(); ++slot)
    HARMONY_VALIDATE(v, node_count[slot] <= 1)
        << "event in arena slot " << slot << " has "
        << static_cast<unsigned>(node_count[slot]) << " queue nodes (expected exactly 1)";
  if (min_live != nullptr) {
    HARMONY_VALIDATE(v, min_live->time >= now_)
        << "clock " << now_ << " ran past pending event " << min_live->seq << " at "
        << min_live->time << " (event-queue pops would be non-monotonic)";
  }
  if (queue_kind_ == EventQueueKind::kCalendar)
    calendar_.validate_structure(v);
  else
    heap_.validate_structure(v);
}

void Simulator::corrupt_queue_order_for_test() {
  if (queue_kind_ == EventQueueKind::kCalendar)
    calendar_.corrupt_order_for_test();
  else
    heap_.corrupt_order_for_test();
}

void Simulator::corrupt_queue_duplicate_for_test() {
  if (queue_kind_ == EventQueueKind::kCalendar)
    calendar_.push_duplicate_for_test();
  else
    heap_.push_duplicate_for_test();
}

}  // namespace harmony::sim
