#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace harmony::sim {

EventId Simulator::schedule_at(double t, Callback cb) {
  if (t < now_) throw std::invalid_argument("Simulator: scheduling into the past");
  const EventId id = next_id_++;
  heap_.push_back(Event{t, id, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  live_.insert(id);
  return id;
}

void Simulator::cancel(EventId id) {
  // Cancelling an already-fired or unknown id is a harmless no-op; the
  // orphaned heap node is discarded when it reaches the top.
  live_.erase(id);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
    Event ev = std::move(heap_.back());
    heap_.pop_back();
    if (live_.erase(ev.id) == 0) continue;  // cancelled tombstone
    // Pops must be time-monotonic or causality breaks silently downstream.
    HARMONY_DCHECK(ev.time >= now_)
        << "event " << ev.id << " fires at " << ev.time << " but clock is at " << now_;
    now_ = ev.time;
    ++fired_;
    ev.cb();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (n < max_events && step()) ++n;
}

void Simulator::validate(check::Validation& v) const {
  // Brute-force recount of heap nodes per live id, and the true minimum over
  // live pending events.
  std::unordered_map<EventId, std::size_t> node_count;
  const Event* min_live = nullptr;
  for (const Event& ev : heap_) {
    if (live_.find(ev.id) == live_.end()) continue;  // tombstone
    ++node_count[ev.id];
    if (min_live == nullptr || *min_live > ev) min_live = &ev;
  }
  HARMONY_VALIDATE(v, node_count.size() == live_.size())
      << "live set has " << live_.size() << " ids but the heap holds nodes for "
      << node_count.size() << " of them";
  for (const auto& [id, count] : node_count)
    HARMONY_VALIDATE(v, count == 1)
        << "event " << id << " has " << count << " heap nodes (expected exactly 1)";
  if (min_live != nullptr) {
    HARMONY_VALIDATE(v, min_live->time >= now_)
        << "clock " << now_ << " ran past pending event " << min_live->id << " at "
        << min_live->time << " (event-heap pops would be non-monotonic)";
    // Full heap-property sweep (parent <= child in pop order); with the
    // property intact, pop_heap serves live events in time order even with
    // tombstones interleaved.
    for (std::size_t i = 1; i < heap_.size(); ++i) {
      const Event& parent = heap_[(i - 1) / 2];
      const Event& child = heap_[i];
      HARMONY_VALIDATE(v, !(parent > child))
          << "heap property violated between nodes " << (i - 1) / 2 << " and " << i
          << " (times " << parent.time << " vs " << child.time << ")";
    }
  }
}

void Simulator::run_until(double t) {
  while (!heap_.empty()) {
    // Skip tombstones cheaply before peeking at the time.
    const Event& ev = heap_.front();
    if (live_.find(ev.id) == live_.end()) {
      std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
      heap_.pop_back();
      continue;
    }
    if (ev.time > t) break;
    step();
  }
  if (t > now_) now_ = t;
}

}  // namespace harmony::sim
