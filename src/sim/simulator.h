// Discrete-event simulation core.
//
// The simulator keeps a priority queue of timestamped callbacks. Components
// (resources, job pipelines, the scheduler driver) schedule future events and
// react to them; simulated time advances only through the event queue, so a
// full 80-job / 100-machine day-long experiment runs in milliseconds of wall
// time and is bit-reproducible from the RNG seeds.
//
// Internally an event is two pieces: the callback payload lives in an
// EventArena slot (slab storage, no per-event heap allocation) and a 24-byte
// EventNode in the priority queue carries (time, seq, arena handle). Two
// queue implementations are selectable at construction — a binary heap (the
// reference) and a calendar queue (O(1) amortized, the default) — with an
// identical pop order: earliest time first, then scheduling order. The
// golden-determinism tests pin that both produce bit-identical runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "check/check.h"
#include "sim/event_arena.h"
#include "sim/event_queue.h"

namespace harmony::sim {

// An EventId packs the arena handle: (generation << 32) | slot. Generations
// start at 1, so 0 never names a real event.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

enum class EventQueueKind : std::uint8_t { kBinaryHeap, kCalendar };

class Simulator {
 public:
  explicit Simulator(EventQueueKind queue = EventQueueKind::kCalendar)
      : queue_kind_(queue) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time in seconds.
  double now() const noexcept { return now_; }

  EventQueueKind queue_kind() const noexcept { return queue_kind_; }

  // Schedules `cb` (any void() callable; captured state moves into the event
  // arena) at absolute time `t` (must be >= now). Events scheduled for the
  // same instant fire in scheduling order (stable FIFO tie-break).
  template <typename F>
  EventId schedule_at(double t, F&& cb) {
    if (t < now_) throw std::invalid_argument("Simulator: scheduling into the past");
    const EventArena::Handle h = arena_.emplace(std::forward<F>(cb));
    push_node(EventNode{t, next_seq_++, h.slot, h.gen});
    return (static_cast<EventId>(h.gen) << 32) | h.slot;
  }
  template <typename F>
  EventId schedule_in(double dt, F&& cb) {
    return schedule_at(now_ + dt, std::forward<F>(cb));
  }

  // Cancels a pending event; cancelling an already-fired or unknown id is a
  // harmless no-op (resources rely on this when they reschedule completions).
  // The queue node becomes an orphan and is dropped when popped; when orphans
  // outnumber live events the queue is compacted so aggressive cancellation
  // cannot grow the queue without bound.
  void cancel(EventId id);

  // Executes the next pending event. Returns false when the queue is empty.
  bool step();

  // Runs until the queue drains or `max_events` fire (guard against bugs that
  // would otherwise spin forever).
  void run(std::uint64_t max_events = UINT64_MAX);

  // Runs events with time <= t, then advances the clock to exactly t.
  void run_until(double t);

  bool empty() const noexcept { return arena_.live() == 0; }
  std::uint64_t events_fired() const noexcept { return fired_; }
  // Live (non-cancelled) pending events; observability samples this as the
  // event-queue depth.
  std::size_t pending() const noexcept { return arena_.live(); }
  // Queue nodes including cancelled orphans awaiting a pop or a compaction;
  // bounded at 2 * pending() + a constant (see cancel()).
  std::size_t queue_nodes() const noexcept;

  // Deep validator: cross-checks the incrementally maintained queue state
  // against a brute-force scan — every live event has exactly one queue node,
  // the queue minimum over live events is >= the clock (pops are therefore
  // time-monotonic), and the active implementation's structural invariants
  // (heap property / calendar bucket placement) hold.
  void validate(check::Validation& v) const;

  // Test-only corruption hook: forces the clock to `t` without draining the
  // queue, so validate() can demonstrate detection of a non-monotonic state.
  void corrupt_clock_for_test(double t) noexcept { now_ = t; }
  // Test-only corruption hooks for the queue structure: misorder a node
  // (heap-property / bucket-placement breakage) or duplicate one (recount
  // breakage).
  void corrupt_queue_order_for_test();
  void corrupt_queue_duplicate_for_test();

 private:
  void push_node(const EventNode& n);
  bool pop_node(EventNode& out);
  void maybe_compact();

  EventQueueKind queue_kind_;
  BinaryHeapQueue heap_;
  CalendarQueue calendar_;
  EventArena arena_;

  double now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace harmony::sim
