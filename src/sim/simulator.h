// Discrete-event simulation core.
//
// The simulator keeps a priority queue of timestamped callbacks. Components
// (resources, job pipelines, the scheduler driver) schedule future events and
// react to them; simulated time advances only through the event queue, so a
// full 80-job / 100-machine day-long experiment runs in milliseconds of wall
// time and is bit-reproducible from the RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "check/check.h"

namespace harmony::sim {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // Current simulated time in seconds.
  double now() const noexcept { return now_; }

  // Schedules `cb` at absolute time `t` (must be >= now). Events scheduled for
  // the same instant fire in scheduling order (stable FIFO tie-break).
  EventId schedule_at(double t, Callback cb);
  EventId schedule_in(double dt, Callback cb) { return schedule_at(now_ + dt, std::move(cb)); }

  // Cancels a pending event; cancelling an already-fired or unknown id is a
  // harmless no-op (resources rely on this when they reschedule completions).
  void cancel(EventId id);

  // Executes the next pending event. Returns false when the queue is empty.
  bool step();

  // Runs until the queue drains or `max_events` fire (guard against bugs that
  // would otherwise spin forever).
  void run(std::uint64_t max_events = UINT64_MAX);

  // Runs events with time <= t, then advances the clock to exactly t.
  void run_until(double t);

  bool empty() const noexcept { return live_.empty(); }
  std::uint64_t events_fired() const noexcept { return fired_; }
  // Live (non-cancelled) pending events; observability samples this as the
  // event-queue depth.
  std::size_t pending() const noexcept { return live_.size(); }

  // Deep validator: cross-checks the incrementally maintained queue state
  // against a brute-force scan — every live id has exactly one heap node, the
  // heap root is the minimum over live events (pops are therefore
  // time-monotonic), and the clock has not run past any pending event.
  void validate(check::Validation& v) const;

  // Test-only corruption hook: forces the clock to `t` without draining the
  // queue, so validate() can demonstrate detection of a non-monotonic state.
  void corrupt_clock_for_test(double t) noexcept { now_ = t; }

 private:
  struct Event {
    double time;
    EventId id;
    // Firing moves the callback straight out of the heap node, so an event
    // costs one heap sift instead of a hash lookup + map erase per event.
    Callback cb;

    // Orders the min-heap: earliest time first, then insertion order.
    bool operator>(const Event& other) const noexcept {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const noexcept { return a > b; }
  };

  // Min-heap (std::make_heap family with EventAfter). Cancellation just drops
  // the id from live_; the heap node stays behind as a tombstone and is
  // skipped when popped.
  std::vector<Event> heap_;
  std::unordered_set<EventId> live_;

  double now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t fired_ = 0;
};

}  // namespace harmony::sim
