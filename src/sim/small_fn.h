// Move-only callable with inline storage — the event-payload type for the
// simulated resources. Replaces std::function in the DES hot path: capturing
// a completion continuation costs zero heap allocations, and moving one is a
// memcpy-sized relocation instead of a manager-function round trip.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace harmony::sim {

// A void() callable with `Capacity` bytes of inline storage. A callable
// larger than Capacity is a compile error (grow the capacity at the call
// site) — silently heap-boxing would defeat the allocation-free contract the
// event arena relies on.
template <std::size_t Capacity = 48>
class SmallFn {
 public:
  SmallFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity, "callable exceeds SmallFn capacity");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "callable is over-aligned for SmallFn storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "SmallFn requires nothrow-movable callables");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));  // lint: allow-naked-new placement into inline storage
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    manage_ = [](void* dst, void* src) {
      if (dst != nullptr)
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));  // lint: allow-naked-new placement relocate
      static_cast<Fn*>(src)->~Fn();
    };
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

  void reset() noexcept {
    if (invoke_ != nullptr) {
      manage_(nullptr, buf_);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  // Relocates `other`'s payload into this object and leaves `other` empty.
  void move_from(SmallFn& other) noexcept {
    if (other.invoke_ != nullptr) {
      other.manage_(buf_, other.buf_);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  void (*invoke_)(void*) = nullptr;
  // manage_(dst, src): move-construct src's payload into dst (when dst is
  // non-null), then destroy src's payload. One pointer covers both relocate
  // and destroy so the inline footprint stays two words past the buffer.
  void (*manage_)(void*, void*) = nullptr;
};

}  // namespace harmony::sim
