#include "svc/admission.h"

#include <algorithm>

namespace harmony::svc {

const char* to_string(AdmissionPolicy policy) noexcept {
  switch (policy) {
    case AdmissionPolicy::kFifo:
      return "fifo";
    case AdmissionPolicy::kShortestJct:
      return "sjf";
  }
  return "?";
}

std::optional<AdmissionPolicy> parse_admission_policy(std::string_view name) noexcept {
  if (name == "fifo") return AdmissionPolicy::kFifo;
  if (name == "sjf" || name == "shortest-jct") return AdmissionPolicy::kShortestJct;
  return std::nullopt;
}

bool AdmissionQueue::offer(PendingJob p) {
  ++offered_;
  if (q_.size() >= capacity_) {
    ++rejected_;
    return false;
  }
  q_.push_back(std::move(p));
  return true;
}

std::optional<PendingJob> AdmissionQueue::poll() {
  if (q_.empty()) return std::nullopt;
  auto it = q_.begin();
  if (policy_ == AdmissionPolicy::kShortestJct) {
    it = std::min_element(q_.begin(), q_.end(), [](const PendingJob& a, const PendingJob& b) {
      if (a.expected_jct != b.expected_jct) return a.expected_jct < b.expected_jct;
      return a.seq < b.seq;
    });
  }
  PendingJob out = std::move(*it);
  q_.erase(it);
  return out;
}

}  // namespace harmony::svc
