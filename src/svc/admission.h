// Admission control for the online scheduling service: a bounded pending
// queue in front of the cluster, with a pluggable dequeue policy and
// load-shedding accounting.
//
// The service is open-loop — arrivals do not slow down when the cluster is
// full — so an unbounded queue would grow without limit whenever the offered
// load exceeds capacity. Admission control caps the queue: offers beyond the
// capacity are shed (rejected) and counted, which turns overload into a
// measurable rejection rate instead of unbounded queueing delay (the
// OASiS-style admission decision, reduced to its queueing essentials).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string_view>

#include "harmony/scheduler.h"

namespace harmony::svc {

enum class AdmissionPolicy {
  kFifo,         // arrival order
  kShortestJct,  // shortest expected JCT first (SJF; minimizes mean wait)
};

const char* to_string(AdmissionPolicy policy) noexcept;
std::optional<AdmissionPolicy> parse_admission_policy(std::string_view name) noexcept;

// One queued job: the scheduler-facing profile plus the admission metadata
// the policies key on.
struct PendingJob {
  core::SchedJob job;
  double arrival_time = 0.0;
  // Modelled isolated JCT at the job's balance-point DoP; the kShortestJct
  // sort key (stale-ness is fine: it is an estimate, not a promise).
  double expected_jct = 0.0;
  std::uint64_t seq = 0;  // admission order; FIFO key and SJF tie-break
};

class AdmissionQueue {
 public:
  AdmissionQueue(AdmissionPolicy policy, std::size_t capacity)
      : policy_(policy), capacity_(capacity) {}

  // Enqueues unless the queue is at capacity; a false return is a shed
  // (rejected) job, counted in rejected().
  bool offer(PendingJob p);

  // Dequeues the next job per policy: FIFO head, or the smallest
  // (expected_jct, seq). O(size) for kShortestJct — the queue is bounded, so
  // this is bounded work too. nullopt when empty.
  std::optional<PendingJob> poll();

  // Returns a polled-but-unplaceable job to the queue head without touching
  // the offer/reject accounting (the service stops draining on the first job
  // the cluster cannot take).
  void restore(PendingJob p) { q_.push_front(std::move(p)); }

  std::size_t size() const noexcept { return q_.size(); }
  bool empty() const noexcept { return q_.empty(); }
  std::size_t capacity() const noexcept { return capacity_; }
  AdmissionPolicy policy() const noexcept { return policy_; }

  std::uint64_t offered() const noexcept { return offered_; }
  std::uint64_t rejected() const noexcept { return rejected_; }

 private:
  AdmissionPolicy policy_;
  std::size_t capacity_;
  std::deque<PendingJob> q_;
  std::uint64_t offered_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace harmony::svc
