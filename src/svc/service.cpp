#include "svc/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.h"
#include "harmony/validate.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"

namespace harmony::svc {

namespace {

// Decision-latency / throughput accounting only: wall readings are reported
// (how fast is the scheduling plane on this host) and never feed back into
// simulated time, so the determinism of the service run is unaffected.
using WallClock = std::chrono::steady_clock;  // lint: allow-nondeterminism

double wall_seconds_since(WallClock::time_point t0) {
  return std::chrono::duration<double>(WallClock::now() - t0).count();
}

struct SvcMetrics {
  obs::Counter& arrivals;
  obs::Counter& admitted;
  obs::Counter& rejected;
  obs::Counter& completed;
  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& full_reschedules;
  obs::Counter& scheduling_events;
  obs::Counter& telemetry_ticks;
  obs::HistogramMetric& queue_delay_sec;
  obs::HistogramMetric& jct_sec;
  obs::HistogramMetric& decision_latency_us;
  obs::Gauge& queue_depth;
  obs::Gauge& running_jobs;
  obs::Gauge& free_machines;
  obs::Gauge& drift;
  obs::Gauge& live_groups;

  static SvcMetrics& instance() {
    auto& reg = obs::MetricsRegistry::instance();
    static SvcMetrics m{reg.counter("svc.arrivals"),
                        reg.counter("svc.admitted"),
                        reg.counter("svc.rejected"),
                        reg.counter("svc.completed"),
                        reg.counter("svc.joins"),
                        reg.counter("svc.leaves"),
                        reg.counter("svc.full_reschedules"),
                        reg.counter("svc.scheduling_events"),
                        reg.counter("svc.telemetry_ticks"),
                        reg.histogram("svc.queue_delay_sec", 0.0, 3600.0, 72),
                        reg.histogram("svc.jct_sec", 0.0, 86400.0, 96),
                        reg.histogram("svc.decision_latency_us", 0.0, 1000.0, 100),
                        reg.gauge("svc.queue_depth"),
                        reg.gauge("svc.running_jobs"),
                        reg.gauge("svc.free_machines"),
                        reg.gauge("svc.drift"),
                        reg.gauge("svc.live_groups")};
    return m;
  }
};

double mean_of(const SampleSet& s) { return s.empty() ? 0.0 : s.mean(); }
double quantile_of(const SampleSet& s, double q) { return s.empty() ? 0.0 : s.quantile(q); }

}  // namespace

Service::Service(ServiceConfig config, std::vector<exp::WorkloadSpec> catalog)
    : config_(std::move(config)),
      catalog_(std::move(catalog)),
      full_(config_.scheduler),
      placement_(config_.incremental, config_.machines),
      queue_(config_.admission, config_.queue_capacity),
      sim_(config_.event_queue),
      rng_(config_.seed) {
  HARMONY_CHECK(!catalog_.empty()) << "service needs a non-empty job catalog";
  HARMONY_CHECK(config_.machines > 0) << "service needs machines";
  HARMONY_CHECK(config_.arrival_kind != "batch")
      << "the open-loop service needs a positive-rate arrival process";
  HARMONY_CHECK(config_.equivalence_slack > config_.incremental.drift_threshold)
      << "equivalence slack " << config_.equivalence_slack
      << " must exceed the drift threshold " << config_.incremental.drift_threshold
      << " (the bound includes one threshold's worth of tolerated decay)";
  stream_ = exp::make_arrival_stream(config_.arrival_kind, config_.mean_interarrival_sec,
                                     rng_.next_u64());

  if (config_.telemetry_interval_sec > 0.0) {
    obs::TimeSeriesConfig tc;
    tc.interval_sec = config_.telemetry_interval_sec;
    tc.capacity = config_.telemetry_capacity;
    // Only the deterministic service series: scheduler.* is perturbed by the
    // pure-observer validators (their equivalence repack is instrumented) and
    // svc.decision_latency_us is wall-fed — sampling either would break the
    // byte-identical-across-validate contract.
    tc.include_prefixes = {"svc."};
    tc.exclude = {"svc.decision_latency_us"};
    telemetry_ = std::make_unique<obs::TimeSeriesEngine>(std::move(tc),
                                                         obs::MetricsRegistry::instance());
    slo_monitors_.reserve(config_.slos.size());
    for (const obs::SloSpec& spec : config_.slos) slo_monitors_.emplace_back(spec);
  } else {
    HARMONY_CHECK(config_.slos.empty() && config_.telemetry_out.empty() &&
                  config_.prom_out.empty())
        << "telemetry sinks/SLOs need telemetry_interval_sec > 0";
  }
}

Service::~Service() = default;

PendingJob Service::make_pending(core::JobId id) {
  const exp::WorkloadSpec& spec = catalog_[id % catalog_.size()];
  core::JobProfile profile = spec.profile();
  profile.cpu_work *= rng_.lognormal_noise(config_.profile_jitter_cv);
  profile.t_net *= rng_.lognormal_noise(config_.profile_jitter_cv);

  PendingJob p;
  p.job = core::SchedJob{id, profile};
  p.seq = id;
  const std::size_t iterations = std::min(spec.iterations, config_.max_iterations);
  // Isolated-run estimate at the balance-point DoP; the SJF admission key.
  std::size_t dop = config_.machines;
  if (profile.t_net > 0.0) {
    dop = std::clamp<std::size_t>(
        static_cast<std::size_t>(std::llround(profile.cpu_work / profile.t_net)), 1,
        config_.machines);
  }
  p.expected_jct = static_cast<double>(iterations) * profile.t_itr(dop);
  return p;
}

void Service::count_scheduling_event() {
  ++summary_.scheduling_events;
  SvcMetrics::instance().scheduling_events.add();
  maybe_validate();
}

void Service::flight_instant(obs::EventKind kind, core::JobId id) {
  auto& recorder = obs::FlightRecorder::instance();
  if (!recorder.armed()) return;
  obs::TraceEvent e;
  e.ts_us = sim_.now() * 1e6;
  e.kind = kind;
  e.phase = obs::Phase::kInstant;
  e.clock = obs::ClockDomain::kSim;
  if (id != core::kNoJob) e.job = static_cast<std::uint32_t>(id);
  recorder.append(e);
}

void Service::telemetry_tick() {
  auto& metrics = SvcMetrics::instance();
  metrics.telemetry_ticks.add();
  // Refresh the level gauges so every window reflects current state even when
  // no scheduling event updated them inside the window.
  metrics.queue_depth.set(static_cast<double>(queue_.size()));
  metrics.running_jobs.set(static_cast<double>(running_));
  metrics.free_machines.set(static_cast<double>(placement_.free_machines()));
  metrics.drift.set(placement_.drift());
  metrics.live_groups.set(static_cast<double>(placement_.live_group_count()));

  const obs::TelemetryWindow& w = telemetry_->sample(sim_.now());
  last_sample_sec_ = sim_.now();
  ++summary_.telemetry_windows;

  std::string extra;
  if (!slo_monitors_.empty()) {
    extra = ",\"slos\":[";
    bool first = true;
    for (obs::SloMonitor& monitor : slo_monitors_) {
      if (monitor.evaluate(w)) {
        auto& recorder = obs::FlightRecorder::instance();
        if (recorder.armed()) {
          obs::TraceEvent e;
          e.ts_us = sim_.now() * 1e6;
          e.kind = obs::EventKind::kSloAlert;
          e.phase = obs::Phase::kInstant;
          e.clock = obs::ClockDomain::kSim;
          e.value = static_cast<double>(static_cast<std::uint8_t>(monitor.state()));
          recorder.append(e);
        }
        if (monitor.state() == obs::AlertState::kFiring) {
          ++summary_.slo_pages;
          // A page pulls the black-box handle. The bundled metrics snapshot
          // is the previous window's (this one is still being rendered).
          recorder.dump("slo-page:" + monitor.spec().name, monitor.state_json());
        }
      }
      if (!first) extra += ',';
      first = false;
      extra += monitor.state_json();
    }
    extra += ']';
  }

  const std::string line = obs::TimeSeriesEngine::to_jsonl(w, extra);
  telemetry_jsonl_ += line;
  telemetry_jsonl_ += '\n';
  if (telemetry_file_) *telemetry_file_ << line << '\n';
  obs::FlightRecorder::instance().note_metrics_json(line);

  // Cadence ticks stop at the arrival horizon. The post-horizon drain can
  // run for a long, workload-dependent tail of sim time with nothing
  // happening but departures; ticking through it at full cadence would bury
  // the telemetry in thousands of idle windows (and dominate the service's
  // wall cost). run() closes the whole tail in one final window instead.
  next_tick_sec_ += config_.telemetry_interval_sec;
  if (next_tick_sec_ <= config_.duration_sec) {
    sim_.schedule_at(next_tick_sec_, [this] { telemetry_tick(); });
  }
}

void Service::maybe_validate() {
  if (config_.validate_every_events == 0) return;
  if (summary_.scheduling_events % config_.validate_every_events != 0) return;
  const auto report = validate_state();
  ++summary_.validations_run;
  if (!report.ok()) check::fail(report.failures.front());
}

check::ValidationReport Service::validate_state() const {
  check::Validation v("svc.service");
  core::validate_incremental_state(placement_, v);
  core::validate_incremental_vs_full(placement_, full_, config_.equivalence_slack, v);
  HARMONY_VALIDATE(v, queue_.size() <= queue_.capacity())
      << "pending queue holds " << queue_.size() << " jobs over a capacity of "
      << queue_.capacity();
  HARMONY_VALIDATE(v, queue_.rejected() <= queue_.offered())
      << "rejection accounting: " << queue_.rejected() << " shed of "
      << queue_.offered() << " offered";
  return v.report();
}

bool Service::try_place(PendingJob& p) {
  auto& metrics = SvcMetrics::instance();
  const auto t0 = WallClock::now();
  const auto placed = placement_.join(p.job);
  if (!placed) return false;
  const double latency_us = 1e6 * wall_seconds_since(t0);
  decision_latencies_us_.add(latency_us);
  metrics.decision_latency_us.observe(latency_us);

  ++summary_.incremental_joins;
  if (placed->created_group) ++summary_.groups_created;
  metrics.joins.add();
  count_scheduling_event();

  const double now = sim_.now();
  const double delay = now - p.arrival_time;
  queue_delays_.add(delay);
  metrics.queue_delay_sec.observe(delay);

  const exp::WorkloadSpec& spec = catalog_[p.job.id % catalog_.size()];
  const auto iterations =
      static_cast<double>(std::min(spec.iterations, config_.max_iterations));
  const double service_time = iterations * placed->group_t_itr;
  ++running_;
  metrics.running_jobs.set(static_cast<double>(running_));
  metrics.free_machines.set(static_cast<double>(placement_.free_machines()));
  sim_.schedule_in(service_time, [this, id = p.job.id, at = p.arrival_time] {
    on_departure(id, at);
  });
  return true;
}

void Service::on_departure(core::JobId id, double arrival_time) {
  auto& metrics = SvcMetrics::instance();
  const auto t0 = WallClock::now();
  HARMONY_CHECK(placement_.leave(id)) << check::job(id) << "departure of an unplaced job";
  decision_latencies_us_.add(1e6 * wall_seconds_since(t0));

  ++summary_.incremental_leaves;
  metrics.leaves.add();
  count_scheduling_event();

  --running_;
  ++summary_.completed;
  metrics.completed.add();
  flight_instant(obs::EventKind::kDepart, id);
  const double jct = sim_.now() - arrival_time;
  jcts_.add(jct);
  metrics.jct_sec.observe(jct);
  metrics.running_jobs.set(static_cast<double>(running_));
  metrics.free_machines.set(static_cast<double>(placement_.free_machines()));

  drain_queue();
  maybe_full_reschedule();
  metrics.queue_depth.set(static_cast<double>(queue_.size()));
}

void Service::drain_queue() {
  while (auto p = queue_.poll()) {
    if (try_place(*p)) continue;
    queue_.restore(std::move(*p));
    break;
  }
}

void Service::maybe_full_reschedule() {
  if (!placement_.needs_full_reschedule()) return;
  if (summary_.scheduling_events - events_at_last_full_ <
      config_.full_reschedule_cooldown_events)
    return;
  full_reschedule();
  drain_queue();  // a redistribution may open room for queued jobs
}

void Service::full_reschedule() {
  const auto pool = placement_.pool();
  if (pool.empty()) {
    // Nothing to repack (drift fired on free-pool growth after a full drain);
    // just reset the baseline so the trigger disarms.
    placement_.rebaseline();
    events_at_last_full_ = summary_.scheduling_events;
    return;
  }

  // Repack *all* running jobs. Scheduler::schedule() proper optimizes an
  // admission prefix and may park queue-tail jobs — correct at submission
  // time, but a running job cannot be evicted by a background re-pack.
  const core::ScheduleDecision decision = full_.repack(pool, config_.machines);
  placement_.adopt(decision, pool);
  for (const core::SchedJob& j : pool)
    HARMONY_CHECK(placement_.contains(j.id))
        << check::job(j.id) << "full reschedule stranded a running job";

  ++summary_.full_reschedules;
  SvcMetrics::instance().full_reschedules.add();
  flight_instant(obs::EventKind::kSchedule, core::kNoJob);
  events_at_last_full_ = summary_.scheduling_events;
  count_scheduling_event();
}

void Service::on_arrival() {
  auto& metrics = SvcMetrics::instance();
  ++summary_.arrivals;
  metrics.arrivals.add();
  HARMONY_CHECK(next_id_ < core::kNoJob) << "service job ids exhausted";
  PendingJob p = make_pending(static_cast<core::JobId>(next_id_++));
  p.arrival_time = sim_.now();
  flight_instant(obs::EventKind::kArrival, p.job.id);

  // Queue-ahead fairness: an arrival only bypasses the queue when nothing is
  // waiting; otherwise it lines up and the drain order is the policy's call.
  bool settled = false;
  const core::JobId arrived_id = p.job.id;
  if (queue_.empty() && try_place(p)) {
    ++summary_.admitted;
    metrics.admitted.add();
    flight_instant(obs::EventKind::kAdmit, arrived_id);
    settled = true;
  }
  if (!settled) {
    if (queue_.offer(std::move(p))) {
      ++summary_.admitted;
      metrics.admitted.add();
      flight_instant(obs::EventKind::kAdmit, arrived_id);
    } else {
      ++summary_.rejected;
      metrics.rejected.add();
      flight_instant(obs::EventKind::kReject, arrived_id);
      count_scheduling_event();  // a shed is a scheduling decision too
    }
  }
  maybe_full_reschedule();
  metrics.queue_depth.set(static_cast<double>(queue_.size()));

  const double t = stream_->next();
  if (t <= config_.duration_sec) {
    sim_.schedule_at(t, [this] { on_arrival(); });
  }
}

ServiceSummary Service::run() {
  HARMONY_CHECK(!ran_) << "Service::run is single-shot";
  ran_ = true;

  if (telemetry_) {
    if (!config_.telemetry_out.empty()) {
      telemetry_file_ = std::make_unique<std::ofstream>(config_.telemetry_out);
      if (!*telemetry_file_) {
        HLOG(kError) << "service: cannot open telemetry sink " << config_.telemetry_out;
        telemetry_file_.reset();
      }
    }
    auto& recorder = obs::FlightRecorder::instance();
    if (recorder.armed()) {
      recorder.set_context("mode", "service");
      recorder.set_context("seed", std::to_string(config_.seed));
      recorder.set_context("machines", std::to_string(config_.machines));
      recorder.set_context("duration_sec", std::to_string(config_.duration_sec));
    }
    next_tick_sec_ = config_.telemetry_interval_sec;
    sim_.schedule_at(next_tick_sec_, [this] { telemetry_tick(); });
  }

  const auto wall0 = WallClock::now();
  const double first = stream_->next();
  if (first <= config_.duration_sec) {
    sim_.schedule_at(first, [this] { on_arrival(); });
  }
  sim_.run();
  summary_.wall_seconds = wall_seconds_since(wall0);

  if (telemetry_) {
    // One final window covering the drain tail past the arrival horizon
    // (skipped when the run ended exactly on a cadence tick).
    if (sim_.now() > last_sample_sec_) telemetry_tick();
    if (telemetry_file_) {
      telemetry_file_->flush();
      if (!*telemetry_file_) {
        HLOG(kError) << "service: telemetry sink " << config_.telemetry_out << " failed";
      }
      telemetry_file_.reset();
    }
    if (!config_.prom_out.empty()) {
      std::ofstream prom(config_.prom_out);
      if (prom) {
        prom << obs::prometheus_text(telemetry_->filtered_snapshot());
      } else {
        HLOG(kError) << "service: cannot open prometheus sink " << config_.prom_out;
      }
    }
    for (const obs::SloMonitor& monitor : slo_monitors_) {
      char line[192];
      std::snprintf(line, sizeof(line), "slo %-24s %-8s  pages %llu  last %.6g\n",
                    monitor.spec().name.c_str(), obs::to_string(monitor.state()),
                    static_cast<unsigned long long>(monitor.pages()),
                    monitor.last_value());
      summary_.slo_lines += line;
    }
  }

  summary_.duration_sec = config_.duration_sec;
  summary_.running_at_end = running_;
  summary_.queued_at_end = queue_.size();
  summary_.queue_delay_mean = mean_of(queue_delays_);
  summary_.queue_delay_p50 = quantile_of(queue_delays_, 0.5);
  summary_.queue_delay_p99 = quantile_of(queue_delays_, 0.99);
  summary_.jct_mean = mean_of(jcts_);
  summary_.jct_p50 = quantile_of(jcts_, 0.5);
  summary_.jct_p99 = quantile_of(jcts_, 0.99);
  summary_.final_score = placement_.current_score();
  summary_.final_drift = placement_.drift();
  summary_.live_groups_at_end = placement_.live_group_count();
  summary_.free_machines_at_end = placement_.free_machines();
  summary_.events_per_wall_sec =
      summary_.wall_seconds > 0.0
          ? static_cast<double>(summary_.scheduling_events) / summary_.wall_seconds
          : 0.0;
  summary_.decision_latency_mean_us = mean_of(decision_latencies_us_);
  summary_.decision_latency_p99_us = quantile_of(decision_latencies_us_, 0.99);
  return summary_;
}

std::string ServiceSummary::report() const {
  char buf[2048];
  const double reject_pct =
      arrivals > 0 ? 100.0 * static_cast<double>(rejected) / static_cast<double>(arrivals)
                   : 0.0;
  std::snprintf(
      buf, sizeof(buf),
      "service report (harmony-svc-v1)\n"
      "duration            %12.1f s\n"
      "arrivals            %12llu\n"
      "admitted            %12llu\n"
      "rejected            %12llu  (%.2f%%)\n"
      "completed           %12llu\n"
      "running at end      %12llu\n"
      "queued at end       %12llu\n"
      "scheduling events   %12llu  (joins %llu, leaves %llu, full reschedules %llu, "
      "groups created %llu)\n"
      "queue delay         mean %10.2f s   p50 %10.2f s   p99 %10.2f s\n"
      "JCT                 mean %10.2f h   p50 %10.2f h   p99 %10.2f h\n"
      "modelled score      %12.6f  (drift %.6f)\n"
      "live groups         %12zu\n"
      "free machines       %12zu\n",
      duration_sec, static_cast<unsigned long long>(arrivals),
      static_cast<unsigned long long>(admitted), static_cast<unsigned long long>(rejected),
      reject_pct, static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(running_at_end),
      static_cast<unsigned long long>(queued_at_end),
      static_cast<unsigned long long>(scheduling_events),
      static_cast<unsigned long long>(incremental_joins),
      static_cast<unsigned long long>(incremental_leaves),
      static_cast<unsigned long long>(full_reschedules),
      static_cast<unsigned long long>(groups_created), queue_delay_mean, queue_delay_p50,
      queue_delay_p99, jct_mean / 3600.0, jct_p50 / 3600.0, jct_p99 / 3600.0, final_score,
      final_drift, live_groups_at_end, free_machines_at_end);
  std::string out = buf;
  // Telemetry block only when telemetry ran, so runs without it render the
  // same bytes as before this block existed.
  if (telemetry_windows > 0) {
    std::snprintf(buf, sizeof(buf), "telemetry windows   %12llu  (slo pages %llu)\n",
                  static_cast<unsigned long long>(telemetry_windows),
                  static_cast<unsigned long long>(slo_pages));
    out += buf;
    out += slo_lines;
  }
  return out;
}

}  // namespace harmony::svc
