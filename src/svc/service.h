// The online scheduling service: a long-running, continuously-fed front end
// over the Harmony scheduler.
//
// Where ClusterSim (src/exp) replays one finite workload to completion and
// simulates every subtask, the Service models the *scheduling plane* at
// production rates: an open-loop ArrivalStream submits jobs forever, an
// AdmissionQueue sheds load beyond a bounded backlog, and every join/leave is
// handled by the bounded-work IncrementalScheduler — full Algorithm 1 runs
// only when measured drift exceeds the configured threshold. Job execution is
// aggregated: a placed job departs after iterations x the modelled group
// iteration time at placement (the perf-model view of its co-schedule), so
// one job costs O(1) simulator events and the service sustains >100k
// scheduling events/sec on a 10k-machine cluster (bench_svc_throughput).
//
// Determinism contract: everything driven by simulated time — arrival
// sequence, placement decisions, per-job JCTs, queue/rejection accounting,
// the final modelled score — is bit-reproducible from ServiceConfig::seed;
// ServiceSummary::report() covers exactly that deterministic surface. Wall
// clock readings (decision latency, events/sec) are reported separately and
// never feed back into simulated time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "check/check.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "exp/arrivals.h"
#include "exp/workload.h"
#include "harmony/incremental.h"
#include "harmony/scheduler.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "svc/admission.h"

namespace harmony::svc {

struct ServiceConfig {
  std::size_t machines = 1000;
  // Arrivals are scheduled up to this simulated horizon; jobs already placed
  // run to completion afterwards ("stop accepting, finish draining" is the
  // summary's running_at_end / queued_at_end tail).
  double duration_sec = 24 * 3600.0;

  // Open-loop arrival process: "poisson" or "trace" (see exp::ArrivalStream)
  // at the given mean inter-arrival time. 1/mean is the offered rate.
  std::string arrival_kind = "poisson";
  double mean_interarrival_sec = 1.0;

  AdmissionPolicy admission = AdmissionPolicy::kFifo;
  std::size_t queue_capacity = 1024;

  std::uint64_t seed = 1;
  sim::EventQueueKind event_queue = sim::EventQueueKind::kCalendar;

  // Per-arrival lognormal jitter applied to the catalog profile (cv), so an
  // unbounded stream does not repeat 80 identical jobs forever.
  double profile_jitter_cv = 0.10;
  // Iteration counts are clamped to this, bounding a single job's residency.
  std::size_t max_iterations = 30;

  // Incremental rescheduler (bounded join probes, drift threshold) and the
  // full Algorithm 1 it escalates to.
  core::IncrementalScheduler::Params incremental;
  core::Scheduler::Params scheduler;
  // Churn damping: a full re-run is considered only after this many
  // scheduling events since the previous one, however fast drift re-crosses
  // the threshold.
  std::uint64_t full_reschedule_cooldown_events = 64;

  // Run the deep validators (incremental state + incremental-vs-full
  // equivalence) every N scheduling events; 0 = off. Throws check::CheckError
  // on the first corrupt state. Read-only, consumes no randomness: runs are
  // bit-identical with it on or off.
  std::uint64_t validate_every_events = 0;
  // Relative slack for the equivalence validator (see
  // validate_incremental_vs_full); must exceed incremental.drift_threshold.
  double equivalence_slack = 0.35;

  // Live telemetry (obs::TimeSeriesEngine over the svc.* series): close one
  // window every interval of *sim* time; 0 = off. Windowing samples only
  // deterministic series (wall-fed svc.decision_latency_us is excluded), so
  // telemetry output is a pure function of the seed, with or without
  // validators.
  double telemetry_interval_sec = 0.0;
  std::size_t telemetry_capacity = 512;
  std::string telemetry_out;  // optional JSONL sink, one line per window
  std::string prom_out;       // optional Prometheus exposition at end of run
  // SLO objectives evaluated against each closed window (obs::SloMonitor).
  // A monitor entering `firing` counts a page and, when a flight recorder is
  // armed, pulls its dump handle.
  std::vector<obs::SloSpec> slos;
};

// End-of-run statistics. All fields except the wall-clock block are
// deterministic in the seed; report() renders only the deterministic part.
struct ServiceSummary {
  // Admission accounting.
  std::uint64_t arrivals = 0;   // jobs the stream submitted within duration
  std::uint64_t admitted = 0;   // placed immediately or queued
  std::uint64_t rejected = 0;   // shed by the bounded queue
  std::uint64_t completed = 0;  // departed before the simulation drained
  std::uint64_t running_at_end = 0;
  std::uint64_t queued_at_end = 0;

  // Scheduling-plane accounting. scheduling_events = incremental_joins +
  // incremental_leaves + rejections + full_reschedules — the unit the
  // events/sec throughput target counts.
  std::uint64_t scheduling_events = 0;
  std::uint64_t incremental_joins = 0;
  std::uint64_t incremental_leaves = 0;
  std::uint64_t groups_created = 0;
  std::uint64_t full_reschedules = 0;
  std::size_t validations_run = 0;

  // Steady-state service metrics (simulated time; deterministic).
  double duration_sec = 0.0;
  double queue_delay_mean = 0.0, queue_delay_p50 = 0.0, queue_delay_p99 = 0.0;
  double jct_mean = 0.0, jct_p50 = 0.0, jct_p99 = 0.0;
  double final_score = 0.0;  // modelled cluster score at the horizon
  double final_drift = 0.0;
  std::size_t live_groups_at_end = 0;
  std::size_t free_machines_at_end = 0;

  // Telemetry block (deterministic; rendered by report() only when telemetry
  // ran, so legacy runs keep their byte-exact report).
  std::uint64_t telemetry_windows = 0;
  std::uint64_t slo_pages = 0;
  std::string slo_lines;  // pre-rendered per-objective report lines

  // Wall-clock block (nondeterministic; excluded from report()).
  double wall_seconds = 0.0;
  double events_per_wall_sec = 0.0;
  double decision_latency_mean_us = 0.0;
  double decision_latency_p99_us = 0.0;

  // Deterministic multi-line rendering (bit-identical across repeats of the
  // same seeded config; pinned by test_svc golden tests and the CI smoke).
  std::string report() const;
};

class Service {
 public:
  Service(ServiceConfig config, std::vector<exp::WorkloadSpec> catalog);
  ~Service();

  // Runs the service: arrivals over [0, duration_sec], then drains departure
  // events already scheduled. Single-shot.
  ServiceSummary run();

  // Everything --telemetry-out would have written, newline-terminated JSONL
  // (empty when telemetry is off). Byte-deterministic in the seed.
  const std::string& telemetry_jsonl() const noexcept { return telemetry_jsonl_; }
  const std::vector<obs::SloMonitor>& slo_monitors() const noexcept {
    return slo_monitors_;
  }

  const core::IncrementalScheduler& placement() const noexcept { return placement_; }

  // Deep validators: structural invariants of the incremental state plus the
  // incremental-vs-full equivalence bound. Read-only.
  check::ValidationReport validate_state() const;

  // Test-only corruption passthrough (proves validate_state detects it).
  void corrupt_for_test(core::IncrementalScheduler::Corruption kind) {
    placement_.corrupt_for_test(kind);
  }

 private:
  void on_arrival();
  // Places one pending job: incremental join, departure event, samples.
  bool try_place(PendingJob& p);
  void on_departure(core::JobId id, double arrival_time);
  void drain_queue();
  void maybe_full_reschedule();
  void full_reschedule();
  void count_scheduling_event();
  PendingJob make_pending(core::JobId id);
  void maybe_validate();
  // Closes one telemetry window at the current sim time and evaluates SLOs.
  void telemetry_tick();
  // Sim-stamped instant into the flight recorder's ring (no-op when disarmed).
  void flight_instant(obs::EventKind kind, core::JobId id);

  ServiceConfig config_;
  std::vector<exp::WorkloadSpec> catalog_;
  std::unique_ptr<exp::ArrivalStream> stream_;
  core::Scheduler full_;
  core::IncrementalScheduler placement_;
  AdmissionQueue queue_;
  sim::Simulator sim_;
  Rng rng_;

  std::uint64_t next_id_ = 0;
  std::uint64_t running_ = 0;
  std::uint64_t events_at_last_full_ = 0;
  bool ran_ = false;

  SampleSet queue_delays_;
  SampleSet jcts_;
  SampleSet decision_latencies_us_;  // wall; excluded from the report
  ServiceSummary summary_;

  // Telemetry plumbing (null / empty when telemetry_interval_sec == 0).
  std::unique_ptr<obs::TimeSeriesEngine> telemetry_;
  std::vector<obs::SloMonitor> slo_monitors_;
  std::unique_ptr<std::ofstream> telemetry_file_;
  std::string telemetry_jsonl_;
  double next_tick_sec_ = 0.0;
  double last_sample_sec_ = 0.0;
};

}  // namespace harmony::svc
