#!/usr/bin/env python3
"""Compile-fail harness pinning the clang -Wthread-safety gate.

Every fixture in this directory is valid C++20 (step 1 proves it with the
host compiler, where the sync.h annotation macros expand away). Fixtures
whose name is not `clean_usage.cpp` contain exactly one locking bug that
Clang Thread Safety Analysis must reject: step 2 compiles each with
`-Wthread-safety -Werror=thread-safety-analysis` and asserts

  * the compile FAILS,
  * the diagnostic is a thread-safety diagnostic (not some unrelated error),
  * every `// expect-error:` substring in the fixture appears in stderr.

`clean_usage.cpp` is the control: it must compile warning-free, proving the
gate does not cry wolf on disciplined code.

Exit codes: 0 = gate works, 1 = gate broken, 77 = clang unavailable (ctest
SKIP_RETURN_CODE — step 1 still ran, so the fixtures themselves stay valid).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

FIXTURE_DIR = os.path.dirname(os.path.abspath(__file__))
SKIP = 77

TSA_FLAGS = ["-Wthread-safety", "-Werror=thread-safety-analysis",
             "-Werror=thread-safety-attributes"]

CLANG_CANDIDATES = ["clang++"] + [f"clang++-{v}" for v in range(21, 11, -1)]


def find_clang():
    env = os.environ.get("CLANGXX")
    if env and shutil.which(env):
        return env
    for cand in CLANG_CANDIDATES:
        if shutil.which(cand):
            return cand
    return None


def compile_cmd(compiler, include_dir, path, extra=()):
    return [compiler, "-std=c++20", "-fsyntax-only", f"-I{include_dir}", *extra, path]


def run(cmd):
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc.returncode, proc.stderr


def expected_errors(path):
    with open(path, encoding="utf-8") as f:
        return re.findall(r"//\s*expect-error:\s*(.+)", f.read())


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--include-dir", required=True, help="repo src/ directory")
    parser.add_argument("--host-compiler", default=os.environ.get("CXX") or "c++",
                        help="compiler used to prove fixtures are valid C++")
    args = parser.parse_args()

    fixtures = sorted(f for f in os.listdir(FIXTURE_DIR) if f.endswith(".cpp"))
    bad = [f for f in fixtures if f != "clean_usage.cpp"]
    failures = 0

    # Step 1: every fixture is well-formed C++ without the analysis. A fixture
    # that fails here would "fail to compile" under clang for the wrong reason
    # and make step 2 vacuous.
    host = args.host_compiler if shutil.which(args.host_compiler) else None
    if host is None:
        print(f"compile-fail: note: host compiler {args.host_compiler!r} not found; "
              "skipping the validity pass")
    else:
        for name in fixtures:
            rc, err = run(compile_cmd(host, args.include_dir, os.path.join(FIXTURE_DIR, name)))
            if rc != 0:
                failures += 1
                print(f"compile-fail: FAIL {name}: not valid C++ under {host}:\n{err}")
            else:
                print(f"compile-fail: ok   {name}: valid C++ under {host}")

    clang = find_clang()
    if clang is None:
        if failures:
            return 1
        print("compile-fail: SKIP: no clang++ on PATH (set CLANGXX to override); "
              "the -Wthread-safety gate needs clang")
        return SKIP

    # Step 2a: the control fixture compiles clean with the gate on.
    clean = os.path.join(FIXTURE_DIR, "clean_usage.cpp")
    rc, err = run(compile_cmd(clang, args.include_dir, clean, TSA_FLAGS))
    if rc != 0:
        failures += 1
        print(f"compile-fail: FAIL clean_usage.cpp: gate rejects disciplined code:\n{err}")
    else:
        print(f"compile-fail: ok   clean_usage.cpp: accepted by {clang} with the gate on")

    # Step 2b: every broken fixture is rejected, by a thread-safety diagnostic,
    # with the expected message.
    for name in bad:
        path = os.path.join(FIXTURE_DIR, name)
        rc, err = run(compile_cmd(clang, args.include_dir, path, TSA_FLAGS))
        expects = expected_errors(path)
        problems = []
        if rc == 0:
            problems.append("compiled cleanly — the gate missed the bug")
        if "thread-safety" not in err:
            problems.append("no thread-safety diagnostic in stderr")
        problems += [f"missing expected diagnostic {e!r}" for e in expects if e not in err]
        if problems:
            failures += 1
            print(f"compile-fail: FAIL {name}: " + "; ".join(problems) +
                  (f"\n--- stderr ---\n{err}" if err else ""))
        else:
            print(f"compile-fail: ok   {name}: rejected with the expected diagnostic")

    if failures:
        print(f"compile-fail: {failures} failure(s)")
        return 1
    print("compile-fail: gate verified")
    return 0


if __name__ == "__main__":
    sys.exit(main())
