// Control fixture: disciplined use of every sync.h primitive. Must compile
// warning-free under clang -Wthread-safety — if this breaks, the wrappers
// themselves regressed, not a caller.
#include "common/sync.h"

namespace {

class Queue {
 public:
  void push(int v) {
    harmony::common::MutexLock lock(mu_);
    ++depth_;
    last_ = v;
    cv_.notify_one();
  }

  int pop() {
    harmony::common::MutexLock lock(mu_);
    while (depth_ == 0) cv_.wait(mu_);  // guarded reads stay inside the scope
    --depth_;
    return last_;
  }

  int drain_slowly() {
    harmony::common::MutexLock lock(mu_);
    const int observed = depth_;
    lock.unlock();  // drop the lock mid-scope...
    lock.lock();    // ...and provably reacquire before touching state again
    depth_ = 0;
    return observed;
  }

  int depth() const {
    harmony::common::MutexLock lock(mu_);
    return depth_;
  }

  void reset() REQUIRES(mu_) { depth_ = 0; }

  void reset_synchronized() {
    harmony::common::MutexLock lock(mu_);
    reset();
  }

 private:
  mutable harmony::common::Mutex mu_;
  harmony::common::CondVar cv_;
  int depth_ GUARDED_BY(mu_) = 0;
  int last_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.push(7);
  const int v = q.pop();
  q.push(1);
  q.drain_slowly();
  q.reset_synchronized();
  return v == 7 && q.depth() == 0 ? 0 : 1;
}
