// Compile-fail fixture: calling a REQUIRES(mu) function without the lock.
// expect-error: requires holding mutex
#include "common/sync.h"

namespace {

class Ledger {
 public:
  void post_unsynchronized() {
    apply_locked();  // BAD: caller must hold mu_
  }

  void post() {
    harmony::common::MutexLock lock(mu_);
    apply_locked();
  }

 private:
  void apply_locked() REQUIRES(mu_) { ++entries_; }

  harmony::common::Mutex mu_;
  int entries_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger ledger;
  ledger.post_unsynchronized();
  ledger.post();
  return 0;
}
