// Compile-fail fixture: reading GUARDED_BY state without holding the mutex.
// Valid C++ (compiles under GCC, where the annotations expand away); under
// clang -Werror=thread-safety-analysis the unguarded read must be rejected.
// expect-error: requires holding mutex
#include "common/sync.h"

namespace {

class Account {
 public:
  void deposit(double amount) {
    harmony::common::MutexLock lock(mu_);
    balance_ += amount;
  }

  double balance_unlocked() const {
    return balance_;  // BAD: mu_ not held
  }

 private:
  mutable harmony::common::Mutex mu_;
  double balance_ GUARDED_BY(mu_) = 0.0;
};

}  // namespace

int main() {
  Account account;
  account.deposit(1.0);
  return static_cast<int>(account.balance_unlocked());
}
