// Compile-fail fixture: releasing a mutex that is not held.
// expect-error: releasing mutex
#include "common/sync.h"

int main() {
  harmony::common::Mutex mu;
  mu.unlock();  // BAD: never locked
  return 0;
}
