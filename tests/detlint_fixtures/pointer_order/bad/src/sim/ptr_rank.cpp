// Fixture: pointer-order (bad). Address-ordered containers and comparators:
// the order is allocator/ASLR order, different every run.
#include <algorithm>
#include <map>
#include <set>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

class Ranker {
 public:
  void rank(std::vector<Node*>& nodes) {
    std::sort(nodes.begin(), nodes.end(),
              [](const Node* a, const Node* b) { return a < b; });
  }

 private:
  std::set<Node*> live_;                // keyed on addresses
  std::map<const Node*, int> weights_;  // keyed on addresses
};

}  // namespace fixture
