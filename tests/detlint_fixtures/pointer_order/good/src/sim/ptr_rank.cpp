// Fixture: pointer-order (good). Stable-id ordering; pointer hashing is fine
// for membership tests that never iterate.
#include <algorithm>
#include <set>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

struct ById {
  bool operator()(const Node* a, const Node* b) const { return a->id < b->id; }
};

class Ranker {
 public:
  void rank(std::vector<Node*>& nodes) {
    std::sort(nodes.begin(), nodes.end(),
              [](const Node* a, const Node* b) { return a->id < b->id; });
  }

  bool alive(const Node* n) const { return seen_.contains(n); }

 private:
  std::set<Node*, ById> live_;            // custom comparator: stable order
  std::unordered_set<const Node*> seen_;  // membership only, never iterated
};

}  // namespace fixture
