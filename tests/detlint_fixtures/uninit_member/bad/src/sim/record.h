// Fixture: uninit-member (bad). Scalar members with no NSDMI and no
// constructor coverage — reads of indeterminate values waiting to happen.
#pragma once
#include <cstdint>

namespace fixture {

struct Sample {
  double value;       // no NSDMI, no constructor
  std::uint32_t tag;  // no NSDMI, no constructor
};

class Counter {
 public:
  Counter() : hits_(0) {}

 private:
  int hits_;
  int misses_;  // initialized in no constructor
};

}  // namespace fixture
