// Fixture: uninit-member (good). NSDMI, every-constructor mem-init
// (delegation counts), non-scalar members, and a justified escape.
#pragma once
#include <cstdint>
#include <string>

namespace fixture {

struct Sample {
  double value = 0.0;
  std::uint32_t tag = 0;
  std::string label;  // non-scalar: default construction is defined
};

class Counter {
 public:
  Counter() : hits_(0), misses_(0) {}
  explicit Counter(int h) : Counter() { hits_ = h; }

 private:
  int hits_;
  int misses_;
};

struct Raw {
  // detlint: uninit-member(fixture: owner memsets the whole block before use)
  int scratch;
};

}  // namespace fixture
