// Fixture: unordered-iteration (bad). Loops over hash containers whose
// bodies escape values — results depend on bucket order.
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

class Tracker {
 public:
  double total() const {
    double sum = 0.0;
    for (const auto& [id, v] : counts_) sum += v;  // accumulates in hash order
    return sum;
  }

  std::vector<int> dump() const {
    std::vector<int> out;
    for (int id : ids_) out.push_back(id);  // appends in hash order
    return out;
  }

  std::size_t count_even() const {
    std::size_t even = 0;
    for (auto it = counts_.begin(); it != counts_.end(); ++it) even += it->first % 2;
    return even;
  }

 private:
  std::unordered_map<int, double> counts_;
  std::unordered_set<int> ids_;
};

}  // namespace fixture
