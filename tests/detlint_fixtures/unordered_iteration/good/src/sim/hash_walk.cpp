// Fixture: unordered-iteration (good). The sanctioned shapes: in-place
// element mutation, a sorted view, and a justified escape.
#include <unordered_map>

namespace fixture {

class Tracker {
 public:
  void rescale(double f) {
    for (auto& [id, v] : counts_) v *= f;  // mutates the current element only
  }

  double sorted_total() const {
    double sum = 0.0;
    for (const auto& [id, v] : common::sorted_view(counts_)) sum += v;
    return sum;
  }

  double escaped_total() const {
    double sum = 0.0;
    // detlint: sorted-iteration(fixture: sum of integers is order-insensitive)
    for (const auto& [id, v] : counts_) sum += v;
    return sum;
  }

 private:
  std::unordered_map<int, double> counts_;
};

}  // namespace fixture
