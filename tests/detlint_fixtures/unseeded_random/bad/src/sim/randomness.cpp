// Fixture: unseeded-random (bad). Ambient randomness inside deterministic
// code: rand(), random_device, an unseeded engine, and hash-based branching.
#include <cstdlib>
#include <random>
#include <string>

namespace fixture {

int roll() {
  return rand() % 6;
}

double sample() {
  std::random_device dev;
  std::mt19937 gen;
  return static_cast<double>(gen() + dev());
}

bool route(const std::string& key) {
  return std::hash<std::string>{}(key) % 2 == 0;
}

}  // namespace fixture
