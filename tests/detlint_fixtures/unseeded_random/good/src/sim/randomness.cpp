// Fixture: unseeded-random (good). Explicitly seeded engines — directly, via
// every constructor's init list — and a justified escape.
#include <cstdint>
#include <random>

namespace fixture {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}
  double uniform() { return static_cast<double>(engine_()) / 4294967296.0; }

 private:
  std::mt19937_64 engine_;  // seeded in every constructor
};

double directly_seeded() {
  std::mt19937 gen(42);
  return static_cast<double>(gen());
}

double escaped() {
  // detlint: seeded-random(fixture: seed is injected by the caller upstream)
  std::mt19937 gen;
  return static_cast<double>(gen());
}

}  // namespace fixture
