// Shared fixtures for the golden-determinism tests (test_scheduler_golden.cpp)
// and the checked-in generator (tools/golden_gen.cpp).
//
// The golden values pin the *exact* behaviour of Algorithm 1 and the cluster
// simulator for fixed seeds: any change to scheduling decisions or simulated
// metrics — including floating-point drift introduced by a performance
// refactor — flips a hash or a recorded double and fails the test. Regenerate
// deliberately with `golden-gen` only when a behaviour change is intended.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"
#include "harmony/scheduler.h"

namespace harmony::golden {

// --- FNV-1a 64-bit over structured decision content -------------------------

inline std::uint64_t fnv1a_init() { return 14695981039346656037ULL; }

inline void fnv1a_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
}

template <typename T>
void fnv1a_value(std::uint64_t& h, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  fnv1a_bytes(h, &v, sizeof(v));
}

// Hashes everything observable about a decision: the exact group assignments
// and machine counts, plus the bit patterns of the modelled score/utilization
// (so even sub-ulp drift in the evaluation pipeline is caught).
inline std::uint64_t hash_decision(const core::ScheduleDecision& d) {
  std::uint64_t h = fnv1a_init();
  fnv1a_value(h, d.jobs_scheduled);
  fnv1a_value(h, d.score);
  fnv1a_value(h, d.predicted_util.cpu);
  fnv1a_value(h, d.predicted_util.net);
  fnv1a_value(h, d.groups.size());
  for (const core::GroupPlan& g : d.groups) {
    fnv1a_value(h, g.machines);
    fnv1a_value(h, g.jobs.size());
    for (core::JobId id : g.jobs) fnv1a_value(h, id);
  }
  return h;
}

// --- Scheduler pools --------------------------------------------------------

// Matches bench_sched_scalability's synthetic distribution.
inline std::vector<core::SchedJob> synthetic_pool(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<core::SchedJob> jobs;
  jobs.reserve(n);
  for (core::JobId i = 0; i < n; ++i)
    jobs.push_back(
        core::SchedJob{i, core::JobProfile{rng.uniform(400, 8000), rng.uniform(20, 400)}});
  return jobs;
}

// The paper's 80-job catalog as a scheduling pool (realistic comp/comm mix;
// the prefix growth goes much deeper here than on the synthetic pools).
inline std::vector<core::SchedJob> catalog_pool() {
  std::vector<core::SchedJob> jobs;
  for (const exp::WorkloadSpec& s : exp::make_catalog(2021)) jobs.push_back(s.sched_job());
  return jobs;
}

struct SchedCase {
  const char* name;
  std::vector<core::SchedJob> jobs;
  std::size_t machines;
};

inline std::vector<SchedCase> scheduler_cases() {
  std::vector<SchedCase> cases;
  cases.push_back({"synthetic_80_100", synthetic_pool(80, 11), 100});
  cases.push_back({"synthetic_500_1000", synthetic_pool(500, 12), 1000});
  cases.push_back({"synthetic_2000_4000", synthetic_pool(2000, 13), 4000});
  cases.push_back({"catalog_80_100", catalog_pool(), 100});
  return cases;
}

// --- ClusterSim end-to-end cases -------------------------------------------

// Poisson arrivals on purpose: distinct arrival timestamps make the golden
// independent of how equal-submit-time ties were ordered.
struct SimCase {
  const char* name;
  exp::ClusterSimConfig config;
  std::vector<exp::WorkloadSpec> workload;
  std::vector<double> arrivals;
};

inline std::vector<exp::WorkloadSpec> capped_catalog(std::size_t n, std::size_t max_iters) {
  auto catalog = exp::make_catalog(2021);
  catalog.resize(n);
  for (auto& s : catalog) s.iterations = std::min(s.iterations, max_iters);
  return catalog;
}

inline std::vector<SimCase> sim_cases() {
  std::vector<SimCase> cases;
  {
    SimCase c;
    c.name = "harmony_24jobs_24machines";
    c.config = exp::ClusterSimConfig::harmony();
    c.config.machines = 24;
    c.config.seed = 7;
    c.workload = capped_catalog(24, 12);
    c.arrivals = exp::poisson_arrivals(c.workload.size(), 300.0, 3);
    cases.push_back(std::move(c));
  }
  {
    SimCase c;
    c.name = "harmony_48jobs_40machines";
    c.config = exp::ClusterSimConfig::harmony();
    c.config.machines = 40;
    c.config.seed = 21;
    c.workload = capped_catalog(48, 10);
    c.arrivals = exp::poisson_arrivals(c.workload.size(), 120.0, 9);
    cases.push_back(std::move(c));
  }
  return cases;
}

// Everything the simulator run reports, flattened for golden comparison.
struct SimGolden {
  double makespan = 0.0;
  double mean_jct = 0.0;
  double util_cpu = 0.0;
  double util_net = 0.0;
  double migration_overhead_sec = 0.0;
  std::uint64_t regroup_events = 0;
  std::uint64_t oom_events = 0;
  std::uint64_t jobs_completed = 0;
  double sum_finish_times = 0.0;  // order-independent digest of every JCT
};

inline SimGolden run_sim_case(const SimCase& c) {
  exp::ClusterSim sim(c.config, c.workload, c.arrivals);
  const exp::RunSummary s = sim.run();
  SimGolden g;
  g.makespan = s.makespan;
  g.mean_jct = s.mean_jct();
  g.util_cpu = s.avg_util.cpu;
  g.util_net = s.avg_util.net;
  g.migration_overhead_sec = s.migration_overhead_sec;
  g.regroup_events = s.regroup_events;
  g.oom_events = s.oom_events;
  g.jobs_completed = s.jobs.size();
  for (const exp::JobOutcome& j : s.jobs) g.sum_finish_times += j.finish_time;
  return g;
}

}  // namespace harmony::golden
