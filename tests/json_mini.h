// Test-facing aliases for the project JSON parser.
//
// The parser itself lives in src/common/json.h (it graduated from test-only
// when the trace analysis engine and harmony-report CLI started reading
// exported traces back in); this header keeps the historical test spelling
// harmony::testing::parse_json working.
#pragma once

#include "common/json.h"

namespace harmony::testing {

using JsonValue = ::harmony::json::JsonValue;
using JsonArray = ::harmony::json::JsonArray;
using JsonObject = ::harmony::json::JsonObject;

inline JsonValue parse_json(const std::string& text) {
  return ::harmony::json::parse_json(text);
}

}  // namespace harmony::testing
