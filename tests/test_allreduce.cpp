#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <thread>

#include "ml/mlr.h"
#include "ps/allreduce.h"
#include "ps/ps_system.h"

namespace harmony::ps {
namespace {

// Runs one collective across `workers` threads with the given per-rank data;
// returns the buffers afterwards.
std::vector<std::vector<double>> collective(std::size_t workers,
                                            std::vector<std::vector<double>> data) {
  std::vector<Nic*> nics(workers, nullptr);
  AllReduceGroup group(workers, nics);
  std::vector<std::jthread> threads;
  for (std::size_t r = 0; r < workers; ++r)
    threads.emplace_back([&group, &data, r] { group.all_reduce(r, data[r]); });
  threads.clear();  // join
  return data;
}

TEST(AllReduceGroup, SingleWorkerIsIdentity) {
  auto out = collective(1, {{1.0, 2.0, 3.0}});
  EXPECT_EQ(out[0], (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(AllReduceGroup, TwoWorkersSum) {
  auto out = collective(2, {{1.0, 2.0, 3.0, 4.0}, {10.0, 20.0, 30.0, 40.0}});
  for (const auto& buf : out) EXPECT_EQ(buf, (std::vector<double>{11.0, 22.0, 33.0, 44.0}));
}

class AllReduceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(AllReduceSweep, EveryReplicaHoldsTheSum) {
  const auto [workers, dim] = GetParam();
  std::vector<std::vector<double>> data(workers, std::vector<double>(dim));
  std::vector<double> expected(dim, 0.0);
  for (std::size_t r = 0; r < workers; ++r)
    for (std::size_t i = 0; i < dim; ++i) {
      data[r][i] = static_cast<double>(r * 1000 + i);
      expected[i] += data[r][i];
    }
  const auto out = collective(workers, std::move(data));
  for (std::size_t r = 0; r < workers; ++r)
    for (std::size_t i = 0; i < dim; ++i)
      ASSERT_DOUBLE_EQ(out[r][i], expected[i]) << "rank " << r << " index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllReduceSweep,
    ::testing::Values(std::make_tuple(2, 8), std::make_tuple(3, 10), std::make_tuple(4, 4),
                      std::make_tuple(5, 17), std::make_tuple(8, 64),
                      std::make_tuple(3, 2)));  // dim < workers: empty chunks

TEST(AllReduceGroup, BytesPerRankFormula) {
  // 2(W-1)/W of the data per rank, in chunk-granular form.
  EXPECT_EQ(AllReduceGroup::bytes_per_rank(100, 1), 0u);
  EXPECT_EQ(AllReduceGroup::bytes_per_rank(100, 4), 2u * 3u * 25u * sizeof(double));
}

TEST(AllReduceGroup, RepeatedCollectivesStayCorrect) {
  const std::size_t workers = 4, dim = 12;
  std::vector<Nic*> nics(workers, nullptr);
  AllReduceGroup group(workers, nics);
  std::vector<std::vector<double>> data(workers, std::vector<double>(dim, 1.0));
  for (int round = 0; round < 3; ++round) {
    std::vector<std::jthread> threads;
    for (std::size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] { group.all_reduce(r, data[r]); });
    threads.clear();
  }
  // 1 -> 4 -> 16 -> 64 after three sum-rounds.
  for (const auto& buf : data)
    for (double v : buf) EXPECT_DOUBLE_EQ(v, 64.0);
}

TEST(AllReduceSystem, ReplicasStayIdenticalWhileTraining) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(200, 6, 3, 0.05, 3));
  auto app = std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.5, 1e-5});
  AllReduceSystem system(app, 4);
  system.init_model();
  system.run_iterations_threaded(10);
  const auto ref = system.replica(0);
  for (std::size_t r = 1; r < 4; ++r) {
    const auto other = system.replica(r);
    ASSERT_EQ(ref.size(), other.size());
    for (std::size_t i = 0; i < ref.size(); ++i) ASSERT_DOUBLE_EQ(ref[i], other[i]);
  }
}

TEST(AllReduceSystem, TrainsMlr) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(300, 8, 3, 0.05, 7));
  auto app = std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.5, 1e-5});
  AllReduceSystem system(app, 3);
  system.init_model();
  const double initial = system.loss();
  system.run_iterations_threaded(40);
  EXPECT_LT(system.loss(), initial * 0.5);
}

TEST(AllReduceSystem, MatchesPsTrainingTrajectory) {
  // Same app, same partitioning: PS (sum of per-worker updates applied at
  // the server) and all-reduce (sum applied at each replica) should produce
  // the same model after each synchronous iteration.
  auto ds = std::make_shared<ml::DenseDataset>(ml::make_classification(120, 5, 3, 0.05, 9));
  auto app_ps = std::make_shared<ml::MlrApp>(ds, ml::MlrConfig{0.3, 0.0});
  auto app_ar = std::make_shared<ml::MlrApp>(ds, ml::MlrConfig{0.3, 0.0});

  PsSystem ps(app_ps, 3);
  ps.init_model();
  AllReduceSystem ar(app_ar, 3);
  ar.init_model();

  for (int iter = 0; iter < 5; ++iter) {
    ps.run_iterations_sequential(1);
    for (std::size_t r = 0; r < 3; ++r) ar.compute(r);
    std::vector<std::jthread> threads;
    for (std::size_t r = 0; r < 3; ++r)
      threads.emplace_back([&ar, r] { ar.communicate_and_apply(r); });
    threads.clear();
  }
  const auto ps_model = ps.full_model();
  const auto ar_model = ar.replica(0);
  ASSERT_EQ(ps_model.size(), ar_model.size());
  for (std::size_t i = 0; i < ps_model.size(); ++i)
    EXPECT_NEAR(ps_model[i], ar_model[i], 1e-9) << "param " << i;
}

TEST(AllReduceGroup, ThrottledNicsTakeProportionalTime) {
  const std::size_t workers = 3, dim = 30000;
  std::vector<std::unique_ptr<Nic>> nics;
  std::vector<Nic*> ptrs;
  for (std::size_t r = 0; r < workers; ++r) {
    nics.push_back(std::make_unique<Nic>(20e6));  // 20 MB/s
    ptrs.push_back(nics.back().get());
  }
  AllReduceGroup group(workers, ptrs);
  std::vector<std::vector<double>> data(workers, std::vector<double>(dim, 1.0));

  const auto t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::jthread> threads;
    for (std::size_t r = 0; r < workers; ++r)
      threads.emplace_back([&, r] { group.all_reduce(r, data[r]); });
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  // Each rank sends 2*(W-1)*dim/W doubles = 2*2*10000*8 B = 320 kB at 20 MB/s
  // => at least ~16 ms even with perfect overlap.
  EXPECT_GE(elapsed, 0.012);
  for (const auto& buf : data)
    for (double v : buf) ASSERT_DOUBLE_EQ(v, 3.0);
  EXPECT_GT(ptrs[0]->bytes_transferred(), 0u);
}

TEST(AllReduceSystem, CommBytesAccounting) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(50, 4, 2, 0.1, 1));
  auto app = std::make_shared<ml::MlrApp>(data);
  AllReduceSystem system(app, 4);
  EXPECT_EQ(system.comm_bytes_per_iteration(),
            4u * AllReduceGroup::bytes_per_rank(app->param_dim(), 4));
}

}  // namespace
}  // namespace harmony::ps
