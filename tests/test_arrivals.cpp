// Arrival processes (src/exp/arrivals): finite vectors and the unbounded
// streams that feed the online service mode. Pins seeded determinism, the
// poisson vector/stream prefix equivalence, and the empirical rates of both
// stochastic generators.
#include "exp/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace harmony::exp {
namespace {

TEST(BatchArrivals, AllAtTimeZero) {
  const auto times = batch_arrivals(5);
  ASSERT_EQ(times.size(), 5u);
  for (double t : times) EXPECT_EQ(t, 0.0);
  BatchArrivalStream stream;
  EXPECT_EQ(stream.next(), 0.0);
  EXPECT_EQ(stream.next(), 0.0);
}

TEST(PoissonArrivals, StreamMatchesVectorForEveryPrefix) {
  // The stream is documented bit-compatible with poisson_arrivals for every
  // prefix length — the service driver and the finite experiments must see
  // the same process.
  const auto full = poisson_arrivals(200, 30.0, 42);
  for (std::size_t n : {1u, 7u, 100u, 200u}) {
    PoissonArrivalStream stream(30.0, 42);
    const auto prefix = take(stream, n);
    ASSERT_EQ(prefix.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(prefix[i], full[i]) << "i=" << i;
  }
}

TEST(PoissonArrivals, DeterministicInSeedAndDistinctAcrossSeeds) {
  PoissonArrivalStream a(10.0, 7), b(10.0, 7), c(10.0, 8);
  const auto sa = take(a, 500);
  const auto sb = take(b, 500);
  const auto sc = take(c, 500);
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(PoissonArrivals, StartsAtZeroAndNonDecreasing) {
  PoissonArrivalStream stream(5.0, 3);
  const auto times = take(stream, 1000);
  EXPECT_EQ(times.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
}

TEST(PoissonArrivals, EmpiricalMeanInterarrivalNearConfigured) {
  // 20k exponential gaps: the sample mean concentrates well within 5%.
  const double mean = 12.0;
  PoissonArrivalStream stream(mean, 99);
  const std::size_t n = 20000;
  const auto times = take(stream, n);
  const double empirical = times.back() / static_cast<double>(n - 1);
  EXPECT_NEAR(empirical, mean, 0.05 * mean);
}

TEST(TraceArrivals, VectorDeterministicAndBursty) {
  const auto a = trace_arrivals(400, 60.0, 5);
  const auto b = trace_arrivals(400, 60.0, 5);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
  // Burstiness: a meaningful share of gaps is far below the mean while the
  // overall span still covers it — Poisson would not pack 4-job spikes.
  std::size_t tight_gaps = 0;
  for (std::size_t i = 1; i < a.size(); ++i)
    if (a[i] - a[i - 1] < 0.1 * 60.0) ++tight_gaps;
  EXPECT_GT(tight_gaps, a.size() / 4);
}

TEST(TraceArrivals, StreamDeterministicMonotonicFromZero) {
  TraceArrivalStream s1(45.0, 11), s2(45.0, 11);
  const auto a = take(s1, 2000);
  const auto b = take(s2, 2000);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.front(), 0.0);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(TraceArrivals, StreamEmpiricalMeanInterarrivalNearConfigured) {
  // Pareto gaps are heavy-tailed, so the sample mean converges slowly; 20k
  // arrivals with a generous 25% band keeps this robust yet meaningful.
  const double mean = 20.0;
  TraceArrivalStream stream(mean, 123);
  const std::size_t n = 20000;
  const auto times = take(stream, n);
  const double empirical = times.back() / static_cast<double>(n - 1);
  EXPECT_NEAR(empirical, mean, 0.25 * mean);
}

TEST(TraceArrivals, StreamInterleavingInvariant) {
  // The k-th emission depends only on (seed, k): draining in one go or in
  // many small takes yields the same sequence.
  TraceArrivalStream whole(30.0, 77);
  const auto all = take(whole, 300);
  TraceArrivalStream pieces(30.0, 77);
  std::vector<double> stitched;
  while (stitched.size() < 300) {
    const auto chunk = take(pieces, 30);
    stitched.insert(stitched.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(all, stitched);
}

TEST(MakeArrivalStream, FactoryKindsAndErrors) {
  EXPECT_NE(make_arrival_stream("batch", 1.0, 1), nullptr);
  auto poisson = make_arrival_stream("poisson", 15.0, 21);
  PoissonArrivalStream reference(15.0, 21);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(poisson->next(), reference.next());
  auto trace = make_arrival_stream("trace", 15.0, 21);
  TraceArrivalStream trace_reference(15.0, 21);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(trace->next(), trace_reference.next());
  EXPECT_THROW(make_arrival_stream("uniform", 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace harmony::exp
