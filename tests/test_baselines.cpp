#include <gtest/gtest.h>

#include <set>

#include "baselines/isolated.h"
#include "baselines/naive.h"
#include "baselines/oracle.h"
#include "common/rng.h"

namespace harmony::baselines {
namespace {

using core::JobId;
using core::JobProfile;
using core::SchedJob;

SchedJob job(JobId id, double cpu_work, double t_net) {
  return SchedJob{id, JobProfile{cpu_work, t_net}};
}

TEST(Isolated, PickDopKeepsCpuDominant) {
  IsolatedScheduler s(IsolatedScheduler::Params{1.5, 32});
  // cpu_work 160, t_net 4: t_cpu(m) >= 6 while m <= 26 -> dop capped well
  // above 1.
  const std::size_t dop = s.pick_dop(JobProfile{160, 4});
  EXPECT_GE(dop, 8u);
  EXPECT_LE(dop, 32u);
  // Network-heavy job: even DoP 2 violates dominance -> runs on 1 machine.
  EXPECT_EQ(s.pick_dop(JobProfile{10, 100}), 1u);
}

TEST(Isolated, HigherBiasLowersDop) {
  IsolatedScheduler relaxed(IsolatedScheduler::Params{1.0, 32});
  IsolatedScheduler strict(IsolatedScheduler::Params{4.0, 32});
  const JobProfile p{320, 8};
  EXPECT_GE(relaxed.pick_dop(p), strict.pick_dop(p));
}

TEST(Isolated, OneJobPerGroupFifoUntilFull) {
  IsolatedScheduler s;
  std::vector<SchedJob> jobs{job(0, 400, 4), job(1, 400, 4), job(2, 400, 4)};
  const auto d = s.schedule(jobs, 10);
  // Each group holds exactly one job; total machines never exceeds 10.
  std::size_t total = 0;
  for (const auto& g : d.groups) {
    EXPECT_EQ(g.jobs.size(), 1u);
    total += g.machines;
  }
  EXPECT_LE(total, 10u);
  EXPECT_GE(d.jobs_scheduled, 1u);
}

TEST(Isolated, QueuesWhenMachinesExhausted) {
  IsolatedScheduler s;
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 30; ++i) jobs.push_back(job(i, 400, 4));
  const auto d = s.schedule(jobs, 8);
  EXPECT_LT(d.jobs_scheduled, 30u);
}

TEST(Naive, GroupsHaveConfiguredSize) {
  NaiveScheduler s(NaiveScheduler::Params{3});
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 9; ++i) jobs.push_back(job(i, 100, 10));
  const auto d = s.schedule(jobs, 12, 1);
  EXPECT_EQ(d.groups.size(), 3u);
  std::size_t total_jobs = 0, total_machines = 0;
  for (const auto& g : d.groups) {
    total_jobs += g.jobs.size();
    total_machines += g.machines;
  }
  EXPECT_EQ(total_jobs, 9u);
  EXPECT_EQ(total_machines, 12u);
}

TEST(Naive, DifferentSeedsGiveDifferentGroupings) {
  NaiveScheduler s(NaiveScheduler::Params{2});
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 8; ++i) jobs.push_back(job(i, 100 + i, 10));
  const auto a = s.schedule(jobs, 8, 1);
  const auto b = s.schedule(jobs, 8, 2);
  // With 8 distinct jobs, two shuffles almost surely differ.
  bool same = a.groups.size() == b.groups.size();
  if (same) {
    for (std::size_t g = 0; g < a.groups.size(); ++g)
      if (a.groups[g].jobs != b.groups[g].jobs) same = false;
  }
  EXPECT_FALSE(same);
}

TEST(Naive, EmptyInput) {
  NaiveScheduler s;
  EXPECT_TRUE(s.schedule({}, 8, 1).groups.empty());
}

TEST(Oracle, MatchesSchedulerOnTrivialCase) {
  OracleScheduler oracle;
  std::vector<SchedJob> jobs{job(0, 100, 10)};
  const auto d = oracle.schedule(jobs, 4);
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups[0].machines, 4u);
  EXPECT_EQ(oracle.partitions_examined(), 1u);  // Bell(1) = 1
}

TEST(Oracle, ExaminesBellNumberOfPartitions) {
  OracleScheduler oracle;
  std::vector<SchedJob> jobs{job(0, 100, 10), job(1, 90, 12), job(2, 50, 20),
                             job(3, 40, 25)};
  oracle.schedule(jobs, 8);
  // Prefix lengths 1..4: Bell(1)+Bell(2)+Bell(3)+Bell(4) = 1+2+5+15.
  EXPECT_EQ(oracle.partitions_examined(), 23u);
}

TEST(Oracle, GroupsComplementaryPair) {
  OracleScheduler oracle;
  // Perfectly complementary pair: the oracle must co-locate them.
  std::vector<SchedJob> jobs{job(0, 160, 4), job(1, 32, 20)};
  const auto d = oracle.schedule(jobs, 8);
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups[0].jobs.size(), 2u);
}

TEST(Oracle, SeparatesMonsterJob) {
  OracleScheduler oracle;
  // Co-locating the monster with a small job makes the group job-bound; the
  // oracle should isolate it.
  std::vector<SchedJob> jobs{job(0, 8000, 500), job(1, 40, 5), job(2, 8, 37)};
  const auto d = oracle.schedule(jobs, 12);
  for (const auto& g : d.groups) {
    const bool has_monster =
        std::find(g.jobs.begin(), g.jobs.end(), 0u) != g.jobs.end();
    if (has_monster) {
      EXPECT_EQ(g.jobs.size(), 1u);
    }
  }
}

TEST(Oracle, RefusesOversizedInput) {
  OracleScheduler oracle(OracleScheduler::Params{5, {}});
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 6; ++i) jobs.push_back(job(i, 100, 10));
  EXPECT_THROW(oracle.schedule(jobs, 8), std::invalid_argument);
}

// The heuristic scheduler should stay close to the oracle's score (§V-F:
// "slightly worse by up to around 2%" — we allow a modest margin).
class OracleGapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleGapSweep, HeuristicWithinTenPercentOfOracle) {
  Rng rng(GetParam());
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 7; ++i)
    jobs.push_back(job(i, rng.uniform(40, 800), rng.uniform(4, 60)));

  OracleScheduler oracle;
  core::Scheduler heuristic;
  const auto best = oracle.schedule(jobs, 16);
  const auto mine = heuristic.schedule(jobs, 16);
  ASSERT_FALSE(best.empty());
  ASSERT_FALSE(mine.empty());
  EXPECT_GE(best.score + 1e-9, mine.score);  // oracle is an upper bound
  // The paper reports ~2% gap on its workload (Fig. 14); adversarial random
  // pools can be worse because Algorithm 1 stops at the first prefix whose
  // utilization does not improve.
  EXPECT_GE(mine.score, best.score * 0.85);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleGapSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace harmony::baselines
