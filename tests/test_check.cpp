// The invariant-check framework itself: macro semantics, structured failure
// reports, entity tags, debug-only behaviour, and soft-mode accumulation.
#include "check/check.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace check = harmony::check;

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(HARMONY_CHECK(1 + 1 == 2) << "never evaluated");
}

TEST(Check, PassingCheckDoesNotEvaluateMessage) {
  int calls = 0;
  auto expensive = [&] {
    ++calls;
    return std::string("diagnostics");
  };
  HARMONY_CHECK(true) << expensive();
  EXPECT_EQ(calls, 0);
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(HARMONY_CHECK(2 + 2 == 5), check::CheckError);
}

TEST(Check, ReportCarriesFileLineExpressionAndMessage) {
  try {
    HARMONY_CHECK(0 > 1) << "broken with value " << 42;
    FAIL() << "should have thrown";
  } catch (const check::CheckError& e) {
    const check::FailureReport& r = e.report();
    EXPECT_NE(r.file.find("test_check.cpp"), std::string::npos);
    EXPECT_GT(r.line, 0);
    EXPECT_EQ(r.expression, "0 > 1");
    EXPECT_EQ(r.message, "broken with value 42");
    // what() is the rendered report.
    EXPECT_NE(std::string(e.what()).find("CHECK(0 > 1) failed"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("broken with value 42"), std::string::npos);
  }
}

TEST(Check, EntityTagsRouteIntoTheReport) {
  try {
    HARMONY_CHECK(false) << check::job(3) << check::group(7) << check::machine(11)
                         << "who did it";
    FAIL() << "should have thrown";
  } catch (const check::CheckError& e) {
    EXPECT_EQ(e.report().job, 3u);
    EXPECT_EQ(e.report().group, 7u);
    EXPECT_EQ(e.report().machine, 11u);
    EXPECT_EQ(e.report().message, "who did it");
    const std::string rendered = e.report().to_string();
    EXPECT_NE(rendered.find("job 3"), std::string::npos);
    EXPECT_NE(rendered.find("group 7"), std::string::npos);
    EXPECT_NE(rendered.find("machine 11"), std::string::npos);
  }
}

TEST(Check, UntaggedReportOmitsEntities) {
  try {
    HARMONY_CHECK(false) << "plain";
    FAIL() << "should have thrown";
  } catch (const check::CheckError& e) {
    EXPECT_EQ(e.report().job, check::kNoEntity);
    EXPECT_EQ(e.report().to_string().find("job "), std::string::npos);
  }
}

TEST(Check, FailureBumpsTheObsCounter) {
  auto& counter = harmony::obs::MetricsRegistry::instance().counter("check.failures");
  const auto before = counter.value();
  EXPECT_THROW(HARMONY_CHECK(false) << "counted", check::CheckError);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(Check, DcheckMatchesBuildMode) {
#ifdef NDEBUG
  // Compiled out: the condition must not even be evaluated.
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return false;
  };
  HARMONY_DCHECK(probe()) << "never fires under NDEBUG";
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_THROW(HARMONY_DCHECK(false) << "fires in debug", check::CheckError);
#endif
}

TEST(Validation, CollectsFailuresWithoutThrowing) {
  check::Validation v("unit");
  HARMONY_VALIDATE(v, 1 == 1) << "fine";
  HARMONY_VALIDATE(v, 1 == 2) << "first failure";
  HARMONY_VALIDATE(v, 2 == 3) << check::job(5) << "second failure";
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.report().checks_run, 3u);
  ASSERT_EQ(v.report().failures.size(), 2u);
  EXPECT_EQ(v.report().failures[0].message, "first failure");
  EXPECT_EQ(v.report().failures[0].validator, "unit");
  EXPECT_EQ(v.report().failures[1].job, 5u);
}

TEST(Validation, ConditionEvaluatedExactlyOnce) {
  check::Validation v("unit");
  int evaluations = 0;
  auto probe = [&] {
    ++evaluations;
    return false;
  };
  HARMONY_VALIDATE(v, probe()) << "once";
  EXPECT_EQ(evaluations, 1);
}

TEST(Validation, MentionsSearchesExpressionAndMessage) {
  check::Validation v("unit");
  const int occupancy = 9;
  HARMONY_VALIDATE(v, occupancy < 5) << "machine over-allocated by " << occupancy;
  EXPECT_TRUE(v.report().mentions("over-allocated"));
  EXPECT_TRUE(v.report().mentions("occupancy < 5"));
  EXPECT_FALSE(v.report().mentions("no such text"));
}

TEST(Validation, MergeAccumulatesAcrossValidators) {
  check::Validation a("first");
  check::Validation b("second");
  HARMONY_VALIDATE(a, false) << "from a";
  HARMONY_VALIDATE(b, false) << "from b";
  HARMONY_VALIDATE(b, true) << "ok";
  a.merge(b);
  EXPECT_EQ(a.report().failures.size(), 2u);
  EXPECT_EQ(a.report().checks_run, 3u);
  EXPECT_EQ(a.report().failures[1].validator, "second");
}

TEST(Validation, ToStringRendersOneLinePerFailure) {
  check::Validation v("unit");
  EXPECT_EQ(v.report().to_string(), "");
  HARMONY_VALIDATE(v, false) << "alpha";
  HARMONY_VALIDATE(v, false) << "beta";
  const std::string s = v.report().to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
}
