#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "harmony/checkpoint.h"

namespace harmony::core {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("harmony-ckpt-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(CheckpointTest, SaveLoadRoundTrip) {
  CheckpointStore store(dir_);
  const std::vector<double> model{1.0, -2.5, 3.25, 0.0, 1e100};
  store.save(7, model);
  EXPECT_TRUE(store.exists(7));
  EXPECT_EQ(store.load(7), model);
}

TEST_F(CheckpointTest, OverwriteReplacesContent) {
  CheckpointStore store(dir_);
  store.save(1, std::vector<double>{1.0});
  store.save(1, std::vector<double>{2.0, 3.0});
  EXPECT_EQ(store.load(1), (std::vector<double>{2.0, 3.0}));
}

TEST_F(CheckpointTest, MissingCheckpointThrows) {
  CheckpointStore store(dir_);
  EXPECT_FALSE(store.exists(42));
  EXPECT_THROW(store.load(42), std::runtime_error);
}

TEST_F(CheckpointTest, RemoveDeletes) {
  CheckpointStore store(dir_);
  store.save(3, std::vector<double>{1.0});
  store.remove(3);
  EXPECT_FALSE(store.exists(3));
}

TEST_F(CheckpointTest, JobsAreIndependent) {
  CheckpointStore store(dir_);
  store.save(1, std::vector<double>{1.0});
  store.save(2, std::vector<double>{2.0});
  EXPECT_EQ(store.load(1), (std::vector<double>{1.0}));
  EXPECT_EQ(store.load(2), (std::vector<double>{2.0}));
}

TEST_F(CheckpointTest, JobIdMismatchDetected) {
  CheckpointStore store(dir_);
  store.save(5, std::vector<double>{1.0});
  // Corrupt: copy job 5's file over job 6's slot.
  std::filesystem::copy_file(dir_ / "job-5.ckpt", dir_ / "job-6.ckpt");
  EXPECT_THROW(store.load(6), std::runtime_error);
}

TEST_F(CheckpointTest, NoTempFileLeftBehind) {
  CheckpointStore store(dir_);
  store.save(9, std::vector<double>(1000, 3.14));
  std::size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".ckpt");
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

TEST_F(CheckpointTest, EmptyModelRoundTrips) {
  CheckpointStore store(dir_);
  store.save(11, std::vector<double>{});
  EXPECT_TRUE(store.load(11).empty());
}

}  // namespace
}  // namespace harmony::core
