#!/usr/bin/env python3
"""CLI contract test for harmony-sim.

Pins the help/usage surface (every documented mode and flag family appears in
--help, including the service-mode flags) and the error discipline: unknown
options, unknown enum values, and mode-invalid combinations must exit 2 with a
message that *names* the offending input, never a bare usage dump. Also smokes
the service mode itself: two same-seed runs must produce byte-identical
stdout (the deterministic report; wall-clock stats go to stderr).

Registered in ctest as `test_cli` with the binary path as argv[1].
Run directly: python3 tests/test_cli.py /path/to/harmony-sim
"""

import os
import subprocess
import sys
import tempfile
import unittest

BINARY = None


def run(*args):
    return subprocess.run([BINARY, *args], stdout=subprocess.PIPE,
                          stderr=subprocess.PIPE, text=True, timeout=120)


class CliTest(unittest.TestCase):
    def test_help_documents_all_modes(self):
        proc = run("--help")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        for flag in ("--policy", "--jobs", "--machines", "--arrival", "--seed",
                     "--event-queue", "--validate", "--metrics",
                     # service mode
                     "--service", "--duration", "--arrival-rate", "--admission",
                     "--queue-cap", "--drift",
                     # telemetry family
                     "--telemetry-out", "--telemetry-interval", "--prom-out",
                     "--slo", "--flight-recorder"):
            self.assertIn(flag, proc.stdout, f"--help must document {flag}")
        self.assertIn("fifo|sjf", proc.stdout)

    def assert_named_error(self, fragment, *args):
        proc = run(*args)
        self.assertEqual(proc.returncode, 2,
                         f"expected usage error for {args}: {proc.stdout}")
        self.assertIn(fragment, proc.stderr,
                      f"error for {args} must name the input:\n{proc.stderr}")
        self.assertIn("usage:", proc.stderr)

    def test_unknown_option_is_named(self):
        self.assert_named_error("--frobnicate", "--frobnicate")

    def test_unknown_enum_values_are_named(self):
        self.assert_named_error("bogus", "--policy", "bogus")
        self.assert_named_error("wheel", "--service", "--admission", "wheel")
        self.assert_named_error("skiplist", "--event-queue", "skiplist")
        self.assert_named_error("uniform", "--arrival", "uniform:3")

    def test_missing_value_is_named(self):
        self.assert_named_error("--machines", "--machines")

    def test_service_rejects_batch_arrivals(self):
        self.assert_named_error("batch", "--service", "--arrival", "batch")

    def test_service_runs_are_bit_identical(self):
        args = ("--service", "--duration", "1200", "--arrival-rate", "0.2",
                "--machines", "80", "--seed", "5")
        first = run(*args)
        second = run(*args, "--validate")  # validators must not perturb stdout
        self.assertEqual(first.returncode, 0, first.stderr)
        self.assertEqual(second.returncode, 0, second.stderr)
        self.assertEqual(first.stdout, second.stdout)
        self.assertIn("service report (harmony-svc-v1)", first.stdout)
        self.assertIn("scheduling events", first.stdout)
        # Wall-clock stats are stderr-only: nondeterministic surface.
        self.assertIn("events/s", second.stderr)
        self.assertNotIn("events/s", first.stdout)

    def test_bad_slo_spec_is_named(self):
        self.assert_named_error("not-a-slo", "--service", "--slo", "not-a-slo=1")
        self.assert_named_error("'abc'",
                                "--service", "--slo", "queue-delay-p99=abc")

    def test_telemetry_flags_require_service_mode(self):
        self.assert_named_error("--telemetry-out", "--telemetry-out", "t.jsonl")
        self.assert_named_error("--slo", "--slo", "queue-delay-p99=120")

    def test_telemetry_interval_must_be_positive(self):
        self.assert_named_error("--telemetry-interval", "--service",
                                "--telemetry-interval", "0")

    def test_telemetry_files_are_bit_identical_across_runs(self):
        with tempfile.TemporaryDirectory() as tmp:
            outs = []
            for name, extra in (("a", ()), ("b", ()), ("v", ("--validate",))):
                tel = os.path.join(tmp, f"tel-{name}.jsonl")
                prom = os.path.join(tmp, f"prom-{name}.txt")
                proc = run("--service", "--duration", "1200", "--arrival-rate",
                           "0.2", "--machines", "80", "--seed", "5",
                           "--telemetry-out", tel, "--prom-out", prom,
                           "--slo", "queue-delay-p99=120", *extra)
                self.assertEqual(proc.returncode, 0, proc.stderr)
                with open(tel) as f:
                    jsonl = f.read()
                with open(prom) as f:
                    promtext = f.read()
                outs.append((jsonl, promtext, proc.stdout))
            # Rerun and validators-on must both be byte-identical.
            self.assertEqual(outs[0], outs[1])
            self.assertEqual(outs[0], outs[2])
            self.assertIn('"schema":"harmony-telemetry-v1"', outs[0][0])
            self.assertIn("# TYPE harmony_svc_arrivals_total counter",
                          outs[0][1])
            self.assertIn("telemetry windows", outs[0][2])
            self.assertIn("queue-delay-p99", outs[0][2])

    def test_service_sjf_policy_accepted(self):
        proc = run("--service", "--duration", "600", "--arrival-rate", "0.2",
                   "--machines", "60", "--admission", "sjf", "--queue-cap", "16",
                   "--drift", "0.2")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("admission=sjf", proc.stdout)


if __name__ == "__main__":
    if len(sys.argv) < 2:
        sys.exit("usage: test_cli.py /path/to/harmony-sim")
    BINARY = sys.argv.pop(1)
    unittest.main(verbosity=2)
