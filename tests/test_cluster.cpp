#include <gtest/gtest.h>

#include <cmath>

#include "cluster/cluster.h"
#include "cluster/machine.h"
#include "cluster/memory_model.h"

namespace harmony::cluster {
namespace {

TEST(MachineSpec, PaperDefaults) {
  MachineSpec spec;
  EXPECT_EQ(spec.cores, 8);
  EXPECT_DOUBLE_EQ(spec.memory_bytes, 32.0 * kGiB);
  EXPECT_NEAR(spec.nic_bytes_per_sec, 1.375e8, 1e3);  // 1.1 Gbps
}

TEST(MachineSpec, Describe) {
  const std::string s = describe(MachineSpec{});
  EXPECT_NE(s.find("8c"), std::string::npos);
  EXPECT_NE(s.find("32"), std::string::npos);
}

TEST(Cluster, AllocateAndRelease) {
  Cluster c(10);
  EXPECT_EQ(c.free_count(), 10u);
  auto got = c.allocate(4, 1);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->size(), 4u);
  EXPECT_EQ(c.free_count(), 6u);
  for (MachineId id : *got) EXPECT_EQ(c.owner(id), 1u);
  c.release(*got, 1);
  EXPECT_EQ(c.free_count(), 10u);
}

TEST(Cluster, AllocateFailsAtomically) {
  Cluster c(3);
  auto a = c.allocate(2, 1);
  ASSERT_TRUE(a.has_value());
  auto b = c.allocate(2, 2);
  EXPECT_FALSE(b.has_value());
  EXPECT_EQ(c.free_count(), 1u);  // nothing half-granted
}

TEST(Cluster, MachinesOfGroup) {
  Cluster c(5);
  auto a = c.allocate(2, 7);
  ASSERT_TRUE(a);
  auto members = c.machines_of(7);
  EXPECT_EQ(members, *a);
  EXPECT_TRUE(c.machines_of(99).empty());
}

TEST(MemoryModel, NoSlowdownBelowThreshold) {
  MemoryModel m;
  EXPECT_DOUBLE_EQ(m.gc_slowdown(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.gc_slowdown(0.5), 1.0);
  EXPECT_DOUBLE_EQ(m.gc_slowdown(0.70), 1.0);
}

TEST(MemoryModel, SlowdownGrowsMonotonically) {
  MemoryModel m;
  double prev = 1.0;
  for (double occ = 0.71; occ <= 1.0; occ += 0.01) {
    const double s = m.gc_slowdown(occ);
    EXPECT_GE(s, prev);
    prev = s;
  }
  EXPECT_GT(m.gc_slowdown(0.99), 2.0);  // superlinear near full
}

TEST(MemoryModel, GcTimeFractionConsistent) {
  MemoryModel m;
  const double occ = 0.9;
  const double s = m.gc_slowdown(occ);
  EXPECT_NEAR(m.gc_time_fraction(occ), 1.0 - 1.0 / s, 1e-12);
  EXPECT_DOUBLE_EQ(m.gc_time_fraction(0.3), 0.0);
}

TEST(MemoryModel, OomBoundary) {
  MemoryModelParams p;
  p.oom_occupancy = 0.95;
  MemoryModel m(p);
  EXPECT_FALSE(m.oom(0.95));
  EXPECT_TRUE(m.oom(0.96));
}

TEST(MemoryModel, ClampsOutOfRangeOccupancy) {
  MemoryModel m;
  EXPECT_DOUBLE_EQ(m.gc_slowdown(-0.5), 1.0);
  EXPECT_GT(m.gc_slowdown(2.0), 1.0);  // clamped to 1.0, finite
  EXPECT_TRUE(std::isfinite(m.gc_slowdown(2.0)));
}

class GcThresholdSweep : public ::testing::TestWithParam<double> {};

TEST_P(GcThresholdSweep, ThresholdIsExactKnee) {
  MemoryModelParams p;
  p.gc_threshold = GetParam();
  MemoryModel m(p);
  EXPECT_DOUBLE_EQ(m.gc_slowdown(GetParam()), 1.0);
  EXPECT_GT(m.gc_slowdown(GetParam() + 0.05), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Thresholds, GcThresholdSweep, ::testing::Values(0.5, 0.6, 0.7, 0.8));

}  // namespace
}  // namespace harmony::cluster
