#include <gtest/gtest.h>

#include <algorithm>

#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"

namespace harmony::exp {
namespace {

// A reduced catalog keeps the integration tests fast.
std::vector<WorkloadSpec> small_workload(std::size_t n, std::uint64_t seed = 2021) {
  auto catalog = make_catalog(seed);
  // Spread across app families: take every (80/n)-th job.
  std::vector<WorkloadSpec> out;
  const std::size_t stride = std::max<std::size_t>(1, catalog.size() / n);
  for (std::size_t i = 0; i < catalog.size() && out.size() < n; i += stride)
    out.push_back(catalog[i]);
  // Shorten convergence so tests run in milliseconds of wall time.
  for (auto& s : out) s.iterations = std::min<std::size_t>(s.iterations, 12);
  return out;
}

RunSummary run_policy(ClusterSimConfig config, std::size_t n_jobs,
                      std::size_t machines) {
  config.machines = machines;
  auto workload = small_workload(n_jobs);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  return sim.run();
}

TEST(ClusterSim, HarmonyCompletesAllJobs) {
  const auto summary = run_policy(ClusterSimConfig::harmony(), 12, 24);
  EXPECT_EQ(summary.jobs.size(), 12u);
  EXPECT_GT(summary.makespan, 0.0);
  for (const auto& j : summary.jobs) {
    EXPECT_GE(j.finish_time, j.submit_time);
  }
}

TEST(ClusterSim, IsolatedCompletesAllJobs) {
  const auto summary = run_policy(ClusterSimConfig::isolated(), 10, 30);
  EXPECT_EQ(summary.jobs.size(), 10u);
  EXPECT_EQ(summary.oom_events, 0u);  // isolated DoP respects memory
}

TEST(ClusterSim, NaiveCompletesAllJobs) {
  const auto summary = run_policy(ClusterSimConfig::naive(3), 9, 30);
  EXPECT_EQ(summary.jobs.size(), 9u);
}

TEST(ClusterSim, UtilizationWithinBounds) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 20;
  auto workload = small_workload(8);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  EXPECT_GE(summary.avg_util.cpu, 0.0);
  EXPECT_LE(summary.avg_util.cpu, 1.0 + 1e-9);
  EXPECT_LE(summary.avg_util.net, 1.0 + 1e-9);
  for (const auto& u : sim.timeline().values()) {
    EXPECT_LE(u.cpu, 1.0 + 1e-9);
    EXPECT_LE(u.net, 1.0 + 1e-9);
  }
}

TEST(ClusterSim, HarmonyBeatsIsolatedOnJctAndMakespan) {
  const auto harmony = run_policy(ClusterSimConfig::harmony(), 16, 24);
  const auto isolated = run_policy(ClusterSimConfig::isolated(), 16, 24);
  EXPECT_LT(harmony.mean_jct(), isolated.mean_jct());
  EXPECT_LT(harmony.makespan, isolated.makespan * 1.05);
}

TEST(ClusterSim, HarmonyUtilizationAboveIsolated) {
  ClusterSimConfig hc = ClusterSimConfig::harmony();
  hc.machines = 24;
  auto workload = small_workload(16);
  ClusterSim hsim(hc, workload, batch_arrivals(workload.size()));
  const auto h = hsim.run();

  ClusterSimConfig ic = ClusterSimConfig::isolated();
  ic.machines = 24;
  ClusterSim isim(ic, workload, batch_arrivals(workload.size()));
  const auto i = isim.run();

  EXPECT_GT(h.avg_util.cpu, i.avg_util.cpu);
}

TEST(ClusterSim, PredictionErrorsStaySmall) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 24;
  auto workload = small_workload(12);
  for (auto& s : workload) s.iterations = 30;  // enough steady state to measure
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  const auto& errs = sim.prediction_errors();
  ASSERT_GT(errs.group_iteration_rel_error.size(), 0u);
  // Small multi-job groups pay pipeline-fill gaps Eq. 1 doesn't model; the
  // full-size experiment (bench_fig13) lands lower.
  EXPECT_LT(errs.group_iteration_rel_error.mean(), 0.25);
}

TEST(ClusterSim, SpillPreventsOom) {
  // Without spill, a deliberately memory-tight run triggers OOM events;
  // with spill it must not.
  ClusterSimConfig no_spill = ClusterSimConfig::harmony();
  no_spill.spill_enabled = false;
  no_spill.machines = 12;
  ClusterSimConfig with_spill = ClusterSimConfig::harmony();
  with_spill.machines = 12;

  auto workload = small_workload(10);
  ClusterSim sim_no(no_spill, workload, batch_arrivals(workload.size()));
  const auto summary_no = sim_no.run();
  ClusterSim sim_yes(with_spill, workload, batch_arrivals(workload.size()));
  const auto summary_yes = sim_yes.run();
  EXPECT_EQ(summary_yes.oom_events, 0u);
  EXPECT_GE(summary_no.oom_events, summary_yes.oom_events);
}

TEST(ClusterSim, PoissonArrivalsRespectSubmitTimes) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 16;
  auto workload = small_workload(8);
  const auto arrivals = poisson_arrivals(workload.size(), 300.0, 3);
  ClusterSim sim(config, workload, arrivals);
  const auto summary = sim.run();
  EXPECT_EQ(summary.jobs.size(), 8u);
  for (const auto& j : summary.jobs) {
    EXPECT_DOUBLE_EQ(j.submit_time, arrivals[j.job]);
    EXPECT_GT(j.finish_time, j.submit_time);
  }
}

TEST(ClusterSim, GroupStatsPopulated) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 24;
  auto workload = small_workload(12);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  EXPECT_GT(sim.group_dop_samples().size(), 0u);
  EXPECT_GT(sim.group_size_samples().size(), 0u);
  EXPECT_GT(sim.avg_concurrent_jobs(), 0.0);
  EXPECT_GT(sim.sched_invocations(), 0u);
}

TEST(ClusterSim, AlphaStatsTracked) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 10;  // tight memory: spill must engage
  auto workload = small_workload(8);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  const auto stats = sim.alpha_stats();
  EXPECT_GE(stats.mean, 0.0);
  EXPECT_LE(stats.max, 1.0);
}

TEST(ClusterSim, MismatchedArrivalsThrow) {
  auto workload = small_workload(4);
  EXPECT_THROW(ClusterSim(ClusterSimConfig::harmony(), workload, batch_arrivals(3)),
               std::invalid_argument);
}

TEST(CoLocationOoms, TripleOverflowsPairFits) {
  // Fig. 4's memory story with Table I sizes on 16 machines.
  const auto catalog = make_catalog();
  auto find = [&](const std::string& app, const std::string& ds) {
    for (const auto& s : catalog)
      if (s.app == app && s.dataset == ds) return s;
    throw std::logic_error("not found");
  };
  const auto nmf = find("NMF", "Netflix64x");
  const auto mlr = find("MLR", "Synthetic16K");
  const auto lasso = find("Lasso", "SyntheticA");
  cluster::MachineSpec spec;
  cluster::MemoryModelParams params;
  EXPECT_FALSE(co_location_ooms({nmf, mlr}, 16, spec, params));
  EXPECT_FALSE(co_location_ooms({nmf, lasso}, 16, spec, params));
  EXPECT_TRUE(co_location_ooms({nmf, mlr, lasso}, 16, spec, params));
}

class PolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(PolicySweep, AllJobsFinishExactlyOnce) {
  ClusterSimConfig config;
  switch (GetParam()) {
    case 0:
      config = ClusterSimConfig::isolated();
      break;
    case 1:
      config = ClusterSimConfig::naive(7);
      break;
    default:
      config = ClusterSimConfig::harmony();
      break;
  }
  config.machines = 20;
  auto workload = small_workload(10);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  ASSERT_EQ(summary.jobs.size(), 10u);
  std::vector<std::uint32_t> ids;
  for (const auto& j : summary.jobs) ids.push_back(j.job);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicySweep, ::testing::Values(0, 1, 2));

// The calendar queue is a drop-in replacement for the reference binary heap:
// with the (time, seq) tie-break both must fire events in the same order, so
// a full workload run has to produce bit-identical results under either.
TEST(ClusterSim, QueueKindsProduceIdenticalRuns) {
  auto run_with = [](sim::EventQueueKind kind, bool poisson) {
    ClusterSimConfig config = ClusterSimConfig::harmony();
    config.machines = 24;
    config.event_queue = kind;
    auto workload = small_workload(14);
    auto arrivals = poisson ? poisson_arrivals(workload.size(), 150.0, 3)
                            : batch_arrivals(workload.size());
    ClusterSim sim(config, workload, arrivals);
    RunSummary summary = sim.run();
    return std::make_pair(std::move(summary), sim.events_fired());
  };
  for (const bool poisson : {false, true}) {
    const auto [heap, heap_events] =
        run_with(sim::EventQueueKind::kBinaryHeap, poisson);
    const auto [cal, cal_events] =
        run_with(sim::EventQueueKind::kCalendar, poisson);
    EXPECT_EQ(heap_events, cal_events);
    EXPECT_EQ(heap.makespan, cal.makespan);
    EXPECT_EQ(heap.mean_jct(), cal.mean_jct());
    EXPECT_EQ(heap.regroup_events, cal.regroup_events);
    EXPECT_EQ(heap.oom_events, cal.oom_events);
    EXPECT_EQ(heap.avg_util.cpu, cal.avg_util.cpu);
    EXPECT_EQ(heap.avg_util.net, cal.avg_util.net);
    ASSERT_EQ(heap.jobs.size(), cal.jobs.size());
    for (std::size_t i = 0; i < heap.jobs.size(); ++i) {
      EXPECT_EQ(heap.jobs[i].job, cal.jobs[i].job);
      EXPECT_EQ(heap.jobs[i].submit_time, cal.jobs[i].submit_time);
      EXPECT_EQ(heap.jobs[i].finish_time, cal.jobs[i].finish_time);
    }
  }
}

}  // namespace
}  // namespace harmony::exp
