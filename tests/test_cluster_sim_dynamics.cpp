// Deeper integration tests of the ClusterSim scheduling dynamics: regrouping
// behaviour, error injection, fixed-α mode, feature flags, and the policy
// presets under stress shapes (bursty arrivals, tiny clusters, monster jobs).
#include <gtest/gtest.h>

#include <algorithm>

#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"

namespace harmony::exp {
namespace {

std::vector<WorkloadSpec> subset(std::size_t n, std::size_t stride = 7,
                                 std::size_t iters = 12) {
  auto catalog = make_catalog();
  std::vector<WorkloadSpec> out;
  for (std::size_t i = 0; i < catalog.size() && out.size() < n; i += stride)
    out.push_back(catalog[i]);
  for (auto& s : out) s.iterations = std::min(s.iterations, iters);
  return out;
}

TEST(ClusterSimDynamics, RegroupEventsHappenOnCompletions) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 24;
  auto workload = subset(12);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  // The initial schedule counts as one; completions add more.
  EXPECT_GE(summary.regroup_events, 1u);
  EXPECT_GT(summary.migration_overhead_sec, 0.0);
}

TEST(ClusterSimDynamics, RescheduleCooldownLimitsChurn) {
  auto workload = subset(14);
  ClusterSimConfig fast = ClusterSimConfig::harmony();
  fast.machines = 24;
  fast.reschedule_cooldown_sec = 0.0;
  ClusterSim sim_fast(fast, workload, batch_arrivals(workload.size()));
  const auto churny = sim_fast.run();

  ClusterSimConfig slow = ClusterSimConfig::harmony();
  slow.machines = 24;
  slow.reschedule_cooldown_sec = 36000.0;  // effectively one reschedule
  ClusterSim sim_slow(slow, workload, batch_arrivals(workload.size()));
  const auto calm = sim_slow.run();

  EXPECT_GE(churny.regroup_events, calm.regroup_events);
  EXPECT_EQ(churny.jobs.size(), calm.jobs.size());  // both still finish all
}

TEST(ClusterSimDynamics, ErrorInjectionIsSystematicPerJob) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 20;
  config.model_error_injection = 0.2;
  auto workload = subset(10);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  EXPECT_EQ(summary.jobs.size(), 10u);  // wrong profiles, still completes
}

TEST(ClusterSimDynamics, FixedAlphaDisablesHillClimb) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.grouping = GroupingPolicy::kOneGroup;
  config.machines = 16;
  config.fixed_alpha = 0.4;
  auto workload = subset(6);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  // No controller samples recorded in fixed mode.
  const auto stats = sim.alpha_stats();
  EXPECT_DOUBLE_EQ(stats.mean, 0.0);  // alpha_samples_ only feeds from the climb
}

TEST(ClusterSimDynamics, BurstyArrivalsStillComplete) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 20;
  auto workload = subset(12);
  const auto arrivals = trace_arrivals(workload.size(), 120.0, 5);
  ClusterSim sim(config, workload, arrivals);
  const auto summary = sim.run();
  EXPECT_EQ(summary.jobs.size(), 12u);
  for (const auto& j : summary.jobs) EXPECT_GE(j.submit_time, 0.0);
}

TEST(ClusterSimDynamics, TinyClusterSerializesWork) {
  // 3 machines for 6 jobs: heavy queueing, but everything must finish and
  // machine accounting must never go negative (create_group throws if so).
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 3;
  auto workload = subset(6);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  EXPECT_EQ(summary.jobs.size(), 6u);
}

TEST(ClusterSimDynamics, MonsterJobDoesNotStarveOthers) {
  auto workload = subset(6);
  // Make job 0 a monster: 20x the compute of everyone else.
  workload[0].cpu_work *= 20.0;
  workload[0].iterations = 12;
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 20;
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  ASSERT_EQ(summary.jobs.size(), 6u);
  // Small jobs must not be dragged far past the monster's completion (the
  // scheduler may legitimately give the monster a huge DoP and finish it
  // early; what we forbid is the job-bound case of Fig. 8b).
  double monster_finish = 0.0;
  SampleSet other_finishes;
  for (const auto& j : summary.jobs) {
    if (j.job == workload[0].id)
      monster_finish = j.finish_time;
    else
      other_finishes.add(j.finish_time);
  }
  EXPECT_LT(other_finishes.quantile(0.5), monster_finish * 1.5);
}

TEST(ClusterSimDynamics, NaivePackOccupancyControlsMachines) {
  auto workload = subset(9);
  ClusterSimConfig tight = ClusterSimConfig::naive(3);
  tight.machines = 60;
  tight.naive_pack_occupancy = 0.9;
  ClusterSim sim_tight(tight, workload, batch_arrivals(workload.size()));
  sim_tight.run();

  ClusterSimConfig loose = ClusterSimConfig::naive(3);
  loose.machines = 60;
  loose.naive_pack_occupancy = 0.5;
  ClusterSim sim_loose(loose, workload, batch_arrivals(workload.size()));
  sim_loose.run();

  // Looser occupancy target => more machines per group on average.
  EXPECT_GE(sim_loose.group_dop_samples().mean(), sim_tight.group_dop_samples().mean());
}

TEST(ClusterSimDynamics, UtilizationTimelineMonotoneTimestamps) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 16;
  auto workload = subset(8);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  const auto& times = sim.timeline().times();
  for (std::size_t i = 1; i < times.size(); ++i) EXPECT_GT(times[i], times[i - 1]);
}

TEST(ClusterSimDynamics, DebugDumpListsEverything) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 12;
  auto workload = subset(5);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  const std::string dump = sim.debug_dump();
  // ClusterSim renumbers jobs 0..n-1 internally.
  for (std::size_t i = 0; i < workload.size(); ++i)
    EXPECT_NE(dump.find("job " + std::to_string(i)), std::string::npos);
  EXPECT_NE(dump.find("finished"), std::string::npos);
}

TEST(ClusterSimDynamics, SpillOffUsesFallbackIsolatedGroups) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.spill_enabled = false;
  config.machines = 40;
  auto workload = subset(8);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  const auto summary = sim.run();
  EXPECT_EQ(summary.jobs.size(), 8u);  // memory guard must not deadlock
}

TEST(ClusterSimDynamics, SchedulerWallTimeIsTracked) {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 20;
  auto workload = subset(10);
  ClusterSim sim(config, workload, batch_arrivals(workload.size()));
  sim.run();
  EXPECT_GT(sim.sched_invocations(), 0u);
  EXPECT_GE(sim.total_sched_seconds(), 0.0);
  EXPECT_LT(sim.total_sched_seconds(), 5.0);  // §V-F: scheduling stays cheap
}

}  // namespace
}  // namespace harmony::exp
