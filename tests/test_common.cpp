#include <gtest/gtest.h>

#include <cmath>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace harmony {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MeanAndVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, b, all;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.normal(3.0, 2.0);
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(MovingAverage, FirstSampleSetsValue) {
  MovingAverage ma(0.5);
  EXPECT_FALSE(ma.initialized());
  ma.add(10.0);
  EXPECT_TRUE(ma.initialized());
  EXPECT_DOUBLE_EQ(ma.value(), 10.0);
}

TEST(MovingAverage, ExponentialUpdate) {
  MovingAverage ma(0.5);
  ma.add(10.0);
  ma.add(20.0);
  EXPECT_DOUBLE_EQ(ma.value(), 15.0);
  ma.add(15.0);
  EXPECT_DOUBLE_EQ(ma.value(), 15.0);
}

TEST(MovingAverage, ConvergesToConstantStream) {
  MovingAverage ma(0.3);
  ma.add(100.0);
  for (int i = 0; i < 60; ++i) ma.add(7.0);
  EXPECT_NEAR(ma.value(), 7.0, 1e-5);
}

TEST(MovingAverage, ResetClears) {
  MovingAverage ma(0.3);
  ma.add(5.0);
  ma.reset();
  EXPECT_FALSE(ma.initialized());
  EXPECT_EQ(ma.count(), 0u);
}

TEST(WindowedAverage, SlidesWindow) {
  WindowedAverage wa(3);
  wa.add(1.0);
  wa.add(2.0);
  wa.add(3.0);
  EXPECT_DOUBLE_EQ(wa.mean(), 2.0);
  wa.add(10.0);  // evicts 1.0
  EXPECT_DOUBLE_EQ(wa.mean(), 5.0);
  EXPECT_EQ(wa.size(), 3u);
}

TEST(RelativeError, Basics) {
  EXPECT_DOUBLE_EQ(relative_error(105.0, 100.0), 0.05);
  EXPECT_DOUBLE_EQ(relative_error(95.0, 100.0), 0.05);
  EXPECT_DOUBLE_EQ(relative_error(1.0, 0.0, 1.0), 1.0);  // eps guards /0
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIndependence) {
  Rng a(42);
  Rng child = a.fork();
  // Child stream differs from the parent's continued stream.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(1, 4);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 4);
    saw_lo |= v == 1;
    saw_hi |= v == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, LognormalNoiseMeanOne) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal_noise(0.1);
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(Rng, LognormalZeroCvIsExact) {
  Rng rng(11);
  EXPECT_DOUBLE_EQ(rng.lognormal_noise(0.0), 1.0);
}

TEST(Rng, ZipfSkewsLow) {
  Rng rng(13);
  std::size_t low = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (rng.zipf(1000, 1.2) < 10) ++low;
  // Zipf mass concentrates at small indices.
  EXPECT_GT(low, n / 4);
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

class QuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantileSweep, MatchesClosedFormOnLinearRamp) {
  SampleSet s;
  for (int i = 0; i <= 100; ++i) s.add(static_cast<double>(i));
  const double q = GetParam();
  EXPECT_NEAR(s.quantile(q), q * 100.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0));

TEST(SampleSet, CdfMonotone) {
  SampleSet s;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) s.add(rng.normal(0, 1));
  double prev = 0.0;
  for (double x = -3.0; x <= 3.0; x += 0.25) {
    const double f = s.cdf_at(x);
    EXPECT_GE(f, prev);
    prev = f;
  }
  EXPECT_DOUBLE_EQ(s.cdf_at(1e9), 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);  // clamps into first bin
  h.add(0.5);
  h.add(9.99);
  h.add(100.0);  // clamps into last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[4], 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_numeric_row("beta", {2.5, 3.0});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("2.500"), std::string::npos);
}

}  // namespace
}  // namespace harmony
