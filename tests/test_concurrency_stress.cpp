// Concurrency regression stress: hammers every threaded component — the
// subtask executor, the master-side synchronizer, the throttled NIC, the
// disk spill store, and LocalRuntime pause/resume — from many threads at
// once. These tests exist to give ThreadSanitizer (the `tsan` preset) real
// contention to chew on; under the plain build they double as functional
// stress tests of the same code paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <barrier>
#include <sstream>
#include <string>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "harmony/executor.h"
#include "harmony/runtime.h"
#include "harmony/spill_store.h"
#include "harmony/synchronizer.h"
#include "harmony/validate.h"
#include "ml/mlr.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ps/network.h"

namespace harmony::core {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// SubtaskExecutor: submit storm from many producer threads, then drain.

TEST(ConcurrencyStress, ExecutorSubmitStormThenDrain) {
  SubtaskExecutor::Params params;
  params.cpu_slots = 2;
  params.network_slots = 2;
  SubtaskExecutor exec(params);

  constexpr int kProducers = 8;
  constexpr int kPerProducer = 64;
  std::atomic<int> comp_runs{0};
  std::atomic<int> comm_runs{0};
  std::atomic<int> completions{0};

  std::vector<std::jthread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Subtask st;
        st.job = static_cast<JobId>(p);
        st.type = (i % 2 == 0) ? SubtaskType::kComp : SubtaskType::kComm;
        st.body = [&, type = st.type] {
          (type == SubtaskType::kComp ? comp_runs : comm_runs)
              .fetch_add(1, std::memory_order_relaxed);
        };
        st.on_complete = [&] { completions.fetch_add(1, std::memory_order_relaxed); };
        exec.submit(std::move(st));
      }
    });
  }
  producers.clear();  // join all producers
  exec.drain();

  constexpr int kTotal = kProducers * kPerProducer;
  EXPECT_EQ(comp_runs.load() + comm_runs.load(), kTotal);
  EXPECT_EQ(completions.load(), kTotal);
  EXPECT_EQ(exec.completed(SubtaskType::kComp) + exec.completed(SubtaskType::kComm),
            static_cast<std::uint64_t>(kTotal));
  EXPECT_EQ(exec.cpu_queue_length(), 0u);
  EXPECT_EQ(exec.net_queue_length(), 0u);
  EXPECT_EQ(exec.failures(), 0u);
}

TEST(ConcurrencyStress, ExecutorConcurrentFailuresAreCountedNotFatal) {
  SubtaskExecutor exec;
  std::atomic<int> handled{0};
  exec.set_failure_handler([&](JobId, const std::string&) {
    handled.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kThrowers = 32;
  constexpr int kWorkers = 32;
  std::vector<std::jthread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kThrowers / 4; ++i) {
        exec.submit({0, SubtaskType::kComp,
                     [] { throw std::runtime_error("injected"); }, {}});
      }
      for (int i = 0; i < kWorkers / 4; ++i) {
        exec.submit({1, SubtaskType::kComp, [] {}, {}});
      }
    });
  }
  producers.clear();
  exec.drain();
  EXPECT_EQ(exec.failures(), static_cast<std::uint64_t>(kThrowers));
  EXPECT_EQ(handled.load(), kThrowers);
  EXPECT_EQ(exec.completed(SubtaskType::kComp),
            static_cast<std::uint64_t>(kThrowers + kWorkers));
}

// ---------------------------------------------------------------------------
// SubtaskSynchronizer: all workers of a step arrive from distinct threads.

TEST(ConcurrencyStress, SynchronizerConcurrentArrivals) {
  SubtaskSynchronizer sync;
  constexpr std::size_t kWorkers = 8;
  constexpr int kSteps = 50;
  sync.register_job(1, kWorkers);

  std::atomic<int> steps_fired{0};
  for (int step = 0; step < kSteps; ++step) {
    sync.begin_step(1, [&] { steps_fired.fetch_add(1, std::memory_order_relaxed); });
    std::barrier gate(static_cast<std::ptrdiff_t>(kWorkers));
    std::vector<std::jthread> workers;
    for (std::size_t w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&] {
        gate.arrive_and_wait();  // maximize simultaneous arrive() calls
        sync.arrive(1);
      });
    }
    workers.clear();
    EXPECT_EQ(sync.pending(1), 0u);
  }
  EXPECT_EQ(steps_fired.load(), kSteps);
  sync.unregister_job(1);
}

TEST(ConcurrencyStress, SynchronizerIndependentJobsInParallel) {
  SubtaskSynchronizer sync;
  constexpr int kJobs = 6;
  constexpr std::size_t kWorkers = 4;
  constexpr int kSteps = 25;
  for (int j = 0; j < kJobs; ++j)
    sync.register_job(static_cast<JobId>(j), kWorkers);

  std::atomic<int> fired{0};
  std::vector<std::jthread> drivers;
  for (int j = 0; j < kJobs; ++j) {
    drivers.emplace_back([&, j] {
      const auto id = static_cast<JobId>(j);
      for (int step = 0; step < kSteps; ++step) {
        sync.begin_step(id, [&] { fired.fetch_add(1, std::memory_order_relaxed); });
        std::vector<std::jthread> workers;
        for (std::size_t w = 0; w < kWorkers; ++w)
          workers.emplace_back([&sync, id] { sync.arrive(id); });
      }
    });
  }
  drivers.clear();
  EXPECT_EQ(fired.load(), kJobs * kSteps);
}

// ---------------------------------------------------------------------------
// Nic: concurrent transfers serialize on the shared link.

TEST(ConcurrencyStress, NicConcurrentTransfersAccountAllBytes) {
  ps::Nic nic(1e9, "stress");  // fast enough that the test stays quick
  constexpr int kThreads = 8;
  constexpr int kTransfers = 40;
  constexpr std::size_t kBytes = 4096;

  std::barrier gate(kThreads);
  std::vector<std::jthread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&] {
      gate.arrive_and_wait();
      for (int i = 0; i < kTransfers; ++i) nic.transfer(kBytes);
    });
  }
  senders.clear();
  EXPECT_EQ(nic.bytes_transferred(),
            static_cast<std::uint64_t>(kThreads) * kTransfers * kBytes);
}

TEST(ConcurrencyStress, UnthrottledNicIsStillSafeUnderContention) {
  ps::Nic nic(0.0);  // throttling disabled: different fast path, same counters
  std::vector<std::jthread> senders;
  for (int t = 0; t < 8; ++t) {
    senders.emplace_back([&] {
      for (int i = 0; i < 200; ++i) nic.transfer(100);
    });
  }
  senders.clear();
  EXPECT_EQ(nic.bytes_transferred(), 8u * 200u * 100u);
}

// ---------------------------------------------------------------------------
// DiskSpillStore: spill/reload/remove/accessors from many threads at once.

TEST(ConcurrencyStress, SpillStoreParallelSpillReloadRemove) {
  // Pid-unique so concurrent ctest runs from different build trees coexist.
  const fs::path dir = fs::temp_directory_path() /
                       ("harmony-stress-spill-" + std::to_string(::getpid()));
  fs::remove_all(dir);
  {
    DiskSpillStore store(dir);
    constexpr int kJobs = 6;
    constexpr std::size_t kBlocks = 24;
    const std::vector<double> payload(128, 3.25);

    // Writers: each thread owns one job id, so the file I/O is disjoint and
    // only the shared ledger is contended — exactly the locking under test.
    std::vector<std::jthread> threads;
    for (int j = 0; j < kJobs; ++j) {
      threads.emplace_back([&, j] {
        const auto job = static_cast<JobId>(j);
        for (std::size_t b = 0; b < kBlocks; ++b) store.spill(job, b, payload);
        for (std::size_t b = 0; b < kBlocks; b += 2) {
          const auto back = store.reload(job, b);
          if (back != payload) ADD_FAILURE() << "reload corrupted job " << j;
        }
        for (std::size_t b = 1; b < kBlocks; b += 2) store.remove(job, b);
      });
    }
    // Readers: hammer the accessors while writers run.
    for (int r = 0; r < 2; ++r) {
      threads.emplace_back([&] {
        for (int i = 0; i < 400; ++i) {
          (void)store.blocks_on_disk();
          (void)store.bytes_on_disk();
          (void)store.contains(0, 0);
        }
      });
    }
    threads.clear();

    EXPECT_EQ(store.blocks_on_disk(), kJobs * kBlocks / 2);
    check::Validation v("stress");
    validate_spill_store(store, v);
    EXPECT_TRUE(v.ok()) << v.report().to_string();

    std::vector<std::jthread> cleaners;
    for (int j = 0; j < kJobs; ++j)
      cleaners.emplace_back([&, j] { store.remove_job(static_cast<JobId>(j)); });
    cleaners.clear();
    EXPECT_EQ(store.blocks_on_disk(), 0u);
    EXPECT_EQ(store.bytes_on_disk(), 0u);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Observability: reader-heavy snapshots raced against a write storm. The
// metrics registry and the tracer both promise that snapshotting is safe at
// any time; this gives tsan concurrent registration (first-use counter
// lookups), relaxed-atomic updates, per-thread trace buffer creation, and
// full-registry walks (snapshot_json / snapshot / write_chrome_trace), all
// overlapping.

TEST(ConcurrencyStress, ObsSnapshotWhileWriting) {
  obs::MetricsRegistry reg;  // local registry: the test owns its lifecycle
  auto& tracer = obs::Tracer::instance();
  const bool was_enabled = obs::Tracer::enabled();
  tracer.clear();
  tracer.set_enabled(true);

  constexpr int kWriters = 6;
  constexpr int kOps = 500;
  std::atomic<bool> stop{false};
  std::barrier gate(kWriters + 3);  // writers + 2 readers + the main thread

  std::vector<std::jthread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      gate.arrive_and_wait();
      // Deliberately re-look-up every iteration (instead of caching the
      // reference as production code does) so name->metric registration
      // races with the snapshot walks.
      for (int i = 0; i < kOps; ++i) {
        reg.counter("stress.ops").add();
        reg.counter("stress.writer." + std::to_string(w)).add();
        reg.gauge("stress.depth").set(static_cast<double>(i));
        reg.histogram("stress.latency_us", 0.0, 1000.0, 32)
            .observe(static_cast<double>((w * kOps + i) % 1000));
        obs::Tracer::instant(obs::EventKind::kSchedule, obs::ClockDomain::kWall,
                             static_cast<double>(i), static_cast<std::uint32_t>(w));
      }
    });
  }
  // Two readers snapshot continuously while the writers hammer away.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      gate.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string json = reg.snapshot_json();
        ASSERT_FALSE(json.empty());
        (void)tracer.size();
        const auto events = tracer.snapshot();
        std::ostringstream chrome;
        tracer.write_chrome_trace(chrome);
        ASSERT_NE(chrome.str().find("traceEvents"), std::string::npos);
        // A snapshot taken mid-storm sees some prefix of the writes, never
        // garbage: every event so far came from a writer thread.
        for (const auto& e : events) {
          ASSERT_EQ(e.kind, obs::EventKind::kSchedule);
          ASSERT_LT(e.job, static_cast<std::uint32_t>(kWriters));
        }
      }
    });
  }
  gate.arrive_and_wait();
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_relaxed);
  threads.clear();

  // Quiesced state is exact: nothing was lost or double-counted.
  EXPECT_EQ(reg.counter("stress.ops").value(),
            static_cast<std::uint64_t>(kWriters) * kOps);
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(reg.counter("stress.writer." + std::to_string(w)).value(),
              static_cast<std::uint64_t>(kOps));
  }
  auto& hist = reg.histogram("stress.latency_us", 0.0, 1000.0, 32);
  EXPECT_EQ(hist.count(), static_cast<std::size_t>(kWriters) * kOps);
  EXPECT_EQ(tracer.size(), static_cast<std::size_t>(kWriters) * kOps);
  EXPECT_EQ(tracer.snapshot().size(), static_cast<std::size_t>(kWriters) * kOps);

  tracer.set_enabled(was_enabled);
  tracer.clear();
}

// ---------------------------------------------------------------------------
// LocalRuntime: pause/resume raced against active iteration.

TEST(ConcurrencyStress, RuntimePauseResumeUnderLoad) {
  LocalRuntime::Params params;
  params.machines = 2;
  params.checkpoint_dir =
      (fs::temp_directory_path() /
       ("harmony-stress-ckpt-" + std::to_string(::getpid())))
          .string();
  LocalRuntime rt(params);

  std::vector<JobId> ids;
  for (int j = 0; j < 3; ++j) {
    auto data = std::make_shared<ml::DenseDataset>(
        ml::make_classification(120, 6, 3, 0.05, 900 + j));
    RuntimeJobConfig cfg;
    cfg.app = std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.5, 1e-5});
    cfg.max_epochs = 30;
    ids.push_back(rt.submit(cfg));
  }

  // While the runtime crunches all three jobs, repeatedly pause and resume
  // the first one from an outside thread.
  std::jthread meddler([&] {
    for (int round = 0; round < 3; ++round) {
      rt.pause(ids[0]);  // no-op once the job has finished
      try {
        rt.resume(ids[0]);
      } catch (const std::logic_error&) {
        break;  // the job finished before this round's pause landed
      }
    }
  });
  rt.run();
  meddler.join();
  rt.wait_idle();

  for (const JobId id : ids) {
    const RuntimeJobResult& r = rt.result(id);
    EXPECT_FALSE(r.failed) << r.failure_message;
    EXPECT_EQ(r.epochs, 30u);
  }
  fs::remove_all(params.checkpoint_dir);
}

}  // namespace
}  // namespace harmony::core
