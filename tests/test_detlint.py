#!/usr/bin/env python3
"""Self-test for tools/detlint.py.

Two layers:

  * the checked-in corpus under tests/detlint_fixtures/ — every rule family
    has a `bad/` tree that must produce findings of exactly that family and a
    `good/` tree exercising the sanctioned alternatives (sorted_view,
    stable-id comparators, NSDMI / ctor coverage, seeded engines, justified
    escapes) that must come back clean;
  * synthetic trees materialized in a tempdir — include-closure resolution,
    the facts cache, the step-summary table, and the guarantee that deleting
    a real escape comment from the checkout turns the gate red.

Registered in ctest as `test_detlint`. Run directly:
python3 tests/test_detlint.py
"""

import os
import shutil
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DETLINT = os.path.join(REPO, "tools", "detlint.py")
FIXTURES = os.path.join(REPO, "tests", "detlint_fixtures")

FAMILIES = {
    "unordered_iteration": "unordered-iteration",
    "pointer_order": "pointer-order",
    "uninit_member": "uninit-member",
    "unseeded_random": "unseeded-random",
}


def run_detlint(root, extra_args=(), extra_env=None):
    env = dict(os.environ)
    env.pop("GITHUB_STEP_SUMMARY", None)
    if extra_env:
        env.update(extra_env)
    proc = subprocess.run(
        [sys.executable, DETLINT, "--root", root, *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    return proc.returncode, proc.stdout


def run_on_tree(tree, **kwargs):
    """Materializes {relpath: content} in a tempdir and analyzes it."""
    with tempfile.TemporaryDirectory(prefix="detlint_selftest_") as root:
        for rel, content in tree.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        return run_detlint(root, **kwargs)


class FixtureCorpusTest(unittest.TestCase):
    """Every rule family: the bad tree fails with only its own rule, the good
    tree is clean."""

    def test_bad_fixtures_fail_with_their_rule(self):
        for family, rule in FAMILIES.items():
            with self.subTest(family=family):
                rc, out = run_detlint(os.path.join(FIXTURES, family, "bad"))
                self.assertEqual(rc, 1, f"{family}/bad must fail:\n{out}")
                self.assertIn(f"[{rule}]", out, out)
                for other in set(FAMILIES.values()) - {rule}:
                    self.assertNotIn(f"[{other}]", out,
                                     f"{family}/bad leaked rule {other}:\n{out}")

    def test_good_fixtures_are_clean(self):
        for family in FAMILIES:
            with self.subTest(family=family):
                rc, out = run_detlint(os.path.join(FIXTURES, family, "good"))
                self.assertEqual(rc, 0, f"{family}/good must pass:\n{out}")
                self.assertIn("detlint: clean", out, out)

    def test_bad_unordered_reports_all_three_shapes(self):
        # range-for over a map, range-for over a set, iterator walk.
        rc, out = run_detlint(os.path.join(FIXTURES, "unordered_iteration", "bad"))
        self.assertEqual(rc, 1)
        self.assertIn("range-for over unordered container 'counts_'", out, out)
        self.assertIn("range-for over unordered container 'ids_'", out, out)
        self.assertIn("iterator walk over unordered container 'counts_'", out, out)


class SyntheticTreeTest(unittest.TestCase):
    def test_member_declared_in_header_is_resolved_through_includes(self):
        # The loop lives in a .cpp, the unordered member two includes away.
        rc, out = run_on_tree({
            "src/sim/state.h": "#pragma once\n#include <unordered_map>\n"
                               "struct State { std::unordered_map<int, double> load_; };\n",
            "src/sim/mid.h": '#pragma once\n#include "sim/state.h"\n',
            "src/sim/use.cpp": '#include "sim/mid.h"\n'
                               "double f(const State& s) {\n"
                               "  double t = 0.0;\n"
                               "  for (const auto& [k, v] : s.load_) t += v;\n"
                               "  return t;\n"
                               "}\n"})
        self.assertEqual(rc, 1, out)
        self.assertIn("[unordered-iteration]", out, out)
        self.assertIn("use.cpp:4", out, out)

    def test_ordered_map_alias_is_not_flagged(self):
        rc, out = run_on_tree({
            "src/sim/tally.cpp":
                "#include \"common/sorted_view.h\"\n"
                "struct T { harmony::common::ordered_map<int, double> m_; };\n"
                "double f(const T& t) {\n"
                "  double s = 0.0;\n"
                "  for (const auto& [k, v] : t.m_) s += v;\n"
                "  return s;\n"
                "}\n"})
        self.assertEqual(rc, 0, out)

    def test_escape_requires_matching_name(self):
        # A pointer-order escape does not cover an unordered-iteration site.
        rc, out = run_on_tree({
            "src/sim/wrong.cpp":
                "#include <unordered_map>\n"
                "std::unordered_map<int, int> m_;\n"
                "int f() {\n"
                "  int s = 0;\n"
                "  // detlint: pointer-order(wrong escape name for this site)\n"
                "  for (const auto& [k, v] : m_) s += v;\n"
                "  return s;\n"
                "}\n"})
        self.assertEqual(rc, 1, out)
        self.assertIn("[unordered-iteration]", out, out)

    def test_facts_cache_round_trip(self):
        tree = {"src/sim/r.cpp": "int f() { return rand(); }\n"}
        with tempfile.TemporaryDirectory(prefix="detlint_selftest_") as root:
            for rel, content in tree.items():
                path = os.path.join(root, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
            cache = os.path.join(root, "cache.json")
            rc1, out1 = run_detlint(root, extra_args=("--cache", cache))
            self.assertTrue(os.path.isfile(cache), "cache file must be written")
            rc2, out2 = run_detlint(root, extra_args=("--cache", cache))
            self.assertEqual((rc1, rc2), (1, 1))
            self.assertIn("(0 cache hits)", out1, out1)
            self.assertIn("(1 cache hits)", out2, out2)
            # Warm and cold runs must report the identical finding.
            self.assertEqual([l for l in out1.splitlines() if "[unseeded-random]" in l],
                             [l for l in out2.splitlines() if "[unseeded-random]" in l])

    def test_github_step_summary_table(self):
        with tempfile.NamedTemporaryFile("r", suffix=".md", delete=False) as f:
            summary_path = f.name
        try:
            run_on_tree({"src/sim/r.cpp": "int f() { return rand(); }\n"},
                        extra_env={"GITHUB_STEP_SUMMARY": summary_path})
            with open(summary_path, encoding="utf-8") as s:
                summary = s.read()
            self.assertIn("### Detlint", summary, summary)
            self.assertIn("| `unseeded-random` | 1 |", summary, summary)
            self.assertIn("| **total** | **1** |", summary, summary)
        finally:
            os.unlink(summary_path)


class RealCheckoutTest(unittest.TestCase):
    def test_real_checkout_is_clean(self):
        rc, out = run_detlint(REPO)
        self.assertEqual(rc, 0, f"detlint must stay clean on the checkout:\n{out}")

    def test_deleting_a_real_escape_comment_fails_the_gate(self):
        # The destructor walk in spill_store.cpp is justified by an escape
        # comment; stripping it from a copy of the tree must turn the gate
        # red at exactly that site. This pins the acceptance criterion that
        # escapes are load-bearing, not decorative.
        victim_rel = os.path.join("src", "harmony", "spill_store.cpp")
        with open(os.path.join(REPO, victim_rel), encoding="utf-8") as f:
            original = f.read()
        marker = "// detlint: sorted-iteration("
        self.assertIn(marker, original,
                      "expected a real escape comment in spill_store.cpp")
        with tempfile.TemporaryDirectory(prefix="detlint_selftest_") as root:
            shutil.copytree(os.path.join(REPO, "src"), os.path.join(root, "src"))
            stripped = "\n".join(l for l in original.splitlines()
                                 if marker not in l) + "\n"
            with open(os.path.join(root, victim_rel), "w", encoding="utf-8") as f:
                f.write(stripped)
            rc, out = run_detlint(root)
        self.assertEqual(rc, 1, f"stripping the escape must fail the gate:\n{out}")
        self.assertIn("spill_store.cpp", out, out)
        self.assertIn("[unordered-iteration]", out, out)


if __name__ == "__main__":
    unittest.main(verbosity=2)
