#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/sync.h"
#include "harmony/executor.h"
#include "harmony/synchronizer.h"

namespace harmony::core {
namespace {

using namespace std::chrono_literals;

Subtask make_task(JobId job, SubtaskType type, std::function<void()> body) {
  Subtask st;
  st.job = job;
  st.type = type;
  st.body = std::move(body);
  return st;
}

TEST(SubtaskExecutor, RunsSubmittedWork) {
  SubtaskExecutor exec;
  std::atomic<int> ran{0};
  for (int i = 0; i < 10; ++i)
    exec.submit(make_task(0, SubtaskType::kComp, [&] { ++ran; }));
  exec.drain();
  EXPECT_EQ(ran.load(), 10);
  EXPECT_EQ(exec.completed(SubtaskType::kComp), 10u);
}

TEST(SubtaskExecutor, CpuLaneRunsOneAtATime) {
  SubtaskExecutor exec;  // cpu_slots = 1
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    exec.submit(make_task(0, SubtaskType::kComp, [&] {
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(2ms);
      --concurrent;
    }));
  }
  exec.drain();
  EXPECT_EQ(peak.load(), 1);
}

TEST(SubtaskExecutor, NetworkLaneAllowsPrimaryPlusSecondary) {
  SubtaskExecutor exec;  // network_slots = 2
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    exec.submit(make_task(0, SubtaskType::kComm, [&] {
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(5ms);
      --concurrent;
    }));
  }
  exec.drain();
  EXPECT_LE(peak.load(), 2);
  EXPECT_GE(peak.load(), 2);  // with 8 tasks of 5 ms both slots engage
}

TEST(SubtaskExecutor, LanesRunConcurrently) {
  SubtaskExecutor exec;
  std::atomic<bool> cpu_started{false};
  std::atomic<bool> net_observed_cpu{false};
  exec.submit(make_task(0, SubtaskType::kComp, [&] {
    cpu_started = true;
    std::this_thread::sleep_for(20ms);
  }));
  std::this_thread::sleep_for(5ms);
  exec.submit(make_task(1, SubtaskType::kComm, [&] {
    if (cpu_started.load()) net_observed_cpu = true;
  }));
  exec.drain();
  // The COMM subtask ran while the long COMP subtask was still sleeping.
  EXPECT_TRUE(net_observed_cpu.load());
}

TEST(SubtaskExecutor, OnCompleteFiresAfterBody) {
  SubtaskExecutor exec;
  std::atomic<int> order{0};
  int body_at = 0, complete_at = 0;
  Subtask st = make_task(0, SubtaskType::kComp, nullptr);
  st.body = [&] { body_at = ++order; };
  st.on_complete = [&] { complete_at = ++order; };
  exec.submit(std::move(st));
  exec.drain();
  EXPECT_EQ(body_at, 1);
  EXPECT_EQ(complete_at, 2);
}

TEST(SubtaskExecutor, FifoOrderWithinCpuLane) {
  SubtaskExecutor exec;
  std::vector<int> order;
  common::Mutex mu;
  for (int i = 0; i < 20; ++i) {
    exec.submit(make_task(0, SubtaskType::kComp, [&, i] {
      common::MutexLock lock(mu);
      order.push_back(i);
    }));
  }
  exec.drain();
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[i], i);
}

TEST(SubtaskExecutor, NaiveWidthAllowsCpuConcurrency) {
  SubtaskExecutor::Params params;
  params.cpu_slots = 4;
  SubtaskExecutor exec(params);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 12; ++i) {
    exec.submit(make_task(0, SubtaskType::kComp, [&] {
      const int now = ++concurrent;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(5ms);
      --concurrent;
    }));
  }
  exec.drain();
  EXPECT_GT(peak.load(), 1);
}

// ---------------------------------------------------------------------------

TEST(SubtaskSynchronizer, FiresWhenAllArrive) {
  SubtaskSynchronizer sync;
  sync.register_job(1, 3);
  std::atomic<int> fired{0};
  sync.begin_step(1, [&] { ++fired; });
  sync.arrive(1);
  sync.arrive(1);
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(sync.pending(1), 1u);
  sync.arrive(1);
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(sync.pending(1), 0u);
}

TEST(SubtaskSynchronizer, SequentialSteps) {
  SubtaskSynchronizer sync;
  sync.register_job(7, 2);
  int steps = 0;
  sync.begin_step(7, [&] { ++steps; });
  sync.arrive(7);
  sync.arrive(7);
  sync.begin_step(7, [&] { ++steps; });
  sync.arrive(7);
  sync.arrive(7);
  EXPECT_EQ(steps, 2);
}

TEST(SubtaskSynchronizer, ContinuationCanBeginNextStep) {
  SubtaskSynchronizer sync;
  sync.register_job(2, 1);
  int chain = 0;
  std::function<void()> advance = [&] {
    if (++chain < 5) {
      sync.begin_step(2, advance);
      sync.arrive(2);
    }
  };
  sync.begin_step(2, advance);
  sync.arrive(2);
  EXPECT_EQ(chain, 5);
}

TEST(SubtaskSynchronizer, ErrorsOnMisuse) {
  SubtaskSynchronizer sync;
  EXPECT_THROW(sync.begin_step(9, [] {}), std::logic_error);
  EXPECT_THROW(sync.arrive(9), std::logic_error);
  sync.register_job(9, 2);
  EXPECT_THROW(sync.arrive(9), std::logic_error);  // no step in flight
  sync.begin_step(9, [] {});
  EXPECT_THROW(sync.begin_step(9, [] {}), std::logic_error);  // still in flight
  EXPECT_THROW(sync.register_job(0, 0), std::invalid_argument);
}

TEST(SubtaskSynchronizer, UnregisterForgets) {
  SubtaskSynchronizer sync;
  sync.register_job(4, 1);
  sync.unregister_job(4);
  EXPECT_THROW(sync.begin_step(4, [] {}), std::logic_error);
  EXPECT_EQ(sync.pending(4), 0u);
}

TEST(SubtaskSynchronizer, ConcurrentArrivalsFromThreads) {
  SubtaskSynchronizer sync;
  const std::size_t workers = 8;
  sync.register_job(5, workers);
  std::atomic<int> fired{0};
  for (int round = 0; round < 20; ++round) {
    sync.begin_step(5, [&] { ++fired; });
    std::vector<std::thread> threads;
    for (std::size_t w = 0; w < workers; ++w)
      threads.emplace_back([&] { sync.arrive(5); });
    for (auto& t : threads) t.join();
  }
  EXPECT_EQ(fired.load(), 20);
}

TEST(ToStringHelpers, Cover) {
  EXPECT_STREQ(to_string(SubtaskType::kComp), "COMP");
  EXPECT_STREQ(to_string(SubtaskType::kComm), "COMM");
  EXPECT_STREQ(to_string(JobState::kWaiting), "waiting");
  EXPECT_STREQ(to_string(JobState::kFinished), "finished");
}

}  // namespace
}  // namespace harmony::core
