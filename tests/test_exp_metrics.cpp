#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "exp/metrics.h"

namespace harmony::exp {
namespace {

std::size_t count_rows(const std::string& tsv) {
  std::size_t rows = 0;
  for (char c : tsv) rows += c == '\n';
  return rows;
}

TEST(UtilizationTimeline, EmptyAveragesToZero) {
  UtilizationTimeline tl;
  EXPECT_DOUBLE_EQ(tl.average().cpu, 0.0);
  EXPECT_DOUBLE_EQ(tl.average().net, 0.0);
  EXPECT_TRUE(tl.tsv().empty());
}

TEST(UtilizationTimeline, AverageIsSampleMean) {
  UtilizationTimeline tl(60.0);
  tl.add_sample(60.0, {0.2, 0.8});
  tl.add_sample(120.0, {0.4, 0.6});
  tl.add_sample(180.0, {0.6, 0.4});
  EXPECT_DOUBLE_EQ(tl.average().cpu, 0.4);
  EXPECT_DOUBLE_EQ(tl.average().net, 0.6);
  EXPECT_DOUBLE_EQ(tl.window(), 60.0);
  EXPECT_EQ(tl.times().size(), 3u);
}

TEST(UtilizationTimeline, AverageUntilExcludesTail) {
  UtilizationTimeline tl;
  tl.add_sample(60.0, {1.0, 1.0});
  tl.add_sample(120.0, {1.0, 1.0});
  tl.add_sample(180.0, {0.1, 0.1});  // the low-load tail
  const auto head = tl.average_until(120.0);
  EXPECT_DOUBLE_EQ(head.cpu, 1.0);
  EXPECT_DOUBLE_EQ(head.net, 1.0);
  // A horizon before every sample yields the empty average.
  EXPECT_DOUBLE_EQ(tl.average_until(30.0).cpu, 0.0);
}

TEST(UtilizationTimeline, TsvDownsamplesToRowBudget) {
  UtilizationTimeline tl;
  for (int i = 0; i < 100; ++i)
    tl.add_sample(60.0 * (i + 1), {0.5, 0.5});
  const std::string full = tl.tsv(200);
  EXPECT_EQ(count_rows(full), 100u);
  const std::string sampled = tl.tsv(10);
  const std::size_t rows = count_rows(sampled);
  EXPECT_LE(rows, 10u);
  EXPECT_GE(rows, 5u);  // stride keeps coverage of the whole span
  EXPECT_TRUE(tl.tsv(0).empty());
  // Rows are tab-separated time/cpu/net triples.
  std::istringstream first_row(sampled.substr(0, sampled.find('\n')));
  double t = 0.0, cpu = 0.0, net = 0.0;
  first_row >> t >> cpu >> net;
  EXPECT_DOUBLE_EQ(t, 60.0);
  EXPECT_DOUBLE_EQ(cpu, 0.5);
  EXPECT_DOUBLE_EQ(net, 0.5);
}

TEST(RunSummary, EmptyAggregates) {
  RunSummary s;
  EXPECT_DOUBLE_EQ(s.mean_jct(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_finish(), 0.0);
}

TEST(RunSummary, MeanJctAveragesPerJobLatency) {
  RunSummary s;
  s.jobs.push_back({0, 0.0, 100.0});
  s.jobs.push_back({1, 50.0, 250.0});
  s.jobs.push_back({2, 100.0, 400.0});
  EXPECT_DOUBLE_EQ(s.jobs[1].jct(), 200.0);
  EXPECT_DOUBLE_EQ(s.mean_jct(), (100.0 + 200.0 + 300.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.max_finish(), 400.0);
}

TEST(RunSummary, MaxFinishIgnoresSubmitOrder) {
  RunSummary s;
  s.jobs.push_back({0, 10.0, 500.0});
  s.jobs.push_back({1, 0.0, 300.0});
  EXPECT_DOUBLE_EQ(s.max_finish(), 500.0);
}

}  // namespace
}  // namespace harmony::exp
