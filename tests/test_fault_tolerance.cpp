#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "harmony/executor.h"
#include "harmony/runtime.h"
#include "ml/mlr.h"

namespace harmony::core {
namespace {

std::shared_ptr<ml::MlrApp> small_mlr(std::uint64_t seed) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(120, 6, 3, 0.05, seed));
  return std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.4, 1e-5});
}

LocalRuntime::Params test_params(std::size_t machines) {
  LocalRuntime::Params p;
  p.machines = machines;
  p.checkpoint_dir =
      (std::filesystem::temp_directory_path() / "harmony-ft-test-ckpt").string();
  return p;
}

TEST(ExecutorFaults, ThrowingBodyIsCaughtAndCounted) {
  SubtaskExecutor exec;
  JobId failed_job = kNoJob;
  std::string message;
  exec.set_failure_handler([&](JobId job, const std::string& what) {
    failed_job = job;
    message = what;
  });

  Subtask bad;
  bad.job = 7;
  bad.type = SubtaskType::kComp;
  bad.body = [] { throw std::runtime_error("boom"); };
  std::atomic<bool> completed{false};
  bad.on_complete = [&] { completed = true; };
  exec.submit(std::move(bad));
  exec.drain();

  EXPECT_EQ(exec.failures(), 1u);
  EXPECT_EQ(failed_job, 7u);
  EXPECT_EQ(message, "boom");
  // The completion callback still ran, so barriers do not hang.
  EXPECT_TRUE(completed.load());
}

TEST(ExecutorFaults, OtherWorkContinuesAfterFailure) {
  SubtaskExecutor exec;
  exec.set_failure_handler([](JobId, const std::string&) {});
  std::atomic<int> good{0};
  for (int i = 0; i < 5; ++i) {
    Subtask st;
    st.job = 0;
    st.type = SubtaskType::kComp;
    st.body = i == 2 ? std::function<void()>([] { throw std::logic_error("x"); })
                     : std::function<void()>([&good] { ++good; });
    exec.submit(std::move(st));
  }
  exec.drain();
  EXPECT_EQ(good.load(), 4);
  EXPECT_EQ(exec.failures(), 1u);
}

TEST(FaultTolerance, JobFailsWithoutRestartBudget) {
  LocalRuntime rt(test_params(2));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(11);
  cfg.max_epochs = 10;
  cfg.max_restarts = 0;
  const JobId id = rt.submit(cfg);
  rt.inject_failure(id);
  rt.run();
  const auto& r = rt.result(id);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.restarts, 0u);
  EXPECT_LT(r.epochs, 10u);
  EXPECT_NE(r.failure_message.find("injected"), std::string::npos);
}

TEST(FaultTolerance, RestartsFromCheckpointAndFinishes) {
  LocalRuntime rt(test_params(2));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(13);
  cfg.max_epochs = 12;
  cfg.max_restarts = 2;
  const JobId id = rt.submit(cfg);
  rt.inject_failure(id);  // fails on the very first COMP, before a checkpoint
  rt.run();
  const auto& r = rt.result(id);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.restarts, 1u);
  EXPECT_EQ(r.epochs, 12u);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(FaultTolerance, FailureDoesNotAffectCoLocatedJobs) {
  LocalRuntime rt(test_params(2));
  RuntimeJobConfig doomed;
  doomed.app = small_mlr(17);
  doomed.max_epochs = 10;
  const JobId doomed_id = rt.submit(doomed);

  RuntimeJobConfig healthy;
  healthy.app = small_mlr(19);
  healthy.max_epochs = 10;
  const JobId healthy_id = rt.submit(healthy);

  rt.inject_failure(doomed_id);
  rt.run();
  EXPECT_TRUE(rt.result(doomed_id).failed);
  EXPECT_FALSE(rt.result(healthy_id).failed);
  EXPECT_EQ(rt.result(healthy_id).epochs, 10u);
}

TEST(FaultTolerance, RestartBudgetExhaustedEventuallyFails) {
  LocalRuntime rt(test_params(2));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(23);
  cfg.max_epochs = 400;  // long enough that we can inject twice mid-run
  cfg.max_restarts = 1;
  const JobId id = rt.submit(cfg);
  rt.inject_failure(id);
  std::thread runner([&] { rt.run(); });
  // Wait for the first restart, then inject again to exhaust the budget.
  // progress() is the thread-safe poll; result() is only stable once the
  // job is quiescent.
  while (rt.progress(id).restarts < 1 && !rt.progress(id).failed)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  rt.inject_failure(id);
  runner.join();
  rt.wait_idle();
  const auto& r = rt.result(id);
  // Either the second failure landed (failed) or the job finished before the
  // injection could bite; both are consistent outcomes of this race, but the
  // restart must have been used.
  EXPECT_GE(r.restarts, 1u);
  if (r.failed) {
    EXPECT_EQ(r.restarts, 1u);
  }
}

TEST(FaultTolerance, CheckpointedRestartPreservesProgress) {
  LocalRuntime rt(test_params(2));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(29);
  cfg.max_epochs = 30;
  cfg.max_restarts = 3;
  const JobId id = rt.submit(cfg);
  std::thread runner([&] { rt.run(); });
  // Let it checkpoint a few epochs, then fail it.
  while (rt.progress(id).epochs < 5 && !rt.progress(id).failed)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  rt.inject_failure(id);
  runner.join();
  rt.wait_idle();
  const auto& r = rt.result(id);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.epochs, 30u);
  // The loss curve still ends lower than it started (no catastrophic reset).
  EXPECT_LT(r.final_loss, r.epoch_losses.front());
}

}  // namespace
}  // namespace harmony::core
