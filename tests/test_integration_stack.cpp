// Cross-module integration tests: profiler->model->scheduler agreement on
// the real runtime, end-to-end checkpoint compatibility, spill-model
// consistency between the scheduler's predictions and the simulator's
// ground truth, and scheduler/regrouper interplay on catalog-shaped pools.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "exp/workload.h"
#include "harmony/checkpoint.h"
#include "harmony/regrouper.h"
#include "harmony/runtime.h"
#include "harmony/scheduler.h"
#include "harmony/spill_manager.h"
#include "ml/lasso.h"
#include "ml/mlr.h"

namespace harmony {
namespace {

using core::JobProfile;
using core::SchedJob;

TEST(IntegrationStack, MeasuredProfilesFeedTheScheduler) {
  // Train two jobs with very different shapes on the real runtime, feed the
  // *measured* profiles into Algorithm 1, and check the scheduler recognizes
  // the bigger job as the more compute-hungry one.
  core::LocalRuntime::Params params;
  params.machines = 2;
  params.nic_bytes_per_sec = 400e6;
  core::LocalRuntime rt(params);

  core::RuntimeJobConfig big;
  big.app = std::make_shared<ml::MlrApp>(
      std::make_shared<ml::DenseDataset>(ml::make_classification(3000, 48, 8, 0.1, 1)));
  big.max_epochs = 6;
  const auto big_id = rt.submit(big);

  core::RuntimeJobConfig small;
  small.app = std::make_shared<ml::LassoApp>(
      std::make_shared<ml::DenseDataset>(ml::make_regression(300, 16, 4, 0.05, 2)));
  small.max_epochs = 6;
  const auto small_id = rt.submit(small);

  rt.run();
  const auto big_prof = rt.profiler().profile(big_id);
  const auto small_prof = rt.profiler().profile(small_id);
  ASSERT_TRUE(big_prof && small_prof);
  EXPECT_GT(big_prof->cpu_work, small_prof->cpu_work);

  core::Scheduler scheduler;
  std::vector<SchedJob> pool{{big_id, *big_prof}, {small_id, *small_prof}};
  const auto decision = scheduler.schedule(pool, 8);
  EXPECT_FALSE(decision.empty());
  EXPECT_LE(decision.predicted_util.cpu, 1.0 + 1e-9);
}

TEST(IntegrationStack, RuntimeCheckpointReadableByStore) {
  // The runtime's pause checkpoint is a plain CheckpointStore file; an
  // external reader (e.g. a migration target) can load it directly.
  const auto dir = std::filesystem::temp_directory_path() / "harmony-integ-ckpt";
  std::filesystem::remove_all(dir);
  core::LocalRuntime::Params params;
  params.machines = 2;
  params.checkpoint_dir = dir.string();
  core::LocalRuntime rt(params);

  core::RuntimeJobConfig cfg;
  cfg.app = std::make_shared<ml::MlrApp>(
      std::make_shared<ml::DenseDataset>(ml::make_classification(500, 10, 4, 0.1, 3)));
  cfg.max_epochs = 200;
  const auto id = rt.submit(cfg);
  std::thread driver([&] { rt.run(); });
  rt.pause(id);

  core::CheckpointStore store(dir);
  ASSERT_TRUE(store.exists(id));
  const auto model = store.load(id);
  EXPECT_EQ(model.size(), cfg.app->param_dim());

  rt.resume(id);
  driver.join();
  rt.wait_idle();
  EXPECT_EQ(rt.result(id).epochs, 200u);
}

TEST(IntegrationStack, CatalogProfilesDriveGroupingEndToEnd) {
  // The 80-job catalog through Algorithm 1: groups must mix the families
  // (complementary resource use), not segregate them.
  const auto catalog = exp::make_catalog();
  std::vector<SchedJob> pool;
  for (const auto& s : catalog) pool.push_back(s.sched_job());
  core::Scheduler scheduler;
  const auto decision = scheduler.schedule(pool, 100);
  ASSERT_GE(decision.groups.size(), 2u);

  // At least one group contains both a compute-heavy and a comm-heavy job.
  bool mixed = false;
  for (const auto& g : decision.groups) {
    bool has_comp = false, has_comm = false;
    for (auto id : g.jobs) {
      const double r = catalog[id].profile().comp_ratio(16);
      has_comp |= r > 0.55;
      has_comm |= r < 0.45;
    }
    mixed |= has_comp && has_comm;
  }
  EXPECT_TRUE(mixed);
}

TEST(IntegrationStack, RegrouperUsesSchedulerConsistently) {
  // A full arrival->finish cycle at the API level: schedule a pool, "finish"
  // a job, let the regrouper repair, and verify the repair references only
  // known jobs.
  core::Scheduler scheduler;
  core::Regrouper regrouper(scheduler);
  const auto catalog = exp::make_catalog();
  std::vector<SchedJob> pool;
  for (std::size_t i = 0; i < 12; ++i) pool.push_back(catalog[i * 6].sched_job());

  const auto decision = scheduler.schedule(pool, 48);
  ASSERT_FALSE(decision.empty());

  // Build the running view from the decision.
  std::vector<core::RunningGroup> groups;
  for (const auto& plan : decision.groups) {
    core::RunningGroup g;
    g.machines = plan.machines;
    for (auto id : plan.jobs)
      for (const auto& j : pool)
        if (j.id == id) g.jobs.push_back(j);
    groups.push_back(std::move(g));
  }
  // Idle pool: everything the decision left out.
  std::vector<SchedJob> idle;
  for (const auto& j : pool) {
    bool placed = false;
    for (const auto& g : groups)
      for (const auto& placed_job : g.jobs) placed |= placed_job.id == j.id;
    if (!placed) idle.push_back(j);
  }

  // Finish the first job of the first group.
  ASSERT_FALSE(groups[0].jobs.empty());
  const SchedJob finished = groups[0].jobs[0];
  groups[0].jobs.erase(groups[0].jobs.begin());
  const auto action = regrouper.on_job_finish(finished, 0, idle, groups, 0);

  if (action.kind == core::RegroupAction::Kind::kReplace) {
    for (const auto& r : action.replacements) {
      const bool known = std::any_of(idle.begin(), idle.end(),
                                     [&](const SchedJob& j) { return j.id == r.id; });
      EXPECT_TRUE(known);
    }
  } else if (action.kind == core::RegroupAction::Kind::kReschedule) {
    EXPECT_FALSE(action.decision.empty());
    for (std::size_t idx : action.groups_involved) EXPECT_LT(idx, groups.size());
  }
}

TEST(IntegrationStack, SpillPredictionMatchesWorkloadAccounting) {
  // WorkloadSpec::resident_bytes and SpillCostModel must agree (both feed
  // memory decisions; drift between them caused real OOM bugs during
  // development).
  const auto catalog = exp::make_catalog();
  core::SpillCostModel model;
  for (const auto& s : catalog) {
    for (double alpha : {0.0, 0.5, 1.0}) {
      const auto costs = model.costs(s.input_bytes(), s.model_bytes(), alpha, 16,
                                     cluster::MachineSpec{});
      const double expected =
          s.resident_bytes(16, alpha) + model.params().per_job_overhead_bytes;
      EXPECT_NEAR(costs.resident_bytes, expected, 1.0)
          << s.app << "/" << s.dataset << " alpha " << alpha;
    }
  }
}

}  // namespace
}  // namespace harmony
