#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "ml/linalg.h"

namespace harmony::ml {
namespace {

TEST(Linalg, DotProduct) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(dot(std::vector<double>{}, std::vector<double>{}), 0.0);
}

TEST(Linalg, AxpyAndScale) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (std::vector<double>{12.0, 24.0}));
  scale(0.5, y);
  EXPECT_EQ(y, (std::vector<double>{6.0, 12.0}));
}

TEST(Linalg, Norms) {
  const std::vector<double> v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(l2_norm_sq(v), 25.0);
  EXPECT_DOUBLE_EQ(l1_norm(v), 7.0);
}

TEST(Linalg, SoftmaxSumsToOneAndIsStable) {
  std::vector<double> logits{1.0, 2.0, 3.0};
  softmax_inplace(logits);
  EXPECT_NEAR(logits[0] + logits[1] + logits[2], 1.0, 1e-12);
  EXPECT_GT(logits[2], logits[1]);
  EXPECT_GT(logits[1], logits[0]);

  // Huge logits must not overflow (max-subtraction stability).
  std::vector<double> big{1000.0, 1001.0};
  softmax_inplace(big);
  EXPECT_TRUE(std::isfinite(big[0]));
  EXPECT_NEAR(big[0] + big[1], 1.0, 1e-12);
  EXPECT_GT(big[1], big[0]);
}

TEST(Linalg, SoftmaxEmptyIsNoop) {
  std::vector<double> empty;
  softmax_inplace(empty);  // must not crash
  EXPECT_TRUE(empty.empty());
}

TEST(Linalg, SparseDenseOps) {
  const SparseVector sparse{{0, 2.0}, {3, -1.0}};
  const std::vector<double> dense{1.0, 1.0, 1.0, 4.0};
  EXPECT_DOUBLE_EQ(sparse_dense_dot(sparse, dense), 2.0 - 4.0);

  std::vector<double> acc(4, 0.0);
  sparse_axpy(3.0, sparse, acc);
  EXPECT_EQ(acc, (std::vector<double>{6.0, 0.0, 0.0, -3.0}));
}

TEST(Linalg, SoftThreshold) {
  EXPECT_DOUBLE_EQ(soft_threshold(5.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-5.0, 2.0), -3.0);
  EXPECT_DOUBLE_EQ(soft_threshold(1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-1.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(2.0, 2.0), 0.0);  // boundary
}

TEST(Linalg, RowViews) {
  std::vector<double> flat{1, 2, 3, 4, 5, 6};
  auto r1 = row(std::span<double>(flat), 1, 3);
  ASSERT_EQ(r1.size(), 3u);
  EXPECT_DOUBLE_EQ(r1[0], 4.0);
  r1[2] = 60.0;
  EXPECT_DOUBLE_EQ(flat[5], 60.0);
}

TEST(Logging, LevelsFilterOutput) {
  using namespace harmony::log;
  const Level old = level();
  set_level(Level::kError);
  EXPECT_FALSE(enabled(Level::kInfo));
  EXPECT_TRUE(enabled(Level::kError));
  set_level(Level::kDebug);
  EXPECT_TRUE(enabled(Level::kInfo));
  HLOG(kDebug) << "coverage line " << 42;  // must not crash
  set_level(old);
}

}  // namespace
}  // namespace harmony::ml
