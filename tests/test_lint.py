#!/usr/bin/env python3
"""Self-test for tools/lint.py.

Each lint rule is exercised both ways: a fixture tree that violates it (the
lint must report the rule and exit 1) and a minimal clean/escaped variant (the
lint must exit 0). Fixture trees are built in a tempdir and pointed at via
--root, so the test never depends on — or mutates — the real checkout.

Registered in ctest as `test_lint`; any exception or failed assert fails the
test. Run directly: python3 tests/test_lint.py
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "lint.py")

HEADER = "#pragma once\n"


def run_lint(tree, extra_env=None):
    """Materializes {relpath: content} in a tempdir and lints it."""
    with tempfile.TemporaryDirectory(prefix="lint_selftest_") as root:
        for rel, content in tree.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        env = dict(os.environ)
        env.pop("GITHUB_STEP_SUMMARY", None)
        if extra_env:
            env.update(extra_env)
        proc = subprocess.run(
            [sys.executable, LINT, "--root", root, "--no-clang-tidy"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
        return proc.returncode, proc.stdout


class LintSelfTest(unittest.TestCase):
    def assert_finding(self, tree, rule, fragment=None):
        rc, out = run_lint(tree)
        self.assertEqual(rc, 1, f"expected findings, got clean:\n{out}")
        self.assertIn(f"[{rule}]", out, out)
        if fragment:
            self.assertIn(fragment, out, out)

    def assert_clean(self, tree):
        rc, out = run_lint(tree)
        self.assertEqual(rc, 0, f"expected clean, got findings:\n{out}")
        self.assertIn("lint: clean", out, out)

    # --- lock-discipline --------------------------------------------------

    def test_raw_mutex_banned(self):
        self.assert_finding(
            {"src/harmony/queue.h": HEADER + "#include <mutex>\nstd::mutex mu;\n"},
            "lock-discipline", "common/sync.h")

    def test_raw_lock_holder_banned(self):
        self.assert_finding(
            {"src/obs/reg.cpp": "void f() { std::lock_guard<std::mutex> l(mu); }\n"},
            "lock-discipline")

    def test_raw_condvar_banned_in_tests_too(self):
        self.assert_finding(
            {"tests/test_x.cpp": "std::condition_variable cv;\n"},
            "lock-discipline")

    def test_raw_mutex_marker_escapes(self):
        self.assert_clean(
            {"src/harmony/queue.h":
             HEADER + "std::mutex mu;  // lint: allow-raw-mutex interop with pthread API\n"})

    def test_sync_header_is_exempt(self):
        self.assert_clean(
            {"src/common/sync.h":
             HEADER + "#include <mutex>\n#include <condition_variable>\n"
             "std::mutex raw;\nstd::condition_variable cv;\n"})

    def test_commented_mutex_not_flagged(self):
        self.assert_clean(
            {"src/harmony/queue.h": HEADER + "// used to be a std::mutex here\n"})

    # --- layering ---------------------------------------------------------

    def test_upward_dependency_banned(self):
        self.assert_finding(
            {"src/common/bad.h": HEADER + '#include "harmony/runtime.h"\n'},
            "layering", "common -> harmony")

    def test_obs_cannot_reach_ps(self):
        self.assert_finding(
            {"src/obs/peek.cpp": '#include "ps/server.h"\n'},
            "layering", "obs -> ps")

    def test_analysis_is_leaf(self):
        self.assert_finding(
            {"src/sim/engine.cpp": '#include "obs/analysis/report.h"\n'},
            "layering", "sim -> obs/analysis")

    def test_allowed_edges_pass(self):
        self.assert_clean({
            "src/harmony/sched.cpp":
                '#include "common/sync.h"\n#include "ps/server.h"\n',
            "src/obs/analysis/report.cpp": '#include "obs/trace.h"\n',
            "src/exp/run.cpp": '#include "baselines/fifo.h"\n',
        })

    def test_self_includes_always_allowed(self):
        self.assert_clean(
            {"src/common/a.cpp": '#include "common/b.h"\n',
             "src/common/b.h": HEADER})

    def test_unknown_module_must_register(self):
        self.assert_finding(
            {"src/newmod/a.cpp": '#include "common/b.h"\n'},
            "layering", "ALLOWED_DEPS")

    def test_tools_and_tests_exempt_from_layering(self):
        self.assert_clean(
            {"tools/probe.cpp": '#include "exp/cluster_sim.h"\n',
             "tests/test_y.cpp": '#include "obs/analysis/report.h"\n'})

    def test_svc_sits_above_exp(self):
        self.assert_clean(
            {"src/svc/service.cpp":
                '#include "exp/arrivals.h"\n#include "harmony/incremental.h"\n'
                '#include "sim/simulator.h"\n'})

    def test_nothing_below_svc_may_reach_it(self):
        self.assert_finding(
            {"src/exp/run.cpp": '#include "svc/service.h"\n'},
            "layering", "exp -> svc")
        self.assert_finding(
            {"src/harmony/sched.cpp": '#include "svc/admission.h"\n'},
            "layering", "harmony -> svc")

    def test_svc_is_wall_clock_banned(self):
        self.assert_finding(
            {"src/svc/lat.cpp": "auto t = std::chrono::steady_clock::now();\n"},
            "nondeterminism")
        self.assert_clean(
            {"src/svc/lat.cpp":
             "using WallClock = std::chrono::steady_clock;"
             "  // lint: allow-nondeterminism latency metrics only\n"})

    def test_new_obs_telemetry_files_are_wall_clock_banned(self):
        self.assert_finding(
            {"src/obs/timeseries.cpp":
             "auto t = std::chrono::steady_clock::now();\n"},
            "nondeterminism")
        self.assert_finding(
            {"src/obs/slo.cpp": "using C = std::chrono::system_clock;\n"},
            "nondeterminism")
        # The tracer's wall domain stays exempt (covered above too).
        self.assert_clean(
            {"src/obs/trace.cpp": "auto t = std::chrono::steady_clock::now();\n"})

    # --- signal-handling --------------------------------------------------

    def test_signal_api_banned(self):
        self.assert_finding(
            {"src/exp/run.cpp": "#include <csignal>\nvoid f() { std::signal(6, h); }\n"},
            "signal-handling", "FlightRecorder")

    def test_sigaction_banned_in_tools(self):
        self.assert_finding(
            {"tools/probe.cpp": "void f() { sigaction(11, &sa, nullptr); }\n"},
            "signal-handling")

    def test_signal_marker_escapes(self):
        self.assert_clean(
            {"tools/probe.cpp":
             "#include <csignal>  // lint: allow-signal-handler crash hook\n"
             "void f() { std::raise(6); }  // lint: allow-signal-handler re-raise\n"})

    def test_flight_recorder_exempt_from_signal_rule(self):
        self.assert_clean(
            {"src/obs/flight_recorder.cpp":
             "void f() { std::signal(6, h); }\n"})

    def test_signal_like_identifiers_not_flagged(self):
        self.assert_clean(
            {"src/sim/engine.cpp":
             "void fatal_signal_handler(int);\nint raise_count = bus.signal_count();\n"})

    # --- nondeterminism ---------------------------------------------------

    def test_wall_clock_banned_in_sim(self):
        self.assert_finding(
            {"src/sim/engine.cpp":
             "auto t = std::chrono::steady_clock::now();\n"},
            "nondeterminism", "wall-clock")

    def test_clock_alias_caught(self):
        self.assert_finding(
            {"src/exp/run.cpp": "using Clock = std::chrono::system_clock;\n"},
            "nondeterminism")

    def test_wall_clock_marker_escapes(self):
        self.assert_clean(
            {"src/exp/run.cpp":
             "using WallClock = std::chrono::steady_clock;"
             "  // lint: allow-nondeterminism solver wall cost\n"})

    def test_wall_clock_fine_outside_banned_dirs(self):
        self.assert_clean(
            {"src/obs/trace.cpp": "auto t = std::chrono::steady_clock::now();\n",
             "src/common/logging.cpp": "auto t = std::chrono::system_clock::now();\n"})

    def test_rand_banned(self):
        self.assert_finding(
            {"src/harmony/pick.cpp": "int r = rand();\n"},
            "nondeterminism", "common::Rng")

    # --- detlint-escape -----------------------------------------------------

    def test_detlint_escape_empty_reason_flagged(self):
        self.assert_finding(
            {"src/sim/walk.cpp": "// detlint: sorted-iteration()\nint x = 0;\n"},
            "detlint-escape", "non-empty")

    def test_detlint_escape_bare_name_flagged(self):
        self.assert_finding(
            {"src/harmony/walk.cpp": "// detlint: seeded-random\nint x = 0;\n"},
            "detlint-escape", "non-empty")

    def test_detlint_escape_unknown_name_flagged(self):
        self.assert_finding(
            {"src/sim/walk.cpp":
             "// detlint: hash-walk(reads are commutative)\nint x = 0;\n"},
            "detlint-escape", "unknown detlint escape 'hash-walk'")

    def test_detlint_escape_with_reason_passes(self):
        self.assert_clean(
            {"src/sim/walk.cpp":
             "// detlint: sorted-iteration(sum of integers is order-insensitive)\n"
             "int x = 0;\n"})

    def test_detlint_escape_ignored_outside_deterministic_dirs(self):
        self.assert_clean(
            {"tests/fixture.cpp": "// detlint: bogus-name()\nint x = 0;\n"})

    # --- pre-existing rules still wired -----------------------------------

    def test_naked_new_banned(self):
        self.assert_finding(
            {"src/sim/leak.cpp": "int* p = new int(3);\n"}, "naked-new")

    def test_missing_pragma_once(self):
        self.assert_finding(
            {"src/common/loose.h": "struct X {};\n"}, "header-hygiene")

    def test_read_only_analysis(self):
        self.assert_finding(
            {"src/obs/analysis/bad.cpp":
             '#include "obs/metrics.h"\n'
             "void f() { harmony::obs::MetricsRegistry::instance(); }\n"},
            "read-only-analysis")

    # --- event-payload ----------------------------------------------------

    def test_std_function_banned_in_sim(self):
        self.assert_finding(
            {"src/sim/bad.h": HEADER + "#include <functional>\n"
             "std::function<void()> cb;\n"},
            "event-payload", "SmallFn")

    def test_std_function_banned_in_exp(self):
        self.assert_finding(
            {"src/exp/bad.cpp": "std::function<double(int)> f;\n"},
            "event-payload")

    def test_std_function_marker_escapes(self):
        self.assert_clean(
            {"src/sim/cold.h": HEADER +
             "#include <functional>  // lint: allow-std-function: config-time hook\n"
             "std::function<void()> on_setup;  // lint: allow-std-function: cold path\n"})

    def test_std_function_fine_outside_event_dirs(self):
        self.assert_clean(
            {"src/harmony/hook.cpp": "std::function<void()> cb;\n"})

    def test_commented_std_function_not_flagged(self):
        self.assert_clean(
            {"src/sim/doc.cpp": "// replaces std::function in the hot path\nint x;\n"})

    # --- reporting --------------------------------------------------------

    def test_rule_counts_line(self):
        rc, out = run_lint(
            {"src/sim/a.cpp": "int r = rand();\n",
             "src/common/b.h": "struct X {};\n"})
        self.assertEqual(rc, 1)
        self.assertIn("nondeterminism=1", out, out)
        self.assertIn("header-hygiene=1", out, out)
        self.assertIn("lock-discipline=0", out, out)

    def test_github_step_summary(self):
        with tempfile.NamedTemporaryFile("r", suffix=".md", delete=False) as f:
            summary_path = f.name
        try:
            with tempfile.TemporaryDirectory(prefix="lint_selftest_") as root:
                path = os.path.join(root, "src", "sim", "a.cpp")
                os.makedirs(os.path.dirname(path))
                with open(path, "w", encoding="utf-8") as src:
                    src.write("int r = rand();\n")
                env = dict(os.environ, GITHUB_STEP_SUMMARY=summary_path)
                subprocess.run(
                    [sys.executable, LINT, "--root", root, "--no-clang-tidy"],
                    stdout=subprocess.DEVNULL, env=env, check=False)
            with open(summary_path, encoding="utf-8") as s:
                summary = s.read()
            self.assertIn("| `nondeterminism` | 1 |", summary, summary)
            self.assertIn("| **total** | **1** |", summary, summary)
        finally:
            os.unlink(summary_path)

    def test_real_checkout_is_clean(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--root", REPO, "--no-clang-tidy"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        self.assertEqual(proc.returncode, 0,
                         f"lint must stay clean on the checkout:\n{proc.stdout}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
