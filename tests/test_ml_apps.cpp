#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ml/lasso.h"
#include "ml/lda.h"
#include "ml/mlr.h"
#include "ml/nmf.h"

namespace harmony::ml {
namespace {

// Runs `iters` full-data update/apply rounds — the single-worker training loop
// without the PS plumbing.
double train(MlApp& app, std::size_t iters, std::vector<double>& params) {
  params.assign(app.param_dim(), 0.0);
  app.init_params(params);
  std::vector<double> update(app.param_dim());
  for (std::size_t i = 0; i < iters; ++i) {
    std::fill(update.begin(), update.end(), 0.0);
    app.compute_update(params, update, 0, app.num_data());
    app.apply_update(params, update);
  }
  return app.loss(params);
}

TEST(Mlr, LossDecreasesAndFits) {
  auto data = std::make_shared<DenseDataset>(make_classification(300, 8, 3, 0.05, 21));
  MlrApp app(data, MlrConfig{0.5, 1e-5});
  std::vector<double> params(app.param_dim(), 0.0);
  app.init_params(params);
  const double initial = app.loss(params);
  const double final_loss = train(app, 60, params);
  EXPECT_LT(final_loss, initial * 0.5);
  EXPECT_GT(app.accuracy(params), 0.9);
}

TEST(Mlr, ParamDimIsClassesTimesFeatures) {
  auto data = std::make_shared<DenseDataset>(make_classification(50, 7, 4, 0.1, 2));
  MlrApp app(data);
  EXPECT_EQ(app.param_dim(), 28u);
  EXPECT_EQ(app.num_data(), 50u);
  EXPECT_GT(app.input_bytes(), 0u);
}

TEST(Mlr, RejectsRegressionData) {
  auto data = std::make_shared<DenseDataset>(make_regression(50, 5, 2, 0.1, 2));
  EXPECT_THROW(MlrApp{data}, std::invalid_argument);
}

TEST(Mlr, PartitionedUpdatesSumToFullUpdate) {
  auto data = std::make_shared<DenseDataset>(make_classification(100, 6, 3, 0.1, 5));
  MlrApp app(data, MlrConfig{0.1, 0.0});  // no regularization: strict additivity
  std::vector<double> params(app.param_dim(), 0.01);

  std::vector<double> full(app.param_dim(), 0.0);
  app.compute_update(params, full, 0, 100);

  std::vector<double> a(app.param_dim(), 0.0), b(app.param_dim(), 0.0);
  app.compute_update(params, a, 0, 50);
  app.compute_update(params, b, 50, 100);
  // Each partition averages over its own count; full averages over 100. So
  // full = (a + b) / 2 for equal halves.
  for (std::size_t i = 0; i < full.size(); ++i)
    EXPECT_NEAR(full[i], 0.5 * (a[i] + b[i]), 1e-9);
}

TEST(Lasso, LossDecreasesAndRecoversSparsity) {
  auto data = std::make_shared<DenseDataset>(make_regression(400, 30, 5, 0.05, 31));
  LassoApp app(data, LassoConfig{0.05, 0.02});
  std::vector<double> params;
  const double final_loss = train(app, 150, params);
  std::vector<double> zeros(app.param_dim(), 0.0);
  EXPECT_LT(final_loss, app.loss(zeros) * 0.3);
  // Many of the 25 off-support coordinates must be exactly zero.
  EXPECT_GT(LassoApp::sparsity(params), 0.3);
}

TEST(Lasso, ProximalStepSoftThresholds) {
  auto data = std::make_shared<DenseDataset>(make_regression(10, 4, 2, 0.1, 7));
  LassoApp app(data, LassoConfig{0.1, 1.0});  // threshold = 0.1
  std::vector<double> params{0.05, -0.05, 0.5, -0.5};
  std::vector<double> update(4, 0.0);
  app.apply_update(params, update);
  EXPECT_DOUBLE_EQ(params[0], 0.0);  // |0.05| < 0.1 -> zeroed
  EXPECT_DOUBLE_EQ(params[1], 0.0);
  EXPECT_DOUBLE_EQ(params[2], 0.4);  // shrunk by 0.1
  EXPECT_DOUBLE_EQ(params[3], -0.4);
}

TEST(Lasso, RejectsClassificationData) {
  auto data = std::make_shared<DenseDataset>(make_classification(50, 5, 2, 0.1, 2));
  EXPECT_THROW(LassoApp{data}, std::invalid_argument);
}

TEST(Nmf, LossDecreases) {
  auto data = std::make_shared<RatingsDataset>(make_ratings(60, 50, 4, 0.25, 0.05, 41));
  NmfApp app(data, NmfConfig{8, 0.05, 1e-4, 7});
  std::vector<double> params;
  std::vector<double> init(app.param_dim());
  app.init_params(init);
  const double initial = app.loss(init);
  const double final_loss = train(app, 80, params);
  EXPECT_LT(final_loss, initial * 0.5);
}

TEST(Nmf, ParametersStayNonNegative) {
  auto data = std::make_shared<RatingsDataset>(make_ratings(30, 25, 3, 0.3, 0.05, 43));
  NmfApp app(data, NmfConfig{4, 0.1, 1e-4, 3});
  std::vector<double> params;
  train(app, 30, params);
  for (double p : params) EXPECT_GE(p, 0.0);
}

TEST(Nmf, PartitionByUserRange) {
  auto data = std::make_shared<RatingsDataset>(make_ratings(20, 15, 3, 0.3, 0.05, 47));
  NmfApp app(data);
  EXPECT_EQ(app.num_data(), 20u);  // partitioned by users
  EXPECT_EQ(app.param_dim(), 15u * app.config().rank);
}

TEST(Lda, LikelihoodImprovesOverSweeps) {
  auto data = std::make_shared<CorpusDataset>(make_corpus(60, 150, 4, 25, 51));
  LdaApp app(data, LdaConfig{4, 0.1, 0.01, 13});
  std::vector<double> params(app.param_dim(), 0.0);
  app.init_params(params);
  std::vector<double> update(app.param_dim());

  // First sweep initializes assignments.
  std::fill(update.begin(), update.end(), 0.0);
  app.compute_update(params, update, 0, app.num_data());
  app.apply_update(params, update);
  const double after_init = app.loss(params);

  for (int i = 0; i < 25; ++i) {
    std::fill(update.begin(), update.end(), 0.0);
    app.compute_update(params, update, 0, app.num_data());
    app.apply_update(params, update);
  }
  const double after_training = app.loss(params);
  EXPECT_LT(after_training, after_init);
}

TEST(Lda, CountsStayConsistent) {
  auto data = std::make_shared<CorpusDataset>(make_corpus(20, 60, 3, 15, 53));
  LdaApp app(data, LdaConfig{3, 0.1, 0.01, 17});
  std::vector<double> params(app.param_dim(), 0.0);
  std::vector<double> update(app.param_dim());
  double total_tokens = 0.0;
  for (const auto& doc : data->docs) total_tokens += static_cast<double>(doc.tokens.size());

  for (int sweep = 0; sweep < 5; ++sweep) {
    std::fill(update.begin(), update.end(), 0.0);
    app.compute_update(params, update, 0, app.num_data());
    app.apply_update(params, update);
    // Sum of all topic-word counts equals the corpus token count; topic
    // totals are the same mass counted the other way.
    double word_counts = 0.0, topic_totals = 0.0;
    const std::size_t wt = data->vocab_size * 3;
    for (std::size_t i = 0; i < wt; ++i) word_counts += params[i];
    for (std::size_t i = wt; i < params.size(); ++i) topic_totals += params[i];
    EXPECT_NEAR(word_counts, total_tokens, 1e-6);
    EXPECT_NEAR(topic_totals, total_tokens, 1e-6);
  }
}

TEST(Lda, DisjointPartitionsAreIndependent) {
  auto data = std::make_shared<CorpusDataset>(make_corpus(10, 40, 2, 10, 57));
  LdaApp app(data, LdaConfig{2, 0.1, 0.01, 19});
  std::vector<double> params(app.param_dim(), 0.0);
  std::vector<double> u1(app.param_dim(), 0.0), u2(app.param_dim(), 0.0);
  app.compute_update(params, u1, 0, 5);
  app.compute_update(params, u2, 5, 10);
  // Both partitions produce non-trivial count deltas.
  double s1 = 0.0, s2 = 0.0;
  for (double v : u1) s1 += std::abs(v);
  for (double v : u2) s2 += std::abs(v);
  EXPECT_GT(s1, 0.0);
  EXPECT_GT(s2, 0.0);
}

// Every app exposes coherent metadata.
class AppMetadataTest : public ::testing::TestWithParam<int> {};

TEST_P(AppMetadataTest, MetadataCoherent) {
  std::unique_ptr<MlApp> app;
  switch (GetParam()) {
    case 0:
      app = std::make_unique<MlrApp>(
          std::make_shared<DenseDataset>(make_classification(40, 5, 3, 0.1, 1)));
      break;
    case 1:
      app = std::make_unique<LassoApp>(
          std::make_shared<DenseDataset>(make_regression(40, 5, 2, 0.1, 1)));
      break;
    case 2:
      app = std::make_unique<NmfApp>(
          std::make_shared<RatingsDataset>(make_ratings(20, 15, 3, 0.3, 0.05, 1)));
      break;
    case 3:
      app = std::make_unique<LdaApp>(
          std::make_shared<CorpusDataset>(make_corpus(15, 50, 3, 10, 1)));
      break;
  }
  ASSERT_NE(app, nullptr);
  EXPECT_FALSE(app->name().empty());
  EXPECT_GT(app->param_dim(), 0u);
  EXPECT_GT(app->num_data(), 0u);
  EXPECT_GT(app->input_bytes(), 0u);
  EXPECT_EQ(app->model_bytes(), app->param_dim() * sizeof(double));
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppMetadataTest, ::testing::Values(0, 1, 2, 3));

}  // namespace
}  // namespace harmony::ml
