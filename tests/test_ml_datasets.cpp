#include <gtest/gtest.h>

#include <set>

#include "ml/dataset.h"

namespace harmony::ml {
namespace {

TEST(MakeClassification, ShapeAndLabels) {
  const auto ds = make_classification(200, 10, 4, 0.1, 1);
  EXPECT_EQ(ds.size(), 200u);
  EXPECT_EQ(ds.feature_dim, 10u);
  EXPECT_EQ(ds.num_classes, 4u);
  std::set<double> labels;
  for (const auto& ex : ds.examples) {
    EXPECT_EQ(ex.features.size(), 10u);
    EXPECT_GE(ex.label, 0.0);
    EXPECT_LT(ex.label, 4.0);
    labels.insert(ex.label);
  }
  // All classes should actually occur.
  EXPECT_EQ(labels.size(), 4u);
}

TEST(MakeClassification, DeterministicInSeed) {
  const auto a = make_classification(50, 5, 3, 0.1, 9);
  const auto b = make_classification(50, 5, 3, 0.1, 9);
  const auto c = make_classification(50, 5, 3, 0.1, 10);
  EXPECT_EQ(a.examples[0].features, b.examples[0].features);
  EXPECT_NE(a.examples[0].features, c.examples[0].features);
}

TEST(MakeRegression, PlantedSparsity) {
  const auto ds = make_regression(100, 20, 5, 0.01, 3);
  EXPECT_EQ(ds.num_classes, 0u);
  EXPECT_EQ(ds.feature_dim, 20u);
  EXPECT_EQ(ds.size(), 100u);
  // Labels should not all be zero (the planted weights are nonzero).
  double sum_abs = 0.0;
  for (const auto& ex : ds.examples) sum_abs += std::abs(ex.label);
  EXPECT_GT(sum_abs, 1.0);
}

TEST(MakeRatings, StructureAndRange) {
  const auto ds = make_ratings(50, 40, 4, 0.2, 0.05, 5);
  EXPECT_EQ(ds.num_users, 50u);
  EXPECT_EQ(ds.num_items, 40u);
  ASSERT_EQ(ds.user_offsets.size(), 51u);
  EXPECT_EQ(ds.user_offsets.front(), 0u);
  EXPECT_EQ(ds.user_offsets.back(), ds.ratings.size());
  for (const auto& r : ds.ratings) {
    EXPECT_LT(r.user, 50u);
    EXPECT_LT(r.item, 40u);
    EXPECT_GE(r.value, 1.0);
    EXPECT_LE(r.value, 5.0);
  }
}

TEST(MakeRatings, UserOffsetsPartitionRatings) {
  const auto ds = make_ratings(30, 30, 3, 0.3, 0.05, 8);
  for (std::size_t u = 0; u < ds.num_users; ++u) {
    for (std::size_t k = ds.user_offsets[u]; k < ds.user_offsets[u + 1]; ++k)
      EXPECT_EQ(ds.ratings[k].user, u);
  }
}

TEST(MakeRatings, DensityRoughlyRespected) {
  const auto ds = make_ratings(100, 100, 4, 0.1, 0.05, 2);
  // ~10 ratings per user, minus duplicate collisions.
  const double per_user = static_cast<double>(ds.ratings.size()) / 100.0;
  EXPECT_GT(per_user, 5.0);
  EXPECT_LE(per_user, 10.5);
}

TEST(MakeCorpus, TokensInVocab) {
  const auto ds = make_corpus(40, 200, 5, 30, 4);
  EXPECT_EQ(ds.size(), 40u);
  EXPECT_EQ(ds.vocab_size, 200u);
  EXPECT_GT(ds.total_tokens(), 40u * 4u);
  for (const auto& doc : ds.docs) {
    EXPECT_GE(doc.tokens.size(), 4u);
    for (auto tok : doc.tokens) EXPECT_LT(tok, 200u);
  }
}

TEST(MakeCorpus, Deterministic) {
  const auto a = make_corpus(10, 50, 3, 20, 6);
  const auto b = make_corpus(10, 50, 3, 20, 6);
  ASSERT_EQ(a.docs.size(), b.docs.size());
  EXPECT_EQ(a.docs[0].tokens, b.docs[0].tokens);
}

TEST(DatasetBytes, PositiveAndScaling) {
  const auto small = make_classification(10, 5, 2, 0.1, 1);
  const auto large = make_classification(100, 5, 2, 0.1, 1);
  EXPECT_GT(small.bytes(), 0u);
  EXPECT_GT(large.bytes(), small.bytes());
}

}  // namespace
}  // namespace harmony::ml
