#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "json_mini.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace harmony::obs {
namespace {

using testing::parse_json;

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
  void TearDown() override {
    Tracer::instance().set_enabled(false);
    Tracer::instance().clear();
  }
};

TEST_F(TracerTest, DisabledRecordsNothing) {
  EXPECT_FALSE(Tracer::enabled());
  Tracer::complete(EventKind::kSubtaskComp, ClockDomain::kSim, 0.0, 10.0, 1);
  Tracer::instant(EventKind::kSchedule, ClockDomain::kSim, 5.0);
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TracerTest, EnabledRecordsAndSnapshotSortsByTime) {
  Tracer::instance().set_enabled(true);
  Tracer::complete(EventKind::kSubtaskComp, ClockDomain::kSim, 30.0, 5.0, 2);
  Tracer::instant(EventKind::kSchedule, ClockDomain::kSim, 10.0);
  Tracer::complete(EventKind::kSubtaskPull, ClockDomain::kSim, 20.0, 2.0, 2);
  const auto events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 10.0);
  EXPECT_DOUBLE_EQ(events[1].ts_us, 20.0);
  EXPECT_DOUBLE_EQ(events[2].ts_us, 30.0);
  EXPECT_EQ(events[2].kind, EventKind::kSubtaskComp);
  EXPECT_EQ(events[2].job, 2u);
}

TEST_F(TracerTest, SimSortsBeforeWallDomain) {
  Tracer::instance().set_enabled(true);
  Tracer::instant(EventKind::kSpill, ClockDomain::kWall, 1.0, 0);
  Tracer::instant(EventKind::kSchedule, ClockDomain::kSim, 99.0);
  const auto events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].clock, ClockDomain::kSim);
  EXPECT_EQ(events[1].clock, ClockDomain::kWall);
}

TEST_F(TracerTest, ClearDropsEvents) {
  Tracer::instance().set_enabled(true);
  Tracer::instant(EventKind::kRegroup, ClockDomain::kSim, 1.0);
  EXPECT_EQ(Tracer::instance().size(), 1u);
  Tracer::instance().clear();
  EXPECT_EQ(Tracer::instance().size(), 0u);
  Tracer::instant(EventKind::kRegroup, ClockDomain::kSim, 2.0);
  EXPECT_EQ(Tracer::instance().size(), 1u);
}

TEST_F(TracerTest, WallSpanRecordsCompleteEvent) {
  Tracer::instance().set_enabled(true);
  { WallSpan span(EventKind::kSubtaskComp, /*job=*/7, kNoEntity, /*machine=*/3); }
  const auto events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kSubtaskComp);
  EXPECT_EQ(events[0].phase, Phase::kComplete);
  EXPECT_EQ(events[0].clock, ClockDomain::kWall);
  EXPECT_EQ(events[0].job, 7u);
  EXPECT_EQ(events[0].machine, 3u);
  EXPECT_GE(events[0].dur_us, 0.0);
}

TEST_F(TracerTest, WallSpanArmedAtConstructionNotDestruction) {
  // A span opened while tracing is off must not record, even if tracing is
  // turned on before it closes (its start time was never taken).
  WallSpan* span = new WallSpan(EventKind::kSubtaskPull, 1);  // lint: allow-naked-new
  Tracer::instance().set_enabled(true);
  delete span;  // lint: allow-naked-new
  EXPECT_EQ(Tracer::instance().size(), 0u);
}

TEST_F(TracerTest, MultithreadedRecordingLosesNothing) {
  Tracer::instance().set_enabled(true);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        Tracer::complete(EventKind::kSubtaskComp, ClockDomain::kWall,
                         static_cast<double>(i), 1.0, static_cast<std::uint32_t>(t));
    });
  }
  for (auto& th : threads) th.join();
  const auto events = Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kThreads * kPerThread));
  std::vector<int> per_job(kThreads, 0);
  for (const auto& e : events) {
    ASSERT_LT(e.job, static_cast<std::uint32_t>(kThreads));
    ++per_job[e.job];
  }
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(per_job[t], kPerThread);
}

TEST_F(TracerTest, ChromeTraceExportIsValidJson) {
  Tracer::instance().set_enabled(true);
  Tracer::complete(EventKind::kSubtaskComp, ClockDomain::kSim, 100.0, 50.0, /*job=*/0,
                   /*group=*/1);
  Tracer::instant(EventKind::kRegroup, ClockDomain::kSim, 120.0);
  Tracer::complete(EventKind::kSubtaskPush, ClockDomain::kWall, 10.0, 5.0, /*job=*/1,
                   kNoEntity, /*machine=*/2, /*bytes=*/4096);
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);

  const auto doc = parse_json(out.str());
  EXPECT_EQ(doc.at("displayTimeUnit").string(), "ms");
  const auto& events = doc.at("traceEvents").array();
  std::size_t x_events = 0, instants = 0, metadata = 0;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").string();
    if (ph == "M") {
      ++metadata;
      EXPECT_TRUE(e.at("name").string() == "process_name" ||
                  e.at("name").string() == "thread_name");
      continue;
    }
    EXPECT_TRUE(ph == "X" || ph == "i");
    if (ph == "X") {
      ++x_events;
      EXPECT_GE(e.at("dur").number(), 0.0);
    } else {
      ++instants;
    }
    EXPECT_TRUE(e.contains("pid"));
    EXPECT_TRUE(e.contains("tid"));
    EXPECT_TRUE(e.contains("ts"));
  }
  EXPECT_EQ(x_events, 2u);
  EXPECT_EQ(instants, 1u);
  EXPECT_GT(metadata, 0u);
}

TEST(MetricsRegistryTest, CountersAccumulate) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  auto& c = reg.counter("test.counter");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&reg.counter("test.counter"), &c);
}

TEST(MetricsRegistryTest, GaugesHoldLastValue) {
  auto& reg = MetricsRegistry::instance();
  auto& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(MetricsRegistryTest, HistogramTracksAggregates) {
  auto& reg = MetricsRegistry::instance();
  auto& h = reg.histogram("test.hist", 0.0, 10.0, 5);
  h.reset();
  h.observe(1.0);
  h.observe(3.0);
  h.observe(100.0);  // clamps into the top bin but aggregates keep the raw value
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // First registration fixes the shape; repeat lookups ignore new shapes.
  EXPECT_EQ(&reg.histogram("test.hist", 0.0, 1.0, 2), &h);
}

TEST(MetricsRegistryTest, PercentileOnUniformDistribution) {
  auto& h = MetricsRegistry::instance().histogram("test.pct_uniform", 0.0, 100.0, 100);
  h.reset();
  // 1000 samples spread uniformly over [0, 100): ten per one-unit bin.
  for (int i = 0; i < 1000; ++i) h.observe((i + 0.5) / 10.0);
  // With uniform mass, linear interpolation recovers the quantile to within
  // the sub-bin spacing.
  EXPECT_NEAR(h.percentile(0.50), 50.0, 0.2);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 0.2);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 0.2);
  // Extremes clamp to the observed envelope.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), h.min());
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
}

TEST(MetricsRegistryTest, PercentileOnPointMassAndSkew) {
  auto& point = MetricsRegistry::instance().histogram("test.pct_point", 0.0, 10.0, 10);
  point.reset();
  for (int i = 0; i < 100; ++i) point.observe(4.2);
  // Every quantile of a point mass is the point: the clamp to [min, max]
  // makes the bin interpolation exact.
  EXPECT_DOUBLE_EQ(point.percentile(0.01), 4.2);
  EXPECT_DOUBLE_EQ(point.percentile(0.50), 4.2);
  EXPECT_DOUBLE_EQ(point.percentile(0.99), 4.2);

  auto& skew = MetricsRegistry::instance().histogram("test.pct_skew", 0.0, 10.0, 10);
  skew.reset();
  // 90 samples in [0, 1), 10 in [9, 10): p50 sits in the first bin, p95 in
  // the last.
  for (int i = 0; i < 90; ++i) skew.observe(0.5);
  for (int i = 0; i < 10; ++i) skew.observe(9.5);
  EXPECT_LT(skew.percentile(0.50), 1.0);
  EXPECT_GT(skew.percentile(0.95), 9.0);

  auto& empty = MetricsRegistry::instance().histogram("test.pct_empty", 0.0, 1.0, 4);
  empty.reset();
  EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
}

TEST(MetricsRegistryTest, SnapshotJsonCarriesPercentiles) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  auto& h = reg.histogram("test.pct_snapshot", 0.0, 100.0, 100);
  h.reset();
  for (int i = 0; i < 1000; ++i) h.observe((i + 0.5) / 10.0);
  const auto doc = parse_json(reg.snapshot_json());
  const auto& hist = doc.at("histograms").at("test.pct_snapshot");
  EXPECT_NEAR(hist.at("p50").number(), 50.0, 0.2);
  EXPECT_NEAR(hist.at("p95").number(), 95.0, 0.2);
  EXPECT_NEAR(hist.at("p99").number(), 99.0, 0.2);
}

TEST(MetricsRegistryTest, CounterUpdatesAreThreadSafe) {
  auto& c = MetricsRegistry::instance().counter("test.mt_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, SnapshotJsonRoundTrips) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("snap.counter").add(42);
  reg.gauge("snap.gauge").set(1.5);
  auto& h = reg.histogram("snap.hist", 0.0, 4.0, 4);
  h.reset();
  h.observe(0.5);
  h.observe(3.5);

  const auto doc = parse_json(reg.snapshot_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("snap.counter").number(), 42.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("snap.gauge").number(), 1.5);
  const auto& hist = doc.at("histograms").at("snap.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 4.0);
  EXPECT_DOUBLE_EQ(hist.at("min").number(), 0.5);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 3.5);
  const auto& bins = hist.at("bins").array();
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_DOUBLE_EQ(bins[0].number(), 1.0);
  EXPECT_DOUBLE_EQ(bins[3].number(), 1.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  auto& reg = MetricsRegistry::instance();
  auto& c = reg.counter("reset.counter");
  c.add(7);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&reg.counter("reset.counter"), &c);
}

TEST(MetricsRegistryTest, BenchReportAttachKeepsJsonValid) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("attach.counter").add(9);

  const std::string path =
      (::testing::TempDir().empty() ? std::string("/tmp/") : ::testing::TempDir()) +
      "harmony_bench_attach_test.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\n\"benchmarks\": [{\"name\": \"BM_Fake\", \"real_time\": 1.0}]\n}\n";
  }
  ASSERT_TRUE(bench::attach_metrics_snapshot(path));

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto doc = parse_json(buf.str());
  EXPECT_EQ(doc.at("benchmarks").array().size(), 1u);
  EXPECT_DOUBLE_EQ(
      doc.at("harmony_metrics").at("counters").at("attach.counter").number(), 9.0);
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, BenchReportAttachRejectsMissingFile) {
  EXPECT_FALSE(bench::attach_metrics_snapshot("/nonexistent/dir/report.json"));
}

namespace {

std::string attach_fixture_path() {
  return (::testing::TempDir().empty() ? std::string("/tmp/") : ::testing::TempDir()) +
         "harmony_bench_attach_edge.json";
}

std::string write_and_attach(const std::string& content, bool* ok) {
  const std::string path = attach_fixture_path();
  {
    std::ofstream out(path, std::ios::trunc);
    out << content;
  }
  *ok = bench::attach_metrics_snapshot(path);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::remove(path.c_str());
  return buf.str();
}

}  // namespace

TEST(MetricsRegistryTest, BenchReportAttachHandlesEmptyRootObject) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("attach.empty_root").add(3);
  // An empty root object must gain the member with no leading comma.
  bool ok = false;
  const std::string result = write_and_attach("{}\n", &ok);
  ASSERT_TRUE(ok);
  const auto doc = parse_json(result);
  EXPECT_DOUBLE_EQ(
      doc.at("harmony_metrics").at("counters").at("attach.empty_root").number(), 3.0);

  // Same with interior whitespace in the empty object.
  const std::string spaced = write_and_attach("{  \n }\n", &ok);
  ASSERT_TRUE(ok);
  parse_json(spaced);  // throws on invalid splice
}

TEST(MetricsRegistryTest, BenchReportAttachRejectsNonObjectDocuments) {
  bool ok = true;
  // A JSON array ends in ']': no root object brace to splice before.
  write_and_attach("[1, 2, 3]\n", &ok);
  EXPECT_FALSE(ok);
  // A '}' that is not the document's final token must not be spliced into.
  write_and_attach("{\"a\": 1} trailing junk\n", &ok);
  EXPECT_FALSE(ok);
  // Non-JSON content without any brace.
  write_and_attach("hello world\n", &ok);
  EXPECT_FALSE(ok);
  // A lone closing brace is not an object.
  write_and_attach("}\n", &ok);
  EXPECT_FALSE(ok);
}

TEST(DeltaSnapshotTest, CounterAndHistogramDeltasGaugesKeepLevel) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  auto& ctr = reg.counter("delta.requests");
  auto& gauge = reg.gauge("delta.depth");
  auto& hist = reg.histogram("delta.latency", 0.0, 100.0, 10);

  ctr.add(5);
  gauge.set(3.0);
  hist.observe(10.0);
  const MetricsSnapshot before = reg.snapshot();

  ctr.add(7);
  gauge.set(9.0);
  hist.observe(10.0);
  hist.observe(90.0);
  const MetricsSnapshot after = reg.snapshot();

  const MetricsSnapshot d = delta_snapshot(before, after);
  EXPECT_EQ(d.counters.at("delta.requests"), 7u);
  // A gauge is a level, not a flow: latest value, not 9 - 3.
  EXPECT_DOUBLE_EQ(d.gauges.at("delta.depth"), 9.0);
  const auto& h = d.histograms.at("delta.latency");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 100.0);
  EXPECT_EQ(h.bins[1], 1u);   // the second 10.0, first one subtracted out
  EXPECT_EQ(h.bins[9], 1u);   // the 90.0
}

TEST(DeltaSnapshotTest, ResetBetweenSnapshotsIsNotUnsignedWraparound) {
  MetricsSnapshot prev;
  prev.counters["c"] = 100;
  MetricsSnapshot cur;
  cur.counters["c"] = 4;  // ran backwards: a reset() happened in between
  const MetricsSnapshot d = delta_snapshot(prev, cur);
  // The restarted counter contributes its whole current value, not 2^64 - 96.
  EXPECT_EQ(d.counters.at("c"), 4u);

  MetricsSnapshot hp;
  hp.histograms["h"] = {0.0, 10.0, {5, 0}, 5, 25.0};
  MetricsSnapshot hc;
  hc.histograms["h"] = {0.0, 10.0, {2, 0}, 2, 4.0};
  const MetricsSnapshot hd = delta_snapshot(hp, hc);
  const auto& h = hd.histograms.at("h");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_EQ(h.bins[0], 2u);
}

TEST(DeltaSnapshotTest, EmptyWindowYieldsZeroDeltas) {
  auto& reg = MetricsRegistry::instance();
  reg.reset();
  reg.counter("idle.ticks").add(42);
  reg.histogram("idle.wait", 0.0, 10.0, 5).observe(3.0);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricsSnapshot d = delta_snapshot(snap, snap);
  EXPECT_EQ(d.counters.at("idle.ticks"), 0u);
  const auto& h = d.histograms.at("idle.wait");
  EXPECT_EQ(h.count, 0u);
  EXPECT_DOUBLE_EQ(h.sum, 0.0);
  EXPECT_DOUBLE_EQ(histogram_state_percentile(h, 0.99), 0.0);
}

TEST(DeltaSnapshotTest, MetricRegisteredMidWindowContributesFullState) {
  MetricsSnapshot prev;
  prev.counters["old"] = 1;
  MetricsSnapshot cur;
  cur.counters["old"] = 1;
  cur.counters["fresh"] = 17;
  cur.gauges["fresh.level"] = 2.5;
  cur.histograms["fresh.hist"] = {0.0, 10.0, {3, 1}, 4, 8.0};
  const MetricsSnapshot d = delta_snapshot(prev, cur);
  EXPECT_EQ(d.counters.at("fresh"), 17u);
  EXPECT_DOUBLE_EQ(d.gauges.at("fresh.level"), 2.5);
  EXPECT_EQ(d.histograms.at("fresh.hist").count, 4u);
  // Absent from cur means dropped, not carried forward.
  MetricsSnapshot shrunk;
  shrunk.counters["old"] = 2;
  const MetricsSnapshot d2 = delta_snapshot(cur, shrunk);
  EXPECT_EQ(d2.counters.count("fresh"), 0u);
}

TEST(DeltaSnapshotTest, WindowPercentileClampsToOccupiedBins) {
  // Six samples in bin [0, 50): raw min/max don't survive deltas, so the
  // quantile is interpolated within the occupied-bin envelope.
  MetricsSnapshot::HistogramState h;
  h.lo = 0.0;
  h.hi = 500.0;
  h.bins = {6, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  h.count = 6;
  const double p50 = histogram_state_percentile(h, 0.5);
  EXPECT_GE(p50, 0.0);
  EXPECT_LE(p50, 50.0);
  // All mass in the top bin: p99 stays inside [450, 500].
  MetricsSnapshot::HistogramState top;
  top.lo = 0.0;
  top.hi = 500.0;
  top.bins = {0, 0, 0, 0, 0, 0, 0, 0, 0, 4};
  top.count = 4;
  const double p99 = histogram_state_percentile(top, 0.99);
  EXPECT_GE(p99, 450.0);
  EXPECT_LE(p99, 500.0);
  // Mass split across bins 1 and 8: median lands in the low occupied bin,
  // p99 in the high one, and both respect the envelope.
  MetricsSnapshot::HistogramState split;
  split.lo = 0.0;
  split.hi = 500.0;
  split.bins = {0, 10, 0, 0, 0, 0, 0, 0, 10, 0};
  split.count = 20;
  EXPECT_LE(histogram_state_percentile(split, 0.25), 100.0);
  EXPECT_GE(histogram_state_percentile(split, 0.99), 400.0);
  EXPECT_LE(histogram_state_percentile(split, 0.99), 450.0);
}

TEST(MetricsRegistryTest, BenchReportAttachLeavesRejectedFileUntouched) {
  const std::string path = attach_fixture_path();
  const std::string original = "[\"not\", \"an\", \"object\"]\n";
  {
    std::ofstream out(path, std::ios::trunc);
    out << original;
  }
  EXPECT_FALSE(bench::attach_metrics_snapshot(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), original);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace harmony::obs
