// Trace analysis engine tests: exact phase attribution and reconciliation on
// hand-built traces, bound classification and switch detection, prediction
// scoring, the Chrome-trace loader round-trip, and the golden-determinism
// pin — the full report is byte-identical across two runs of the same seeded
// simulation, and the measured bounds agree with the scheduler's decisions.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"
#include "obs/analysis/analysis.h"
#include "obs/analysis/report.h"
#include "obs/trace.h"

namespace harmony::obs::analysis {
namespace {

TraceEvent span(EventKind kind, double t0_sec, double t1_sec, std::uint32_t job,
                std::uint32_t group = kNoEntity) {
  TraceEvent e;
  e.kind = kind;
  e.phase = Phase::kComplete;
  e.clock = ClockDomain::kSim;
  e.ts_us = t0_sec * 1e6;
  e.dur_us = (t1_sec - t0_sec) * 1e6;
  e.job = job;
  e.group = group;
  return e;
}

TraceEvent instant(EventKind kind, double t_sec, std::uint32_t job,
                   std::uint32_t group = kNoEntity, std::uint64_t bytes = 0,
                   double value = 0.0) {
  TraceEvent e;
  e.kind = kind;
  e.phase = Phase::kInstant;
  e.clock = ClockDomain::kSim;
  e.ts_us = t_sec * 1e6;
  e.job = job;
  e.group = group;
  e.bytes = bytes;
  e.value = value;
  return e;
}

// One job, one group, two iterations with a checkpoint pause between them.
// Every phase length is chosen by hand so attribution is exactly checkable.
std::vector<TraceEvent> two_iteration_trace() {
  std::vector<TraceEvent> ev;
  ev.push_back(instant(EventKind::kGroupCreate, 0.0, kNoEntity, 0, /*machines=*/4));
  // Iteration 1, [0, 100]: pull 10 + comp 60 + push 10 -> wait residual 20.
  ev.push_back(span(EventKind::kIteration, 0.0, 100.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPull, 0.0, 10.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskComp, 10.0, 70.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPush, 70.0, 80.0, 0, 0));
  // Checkpoint pause between iterations, [100, 105].
  ev.push_back(span(EventKind::kCheckpoint, 100.0, 105.0, 0, 0));
  // Iteration 2, [105, 185]: pull 10 + comp 50 + push 10 + reload 5 -> wait 5.
  ev.push_back(span(EventKind::kIteration, 105.0, 185.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPull, 105.0, 115.0, 0, 0));
  ev.push_back(span(EventKind::kReload, 115.0, 120.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskComp, 120.0, 170.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPush, 170.0, 180.0, 0, 0));
  ev.push_back(instant(EventKind::kGroupDissolve, 185.0, kNoEntity, 0));
  return ev;
}

TEST(PhaseAttribution, ExactBreakdownOnHandBuiltTrace) {
  const RunAnalysis a = analyze(two_iteration_trace());
  ASSERT_EQ(a.jobs.size(), 1u);
  const JobAnalysis& job = a.jobs[0];
  EXPECT_EQ(job.job, 0u);
  EXPECT_EQ(job.iterations, 2u);
  EXPECT_NEAR(job.phases.pull, 20.0, 1e-9);
  EXPECT_NEAR(job.phases.comp, 110.0, 1e-9);
  EXPECT_NEAR(job.phases.push, 20.0, 1e-9);
  EXPECT_NEAR(job.phases.reload, 5.0, 1e-9);
  EXPECT_NEAR(job.phases.checkpoint, 5.0, 1e-9);
  EXPECT_NEAR(job.phases.wait, 25.0, 1e-9);  // 20 in iter 1 + 5 in iter 2
  EXPECT_NEAR(job.iteration_total_sec, 180.0, 1e-9);
  EXPECT_NEAR(job.mean_iteration_sec, 90.0, 1e-9);
  // The attribution invariant: phases sum to iteration wall time plus
  // checkpoint pauses, exactly.
  EXPECT_NEAR(job.phases.total(), job.iteration_total_sec + job.phases.checkpoint, 1e-9);
  EXPECT_STREQ(job.phases.dominant(), "comp");
  // Cluster totals are the per-job sums (single job here).
  EXPECT_NEAR(a.cluster_phases.total(), job.phases.total(), 1e-9);
}

TEST(PhaseAttribution, ReconcilesWithRunTotalsWithin1e6) {
  RunTotals totals;
  totals.makespan_sec = 200.0;
  totals.jobs.push_back(RunTotals::JobOutcome{0, 0.0, 190.0});
  const RunAnalysis a = analyze(two_iteration_trace(), &totals);
  ASSERT_EQ(a.jobs.size(), 1u);
  const JobAnalysis& job = a.jobs[0];
  EXPECT_TRUE(a.has_totals);
  EXPECT_DOUBLE_EQ(a.makespan_sec, 200.0);
  EXPECT_DOUBLE_EQ(job.jct_sec, 190.0);
  // JCT not inside iterations or checkpoints: 190 - 180 - 5 = 5.
  EXPECT_NEAR(job.outside_iterations_sec, 5.0, 1e-9);
  EXPECT_NEAR(job.phases.total() + job.outside_iterations_sec, job.jct_sec, 1e-6);
}

TEST(PhaseAttribution, DominantTieResolvesToEarlierPipelineStage) {
  PhaseTotals t;
  t.pull = 3.0;
  t.comp = 3.0;
  EXPECT_STREQ(t.dominant(), "pull");
  t.comp = 3.5;
  EXPECT_STREQ(t.dominant(), "comp");
}

TEST(BoundClassify, WindowsAndSwitchesOnHandBuiltTrace) {
  // Group alive [0, 30); 10-second windows alternate the busier lane:
  // window 0 comp-heavy, window 1 comm-heavy, window 2 comp-heavy.
  std::vector<TraceEvent> ev;
  ev.push_back(instant(EventKind::kGroupCreate, 0.0, kNoEntity, 0, 2));
  ev.push_back(span(EventKind::kSubtaskComp, 0.0, 9.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPull, 0.0, 2.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskComp, 10.0, 11.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPull, 10.0, 19.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskComp, 20.0, 28.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskPush, 20.0, 21.0, 0, 0));
  ev.push_back(instant(EventKind::kGroupDissolve, 30.0, kNoEntity, 0));

  AnalysisOptions options;
  options.window_sec = 10.0;
  const RunAnalysis a = analyze(std::move(ev), nullptr, options);
  ASSERT_EQ(a.groups.size(), 1u);
  const GroupAnalysis& g = a.groups[0];
  EXPECT_EQ(g.machines, 2u);
  ASSERT_EQ(g.windows.size(), 3u);
  EXPECT_EQ(g.windows[0].bound, Bound::kCpu);
  EXPECT_EQ(g.windows[1].bound, Bound::kNet);
  EXPECT_EQ(g.windows[2].bound, Bound::kCpu);
  EXPECT_NEAR(g.windows[0].comp_busy_sec, 9.0, 1e-9);
  EXPECT_NEAR(g.windows[1].comm_busy_sec, 9.0, 1e-9);
  ASSERT_EQ(g.switches.size(), 2u);
  EXPECT_NEAR(g.switches[0].t_sec, 10.0, 1e-9);
  EXPECT_EQ(g.switches[0].from, Bound::kCpu);
  EXPECT_EQ(g.switches[0].to, Bound::kNet);
  EXPECT_NEAR(g.switches[1].t_sec, 20.0, 1e-9);
  // Lifetime busy-time roll-up: comp 18 s, comm 12 s over a 30 s lifetime.
  EXPECT_NEAR(g.comp_busy_sec, 18.0, 1e-9);
  EXPECT_NEAR(g.comm_busy_sec, 12.0, 1e-9);
  EXPECT_NEAR(g.busy_fraction_cpu, 0.6, 1e-9);
  EXPECT_NEAR(g.busy_fraction_net, 0.4, 1e-9);
}

// A CPU-bound prediction followed by enough steady-state iterations to score:
// measured bound and T_itr both match the prediction exactly.
TEST(BoundClassify, PredictionScoredAgainstMeasuredWindow) {
  std::vector<TraceEvent> ev;
  ev.push_back(instant(EventKind::kGroupCreate, 0.0, kNoEntity, 0, 2));
  ev.push_back(instant(EventKind::kPrediction, 0.0, kNoEntity, 0, /*cpu=*/1,
                       /*titr_us=*/10.0 * 1e6));
  // Warm-up iteration inside the first predicted cycle is excluded.
  ev.push_back(span(EventKind::kIteration, 2.0, 12.0, 0, 0));
  for (int i = 0; i < 3; ++i) {
    const double t0 = 12.0 + 10.0 * i;
    ev.push_back(span(EventKind::kIteration, t0, t0 + 10.0, 0, 0));
    ev.push_back(span(EventKind::kSubtaskComp, t0, t0 + 8.0, 0, 0));
    ev.push_back(span(EventKind::kSubtaskPull, t0, t0 + 2.0, 0, 0));
  }
  ev.push_back(instant(EventKind::kGroupDissolve, 60.0, kNoEntity, 0));

  const RunAnalysis a = analyze(std::move(ev));
  ASSERT_EQ(a.groups.size(), 1u);
  ASSERT_EQ(a.groups[0].predictions.size(), 1u);
  const PredictionCheck& p = a.groups[0].predictions[0];
  EXPECT_NEAR(p.predicted_titr_sec, 10.0, 1e-9);
  EXPECT_EQ(p.predicted_bound, Bound::kCpu);
  ASSERT_TRUE(p.measured);
  EXPECT_NEAR(p.measured_titr_sec, 10.0, 1e-9);
  EXPECT_EQ(p.measured_bound, Bound::kCpu);
  EXPECT_TRUE(p.bound_agrees);
  EXPECT_NEAR(p.titr_rel_error, 0.0, 1e-9);
  EXPECT_EQ(a.predictions_total, 1u);
  EXPECT_EQ(a.predictions_scored, 1u);
  EXPECT_DOUBLE_EQ(a.bound_agreement(), 1.0);
}

TEST(BoundClassify, PredictionUnscoredWithTooFewIterations) {
  std::vector<TraceEvent> ev;
  ev.push_back(instant(EventKind::kGroupCreate, 0.0, kNoEntity, 0, 2));
  ev.push_back(instant(EventKind::kPrediction, 0.0, kNoEntity, 0, 1, 10.0 * 1e6));
  ev.push_back(span(EventKind::kIteration, 12.0, 22.0, 0, 0));
  ev.push_back(span(EventKind::kSubtaskComp, 12.0, 20.0, 0, 0));
  ev.push_back(instant(EventKind::kGroupDissolve, 30.0, kNoEntity, 0));

  const RunAnalysis a = analyze(std::move(ev));
  ASSERT_EQ(a.groups.size(), 1u);
  ASSERT_EQ(a.groups[0].predictions.size(), 1u);
  EXPECT_FALSE(a.groups[0].predictions[0].measured);
  EXPECT_EQ(a.predictions_total, 1u);
  EXPECT_EQ(a.predictions_scored, 0u);
}

TEST(ChromeLoader, RoundTripsThroughExportedTrace) {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();
  for (const TraceEvent& e : two_iteration_trace()) Tracer::record(e);
  std::ostringstream exported;
  tracer.write_chrome_trace(exported);
  tracer.set_enabled(false);
  tracer.clear();

  const auto reloaded = events_from_chrome_trace(exported.str());
  const RunAnalysis direct = analyze(two_iteration_trace());
  const RunAnalysis via_file = analyze(reloaded);

  // The reloaded trace must produce a byte-identical JSON report.
  std::ostringstream a, b;
  write_json(direct, "", a);
  write_json(via_file, "", b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ChromeLoader, RejectsMalformedAndUnknownInput) {
  EXPECT_THROW(events_from_chrome_trace("not json"), std::runtime_error);
  EXPECT_THROW(events_from_chrome_trace("{\"noTraceEvents\": []}"), std::runtime_error);
  EXPECT_THROW(
      events_from_chrome_trace(
          R"({"traceEvents": [{"ph": "i", "name": "martian", "cat": "sim", "ts": 0}]})"),
      std::runtime_error);
  EXPECT_THROW(
      events_from_chrome_trace(
          R"({"traceEvents": [{"ph": "i", "name": "regroup", "cat": "lunar", "ts": 0}]})"),
      std::runtime_error);
  // Metadata records are skipped, not rejected.
  const auto events = events_from_chrome_trace(
      R"({"traceEvents": [{"ph": "M", "name": "process_name"},)"
      R"({"ph": "i", "name": "regroup", "cat": "sim", "ts": 5.0}]})");
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kRegroup);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 5.0);
}

// ---------------------------------------------------------------------------
// End-to-end against the seeded simulator.

struct SimRun {
  exp::RunSummary summary;
  std::vector<TraceEvent> events;
};

SimRun traced_harmony_run() {
  auto& tracer = Tracer::instance();
  tracer.set_enabled(true);
  tracer.clear();
  exp::ClusterSimConfig config = exp::ClusterSimConfig::harmony();
  config.machines = 40;
  auto catalog = exp::make_catalog();
  catalog.resize(20);
  exp::ClusterSim sim(config, catalog, exp::batch_arrivals(catalog.size()));
  SimRun run;
  run.summary = sim.run();
  run.events = tracer.snapshot();
  tracer.set_enabled(false);
  tracer.clear();
  return run;
}

RunTotals totals_of(const exp::RunSummary& summary) {
  RunTotals totals;
  totals.makespan_sec = summary.makespan;
  for (const auto& outcome : summary.jobs)
    totals.jobs.push_back(
        RunTotals::JobOutcome{outcome.job, outcome.submit_time, outcome.finish_time});
  return totals;
}

TEST(GoldenReport, ByteIdenticalAcrossTwoSeededRuns) {
  const SimRun first = traced_harmony_run();
  const SimRun second = traced_harmony_run();

  const RunTotals totals1 = totals_of(first.summary);
  const RunTotals totals2 = totals_of(second.summary);
  const RunAnalysis a1 = analyze(first.events, &totals1);
  const RunAnalysis a2 = analyze(second.events, &totals2);

  std::ostringstream md1, md2, js1, js2;
  write_markdown(a1, "", md1);
  write_markdown(a2, "", md2);
  write_json(a1, "", js1);
  write_json(a2, "", js2);
  EXPECT_EQ(md1.str(), md2.str());
  EXPECT_EQ(js1.str(), js2.str());
  EXPECT_FALSE(md1.str().empty());
}

TEST(GoldenReport, ReconcilesAndAgreesWithSchedulerOnGoldenWorkload) {
  const SimRun run = traced_harmony_run();
  const RunTotals totals = totals_of(run.summary);
  const RunAnalysis a = analyze(run.events, &totals);

  // Every job's phase attribution reconciles with its summary JCT.
  ASSERT_EQ(a.jobs.size(), run.summary.jobs.size());
  EXPECT_DOUBLE_EQ(a.makespan_sec, run.summary.makespan);
  for (const JobAnalysis& job : a.jobs) {
    EXPECT_GT(job.iterations, 0u) << "job " << job.job;
    EXPECT_NEAR(job.phases.total() + job.outside_iterations_sec, job.jct_sec, 1e-6)
        << "job " << job.job;
  }

  // The scheduler's kPrediction instants score against measured behaviour,
  // and the measured bound agrees with the model's decision on the golden
  // workload (the Fig. 13 claim, online).
  EXPECT_GT(a.predictions_total, 0u);
  EXPECT_GT(a.predictions_scored, 0u);
  EXPECT_GE(a.bound_agreement(), 0.75);
  EXPECT_LT(a.titr_mean_rel_error, 0.5);
}

}  // namespace
}  // namespace harmony::obs::analysis
