// End-to-end validation of the observability layer against the cluster
// simulator: runs the harmony_sim 20-jobs/40-machines configuration with
// tracing enabled, exports the Chrome trace, parses it back, and checks the
// format plus cross-checks trace-derived totals against the RunSummary.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "exp/arrivals.h"
#include "exp/cluster_sim.h"
#include "exp/workload.h"
#include "json_mini.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace harmony::exp {
namespace {

using obs::Tracer;
using testing::JsonValue;
using testing::parse_json;

RunSummary run_harmony_20x40() {
  ClusterSimConfig config = ClusterSimConfig::harmony();
  config.machines = 40;
  auto catalog = make_catalog();
  catalog.resize(20);
  ClusterSim sim(config, catalog, batch_arrivals(catalog.size()));
  return sim.run();
}

TEST(ObsTraceSim, TracingDoesNotChangeResults) {
  Tracer::instance().set_enabled(false);
  Tracer::instance().clear();
  const RunSummary off = run_harmony_20x40();

  Tracer::instance().set_enabled(true);
  Tracer::instance().clear();
  const RunSummary on = run_harmony_20x40();
  Tracer::instance().set_enabled(false);

  // Bit-identical: recording is pure observation and must not perturb the
  // simulation (no RNG draws, no decision inputs).
  EXPECT_EQ(off.makespan, on.makespan);
  EXPECT_EQ(off.mean_jct(), on.mean_jct());
  EXPECT_EQ(off.regroup_events, on.regroup_events);
  EXPECT_EQ(off.oom_events, on.oom_events);
  EXPECT_EQ(off.migration_overhead_sec, on.migration_overhead_sec);
  EXPECT_EQ(off.avg_util.cpu, on.avg_util.cpu);
  EXPECT_EQ(off.avg_util.net, on.avg_util.net);
  ASSERT_EQ(off.jobs.size(), on.jobs.size());
  for (std::size_t i = 0; i < off.jobs.size(); ++i) {
    EXPECT_EQ(off.jobs[i].submit_time, on.jobs[i].submit_time);
    EXPECT_EQ(off.jobs[i].finish_time, on.jobs[i].finish_time);
  }
}

TEST(ObsTraceSim, ChromeTraceFormatAndCrossChecks) {
  Tracer::instance().set_enabled(true);
  Tracer::instance().clear();
  const RunSummary summary = run_harmony_20x40();
  std::ostringstream out;
  Tracer::instance().write_chrome_trace(out);
  Tracer::instance().set_enabled(false);
  Tracer::instance().clear();

  // Whole-document validity.
  const JsonValue doc = parse_json(out.str());
  EXPECT_EQ(doc.at("displayTimeUnit").string(), "ms");
  const auto& events = doc.at("traceEvents").array();
  ASSERT_GT(events.size(), 100u);

  std::map<std::pair<double, double>, std::vector<double>> track_ts;
  std::map<double, std::string> process_names;
  std::size_t spans = 0, instants = 0, regroups = 0, schedules = 0, iterations = 0;
  double max_end_us = 0.0;

  for (const auto& e : events) {
    const std::string ph = e.at("ph").string();
    if (ph == "M") {
      if (e.at("name").string() == "process_name")
        process_names[e.at("pid").number()] =
            e.at("args").at("name").string();
      continue;
    }
    // Only complete spans and instants are emitted — never unmatched B/E.
    ASSERT_TRUE(ph == "X" || ph == "i") << "unexpected phase " << ph;
    const double ts = e.at("ts").number();
    const double pid = e.at("pid").number();
    const double tid = e.at("tid").number();
    EXPECT_GE(ts, 0.0);
    track_ts[{pid, tid}].push_back(ts);

    double end = ts;
    if (ph == "X") {
      ++spans;
      const double dur = e.at("dur").number();
      EXPECT_GE(dur, 0.0);
      end += dur;
    } else {
      ++instants;
    }
    EXPECT_EQ(e.at("cat").string(), "sim");  // this run has no wall-domain events
    max_end_us = std::max(max_end_us, end);

    const std::string name = e.at("name").string();
    regroups += name == "regroup";
    schedules += name == "schedule";
    iterations += name == "iteration";

    // Every event carries its entity ids; a job-scoped event lives in that
    // job's process track (pid = job + 1, pid 0 is the cluster).
    const auto& args = e.at("args");
    if (args.contains("job")) {
      EXPECT_EQ(pid, args.at("job").number() + 1.0);
    }
  }

  EXPECT_GT(spans, 0u);
  EXPECT_GT(instants, 0u);
  EXPECT_GT(iterations, 0u);

  // Timestamps are sorted within every (pid, tid) track.
  for (const auto& [track, ts] : track_ts) {
    EXPECT_TRUE(std::is_sorted(ts.begin(), ts.end()))
        << "unsorted track pid=" << track.first << " tid=" << track.second;
  }

  // Job/cluster metadata: pid 0 is the cluster, each traced job names its
  // process.
  ASSERT_TRUE(process_names.count(0.0));
  EXPECT_EQ(process_names[0.0], "cluster");
  for (const auto& [pid, name] : process_names) {
    if (pid == 0.0) continue;
    EXPECT_EQ(name, "job " + std::to_string(static_cast<int>(pid) - 1));
  }

  // Cross-checks against the RunSummary: the regroup instants are emitted at
  // the exact sites that bump RunSummary::regroup_events, and with batch
  // arrivals the last sim event ends at the makespan.
  EXPECT_EQ(regroups, summary.regroup_events);
  EXPECT_GT(schedules, 0u);
  EXPECT_NEAR(max_end_us / 1e6, summary.makespan, 1e-3);
}

TEST(ObsTraceSim, MetricsRegistryMatchesSummary) {
  auto& reg = obs::MetricsRegistry::instance();
  reg.reset();
  Tracer::instance().set_enabled(false);
  const RunSummary summary = run_harmony_20x40();

  EXPECT_EQ(reg.counter("sim.regroup_events").value(), summary.regroup_events);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.regroup_events").value(),
                   static_cast<double>(summary.regroup_events));
  EXPECT_DOUBLE_EQ(reg.gauge("sim.makespan_sec").value(), summary.makespan);
  EXPECT_DOUBLE_EQ(reg.gauge("sim.oom_events").value(),
                   static_cast<double>(summary.oom_events));
  EXPECT_GT(reg.gauge("sim.events_fired").value(), 0.0);
  EXPECT_GT(reg.counter("scheduler.invocations").value(), 0u);
  EXPECT_GT(reg.histogram("sim.event_queue_depth", 0.0, 4096.0, 64).count(), 0u);

  // The snapshot parses and carries the same totals.
  const auto doc = parse_json(reg.snapshot_json());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("sim.regroup_events").number(),
                   static_cast<double>(summary.regroup_events));
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("sim.makespan_sec").number(), summary.makespan);
}

}  // namespace
}  // namespace harmony::exp
