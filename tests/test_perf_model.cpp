#include <gtest/gtest.h>

#include <cmath>

#include "harmony/perf_model.h"

namespace harmony::core {
namespace {

// Helper: a job profile from (t_cpu at `dop`, t_net).
JobProfile prof(double t_cpu_at_dop, double t_net, std::size_t dop) {
  return JobProfile{t_cpu_at_dop * static_cast<double>(dop), t_net};
}

TEST(JobProfile, CpuTimeScalesInverselyWithDop) {
  const JobProfile p{160.0, 10.0};
  EXPECT_DOUBLE_EQ(p.t_cpu(16), 10.0);
  EXPECT_DOUBLE_EQ(p.t_cpu(32), 5.0);  // Eq. 2
  EXPECT_DOUBLE_EQ(p.t_itr(16), 20.0);
  EXPECT_DOUBLE_EQ(p.comp_ratio(16), 0.5);
}

TEST(JobProfile, ZeroMachinesIsInfinite) {
  const JobProfile p{100.0, 1.0};
  EXPECT_TRUE(std::isinf(p.t_cpu(0)));
}

TEST(PerfModel, SingleJobIterationTime) {
  GroupShape g{{prof(10.0, 5.0, 4)}, 4};
  // max(10, 5, 15) = 15: a single job is always job-bound.
  EXPECT_DOUBLE_EQ(PerfModel::group_iteration_time(g), 15.0);
}

TEST(PerfModel, CpuBoundCase) {
  // Three CPU-heavy jobs: sum of COMP dominates (Fig. 8a mirrored).
  GroupShape g{{prof(10, 2, 4), prof(10, 2, 4), prof(10, 2, 4)}, 4};
  EXPECT_DOUBLE_EQ(PerfModel::group_iteration_time(g), 30.0);
  const Utilization u = PerfModel::group_utilization(g);
  EXPECT_DOUBLE_EQ(u.cpu, 1.0);  // CPU is the bottleneck: fully used
  EXPECT_DOUBLE_EQ(u.net, 6.0 / 30.0);
}

TEST(PerfModel, NetworkBoundCase) {
  // Fig. 8a: sum of network subtasks exceeds CPU subtasks.
  GroupShape g{{prof(2, 10, 4), prof(2, 10, 4), prof(2, 10, 4)}, 4};
  EXPECT_DOUBLE_EQ(PerfModel::group_iteration_time(g), 30.0);
  const Utilization u = PerfModel::group_utilization(g);
  EXPECT_DOUBLE_EQ(u.net, 1.0);
  EXPECT_DOUBLE_EQ(u.cpu, 0.2);
}

TEST(PerfModel, JobBoundCase) {
  // Fig. 8b: one huge job dominates; both resources partially idle.
  GroupShape g{{prof(20, 20, 4), prof(2, 2, 4), prof(2, 2, 4)}, 4};
  EXPECT_DOUBLE_EQ(PerfModel::group_iteration_time(g), 40.0);  // 20 + 20
  const Utilization u = PerfModel::group_utilization(g);
  EXPECT_LT(u.cpu, 1.0);
  EXPECT_LT(u.net, 1.0);
  EXPECT_DOUBLE_EQ(u.cpu, 24.0 / 40.0);
}

TEST(PerfModel, ComplementaryJobsReachHighUtilization) {
  // A CPU-heavy and a network-heavy job with matching totals interleave
  // perfectly — the core co-location win.
  GroupShape g{{prof(9, 3, 4), prof(3, 9, 4)}, 4};
  EXPECT_DOUBLE_EQ(PerfModel::group_iteration_time(g), 12.0);
  const Utilization u = PerfModel::group_utilization(g);
  EXPECT_DOUBLE_EQ(u.cpu, 1.0);
  EXPECT_DOUBLE_EQ(u.net, 1.0);
}

TEST(PerfModel, MoreMachinesShrinkCpuShare) {
  GroupShape small{{prof(10, 5, 4), prof(10, 5, 4)}, 4};
  GroupShape big = small;
  big.machines = 8;
  // Same cpu_work; at 8 machines each COMP halves.
  EXPECT_LT(PerfModel::group_iteration_time(big), PerfModel::group_iteration_time(small));
}

TEST(PerfModel, ClusterUtilizationWeightsByMachines) {
  GroupShape a{{prof(10, 10, 2)}, 2};   // u = (0.5, 0.5)
  GroupShape b{{prof(10, 2, 6), prof(2, 10, 6)}, 6};  // balanced pair
  const std::vector<GroupShape> groups{a, b};
  const Utilization u = PerfModel::cluster_utilization(groups);
  const Utilization ua = PerfModel::group_utilization(a);
  const Utilization ub = PerfModel::group_utilization(b);
  EXPECT_NEAR(u.cpu, (2.0 * ua.cpu + 6.0 * ub.cpu) / 8.0, 1e-12);
  EXPECT_NEAR(u.net, (2.0 * ua.net + 6.0 * ub.net) / 8.0, 1e-12);
}

TEST(PerfModel, EmptyGroupsIgnored) {
  GroupShape empty{{}, 4};
  GroupShape real{{prof(5, 5, 2)}, 2};
  const std::vector<GroupShape> groups{empty, real};
  const Utilization u = PerfModel::cluster_utilization(groups);
  EXPECT_DOUBLE_EQ(u.cpu, PerfModel::group_utilization(real).cpu);
}

TEST(PerfModel, ScoreWeightsCpuAboveNetwork) {
  PerfModel::Params params;
  params.cpu_weight = 0.7;
  params.per_job_penalty = 0.0;
  PerfModel model(params);
  // CPU-bound group: u = (1.0, 0.2); network-bound: u = (0.2, 1.0).
  GroupShape cpu_bound{{prof(10, 2, 4), prof(10, 2, 4), prof(10, 2, 4)}, 4};
  GroupShape net_bound{{prof(2, 10, 4), prof(2, 10, 4), prof(2, 10, 4)}, 4};
  const double s_cpu = model.score(std::vector<GroupShape>{cpu_bound});
  const double s_net = model.score(std::vector<GroupShape>{net_bound});
  EXPECT_GT(s_cpu, s_net);
}

TEST(PerfModel, ScorePenalizesExtraJobs) {
  PerfModel model;  // default per_job_penalty > 0
  GroupShape two{{prof(9, 3, 4), prof(3, 9, 4)}, 4};
  GroupShape four{{prof(9, 3, 4), prof(3, 9, 4), prof(9, 3, 4), prof(3, 9, 4)}, 4};
  // Both reach u = (1,1)... four jobs only utilization-tie if totals double.
  const double s2 = model.score(std::vector<GroupShape>{two});
  const double s4 = model.score(std::vector<GroupShape>{four});
  EXPECT_GT(s2, s4);  // fewer jobs preferred at equal utilization
}

class UtilizationBounds
    : public ::testing::TestWithParam<std::tuple<double, double, std::size_t>> {};

TEST_P(UtilizationBounds, NeverExceedsOne) {
  const auto [t_cpu, t_net, machines] = GetParam();
  GroupShape g{{prof(t_cpu, t_net, machines), prof(t_net, t_cpu, machines)}, machines};
  const Utilization u = PerfModel::group_utilization(g);
  EXPECT_LE(u.cpu, 1.0 + 1e-12);
  EXPECT_LE(u.net, 1.0 + 1e-12);
  EXPECT_GE(u.cpu, 0.0);
  EXPECT_GE(u.net, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, UtilizationBounds,
    ::testing::Values(std::make_tuple(1.0, 1.0, 1), std::make_tuple(10.0, 0.1, 4),
                      std::make_tuple(0.1, 10.0, 4), std::make_tuple(5.0, 5.0, 16),
                      std::make_tuple(100.0, 1.0, 32)));

}  // namespace
}  // namespace harmony::core
