#include <gtest/gtest.h>

#include "harmony/profiler.h"

namespace harmony::core {
namespace {

TEST(Profiler, EmptyHasNoProfile) {
  Profiler p;
  EXPECT_FALSE(p.has_profile(1));
  EXPECT_FALSE(p.is_profiled(1));
  EXPECT_FALSE(p.profile(1).has_value());
  EXPECT_EQ(p.sample_count(1), 0u);
}

TEST(Profiler, NormalizesCpuWorkByMachines) {
  Profiler p;
  // 10 s of COMP on 4 machines => 40 machine-seconds of work.
  p.record(1, 4, 10.0, 3.0);
  const auto prof = p.profile(1);
  ASSERT_TRUE(prof.has_value());
  EXPECT_DOUBLE_EQ(prof->cpu_work, 40.0);
  EXPECT_DOUBLE_EQ(prof->t_net, 3.0);
  // Recovered at another DoP (Eq. 2).
  EXPECT_DOUBLE_EQ(prof->t_cpu(8), 5.0);
}

TEST(Profiler, DopInvariantAcrossMigrations) {
  Profiler p;
  // The same job measured on different group sizes should agree.
  p.record(1, 4, 10.0, 3.0);   // 40 machine-sec
  p.record(1, 8, 5.0, 3.0);    // 40 machine-sec
  p.record(1, 16, 2.5, 3.0);   // 40 machine-sec
  const auto prof = p.profile(1);
  ASSERT_TRUE(prof.has_value());
  EXPECT_NEAR(prof->cpu_work, 40.0, 1e-9);
}

TEST(Profiler, MovingAverageTracksDrift) {
  Profiler p(Profiler::Params{0.5, 1});
  p.record(2, 1, 10.0, 1.0);
  p.record(2, 1, 20.0, 1.0);
  const auto prof = p.profile(2);
  ASSERT_TRUE(prof.has_value());
  EXPECT_DOUBLE_EQ(prof->cpu_work, 15.0);
}

TEST(Profiler, IsProfiledAfterMinSamples) {
  Profiler p(Profiler::Params{0.3, 3});
  p.record(3, 2, 1.0, 1.0);
  EXPECT_TRUE(p.has_profile(3));
  EXPECT_FALSE(p.is_profiled(3));
  p.record(3, 2, 1.0, 1.0);
  EXPECT_FALSE(p.is_profiled(3));
  p.record(3, 2, 1.0, 1.0);
  EXPECT_TRUE(p.is_profiled(3));
  EXPECT_EQ(p.sample_count(3), 3u);
}

TEST(Profiler, ForgetErases) {
  Profiler p;
  p.record(4, 1, 1.0, 1.0);
  p.forget(4);
  EXPECT_FALSE(p.has_profile(4));
}

TEST(Profiler, RejectsBadInputs) {
  Profiler p;
  EXPECT_THROW(p.record(1, 0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(p.record(1, 1, -1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(p.record(1, 1, 1.0, -1.0), std::invalid_argument);
}

TEST(Profiler, TracksMultipleJobsIndependently) {
  Profiler p;
  p.record(1, 2, 4.0, 1.0);
  p.record(2, 4, 4.0, 2.0);
  EXPECT_DOUBLE_EQ(p.profile(1)->cpu_work, 8.0);
  EXPECT_DOUBLE_EQ(p.profile(2)->cpu_work, 16.0);
  EXPECT_DOUBLE_EQ(p.profile(2)->t_net, 2.0);
}

}  // namespace
}  // namespace harmony::core
