#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "ml/mlr.h"
#include "ps/network.h"
#include "ps/partition.h"
#include "ps/ps_system.h"
#include "ps/serialization.h"
#include "ps/server.h"

namespace harmony::ps {
namespace {

TEST(Serialization, PrimitivesRoundTrip) {
  ByteWriter w;
  w.put_u32(42);
  w.put_u64(1ULL << 40);
  w.put_double(3.25);
  w.put_string("harmony");
  const auto buf = w.take();

  ByteReader r(buf);
  EXPECT_EQ(r.get_u32(), 42u);
  EXPECT_EQ(r.get_u64(), 1ULL << 40);
  EXPECT_DOUBLE_EQ(r.get_double(), 3.25);
  EXPECT_EQ(r.get_string(), "harmony");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialization, DoubleVectorRoundTrip) {
  ByteWriter w;
  const std::vector<double> values{1.0, -2.5, 1e300, 0.0};
  w.put_doubles(values);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.get_doubles(), values);
}

TEST(Serialization, GetDoublesInto) {
  ByteWriter w;
  w.put_doubles(std::vector<double>{1.0, 2.0, 3.0});
  std::vector<double> out(3);
  ByteReader r(w.buffer());
  r.get_doubles_into(out);
  EXPECT_EQ(out, (std::vector<double>{1.0, 2.0, 3.0}));

  std::vector<double> wrong(2);
  ByteReader r2(w.buffer());
  EXPECT_THROW(r2.get_doubles_into(wrong), std::runtime_error);
}

TEST(Serialization, OutOfDataThrows) {
  ByteWriter w;
  w.put_u32(1);
  ByteReader r(w.buffer());
  r.get_u32();
  EXPECT_THROW(r.get_u64(), std::runtime_error);
}

TEST(Partition, EvenSplitCoversRange) {
  const auto parts = partition_evenly(10, 3);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], (Range{0, 4}));
  EXPECT_EQ(parts[1], (Range{4, 7}));
  EXPECT_EQ(parts[2], (Range{7, 10}));
}

TEST(Partition, MorePartsThanItems) {
  const auto parts = partition_evenly(2, 4);
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0].size(), 1u);
  EXPECT_EQ(parts[1].size(), 1u);
  EXPECT_TRUE(parts[2].empty());
  EXPECT_TRUE(parts[3].empty());
}

TEST(Partition, ZeroPartsThrows) {
  EXPECT_THROW(partition_evenly(5, 0), std::invalid_argument);
  EXPECT_THROW(partition_of(0, 5, 0), std::invalid_argument);
}

class PartitionOfSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(PartitionOfSweep, AgreesWithPartitionEvenly) {
  const auto [total, parts] = GetParam();
  const auto ranges = partition_evenly(total, parts);
  for (std::size_t i = 0; i < total; ++i) {
    const std::size_t p = partition_of(i, total, parts);
    ASSERT_LT(p, ranges.size());
    EXPECT_TRUE(ranges[p].contains(i)) << "key " << i << " part " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionOfSweep,
    ::testing::Values(std::make_tuple(10, 3), std::make_tuple(100, 7), std::make_tuple(5, 5),
                      std::make_tuple(13, 4), std::make_tuple(1, 1), std::make_tuple(17, 16)));

TEST(Nic, UnthrottledIsInstant) {
  Nic nic(0.0);
  const auto t0 = std::chrono::steady_clock::now();
  nic.transfer(100'000'000);
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(elapsed, 0.05);
  EXPECT_EQ(nic.bytes_transferred(), 100'000'000u);
}

TEST(Nic, ThrottleTakesProportionalTime) {
  Nic nic(10e6);  // 10 MB/s
  const auto t0 = std::chrono::steady_clock::now();
  nic.transfer(500'000);  // 50 ms
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GE(elapsed, 0.045);
  EXPECT_LT(elapsed, 0.5);
}

TEST(Nic, ConcurrentTransfersSerialize) {
  Nic nic(10e6);
  const auto t0 = std::chrono::steady_clock::now();
  std::thread a([&] { nic.transfer(300'000); });  // 30 ms
  std::thread b([&] { nic.transfer(300'000); });  // 30 ms
  a.join();
  b.join();
  const double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_GE(elapsed, 0.055);  // ~60 ms total, not 30
}

TEST(ServerShard, PullPushRoundTrip) {
  ServerShard shard(Range{10, 14}, [](std::span<double> p, std::span<const double> u) {
    for (std::size_t i = 0; i < p.size(); ++i) p[i] += u[i];
  });
  shard.load(std::vector<double>{1.0, 2.0, 3.0, 4.0});

  const auto payload = shard.serialize_params();
  ByteReader r(payload);
  EXPECT_EQ(r.get_u64(), 10u);
  EXPECT_EQ(r.get_doubles(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));

  ByteWriter push;
  push.put_u64(10);
  push.put_doubles(std::vector<double>{0.5, 0.5, 0.5, 0.5});
  EXPECT_EQ(shard.apply_push(push.buffer()), 4u);
  EXPECT_EQ(shard.snapshot(), (std::vector<double>{1.5, 2.5, 3.5, 4.5}));
  EXPECT_EQ(shard.pushes_applied(), 1u);
}

TEST(ServerShard, RejectsWrongShardAndSize) {
  ServerShard shard(Range{0, 2}, [](std::span<double>, std::span<const double>) {});
  ByteWriter wrong_shard;
  wrong_shard.put_u64(5);
  wrong_shard.put_doubles(std::vector<double>{1.0, 2.0});
  EXPECT_THROW(shard.apply_push(wrong_shard.buffer()), std::runtime_error);

  ByteWriter wrong_size;
  wrong_size.put_u64(0);
  wrong_size.put_doubles(std::vector<double>{1.0});
  EXPECT_THROW(shard.apply_push(wrong_size.buffer()), std::runtime_error);
}

TEST(PsSystem, TrainsMlrSequentially) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(200, 6, 3, 0.05, 77));
  auto app = std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.5, 1e-5});
  PsSystem ps(app, 4);
  ps.init_model();
  const double initial = ps.loss();
  ps.run_iterations_sequential(40);
  EXPECT_LT(ps.loss(), initial * 0.5);
}

TEST(PsSystem, ShardsPartitionModel) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(40, 5, 3, 0.1, 3));
  auto app = std::make_shared<ml::MlrApp>(data);
  PsSystem ps(app, 4);
  std::size_t covered = 0;
  for (std::size_t s = 0; s < ps.num_shards(); ++s) covered += ps.shard(s).range().size();
  EXPECT_EQ(covered, app->param_dim());
}

TEST(PsSystem, WorkersPartitionData) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(41, 5, 3, 0.1, 3));
  auto app = std::make_shared<ml::MlrApp>(data);
  PsSystem ps(app, 4);
  std::size_t covered = 0;
  for (std::size_t w = 0; w < ps.num_machines(); ++w) covered += ps.worker(w).data_range().size();
  EXPECT_EQ(covered, 41u);
}

TEST(PsSystem, MiniBatchesAdvanceEpochs) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(60, 5, 2, 0.1, 5));
  auto app = std::make_shared<ml::MlrApp>(data);
  PsConfig config;
  config.batches_per_epoch = 3;
  PsSystem ps(app, 2, config);
  ps.init_model();
  ps.run_iterations_sequential(6);
  EXPECT_EQ(ps.worker(0).iterations_done(), 6u);
  EXPECT_EQ(ps.worker(0).epochs_done(), 2u);
}

TEST(PsSystem, NullAppThrows) {
  EXPECT_THROW(PsSystem(nullptr, 2), std::invalid_argument);
}

TEST(PsWorker, FullIterationUpdatesModel) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(50, 4, 2, 0.1, 9));
  auto app = std::make_shared<ml::MlrApp>(data, ml::MlrConfig{0.3, 0.0});
  PsSystem ps(app, 2);
  ps.init_model();
  const auto before = ps.full_model();
  ps.worker(0).run_iteration();
  ps.worker(1).run_iteration();
  const auto after = ps.full_model();
  EXPECT_NE(before, after);
}

}  // namespace
}  // namespace harmony::ps
