#include <gtest/gtest.h>

#include "harmony/regrouper.h"

namespace harmony::core {
namespace {

SchedJob job(JobId id, double cpu_work, double t_net) {
  return SchedJob{id, JobProfile{cpu_work, t_net}};
}

class RegrouperTest : public ::testing::Test {
 protected:
  Scheduler scheduler_;
  Regrouper regrouper_{scheduler_};
};

TEST_F(RegrouperTest, SimilarWithinFivePercent) {
  const JobProfile a{100.0, 10.0};
  const JobProfile b{103.0, 10.2};  // ~3% off in both metrics
  const JobProfile c{160.0, 10.0};  // way off in iteration time
  EXPECT_TRUE(regrouper_.similar(a, b, 8));
  EXPECT_FALSE(regrouper_.similar(a, c, 8));
}

TEST_F(RegrouperTest, ArrivalWaitsWhenIdleJobsExist) {
  // Other profiled/paused jobs exist => Harmony is already satisfied with the
  // running set; the new arrival waits.
  std::vector<SchedJob> idle{job(5, 100, 10)};
  std::vector<RunningGroup> groups{{{job(1, 80, 20)}, 8}};
  const auto action = regrouper_.on_job_arrival(job(9, 50, 50), idle, groups);
  EXPECT_EQ(action.kind, RegroupAction::Kind::kNone);
}

TEST_F(RegrouperTest, ArrivalJoinsComplementaryGroup) {
  // Group 0 is network-bound; a CPU-heavy newcomer raises its utilization.
  std::vector<RunningGroup> groups{
      {{job(1, 16, 40)}, 8},   // t_cpu = 2, t_net = 40: network-bound
      {{job(2, 320, 38)}, 8},  // t_cpu = 40, t_net = 38: already balanced
  };
  const auto action = regrouper_.on_job_arrival(job(9, 240, 2), {}, groups);
  EXPECT_EQ(action.kind, RegroupAction::Kind::kAddToGroup);
  EXPECT_EQ(action.group_index, 0u);
}

TEST_F(RegrouperTest, ArrivalWaitsWhenNoGroupImproves) {
  // Perfectly utilized group: any addition lowers the score.
  std::vector<RunningGroup> groups{
      {{job(1, 80, 10), job(2, 80, 10)}, 8},  // sums: cpu 20, net 20 — saturated
  };
  // A monster job would make the group job-bound.
  const auto action = regrouper_.on_job_arrival(job(9, 8000, 800), {}, groups);
  EXPECT_EQ(action.kind, RegroupAction::Kind::kNone);
}

TEST_F(RegrouperTest, FinishReplacedBySimilarJob) {
  const SchedJob finished = job(1, 100, 10);
  std::vector<SchedJob> idle{job(7, 500, 80), job(8, 101, 10.1)};  // 8 is similar
  std::vector<RunningGroup> groups{{{job(2, 100, 10)}, 8}};
  const auto action = regrouper_.on_job_finish(finished, 0, idle, groups);
  ASSERT_EQ(action.kind, RegroupAction::Kind::kReplace);
  ASSERT_EQ(action.replacements.size(), 1u);
  EXPECT_EQ(action.replacements[0].id, 8u);
}

TEST_F(RegrouperTest, FinishReplacedByEquivalentPair) {
  const std::size_t dop = 8;
  const SchedJob finished = job(1, 160, 20);  // t_cpu = 20, t_net = 20
  // No single similar job, but 7+8 sum to (t_cpu 20, t_net 20).
  std::vector<SchedJob> idle{job(7, 80, 10), job(8, 80, 10), job(9, 4000, 1)};
  std::vector<RunningGroup> groups{{{job(2, 160, 20)}, dop}};
  const auto action = regrouper_.on_job_finish(finished, 0, idle, groups);
  ASSERT_EQ(action.kind, RegroupAction::Kind::kReplace);
  EXPECT_EQ(action.replacements.size(), 2u);
}

TEST_F(RegrouperTest, FinishWithNothingUsefulKeepsGroup) {
  const SchedJob finished = job(1, 100, 10);
  // Well-balanced remaining group, no idle jobs: benefit below 5 % => none.
  std::vector<RunningGroup> groups{{{job(2, 80, 10), job(3, 80, 10)}, 8}};
  const auto action = regrouper_.on_job_finish(finished, 0, {}, groups);
  EXPECT_EQ(action.kind, RegroupAction::Kind::kNone);
}

TEST_F(RegrouperTest, FinishTriggersRescheduleWhenBadlyImbalanced) {
  // The finished job was the only CPU-heavy one; the leftover group is badly
  // network-bound and an idle CPU-heavy job exists, but it is NOT similar
  // (so the cheap replacement paths fail) — a reschedule should win by >5 %.
  const SchedJob finished = job(1, 300, 5);
  std::vector<SchedJob> idle{job(7, 500, 30)};
  std::vector<RunningGroup> groups{
      {{job(2, 16, 40), job(3, 16, 38)}, 8},
  };
  const auto action = regrouper_.on_job_finish(finished, 0, idle, groups);
  EXPECT_EQ(action.kind, RegroupAction::Kind::kReschedule);
  EXPECT_FALSE(action.decision.empty());
}

TEST_F(RegrouperTest, ArrivalWithNoGroupsWaits) {
  const auto action = regrouper_.on_job_arrival(job(9, 50, 50), {}, {});
  EXPECT_EQ(action.kind, RegroupAction::Kind::kNone);
}

TEST_F(RegrouperTest, FinishOutOfRangeGroupIndexIsNone) {
  std::vector<RunningGroup> groups{{{job(2, 100, 10)}, 4}};
  const auto action = regrouper_.on_job_finish(job(1, 100, 10), 7, {}, groups);
  EXPECT_EQ(action.kind, RegroupAction::Kind::kNone);
}

class SimilaritySweep : public ::testing::TestWithParam<double> {};

TEST_P(SimilaritySweep, ThresholdBoundary) {
  Scheduler scheduler;
  Regrouper regrouper(scheduler, Regrouper::Params{0.05, 0.05});
  const double delta = GetParam();
  const JobProfile base{100.0, 10.0};
  const JobProfile other{100.0 * (1.0 + delta), 10.0};
  // comp ratio moves too, so use generous margins: well inside vs well outside.
  if (delta <= 0.02) {
    EXPECT_TRUE(regrouper.similar(base, other, 8));
  } else if (delta >= 0.10) {
    EXPECT_FALSE(regrouper.similar(base, other, 8));
  }
}

INSTANTIATE_TEST_SUITE_P(Deltas, SimilaritySweep, ::testing::Values(0.0, 0.01, 0.02, 0.10, 0.2));

}  // namespace
}  // namespace harmony::core
