#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <thread>

#include "harmony/runtime.h"
#include "ml/lasso.h"
#include "ml/mlr.h"
#include "ml/nmf.h"

namespace harmony::core {
namespace {

std::shared_ptr<ml::MlrApp> small_mlr(std::uint64_t seed, double lr = 0.5) {
  auto data = std::make_shared<ml::DenseDataset>(ml::make_classification(120, 6, 3, 0.05, seed));
  return std::make_shared<ml::MlrApp>(data, ml::MlrConfig{lr, 1e-5});
}

LocalRuntime::Params test_params(std::size_t machines, ExecutionMode mode) {
  LocalRuntime::Params p;
  p.machines = machines;
  p.mode = mode;
  p.checkpoint_dir =
      (std::filesystem::temp_directory_path() / "harmony-test-ckpt").string();
  return p;
}

TEST(LocalRuntime, SingleJobTrainsToCompletion) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(101);
  cfg.max_epochs = 20;
  const JobId id = rt.submit(cfg);
  rt.run();
  const RuntimeJobResult& r = rt.result(id);
  EXPECT_EQ(r.epochs, 20u);
  EXPECT_EQ(r.iterations, 20u);
  ASSERT_GE(r.epoch_losses.size(), 2u);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
  EXPECT_GT(r.wall_seconds, 0.0);
}

TEST(LocalRuntime, StopsAtTargetLoss) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(103);
  cfg.max_epochs = 200;
  cfg.target_loss = 0.35;
  const JobId id = rt.submit(cfg);
  rt.run();
  const RuntimeJobResult& r = rt.result(id);
  EXPECT_TRUE(r.converged_by_loss);
  EXPECT_LT(r.epochs, 200u);
  EXPECT_LE(r.final_loss, 0.35);
}

TEST(LocalRuntime, MultipleCoLocatedJobsAllFinish) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  std::vector<JobId> ids;
  for (int j = 0; j < 3; ++j) {
    RuntimeJobConfig cfg;
    cfg.app = small_mlr(200 + j);
    cfg.max_epochs = 8;
    ids.push_back(rt.submit(cfg));
  }
  rt.run();
  for (JobId id : ids) {
    EXPECT_EQ(rt.result(id).epochs, 8u);
    EXPECT_LT(rt.result(id).epoch_losses.back(), rt.result(id).epoch_losses.front());
  }
}

TEST(LocalRuntime, NaiveModeAlsoCompletes) {
  LocalRuntime rt(test_params(2, ExecutionMode::kNaive));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(301);
  cfg.max_epochs = 5;
  const JobId id = rt.submit(cfg);
  rt.run();
  EXPECT_EQ(rt.result(id).epochs, 5u);
}

TEST(LocalRuntime, ProfilerCollectsMeasurements) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(401);
  cfg.max_epochs = 6;
  const JobId id = rt.submit(cfg);
  rt.run();
  EXPECT_TRUE(rt.profiler().is_profiled(id));
  const auto prof = rt.profiler().profile(id);
  ASSERT_TRUE(prof.has_value());
  EXPECT_GT(prof->cpu_work, 0.0);
  EXPECT_GE(prof->t_net, 0.0);
  EXPECT_GT(rt.result(id).avg_comp_seconds, 0.0);
}

TEST(LocalRuntime, MiniBatchesMakeEpochs) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(501);
  cfg.max_epochs = 4;
  cfg.batches_per_epoch = 3;
  const JobId id = rt.submit(cfg);
  rt.run();
  EXPECT_EQ(rt.result(id).epochs, 4u);
  EXPECT_EQ(rt.result(id).iterations, 12u);
}

TEST(LocalRuntime, PauseCheckpointsAndResumeContinues) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(601, /*lr=*/0.2);
  cfg.max_epochs = 40;
  const JobId id = rt.submit(cfg);

  std::thread runner([&] { rt.run(); });
  rt.pause(id);  // blocks until the checkpoint is on disk
  const std::size_t iters_at_pause = rt.result(id).iterations;
  EXPECT_GT(iters_at_pause, 0u);
  EXPECT_LT(iters_at_pause, 40u);

  rt.resume(id);
  runner.join();
  // With a single job, run() may have returned the moment the pause landed;
  // wait for the resumed job to actually finish.
  rt.wait_idle();
  const RuntimeJobResult& r = rt.result(id);
  EXPECT_EQ(r.epochs, 40u);
  EXPECT_LT(r.epoch_losses.back(), r.epoch_losses.front());
}

TEST(LocalRuntime, SubmitAfterRunThrows) {
  LocalRuntime rt(test_params(1, ExecutionMode::kHarmony));
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(701);
  cfg.max_epochs = 1;
  rt.submit(cfg);
  rt.run();
  EXPECT_THROW(rt.submit(cfg), std::logic_error);
}

TEST(LocalRuntime, NullAppThrows) {
  LocalRuntime rt(test_params(1, ExecutionMode::kHarmony));
  EXPECT_THROW(rt.submit(RuntimeJobConfig{}), std::invalid_argument);
}

TEST(LocalRuntime, ThrottledNicProducesCommTime) {
  LocalRuntime::Params p = test_params(2, ExecutionMode::kHarmony);
  p.nic_bytes_per_sec = 50e6;  // 50 MB/s: pulls/pushes take real time
  LocalRuntime rt(p);
  RuntimeJobConfig cfg;
  cfg.app = small_mlr(801);
  cfg.max_epochs = 3;
  const JobId id = rt.submit(cfg);
  rt.run();
  EXPECT_GT(rt.result(id).avg_comm_seconds, 0.0);
}

// Different app families all run through the runtime end to end.
TEST(LocalRuntime, MixedAppFamilies) {
  LocalRuntime rt(test_params(2, ExecutionMode::kHarmony));
  RuntimeJobConfig mlr_cfg;
  mlr_cfg.app = small_mlr(901);
  mlr_cfg.max_epochs = 5;

  RuntimeJobConfig lasso_cfg;
  lasso_cfg.app = std::make_shared<ml::LassoApp>(
      std::make_shared<ml::DenseDataset>(ml::make_regression(150, 12, 3, 0.05, 902)),
      ml::LassoConfig{0.05, 0.02});
  lasso_cfg.max_epochs = 5;

  RuntimeJobConfig nmf_cfg;
  nmf_cfg.app = std::make_shared<ml::NmfApp>(
      std::make_shared<ml::RatingsDataset>(ml::make_ratings(40, 30, 3, 0.25, 0.05, 903)),
      ml::NmfConfig{6, 0.05, 1e-4, 5});
  nmf_cfg.max_epochs = 5;

  const JobId a = rt.submit(mlr_cfg);
  const JobId b = rt.submit(lasso_cfg);
  const JobId c = rt.submit(nmf_cfg);
  rt.run();
  for (JobId id : {a, b, c}) {
    EXPECT_EQ(rt.result(id).epochs, 5u);
    EXPECT_LE(rt.result(id).epoch_losses.back(), rt.result(id).epoch_losses.front());
  }
}

}  // namespace
}  // namespace harmony::core
