#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>

#include "common/rng.h"
#include "harmony/scheduler.h"

namespace harmony::core {
namespace {

SchedJob job(JobId id, double cpu_work, double t_net) {
  return SchedJob{id, JobProfile{cpu_work, t_net}};
}

// Collects all job ids placed by a decision.
std::multiset<JobId> placed_ids(const ScheduleDecision& d) {
  std::multiset<JobId> ids;
  for (const GroupPlan& g : d.groups)
    for (JobId id : g.jobs) ids.insert(id);
  return ids;
}

std::size_t total_machines(const ScheduleDecision& d) {
  std::size_t total = 0;
  for (const GroupPlan& g : d.groups) total += g.machines;
  return total;
}

TEST(PickNumGroups, BalancesCpuAgainstNet) {
  Scheduler s;
  // Each job: cpu_work = 100, t_net = 10. With M = 100, T_cpu(M/nG) matches
  // t_net when DoP = 10, i.e. nG = 10 — but only 4 jobs exist, so <= 4.
  std::vector<SchedJob> jobs{job(0, 100, 10), job(1, 100, 10), job(2, 100, 10),
                             job(3, 100, 10)};
  const std::size_t ng = s.pick_num_groups(jobs, 100);
  EXPECT_LE(ng, 4u);
  EXPECT_GE(ng, 1u);
}

TEST(PickNumGroups, CpuHeavyJobsPreferFewGroups) {
  Scheduler s;
  // Very CPU-heavy: bigger DoP (fewer groups) balances |T_cpu - T_net|.
  std::vector<SchedJob> cpu_heavy{job(0, 1000, 1), job(1, 1000, 1), job(2, 1000, 1),
                                  job(3, 1000, 1)};
  std::vector<SchedJob> net_heavy{job(0, 10, 50), job(1, 10, 50), job(2, 10, 50),
                                  job(3, 10, 50)};
  EXPECT_LE(s.pick_num_groups(cpu_heavy, 16), s.pick_num_groups(net_heavy, 16));
}

TEST(PickNumGroups, EmptyJobsDefaultsToOneGroup) {
  Scheduler s;
  EXPECT_EQ(s.pick_num_groups({}, 100), 1u);
}

TEST(PickNumGroups, ZeroMachinesDefaultsToOneGroup) {
  std::vector<SchedJob> jobs{job(0, 100, 10), job(1, 100, 10)};
  Scheduler s;
  EXPECT_EQ(s.pick_num_groups(jobs, 0), 1u);
}

TEST(PickNumGroups, SingleJobGetsOneGroup) {
  // max_groups = jobs.size() caps the search at 1, whatever the balance says.
  std::vector<SchedJob> net_heavy{job(0, 1, 1000)};
  Scheduler s;
  EXPECT_EQ(s.pick_num_groups(net_heavy, 64), 1u);
}

TEST(PickNumGroups, TiesResolveToSmallestGroupCount) {
  // A job with t_net = 0 has cost |T_cpu(M/nG)| = cpu_work * nG / M, strictly
  // increasing in nG; a job with cpu_work = 0 has cost t_net independent of
  // nG. Jointly the total is strictly increasing, so nG = 1 wins outright —
  // and for exact ties the ascending scan with a strict '<' keeps the
  // smallest candidate. Exercise an exact tie: two jobs whose costs swap
  // symmetrically between nG = 1 and nG = 2.
  // cost(nG) = |a*nG/M - n_a| + |b*nG/M - n_b| with M = 2:
  //   job A: cpu 2, net 2  -> |nG - 2|   (cost 1 at nG=1, 0 at nG=2)
  //   job B: cpu 2, net 1  -> |nG - 1|   (cost 0 at nG=1, 1 at nG=2)
  // Total cost is 1 at both candidates: the tie must resolve to nG = 1.
  std::vector<SchedJob> jobs{job(0, 2, 2), job(1, 2, 1)};
  Scheduler s;
  EXPECT_EQ(s.pick_num_groups(jobs, 2), 1u);
}

TEST(AssignJobs, PartitionIsCompleteAndDisjoint) {
  Scheduler s;
  std::vector<SchedJob> jobs;
  Rng rng(5);
  for (JobId i = 0; i < 12; ++i)
    jobs.push_back(job(i, rng.uniform(10, 200), rng.uniform(1, 50)));
  const auto groups = s.assign_jobs(jobs, 3, 8);
  ASSERT_EQ(groups.size(), 3u);
  std::set<JobId> seen;
  std::size_t count = 0;
  for (const auto& g : groups)
    for (const SchedJob& j : g) {
      EXPECT_TRUE(seen.insert(j.id).second) << "duplicate job " << j.id;
      ++count;
    }
  EXPECT_EQ(count, 12u);
}

TEST(AssignJobs, SimilarSizesStayTogether) {
  Scheduler s;
  // Two big jobs and four small ones: chunked assignment by sorted iteration
  // time keeps the two big ones in the same group (avoiding job-bound groups
  // everywhere).
  std::vector<SchedJob> jobs{job(0, 800, 100), job(1, 790, 100), job(2, 10, 2),
                             job(3, 11, 2),    job(4, 12, 2),    job(5, 10, 2)};
  const auto groups = s.assign_jobs(jobs, 3, 8);
  // Find group of job 0; job 1 must be in the same one.
  for (const auto& g : groups) {
    const bool has0 = std::any_of(g.begin(), g.end(), [](auto& j) { return j.id == 0; });
    const bool has1 = std::any_of(g.begin(), g.end(), [](auto& j) { return j.id == 1; });
    EXPECT_EQ(has0, has1);
  }
}

TEST(AssignJobs, SwapsReduceImbalance) {
  Scheduler s;
  // Jobs with equal iteration time but opposite skews; fine-tuning should mix
  // CPU-heavy and network-heavy jobs within groups.
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 4; ++i) jobs.push_back(job(i, 80, 2));    // cpu-heavy
  for (JobId i = 4; i < 8; ++i) jobs.push_back(job(i, 16, 10));   // net-heavy
  const std::size_t dop = 8;
  const auto groups = s.assign_jobs(jobs, 2, dop);
  ASSERT_EQ(groups.size(), 2u);
  auto imbalance = [&](const std::vector<SchedJob>& g) {
    double cpu = 0, net = 0;
    for (const auto& j : g) {
      cpu += j.profile.t_cpu(dop);
      net += j.profile.t_net;
    }
    return std::abs(cpu - net);
  };
  // Both groups should be reasonably balanced — each holds a mix.
  for (const auto& g : groups) EXPECT_LT(imbalance(g), 25.0);
}

TEST(AllocateMachines, EveryGroupGetsAtLeastOne) {
  Scheduler s;
  std::vector<std::vector<SchedJob>> groups{{job(0, 100, 1)}, {job(1, 1, 100)}};
  const auto alloc = s.allocate_machines(groups, 10);
  ASSERT_EQ(alloc.size(), 2u);
  EXPECT_GE(alloc[0], 1u);
  EXPECT_GE(alloc[1], 1u);
  EXPECT_LE(alloc[0] + alloc[1], 10u);
}

TEST(AllocateMachines, StopsAtBalancePoint) {
  Scheduler s;
  // One job: t_cpu(m) = 60/m, t_net = 20 -> balance at m = 3; extra machines
  // past that only make the group network-bound and must not be burned.
  std::vector<std::vector<SchedJob>> groups{{job(0, 60, 20)}};
  const auto alloc = s.allocate_machines(groups, 50);
  EXPECT_EQ(alloc[0], 3u);
}

TEST(AllocateMachines, CpuBoundGroupGetsMore) {
  Scheduler s;
  std::vector<std::vector<SchedJob>> groups{{job(0, 1000, 1)},   // very CPU-bound
                                            {job(1, 1, 100)}};   // network-bound
  const auto alloc = s.allocate_machines(groups, 12);
  EXPECT_GT(alloc[0], alloc[1]);
}

TEST(AllocateMachines, FewerMachinesThanGroupsThrows) {
  Scheduler s;
  std::vector<std::vector<SchedJob>> groups{{job(0, 1, 1)}, {job(1, 1, 1)}, {job(2, 1, 1)}};
  EXPECT_THROW(s.allocate_machines(groups, 2), std::invalid_argument);
}

TEST(Schedule, EmptyInputs) {
  Scheduler s;
  EXPECT_TRUE(s.schedule({}, 10).empty());
  EXPECT_THROW(s.schedule(std::vector<SchedJob>{job(0, 1, 1)}, 0), std::invalid_argument);
}

TEST(Schedule, InvalidProfileThrows) {
  Scheduler s;
  std::vector<SchedJob> jobs{SchedJob{0, JobProfile{0.0, 0.0}}};
  EXPECT_THROW(s.schedule(jobs, 4), std::invalid_argument);
}

TEST(Schedule, SingleJobUsesAllMachines) {
  Scheduler s;
  std::vector<SchedJob> jobs{job(0, 100, 10)};
  const auto d = s.schedule(jobs, 8);
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups[0].machines, 8u);
  EXPECT_EQ(d.jobs_scheduled, 1u);
}

TEST(Schedule, ComplementaryPairBeatsSingleJob) {
  Scheduler s;
  // A CPU-heavy and network-heavy pair multiplexes to near-full utilization;
  // the scheduler should co-locate them rather than stop at one job.
  std::vector<SchedJob> jobs{job(0, 160, 4), job(1, 32, 20)};
  const auto d = s.schedule(jobs, 8);
  EXPECT_EQ(d.jobs_scheduled, 2u);
  ASSERT_EQ(d.groups.size(), 1u);
  EXPECT_EQ(d.groups[0].jobs.size(), 2u);
  EXPECT_GT(d.predicted_util.cpu, 0.6);
}

TEST(Schedule, StopsGrowingWhenUtilizationDrops) {
  Scheduler s;
  // First two jobs complement perfectly; the third is a monster that would
  // make everything job-bound.
  std::vector<SchedJob> jobs{job(0, 80, 10), job(1, 80, 10), job(2, 8000, 1000)};
  const auto d = s.schedule(jobs, 8);
  EXPECT_LE(d.jobs_scheduled, 2u);
}

TEST(Schedule, UtilizationWithinBounds) {
  Scheduler s;
  Rng rng(17);
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 20; ++i)
    jobs.push_back(job(i, rng.uniform(50, 500), rng.uniform(5, 60)));
  const auto d = s.schedule(jobs, 40);
  EXPECT_GT(d.predicted_util.cpu, 0.0);
  EXPECT_LE(d.predicted_util.cpu, 1.0 + 1e-9);
  EXPECT_LE(d.predicted_util.net, 1.0 + 1e-9);
}

// Structural invariants across a parameter sweep.
class ScheduleInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, std::uint64_t>> {};

TEST_P(ScheduleInvariants, DecisionIsWellFormed) {
  const auto [num_jobs, machines, seed] = GetParam();
  Scheduler s;
  Rng rng(seed);
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < num_jobs; ++i)
    jobs.push_back(job(i, rng.uniform(20, 2000), rng.uniform(2, 120)));
  const auto d = s.schedule(jobs, machines);

  // (1) No duplicate placements; placed ids come from the input prefix.
  const auto ids = placed_ids(d);
  EXPECT_EQ(ids.size(), std::set<JobId>(ids.begin(), ids.end()).size());
  for (JobId id : ids) EXPECT_LT(id, num_jobs);
  EXPECT_EQ(ids.size(), d.jobs_scheduled);

  // (2) Machines: every group >= 1, total never exceeds the cluster (the
  // allocator may stop early at the compute/communication balance point).
  for (const GroupPlan& g : d.groups) {
    EXPECT_GE(g.machines, 1u);
    EXPECT_FALSE(g.jobs.empty());
  }
  EXPECT_LE(total_machines(d), machines);
  EXPECT_GE(total_machines(d), d.groups.size());

  // (3) Utilization within physical bounds.
  EXPECT_LE(d.predicted_util.cpu, 1.0 + 1e-9);
  EXPECT_LE(d.predicted_util.net, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleInvariants,
    ::testing::Combine(::testing::Values<std::size_t>(1, 3, 8, 20, 50),
                       ::testing::Values<std::size_t>(4, 16, 100),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Schedule, ScalesToThousandsOfJobs) {
  Scheduler s;
  Rng rng(23);
  std::vector<SchedJob> jobs;
  for (JobId i = 0; i < 2000; ++i)
    jobs.push_back(job(i, rng.uniform(20, 2000), rng.uniform(2, 120)));
  const auto start = std::chrono::steady_clock::now();
  const auto d = s.schedule(jobs, 2000);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EXPECT_FALSE(d.empty());
  EXPECT_LT(elapsed, 5.0);  // §V-F: must stay interactive at scale
}

}  // namespace
}  // namespace harmony::core
