#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/check.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace harmony::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TieBreaksFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelIsNoopAfterFire) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // harmless
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsFire) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(0.5, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] { sim.schedule_in(2.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] { sim.schedule_in(1.0, tick); };
  sim.schedule_in(1.0, tick);
  sim.run(100);
  EXPECT_EQ(sim.events_fired(), 100u);
}

// ---------------------------------------------------------------------------
// Behaviour pinned across both event-queue implementations. The calendar
// queue is the default; the binary heap is the reference — every observable
// (fire order, clock, cancellation semantics) must be identical.

class QueueKinds : public ::testing::TestWithParam<EventQueueKind> {};

TEST_P(QueueKinds, FireOrderAndFifoTieBreak) {
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(20); });
  sim.schedule_at(1.0, [&] { order.push_back(10); });
  sim.schedule_at(1.0, [&] { order.push_back(11); });  // same instant: FIFO
  sim.schedule_at(1.0, [&] { order.push_back(12); });
  sim.schedule_at(0.5, [&] { order.push_back(5); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{5, 10, 11, 12, 20}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST_P(QueueKinds, FarFutureEventsFireInOrder) {
  // Exercises the calendar queue's far ladder: timestamps spanning ten
  // orders of magnitude, interleaved with near-term work.
  Simulator sim(GetParam());
  std::vector<double> fired;
  for (double t : {1e9, 0.25, 3e6, 2.0, 7e4, 0.5, 1e9, 12.0})
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  sim.run();
  const std::vector<double> want{0.25, 0.5, 2.0, 12.0, 7e4, 3e6, 1e9, 1e9};
  EXPECT_EQ(fired, want);
}

TEST_P(QueueKinds, RunUntilDoesNotDisturbTieOrder) {
  // run_until pops one event past the horizon and re-inserts it; the
  // re-inserted node must keep its place among same-instant peers.
  Simulator sim(GetParam());
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(2); });
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.run_until(4.0);
  EXPECT_TRUE(order.empty());
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(QueueKinds, CancelledEventsNeverFire) {
  Simulator sim(GetParam());
  int fired = 0;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i)
    ids.push_back(sim.schedule_at(1.0 + i, [&] { ++fired; }));
  for (std::size_t i = 0; i < ids.size(); i += 2) sim.cancel(ids[i]);
  sim.run();
  EXPECT_EQ(fired, 50);
  EXPECT_TRUE(sim.empty());
}

TEST_P(QueueKinds, SelfCancelDuringFireIsNoop) {
  // Cancelling the event that is currently firing, from inside its own
  // callback, must be harmless (the generation already bumped).
  Simulator sim(GetParam());
  int fired = 0;
  EventId id = kInvalidEvent;
  id = sim.schedule_at(1.0, [&] {
    ++fired;
    sim.cancel(id);
  });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.empty());
}

TEST_P(QueueKinds, OrphanCompactionBoundsQueueGrowth) {
  // Lazy deletion leaves cancelled nodes in the queue. Aggressive
  // cancel/reschedule churn must not grow the queue without bound: the
  // compaction trigger caps queue nodes at 2 * live + 64.
  Simulator sim(GetParam());
  int fired = 0;
  std::vector<EventId> live;
  // A small set of survivors plus a huge churn of cancelled events.
  for (int i = 0; i < 8; ++i)
    live.push_back(sim.schedule_at(1e6 + i, [&] { ++fired; }));
  for (int round = 0; round < 2000; ++round) {
    const EventId id = sim.schedule_at(10.0 + round, [&] { ++fired; });
    sim.cancel(id);
    ASSERT_LE(sim.queue_nodes(), 2 * sim.pending() + 64)
        << "round " << round << ": orphans accumulate without bound";
  }
  EXPECT_EQ(sim.pending(), 8u);
  sim.run();
  EXPECT_EQ(fired, 8);
}

TEST_P(QueueKinds, ValidatorCleanOnBusyQueue) {
  Simulator sim(GetParam());
  for (int i = 0; i < 500; ++i) sim.schedule_at(0.5 * i, [] {});
  for (double t : {1e7, 2e9, 5e4}) sim.schedule_at(t, [] {});
  // Drain a prefix so calendar buckets have been consumed and rotated.
  sim.run(200);
  check::Validation v("sim");
  sim.validate(v);
  EXPECT_TRUE(v.report().ok()) << v.report().to_string();
}

TEST_P(QueueKinds, ValidatorDetectsClockCorruption) {
  Simulator sim(GetParam());
  sim.schedule_at(5.0, [] {});
  sim.corrupt_clock_for_test(100.0);
  check::Validation v("sim");
  sim.validate(v);
  const auto report = v.report();
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("ran past pending event"), std::string::npos)
      << report.to_string();
}

INSTANTIATE_TEST_SUITE_P(BothQueues, QueueKinds,
                         ::testing::Values(EventQueueKind::kBinaryHeap,
                                           EventQueueKind::kCalendar),
                         [](const ::testing::TestParamInfo<EventQueueKind>& info) {
                           return info.param == EventQueueKind::kCalendar ? "Calendar"
                                                                          : "BinaryHeap";
                         });

// ---------------------------------------------------------------------------

TEST(FifoResource, ServesSequentially) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  std::vector<double> done_at;
  r.submit(2.0, [&] { done_at.push_back(sim.now()); });
  r.submit(3.0, [&] { done_at.push_back(sim.now()); });
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done_at, (std::vector<double>{2.0, 5.0, 6.0}));
}

TEST(FifoResource, BusyTimeExcludesIdle) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  r.submit(2.0, [] {});
  sim.run();
  sim.schedule_at(10.0, [&] { r.submit(1.0, [] {}); });
  sim.run();
  EXPECT_DOUBLE_EQ(r.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 11.0);
}

TEST(FifoResource, CancelPending) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  int done = 0;
  r.submit(2.0, [&] { ++done; });
  const TaskId second = r.submit(2.0, [&] { ++done; });
  EXPECT_TRUE(r.cancel_pending(second));
  EXPECT_FALSE(r.cancel_pending(second));
  sim.run();
  EXPECT_EQ(done, 1);
}

TEST(FifoResource, CompletionCanResubmit) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  int rounds = 0;
  std::function<void()> again = [&] {
    if (++rounds < 3) r.submit(1.0, again);
  };
  r.submit(1.0, again);
  sim.run();
  EXPECT_EQ(rounds, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SharedResource, SingleTaskRunsAtFullRate) {
  Simulator sim;
  SharedResource r(sim, "net", 2.0);  // 2 units/sec
  double done_at = -1.0;
  r.submit(4.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(SharedResource, TwoTasksShareCapacity) {
  Simulator sim;
  SharedResource r(sim, "net", 1.0);
  std::vector<double> done_at;
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 2u);
  // Each gets rate 1/2, so both finish at t = 2.
  EXPECT_NEAR(done_at[0], 2.0, 1e-9);
  EXPECT_NEAR(done_at[1], 2.0, 1e-9);
}

TEST(SharedResource, LateArrivalSlowsFirstTask) {
  Simulator sim;
  SharedResource r(sim, "net", 1.0);
  double first_done = -1.0, second_done = -1.0;
  r.submit(2.0, [&] { first_done = sim.now(); });
  sim.schedule_at(1.0, [&] { r.submit(0.5, [&] { second_done = sim.now(); }); });
  sim.run();
  // First task: 1s alone (1 unit done), then shares; remaining 1 unit at rate
  // 1/2 while the 0.5-unit task drains (done at t=2), then full rate again:
  // at t=2 first has 0.5 left -> finishes at 2.5.
  EXPECT_NEAR(second_done, 2.0, 1e-9);
  EXPECT_NEAR(first_done, 2.5, 1e-9);
}

TEST(SharedResource, InterferencePenaltySlowsEveryone) {
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0, 0.5);  // 50% penalty per extra task
  std::vector<double> done_at;
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  // Rate per task = 1 / 2 / (1 + 0.5) = 1/3 -> both done at t = 3 (vs 2
  // without interference).
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_NEAR(done_at[1], 3.0, 1e-9);
}

TEST(SharedResource, WorkCompletedAccounting) {
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0);
  r.submit(3.0, [] {});
  r.submit(1.0, [] {});
  sim.run();
  EXPECT_NEAR(r.work_completed(), 4.0, 1e-9);
  EXPECT_NEAR(r.busy_time(), 4.0, 1e-9);  // work-conserving
}

TEST(SharedResource, CompletionOrderSurvivesInsertionHistoryPerturbation) {
  // Thirteen equal tasks all finish in the same settle, so the callback
  // firing order is exactly the task-ledger iteration order. Run the batch
  // once on a fresh resource and once after a churn phase that forces
  // erases/rehashes in the ledger first: a hash-ordered ledger diverges
  // under that perturbation, the ordered ledger must stay byte-identical
  // to submission order.
  auto run = [](bool churn) {
    Simulator sim;
    SharedResource r(sim, "cpu", 1.0);
    if (churn)
      for (int i = 0; i < 7; ++i) r.submit(0.25 * (i + 1), [] {});
    std::vector<int> order;
    const double start = churn ? 100.0 : 0.0;
    sim.schedule_at(start, [&] {
      for (int i = 0; i < 13; ++i)
        r.submit(5.0, [&order, i] { order.push_back(i); });
    });
    sim.run();
    return order;
  };
  const std::vector<int> fresh = run(false);
  ASSERT_EQ(fresh.size(), 13u);
  for (int i = 0; i < 13; ++i) EXPECT_EQ(fresh[i], i);  // submission order
  EXPECT_EQ(fresh, run(true));
}

TEST(SharedResource, ZeroWorkCompletesImmediately) {
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0);
  bool done = false;
  r.submit(0.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

class SharedFairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(SharedFairnessSweep, NEqualTasksFinishTogether) {
  const int n = GetParam();
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0);
  std::vector<double> done_at;
  for (int i = 0; i < n; ++i) r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), static_cast<std::size_t>(n));
  for (double d : done_at) EXPECT_NEAR(d, static_cast<double>(n), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Fairness, SharedFairnessSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace harmony::sim
