#include <gtest/gtest.h>

#include <vector>

#include "sim/resource.h"
#include "sim/simulator.h"

namespace harmony::sim {
namespace {

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TieBreaksFifo) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(1.0, [&] { order.push_back(2); });
  sim.schedule_at(1.0, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelIsNoopAfterFire) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.run();
  sim.cancel(id);  // harmless
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CancelPreventsFire) {
  Simulator sim;
  int fired = 0;
  const EventId id = sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(0.5, [&] { sim.cancel(id); });
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, SchedulingIntoPastThrows) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  double fired_at = -1.0;
  sim.schedule_at(1.0, [&] { sim.schedule_in(2.0, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(Simulator, RunUntilAdvancesClockExactly) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, MaxEventsGuard) {
  Simulator sim;
  // Self-perpetuating event chain.
  std::function<void()> tick = [&] { sim.schedule_in(1.0, tick); };
  sim.schedule_in(1.0, tick);
  sim.run(100);
  EXPECT_EQ(sim.events_fired(), 100u);
}

// ---------------------------------------------------------------------------

TEST(FifoResource, ServesSequentially) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  std::vector<double> done_at;
  r.submit(2.0, [&] { done_at.push_back(sim.now()); });
  r.submit(3.0, [&] { done_at.push_back(sim.now()); });
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(done_at, (std::vector<double>{2.0, 5.0, 6.0}));
}

TEST(FifoResource, BusyTimeExcludesIdle) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  r.submit(2.0, [] {});
  sim.run();
  sim.schedule_at(10.0, [&] { r.submit(1.0, [] {}); });
  sim.run();
  EXPECT_DOUBLE_EQ(r.busy_time(), 3.0);
  EXPECT_DOUBLE_EQ(sim.now(), 11.0);
}

TEST(FifoResource, CancelPending) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  int done = 0;
  r.submit(2.0, [&] { ++done; });
  const TaskId second = r.submit(2.0, [&] { ++done; });
  EXPECT_TRUE(r.cancel_pending(second));
  EXPECT_FALSE(r.cancel_pending(second));
  sim.run();
  EXPECT_EQ(done, 1);
}

TEST(FifoResource, CompletionCanResubmit) {
  Simulator sim;
  FifoResource r(sim, "cpu");
  int rounds = 0;
  std::function<void()> again = [&] {
    if (++rounds < 3) r.submit(1.0, again);
  };
  r.submit(1.0, again);
  sim.run();
  EXPECT_EQ(rounds, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(SharedResource, SingleTaskRunsAtFullRate) {
  Simulator sim;
  SharedResource r(sim, "net", 2.0);  // 2 units/sec
  double done_at = -1.0;
  r.submit(4.0, [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_NEAR(done_at, 2.0, 1e-9);
}

TEST(SharedResource, TwoTasksShareCapacity) {
  Simulator sim;
  SharedResource r(sim, "net", 1.0);
  std::vector<double> done_at;
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), 2u);
  // Each gets rate 1/2, so both finish at t = 2.
  EXPECT_NEAR(done_at[0], 2.0, 1e-9);
  EXPECT_NEAR(done_at[1], 2.0, 1e-9);
}

TEST(SharedResource, LateArrivalSlowsFirstTask) {
  Simulator sim;
  SharedResource r(sim, "net", 1.0);
  double first_done = -1.0, second_done = -1.0;
  r.submit(2.0, [&] { first_done = sim.now(); });
  sim.schedule_at(1.0, [&] { r.submit(0.5, [&] { second_done = sim.now(); }); });
  sim.run();
  // First task: 1s alone (1 unit done), then shares; remaining 1 unit at rate
  // 1/2 while the 0.5-unit task drains (done at t=2), then full rate again:
  // at t=2 first has 0.5 left -> finishes at 2.5.
  EXPECT_NEAR(second_done, 2.0, 1e-9);
  EXPECT_NEAR(first_done, 2.5, 1e-9);
}

TEST(SharedResource, InterferencePenaltySlowsEveryone) {
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0, 0.5);  // 50% penalty per extra task
  std::vector<double> done_at;
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  // Rate per task = 1 / 2 / (1 + 0.5) = 1/3 -> both done at t = 3 (vs 2
  // without interference).
  ASSERT_EQ(done_at.size(), 2u);
  EXPECT_NEAR(done_at[1], 3.0, 1e-9);
}

TEST(SharedResource, WorkCompletedAccounting) {
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0);
  r.submit(3.0, [] {});
  r.submit(1.0, [] {});
  sim.run();
  EXPECT_NEAR(r.work_completed(), 4.0, 1e-9);
  EXPECT_NEAR(r.busy_time(), 4.0, 1e-9);  // work-conserving
}

TEST(SharedResource, ZeroWorkCompletesImmediately) {
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0);
  bool done = false;
  r.submit(0.0, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
}

class SharedFairnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(SharedFairnessSweep, NEqualTasksFinishTogether) {
  const int n = GetParam();
  Simulator sim;
  SharedResource r(sim, "cpu", 1.0);
  std::vector<double> done_at;
  for (int i = 0; i < n; ++i) r.submit(1.0, [&] { done_at.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done_at.size(), static_cast<std::size_t>(n));
  for (double d : done_at) EXPECT_NEAR(d, static_cast<double>(n), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Fairness, SharedFairnessSweep, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace harmony::sim
