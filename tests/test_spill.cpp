#include <gtest/gtest.h>

#include <cmath>

#include "cluster/machine.h"
#include "harmony/spill_manager.h"

namespace harmony::core {
namespace {

using cluster::kGiB;
using cluster::kMiB;

TEST(BlockManager, SplitsIntoBlocks) {
  BlockManager bm(10.0 * kMiB, 4.0 * kMiB);
  EXPECT_EQ(bm.total_blocks(), 3u);  // 4 + 4 + 2
  EXPECT_DOUBLE_EQ(bm.alpha(), 0.0);
  EXPECT_DOUBLE_EQ(bm.memory_bytes(), 10.0 * kMiB);
  EXPECT_DOUBLE_EQ(bm.disk_bytes(), 0.0);
}

TEST(BlockManager, SetAlphaMovesBlocks) {
  BlockManager bm(100.0 * kMiB, 10.0 * kMiB);  // 10 blocks
  bm.set_alpha(0.3);
  EXPECT_EQ(bm.disk_blocks(), 3u);
  EXPECT_NEAR(bm.alpha(), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(bm.disk_bytes(), 30.0 * kMiB);

  bm.set_alpha(0.1);  // reload two blocks
  EXPECT_EQ(bm.disk_blocks(), 1u);
  bm.set_alpha(1.0);
  EXPECT_EQ(bm.disk_blocks(), 10u);
  bm.set_alpha(0.0);
  EXPECT_EQ(bm.disk_blocks(), 0u);
}

TEST(BlockManager, AlphaClampsAndRounds) {
  BlockManager bm(40.0 * kMiB, 10.0 * kMiB);  // 4 blocks
  bm.set_alpha(2.0);
  EXPECT_DOUBLE_EQ(bm.alpha(), 1.0);
  bm.set_alpha(-1.0);
  EXPECT_DOUBLE_EQ(bm.alpha(), 0.0);
  bm.set_alpha(0.6);  // rounds to 2/4 or 3/4
  EXPECT_NEAR(bm.alpha(), 0.5, 0.26);
}

TEST(BlockManager, ZeroBytesStillValid) {
  BlockManager bm(0.0, 1.0 * kMiB);
  EXPECT_EQ(bm.total_blocks(), 1u);
  bm.set_alpha(1.0);  // no crash
}

TEST(SpillCostModel, ResidentShrinksReloadGrowsWithAlpha) {
  SpillCostModel model;
  const cluster::MachineSpec spec;
  const double input = 40.0 * kGiB, mod = 4.0 * kGiB;
  double prev_resident = 1e300, prev_reload = -1.0;
  for (double a = 0.0; a <= 1.0; a += 0.25) {
    const SpillCosts c = model.costs(input, mod, a, 8, spec);
    EXPECT_LT(c.resident_bytes, prev_resident);
    EXPECT_GT(c.reload_seconds, prev_reload);
    prev_resident = c.resident_bytes;
    prev_reload = c.reload_seconds;
  }
}

TEST(SpillCostModel, MoreMachinesLowerPerMachineCosts) {
  SpillCostModel model;
  const cluster::MachineSpec spec;
  const SpillCosts at4 = model.costs(40.0 * kGiB, 4.0 * kGiB, 0.5, 4, spec);
  const SpillCosts at16 = model.costs(40.0 * kGiB, 4.0 * kGiB, 0.5, 16, spec);
  EXPECT_GT(at4.resident_bytes, at16.resident_bytes);
  EXPECT_GT(at4.reload_seconds, at16.reload_seconds);
}

TEST(SpillCostModel, ExpansionFactorsApplyToResidentOnly) {
  SpillCostModel::Params params;
  params.input_mem_expansion = 3.0;
  params.model_mem_expansion = 1.0;
  params.per_job_overhead_bytes = 0.0;
  SpillCostModel model(params);
  const cluster::MachineSpec spec;
  const SpillCosts c = model.costs(8.0 * kGiB, 0.0, 0.0, 1, spec);
  EXPECT_DOUBLE_EQ(c.resident_bytes, 24.0 * kGiB);
  // With alpha = 1 the reload moves the RAW 8 GiB.
  const SpillCosts c1 = model.costs(8.0 * kGiB, 0.0, 1.0, 1, spec);
  EXPECT_NEAR(c1.reload_seconds, 8.0 * kGiB / spec.disk_bytes_per_sec, 1e-9);
}

TEST(SpillCostModel, BlockingIsReloadMinusOverlap) {
  SpillCosts c;
  c.reload_seconds = 10.0;
  EXPECT_DOUBLE_EQ(SpillCostModel::blocking_seconds(c, 4.0), 6.0);
  EXPECT_DOUBLE_EQ(SpillCostModel::blocking_seconds(c, 15.0), 0.0);
  EXPECT_DOUBLE_EQ(SpillCostModel::blocking_seconds(c, -1.0), 10.0);
}

TEST(SpillCostModel, ZeroMachinesThrows) {
  SpillCostModel model;
  EXPECT_THROW(model.costs(1.0, 1.0, 0.5, 0, cluster::MachineSpec{}), std::invalid_argument);
}

TEST(AlphaController, InitialAlphaRespectsMemoryBudget) {
  SpillCostModel model;
  const cluster::MachineSpec spec;
  const cluster::MemoryModelParams mem;
  // Tiny job: fits entirely -> alpha 0.
  EXPECT_DOUBLE_EQ(AlphaController::initial_alpha(1.0 * kGiB, 0.5 * kGiB, 8,
                                                  spec.memory_bytes, mem, model, spec),
                   0.0);
  // Huge job on few machines with a small share -> alpha near 1.
  const double a = AlphaController::initial_alpha(200.0 * kGiB, 10.0 * kGiB, 4,
                                                  spec.memory_bytes / 4.0, mem, model, spec);
  EXPECT_GT(a, 0.8);
}

TEST(AlphaController, InitialAlphaMonotoneInJobSize) {
  SpillCostModel model;
  const cluster::MachineSpec spec;
  const cluster::MemoryModelParams mem;
  double prev = -1.0;
  for (double gb = 10.0; gb <= 160.0; gb *= 2.0) {
    const double a = AlphaController::initial_alpha(gb * kGiB, 1.0 * kGiB, 8,
                                                    spec.memory_bytes / 3.0, mem, model, spec);
    EXPECT_GE(a, prev);
    prev = a;
  }
}

// Hill climbing on a synthetic U-shaped objective should land near the
// optimum regardless of where it is (the §V-G experiment's essence).
class HillClimbSweep : public ::testing::TestWithParam<double> {};

TEST_P(HillClimbSweep, ConvergesNearOptimum) {
  const double optimum = GetParam();
  // Iteration time: GC pain below the optimum, reload pain above it.
  auto objective = [optimum](double a) {
    const double d = a - optimum;
    return 50.0 + 120.0 * d * d + (a < optimum ? 40.0 * (optimum - a) : 10.0 * (a - optimum));
  };
  AlphaController ctl(0.5, AlphaController::Params{0.1, 0.0125, 0.002});
  double alpha = 0.5;
  for (int i = 0; i < 60; ++i) alpha = ctl.observe(objective(alpha));
  EXPECT_NEAR(alpha, optimum, 0.15);
}

INSTANTIATE_TEST_SUITE_P(Optima, HillClimbSweep, ::testing::Values(0.1, 0.3, 0.5, 0.8));

TEST(AlphaController, StaysInBounds) {
  AlphaController ctl(0.95);
  double alpha = 0.95;
  for (int i = 0; i < 30; ++i) {
    alpha = ctl.observe(10.0 - alpha);  // always rewards larger alpha
    EXPECT_GE(alpha, 0.0);
    EXPECT_LE(alpha, 1.0);
  }
  EXPECT_GT(alpha, 0.9);
}

TEST(AlphaController, CountsObservations) {
  AlphaController ctl(0.5);
  ctl.observe(1.0);
  ctl.observe(1.0);
  EXPECT_EQ(ctl.observations(), 2u);
}

}  // namespace
}  // namespace harmony::core
