#include <gtest/gtest.h>

#include <filesystem>

#include "harmony/spill_manager.h"
#include "harmony/spill_store.h"

namespace harmony::core {
namespace {

class SpillStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("harmony-spill-test-" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SpillStoreTest, SpillReloadRoundTrip) {
  DiskSpillStore store(dir_);
  const std::vector<double> block{1.0, -2.5, 3.25, 1e100, 0.0};
  store.spill(3, 7, block);
  EXPECT_TRUE(store.contains(3, 7));
  EXPECT_EQ(store.reload(3, 7), block);
}

TEST_F(SpillStoreTest, AccountingTracksBytes) {
  DiskSpillStore store(dir_);
  store.spill(1, 0, std::vector<double>(100, 1.0));
  store.spill(1, 1, std::vector<double>(50, 2.0));
  EXPECT_EQ(store.blocks_on_disk(), 2u);
  EXPECT_EQ(store.bytes_on_disk(), 150u * sizeof(double));
  store.reload(1, 0);
  EXPECT_EQ(store.bytes_reloaded_total(), 100u * sizeof(double));
  // Reload does not remove the block (reloads can repeat every iteration).
  EXPECT_TRUE(store.contains(1, 0));
}

TEST_F(SpillStoreTest, OverwriteReplacesBlock) {
  DiskSpillStore store(dir_);
  store.spill(1, 0, std::vector<double>(100, 1.0));
  store.spill(1, 0, std::vector<double>(10, 9.0));
  EXPECT_EQ(store.bytes_on_disk(), 10u * sizeof(double));
  EXPECT_EQ(store.reload(1, 0), std::vector<double>(10, 9.0));
}

TEST_F(SpillStoreTest, MissingBlockThrows) {
  DiskSpillStore store(dir_);
  EXPECT_THROW(store.reload(9, 9), std::runtime_error);
  EXPECT_FALSE(store.contains(9, 9));
}

TEST_F(SpillStoreTest, RemoveAndRemoveJob) {
  DiskSpillStore store(dir_);
  store.spill(1, 0, std::vector<double>(10, 1.0));
  store.spill(1, 1, std::vector<double>(10, 1.0));
  store.spill(2, 0, std::vector<double>(10, 1.0));
  store.remove(1, 0);
  EXPECT_FALSE(store.contains(1, 0));
  EXPECT_EQ(store.blocks_on_disk(), 2u);
  store.remove_job(1);
  EXPECT_FALSE(store.contains(1, 1));
  EXPECT_TRUE(store.contains(2, 0));
  EXPECT_EQ(store.bytes_on_disk(), 10u * sizeof(double));
}

TEST_F(SpillStoreTest, JobsAndBlocksAreIndependent) {
  DiskSpillStore store(dir_);
  store.spill(1, 0, std::vector<double>{1.0});
  store.spill(2, 0, std::vector<double>{2.0});
  EXPECT_EQ(store.reload(1, 0), std::vector<double>{1.0});
  EXPECT_EQ(store.reload(2, 0), std::vector<double>{2.0});
}

TEST_F(SpillStoreTest, DestructorCleansFiles) {
  {
    DiskSpillStore store(dir_);
    store.spill(1, 0, std::vector<double>(64, 3.0));
    EXPECT_FALSE(std::filesystem::is_empty(dir_));
  }
  // All .spill files gone after teardown.
  std::size_t files = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
}

// Driving the real store from the BlockManager's decisions: the accounting
// layer says which blocks go to disk; the store moves the bytes; the two
// stay consistent.
TEST_F(SpillStoreTest, BlockManagerDrivesTheStore) {
  constexpr std::size_t kBlocks = 10;
  constexpr std::size_t kBlockDoubles = 256;
  BlockManager manager(kBlocks * kBlockDoubles * sizeof(double),
                       kBlockDoubles * sizeof(double));
  DiskSpillStore store(dir_);

  // The "dataset": 10 blocks of doubles.
  std::vector<std::vector<double>> blocks(kBlocks, std::vector<double>(kBlockDoubles));
  for (std::size_t b = 0; b < kBlocks; ++b)
    for (std::size_t i = 0; i < kBlockDoubles; ++i)
      blocks[b][i] = static_cast<double>(b * 1000 + i);

  auto sync_store = [&](double alpha) {
    manager.set_alpha(alpha);
    const std::size_t disk_count = manager.disk_blocks();
    // BlockManager spills from the back; mirror that assignment.
    for (std::size_t b = 0; b < kBlocks; ++b) {
      const bool should_be_on_disk = b >= kBlocks - disk_count;
      if (should_be_on_disk && !store.contains(0, b)) {
        store.spill(0, b, blocks[b]);
        blocks[b].clear();  // drop the memory copy
        blocks[b].shrink_to_fit();
      } else if (!should_be_on_disk && store.contains(0, b)) {
        blocks[b] = store.reload(0, b);
        store.remove(0, b);
      }
    }
  };

  sync_store(0.5);
  EXPECT_EQ(store.blocks_on_disk(), manager.disk_blocks());
  EXPECT_EQ(store.bytes_on_disk(), static_cast<std::uint64_t>(manager.disk_bytes()));

  sync_store(0.2);  // reload three blocks
  EXPECT_EQ(store.blocks_on_disk(), 2u);
  // Reloaded data is intact.
  for (std::size_t b = 0; b < 8; ++b) {
    ASSERT_EQ(blocks[b].size(), kBlockDoubles);
    EXPECT_DOUBLE_EQ(blocks[b][1], static_cast<double>(b * 1000 + 1));
  }

  sync_store(1.0);  // everything to disk
  EXPECT_EQ(store.blocks_on_disk(), kBlocks);
  sync_store(0.0);  // everything back
  EXPECT_EQ(store.blocks_on_disk(), 0u);
  for (std::size_t b = 0; b < kBlocks; ++b)
    EXPECT_DOUBLE_EQ(blocks[b][kBlockDoubles - 1],
                     static_cast<double>(b * 1000 + kBlockDoubles - 1));
}

}  // namespace
}  // namespace harmony::core
